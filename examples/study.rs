//! The full paper study in one command: all 22 logic bombs against the
//! four tool profiles, rendered as the paper's Table II with per-cell
//! agreement against the published results.
//!
//! ```sh
//! cargo run --release --example study
//! ```
//!
//! Pass a bomb name prefix to restrict the run, e.g.
//! `cargo run --release --example study -- array` runs only the
//! symbolic-array bombs.

use bomblab::bombs::all_cases;
use bomblab::prelude::*;

fn main() {
    let filter = std::env::args().nth(1).unwrap_or_default();
    let cases: Vec<StudyCase> = all_cases()
        .into_iter()
        .filter(|c| c.subject.name.starts_with(&filter))
        .collect();
    if cases.is_empty() {
        eprintln!("no bombs match prefix {filter:?}");
        std::process::exit(2);
    }
    let profiles = ToolProfile::paper_lineup();
    let report = run_study(&cases, &profiles);
    println!("{}", report.to_markdown());
    let counts = report.solved_counts();
    let names: Vec<&str> = report.profiles.iter().map(String::as_str).collect();
    let solved: Vec<String> = names
        .iter()
        .zip(&counts)
        .map(|(n, c)| format!("{n}={c}"))
        .collect();
    println!("Solved cases: {}", solved.join(", "));
}
