//! Opaque-predicate detection via concolic execution — the paper's second
//! application scenario (Section V.D).
//!
//! An obfuscator guards dead code with predicates that always evaluate the
//! same way. Concolic execution detects them: a branch whose flip query is
//! UNSAT is opaque, and its guarded block is dead code. The example also
//! shows the paper's caveat: building the opaque predicate out of one of
//! the studied challenges (here `pow(x,2) == -1` behind an unloaded
//! library summary) defeats — or worse, *fools* — the analysis.
//!
//! ```sh
//! cargo run --example deobfuscate
//! ```

use bomblab::prelude::*;
use bomblab::solver::{SolveOutcome, Solver};
use bomblab::symex::{MemoryModel, PropagationPolicy, SymExec};
use bomblab::vm::ROOT_PID;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // x*x - x is always even: `(x*x - x) & 1 == 1` is opaquely false, and
    // the "bogus" block it guards is dead. The real branch (x == 97)
    // is genuine.
    let source = r#"
        .extern atoi
        .global _start
    _start:
        ld a0, [a1+8]
        call atoi
        mov s0, a0
        # opaque predicate: (x*x - x) & 1 == 1 -- never true
        mul t0, s0, s0
        sub t0, t0, s0
        andi t0, t0, 1
        li t1, 1
        beq t0, t1, bogus
        # genuine branch
        li t1, 97
        bne s0, t1, out
        li a0, 2
        li sv, 0
        sys
    bogus:
        li a0, 3             # dead code
        li sv, 0
        sys
    out:
        li a0, 0
        li sv, 0
        sys
    "#;
    let image = link_program(source)?;

    // Trace a concrete run, replay symbolically, then classify each
    // symbolic branch by the satisfiability of its flip.
    let config = MachineConfig {
        trace: true,
        ..MachineConfig::with_arg("5")
    };
    let mut machine = Machine::load(&image, None, config)?;
    let snapshot = machine.process_memory(ROOT_PID).expect("root").clone();
    machine.run();
    let trace = machine.take_trace();

    let mut sx = SymExec::new(MemoryModel::Concretize, PropagationPolicy::full());
    sx.set_initial_memory(ROOT_PID, snapshot);
    // argv[1] = "5" lives at a fixed loader address (2 pointers + "bomb\0").
    let argv1 = bomblab::isa::image::layout::ARGV_BASE + 16 + 5;
    sx.symbolize_bytes(ROOT_PID, argv1, 1, "arg1");
    let sym = sx.run(&trace);

    println!("symbolic branches on the trace: {}", sym.path.len());
    let solver = Solver::new();
    let mut opaque = 0;
    let mut genuine = 0;
    for i in 0..sym.path.len() {
        let pc = sym.path[i].pc;
        match solver.check(&sym.flip_query(i)) {
            SolveOutcome::Unsat => {
                opaque += 1;
                println!(
                    "  branch at {pc:#x}: OPAQUE (flip unsatisfiable) -> guarded code is dead"
                );
            }
            SolveOutcome::Sat(_) => {
                genuine += 1;
                println!("  branch at {pc:#x}: genuine (both directions feasible)");
            }
            SolveOutcome::Unknown(r) => {
                println!("  branch at {pc:#x}: unknown ({r})");
            }
        }
    }
    println!("classified {opaque} opaque, {genuine} genuine branches");
    assert!(opaque >= 1, "the (x*x - x) & 1 predicate must be detected");
    assert!(genuine >= 1, "the x == 97 branch must stay live");

    // The caveat: the same predicate hidden behind an unloaded library
    // (Angr-NoLib style) is no longer provably opaque — the summary
    // invents return values and the dead branch looks reachable.
    let case = bomblab::bombs::negative_pow();
    let engine = Engine::new(ToolProfile::angr_nolib());
    let ground = GroundTruth::default();
    let attempt = engine.explore(&case.subject, &ground);
    let claims = attempt.evidence.sat_queries > 0;
    println!(
        "negative bomb under Angr-NoLib: outcome {}, claims-reachable = {claims}",
        attempt.outcome
    );
    assert!(
        claims,
        "the unconstrained library summary should produce the paper's false positive"
    );
    Ok(())
}
