//! A CTF-style crackme solved with the concolic engine: a multi-stage
//! password check mixing arithmetic, table lookups, and a stack round
//! trip — the kind of showcase (crackmes, CGC) the paper's introduction
//! cites as concolic execution's home turf.
//!
//! ```sh
//! cargo run --example crackme
//! ```

use bomblab::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The password is 4 characters. Stage 1 checks a xor-chain, stage 2
    // a byte sum, stage 3 a table lookup keyed by the last byte.
    let source = r#"
        .extern strlen, bomb_boom
        .data
    table: .byte 7, 11, 13, 17, 19, 23, 29, 31
        .text
        .global _start
    _start:
        ld s0, [a1+8]        # password
        mov a0, s0
        call strlen
        li t0, 4
        bne a0, t0, fail     # exactly 4 characters

        # stage 1: b0 ^ b1 == 0x15
        lbu t1, [s0]
        lbu t2, [s0+1]
        xor t3, t1, t2
        li t0, 0x15
        bne t3, t0, fail

        # stage 2: b0 + b1 + b2 == 0xE9  (through the stack)
        lbu t3, [s0+2]
        add t4, t1, t2
        add t4, t4, t3
        push t4
        li t4, 0
        pop t4
        li t0, 0xE9
        bne t4, t0, fail

        # stage 3: table[b3 & 7] == 29 and b3 must be a digit
        lbu t5, [s0+3]
        li t0, '0'
        blt t5, t0, fail
        li t0, '9'
        blt t0, t5, fail
        andi t6, t5, 7
        li t0, table
        add t0, t0, t6
        lbu t7, [t0]
        li t0, 29
        bne t7, t0, fail

        call bomb_boom
    fail:
        li a0, 1
        li sv, 0
        sys
    "#;
    let image = link_program(source)?;
    let subject = Subject {
        name: "crackme".into(),
        image,
        lib: None,
        seed: WorldInput::with_arg("AAAA"),
    };

    println!("cracking a 4-character password...");
    let engine = Engine::new(ToolProfile::omniscient());
    let attempt = engine.explore(&subject, &GroundTruth::default());
    println!(
        "outcome: {} ({} rounds, {} queries, {} satisfiable)",
        attempt.outcome,
        attempt.evidence.rounds,
        attempt.evidence.queries,
        attempt.evidence.sat_queries
    );
    let input = attempt.solved_input.expect("the crackme is solvable");
    let password = String::from_utf8_lossy(&input.argv1).into_owned();
    println!("recovered password: {password:?}");

    // Verify the stages by hand.
    let b = input.argv1.clone();
    assert_eq!(b.len(), 4);
    assert_eq!(b[0] ^ b[1], 0x15);
    assert_eq!(b[0] as u32 + b[1] as u32 + b[2] as u32, 0xE9);
    assert!(b[3].is_ascii_digit());
    let table = [7u8, 11, 13, 17, 19, 23, 29, 31];
    assert_eq!(table[(b[3] & 7) as usize], 29);
    println!("all stages verified");
    Ok(())
}
