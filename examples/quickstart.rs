//! Quickstart: assemble a tiny logic bomb, run it concretely, then let the
//! concolic engine find the detonating input.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use bomblab::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A program with a hidden bomb: it detonates when
    //    atoi(argv[1]) * 3 + 1 == 1000, i.e. argv[1] == "333".
    let source = r#"
        .extern atoi, puts, bomb_boom
        .data
    greet: .asciz "checking the password..."
        .text
        .global _start
    _start:
        mov s1, a1           # save argv (a-registers are caller-saved)
        li a0, greet
        call puts
        ld a0, [s1+8]        # argv[1]
        call atoi
        muli a0, a0, 3
        addi a0, a0, 1
        li t0, 1000
        bne a0, t0, wrong
        call bomb_boom       # prints BOOM, exits 42
    wrong:
        li a0, 0
        li sv, 0             # exit(0)
        sys
    "#;
    let image = link_program(source)?;
    println!(
        "assembled + linked: {} loadable bytes",
        image.loadable_size()
    );

    // 2. Run it concretely with a wrong guess.
    let mut machine = Machine::load(&image, None, MachineConfig::with_arg("42"))?;
    let result = machine.run();
    println!(
        "concrete run with \"42\": {} after {} instructions, stdout: {:?}",
        result.status,
        result.steps,
        String::from_utf8_lossy(machine.stdout()),
    );

    // 3. Let the concolic engine search for the detonating input.
    let subject = Subject {
        name: "quickstart".into(),
        image,
        lib: None,
        seed: WorldInput::with_arg("042"),
    };
    let engine = Engine::new(ToolProfile::omniscient());
    let attempt = engine.explore(&subject, &GroundTruth::default());
    println!(
        "engine outcome: {} after {} rounds / {} solver queries",
        attempt.outcome, attempt.evidence.rounds, attempt.evidence.queries
    );
    match attempt.solved_input {
        Some(input) => {
            println!(
                "detonating argv[1]: {:?}",
                String::from_utf8_lossy(&input.argv1)
            );
            assert!(subject.detonates(&input, 1_000_000));
        }
        None => println!("no solution found"),
    }
    Ok(())
}
