//! Snapshot test guarding the reproduction: a representative slice of
//! Table II must keep producing the paper-matching labels.

use bomblab::bombs::dataset;
use bomblab::prelude::*;

#[test]
fn representative_rows_match_the_paper() {
    // Fast rows covering each challenge category and all outcome kinds.
    let cases = vec![
        dataset::decl_time(),    // [Es0, Es0, Es0, Es0]
        dataset::covert_stack(), // [Es1, OK, OK, OK]
        dataset::covert_file(),  // paper [Es2, Es2, E, Es2]; ours Es2 x4
        dataset::array_l1(),     // [Es3, Es3, OK, OK]
        dataset::array_l2(),     // [Es3, Es3, Es3, Es3]
        dataset::ctx_filename(), // [Es2, Es3, Es2, Es2]
        // The next two guard the tool-emulation calibration: both rows
        // only fail because the paper profiles run a *stateless* solver
        // per query, so any caching or budget-metric change that leaks
        // framework strength into the emulated tools flips them to OK.
        dataset::ctx_syscallnum(), // [Es2, Es3, Es2, Es2]
        dataset::float_cmp(),      // paper [Es1, Es1, E, Es3]; ours Es3 x Angr
        dataset::jump_direct(),    // [Es3, Es3, Es2, Es2]
        dataset::jump_table(),     // [Es3, Es3, Es3, Es3]
    ];
    let report = run_study(&cases, &ToolProfile::paper_lineup());

    let expect: &[(&str, [Outcome; 4])] = &[
        (
            "decl_time",
            [Outcome::Es0, Outcome::Es0, Outcome::Es0, Outcome::Es0],
        ),
        (
            "covert_stack",
            [
                Outcome::Es1,
                Outcome::Solved,
                Outcome::Solved,
                Outcome::Solved,
            ],
        ),
        (
            "covert_file",
            [Outcome::Es2, Outcome::Es2, Outcome::Es2, Outcome::Es2],
        ),
        (
            "array_l1",
            [Outcome::Es3, Outcome::Es3, Outcome::Solved, Outcome::Solved],
        ),
        (
            "array_l2",
            [Outcome::Es3, Outcome::Es3, Outcome::Es3, Outcome::Es3],
        ),
        (
            "ctx_filename",
            [Outcome::Es2, Outcome::Es3, Outcome::Es2, Outcome::Es2],
        ),
        (
            "ctx_syscallnum",
            [Outcome::Es2, Outcome::Es3, Outcome::Es2, Outcome::Es2],
        ),
        (
            "float_cmp",
            [Outcome::Es1, Outcome::Es1, Outcome::Es3, Outcome::Es3],
        ),
        (
            "jump_direct",
            [Outcome::Es3, Outcome::Es3, Outcome::Es2, Outcome::Es2],
        ),
        (
            "jump_table",
            [Outcome::Es3, Outcome::Es3, Outcome::Es3, Outcome::Es3],
        ),
    ];
    for (row, (name, labels)) in report.rows.iter().zip(expect) {
        assert_eq!(&row.name, name);
        for (cell, want) in row.cells.iter().zip(labels) {
            assert_eq!(
                cell.outcome, *want,
                "{name} x {} diverged from the reproduction snapshot",
                cell.profile
            );
        }
    }
}

#[test]
fn the_fault_layer_is_inert_without_a_plan() {
    // Table-II guard: with no FaultPlan armed, the injection layer must be
    // a no-op — zero injected sites globally and clean evidence on every
    // cell, so the snapshot above cannot drift because of the chaos layer.
    let before = bomblab::fault::global_injected_total();
    let cases = vec![dataset::decl_time(), dataset::covert_stack()];
    let report = run_study(&cases, &ToolProfile::paper_lineup());
    assert_eq!(
        bomblab::fault::global_injected_total(),
        before,
        "an unfaulted study must not inject a single fault"
    );
    for row in &report.rows {
        assert!(row.analysis_crash.is_none());
        for cell in &row.cells {
            assert_eq!(cell.attempt.evidence.injected_faults, 0);
            assert!(cell.attempt.evidence.crash.is_none());
            assert!(cell.attempt.evidence.fault_log.is_empty());
        }
    }
    assert!(
        !report.to_markdown().contains("Contained crashes"),
        "the crash section only renders when something was contained"
    );
}

#[test]
fn markdown_report_renders_counts_and_agreement() {
    let cases = vec![dataset::covert_stack()];
    let report = run_study(&cases, &ToolProfile::paper_lineup());
    let md = report.to_markdown();
    assert!(md.contains("| Category | Case |"));
    assert!(md.contains("covert_stack"));
    assert!(md.contains("**solved**"));
    assert!(md.contains("Agreement"));
    let (hit, total) = report.agreement();
    assert_eq!(total, 4);
    assert_eq!(hit, 4, "covert_stack row fully matches the paper");
    assert_eq!(report.solved_counts(), vec![0, 1, 1, 1]);
}
