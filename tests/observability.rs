//! Observability layer: tracing must never change the science.
//!
//! The Table-II report has to be byte-for-byte identical with tracing on
//! or off and at every worker count; a traced study has to emit
//! schema-valid JSONL covering every pipeline stage for every cell.

use bomblab::bombs::dataset;
use bomblab::concolic::StudyReport;
use bomblab::obs;
use bomblab::obs::trace::validate_lines;
use bomblab::prelude::*;

/// Multi-round bombs, single-round failures, and a solved case — the
/// same slice the parallel-determinism suite uses.
fn slice() -> Vec<StudyCase> {
    vec![
        dataset::decl_time(),
        dataset::covert_stack(),
        dataset::array_l1(),
        dataset::jump_direct(),
    ]
}

fn observed(jobs: usize) -> StudyReport {
    run_study_with(
        &slice(),
        &ToolProfile::paper_lineup(),
        &StudyOptions {
            jobs,
            observe: true,
            ..StudyOptions::default()
        },
    )
}

#[test]
fn tracing_never_changes_the_report_bytes() {
    let profiles = ToolProfile::paper_lineup();
    let baseline = run_study_jobs(&slice(), &profiles, 1).to_markdown();
    for jobs in [1, 3] {
        let traced = observed(jobs).to_markdown();
        assert_eq!(
            baseline, traced,
            "observe=true under --jobs {jobs} leaked into the report"
        );
    }
}

#[test]
fn traced_study_emits_schema_valid_lines_covering_every_stage() {
    let report = observed(2);
    let lines = report.trace_lines();
    let doc = lines.join("\n");
    let checked = validate_lines(&doc).unwrap_or_else(|(line, why)| {
        panic!("trace line {line} invalid: {why}\n{}", lines[line - 1])
    });
    assert_eq!(checked, lines.len(), "every line must be validated");

    // Every (bomb, profile) cell must carry the core pipeline stages.
    for row in &report.rows {
        for cell in &row.cells {
            let profile = cell.obs.as_ref().unwrap_or_else(|| {
                panic!("{} x {}: no observation profile", row.name, cell.profile)
            });
            let stages: Vec<&str> = profile.spans.iter().map(|s| s.stage).collect();
            // Every attempt at least runs the bomb concretely; later
            // stages are reached only until the pipeline gives up (a
            // failed lift check skips symex, an Es0 cell never queries).
            assert!(
                stages.contains(&"vm.run"),
                "{} x {}: stage vm.run never recorded (saw {stages:?})",
                row.name,
                cell.profile
            );
            assert_eq!(
                stages.contains(&"solver.check"),
                cell.attempt.evidence.queries > 0,
                "{} x {}: solver.check spans disagree with {} queries",
                row.name,
                cell.profile,
                cell.attempt.evidence.queries
            );
        }
        // Phase-1 ground truth + static analysis is observed too.
        let p = row.analysis_obs.as_ref().expect("phase-1 profile");
        assert_eq!(p.profile, "oracle+static");
        assert!(p.spans.iter().any(|s| s.stage == "sa.analyze"));
    }

    // Study-wide, the whole pipeline is covered.
    let totals = report.metrics();
    for stage in [
        "vm.run",
        "taint.run",
        "symex.run",
        "solver.check",
        "sa.analyze",
    ] {
        assert!(
            totals.stages.contains_key(stage),
            "stage {stage} missing from study-wide totals: {:?}",
            totals.stages.keys().collect::<Vec<_>>()
        );
    }

    // Header, per-cell outcome lines, and trailer are all present.
    assert!(doc.contains("\"type\":\"study_start\""));
    assert!(doc.contains("\"type\":\"stage_total\""));
    let cells = lines
        .iter()
        .filter(|l| l.contains("\"type\":\"cell\""))
        .count();
    assert_eq!(cells, report.rows.len() * ToolProfile::paper_lineup().len());
}

#[test]
fn unobserved_study_collects_nothing() {
    let report = run_study_jobs(&slice(), &ToolProfile::paper_lineup(), 2);
    for row in &report.rows {
        assert!(row.analysis_obs.is_none());
        assert!(row.cells.iter().all(|c| c.obs.is_none()));
    }
    assert_eq!(report.metrics().cells, 0);
    assert!(!obs::armed(), "study must disarm every observation window");
}

#[test]
fn profile_summary_ranks_cells_and_breaks_down_stages() {
    let report = observed(1);
    let summary = report.profile_summary();
    assert!(summary.contains("## Slowest cells"));
    assert!(summary.contains("## Hottest solver cells"));
    assert!(summary.contains("## Per-stage breakdown"));
    assert!(summary.contains("vm.run"));
    assert!(summary.contains("solver.check"));
    // The summary is a sidecar: none of its sections leak into Table II.
    let report_md = report.to_markdown();
    assert!(!report_md.contains("Slowest cells"));
    assert!(!report_md.contains("wall_ns"));
}

#[test]
fn chaos_sweeps_can_observe_without_changing_verdicts() {
    let cases = vec![dataset::decl_time(), dataset::covert_stack()];
    let profiles = ToolProfile::paper_lineup();
    let base = ChaosConfig {
        sweeps: 2,
        faults: 1,
        jobs: 2,
        ..ChaosConfig::default()
    };
    let plain = chaos_sweep(&cases, &profiles, &base);
    let traced = chaos_sweep(
        &cases,
        &profiles,
        &ChaosConfig {
            observe: true,
            ..base
        },
    );
    assert_eq!(plain.len(), traced.len());
    for (p, t) in plain.iter().zip(&traced) {
        assert_eq!(p.report.to_markdown(), t.report.to_markdown());
        assert!(p.violations.is_empty() && t.violations.is_empty());
        let doc = t.report.trace_lines().join("\n");
        validate_lines(&doc).expect("chaos trace lines validate");
    }
}
