//! Cross-crate integration tests: the omniscient engine against
//! representative bombs, and tool-profile behaviour on key rows.

use bomblab::bombs::dataset;
use bomblab::prelude::*;

fn omniscient_solves(case: &StudyCase) -> Attempt {
    let ground = bomblab::concolic::ground_truth(&case.subject, &case.trigger);
    Engine::new(ToolProfile::omniscient()).explore(&case.subject, &ground)
}

#[test]
fn omniscient_engine_solves_the_stack_bomb() {
    let attempt = omniscient_solves(&dataset::covert_stack());
    assert_eq!(attempt.outcome, Outcome::Solved);
    assert_eq!(
        attempt.solved_input.unwrap().argv1[0],
        b'9',
        "push/pop bomb wants argv[1] = 9"
    );
}

#[test]
fn omniscient_engine_solves_the_time_bomb_by_controlling_time() {
    let case = dataset::decl_time();
    let attempt = omniscient_solves(&case);
    assert_eq!(attempt.outcome, Outcome::Solved);
    assert_eq!(
        attempt.solved_input.unwrap().epoch,
        1_234_567_891,
        "the engine must have synthesized the magic epoch"
    );
}

#[test]
fn omniscient_engine_solves_the_level_one_array() {
    let attempt = omniscient_solves(&dataset::array_l1());
    assert_eq!(attempt.outcome, Outcome::Solved);
}

#[test]
fn omniscient_engine_solves_the_two_level_array() {
    // max_indirection = 2 in the omniscient profile.
    let attempt = omniscient_solves(&dataset::array_l2());
    assert_eq!(attempt.outcome, Outcome::Solved);
}

#[test]
fn omniscient_engine_solves_the_covert_file_bomb() {
    let attempt = omniscient_solves(&dataset::covert_file());
    assert_eq!(attempt.outcome, Outcome::Solved);
    assert_eq!(attempt.solved_input.unwrap().argv1[0], b'Y');
}

#[test]
fn omniscient_engine_solves_the_thread_bomb() {
    let attempt = omniscient_solves(&dataset::parallel_thread());
    assert_eq!(attempt.outcome, Outcome::Solved);
}

#[test]
fn omniscient_engine_solves_the_fork_pipe_bomb() {
    let attempt = omniscient_solves(&dataset::parallel_fork());
    assert_eq!(attempt.outcome, Outcome::Solved);
}

#[test]
fn omniscient_engine_solves_the_float_bomb_via_local_search() {
    let attempt = omniscient_solves(&dataset::float_cmp());
    assert_eq!(attempt.outcome, Outcome::Solved);
}

#[test]
fn omniscient_engine_solves_the_exception_bomb() {
    let attempt = omniscient_solves(&dataset::covert_exception());
    assert_eq!(attempt.outcome, Outcome::Solved);
    let input = attempt.solved_input.unwrap();
    let text = String::from_utf8_lossy(&input.argv1);
    assert!(
        text.trim_end_matches('\0')
            .trim_start_matches('0')
            .starts_with("77")
            || text.contains("77"),
        "trap requires atoi(argv[1]) == 77, got {text:?}"
    );
}

#[test]
fn crypto_bombs_defeat_even_the_omniscient_engine() {
    // SHA-1 preimage: nobody inverts it. The omniscient engine must not
    // silently claim success. A tight budget keeps the test fast — with a
    // larger one the solver merely grinds longer before giving up.
    let case = dataset::crypto_sha1();
    let ground = bomblab::concolic::ground_truth(&case.subject, &case.trigger);
    let mut profile = ToolProfile::omniscient();
    profile.solver_budget = bomblab::solver::SolverBudget {
        max_conflicts: 2_000,
        max_formula_nodes: 100_000,
    };
    let attempt = Engine::new(profile).explore(&case.subject, &ground);
    assert_ne!(attempt.outcome, Outcome::Solved);
    assert_eq!(
        attempt.outcome,
        Outcome::Abnormal,
        "budget exhaustion is the honest outcome"
    );
}

#[test]
fn bap_profile_follows_the_trap_edge() {
    let case = dataset::covert_exception();
    let ground = bomblab::concolic::ground_truth(&case.subject, &case.trigger);
    let attempt = Engine::new(ToolProfile::bap()).explore(&case.subject, &ground);
    assert_eq!(
        attempt.outcome,
        Outcome::Solved,
        "paper row 8: BAP succeeds"
    );
}

#[test]
fn triton_profile_fails_the_stack_bomb_is_bap_only() {
    // Row 5: BAP's lifter lacks push/pop -> Es1; Triton succeeds.
    let case = dataset::covert_stack();
    let ground = bomblab::concolic::ground_truth(&case.subject, &case.trigger);
    let bap = Engine::new(ToolProfile::bap()).explore(&case.subject, &ground);
    assert_eq!(bap.outcome, Outcome::Es1);
    let triton = Engine::new(ToolProfile::triton()).explore(&case.subject, &ground);
    assert_eq!(triton.outcome, Outcome::Solved);
}

#[test]
fn angr_profiles_split_on_the_fork_bomb() {
    // Row 11: only the no-libraries configuration handles fork/pipe.
    let case = dataset::parallel_fork();
    let ground = bomblab::concolic::ground_truth(&case.subject, &case.trigger);
    let with_libs = Engine::new(ToolProfile::angr()).explore(&case.subject, &ground);
    assert_eq!(with_libs.outcome, Outcome::Es2);
    let nolib = Engine::new(ToolProfile::angr_nolib()).explore(&case.subject, &ground);
    assert_eq!(nolib.outcome, Outcome::Solved);
}

#[test]
fn angr_reports_partial_success_on_syscall_returns() {
    // Row 3: simulation invents syscall returns the world cannot honour.
    let case = dataset::decl_syscall();
    let ground = bomblab::concolic::ground_truth(&case.subject, &case.trigger);
    let attempt = Engine::new(ToolProfile::angr()).explore(&case.subject, &ground);
    assert_eq!(attempt.outcome, Outcome::Partial);
    assert!(attempt.evidence.sim_query_sysret);
}

#[test]
fn negative_bomb_probe_reproduces_the_false_positive() {
    let case = bomblab::bombs::negative_pow();
    let ground = GroundTruth::default();
    // Sound tools do not claim reachability...
    let omni = Engine::new(ToolProfile::omniscient()).explore(&case.subject, &ground);
    assert_ne!(omni.outcome, Outcome::Solved);
    assert_eq!(omni.evidence.sat_queries, 0, "x^2 == -1 must be unsat");
    // ...but the unconstrained library summary does.
    let nolib = Engine::new(ToolProfile::angr_nolib()).explore(&case.subject, &ground);
    assert!(nolib.evidence.sat_queries > 0, "the paper's false positive");
    assert_ne!(nolib.outcome, Outcome::Solved);
}
