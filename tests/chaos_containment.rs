//! Chaos-harness integration tests: injected faults must always surface
//! as well-formed `E`/`P` cells in a complete, deterministic report —
//! never as a lost cell or an aborted study.

use bomblab::bombs::dataset;
use bomblab::concolic::{
    chaos_sweep, check_containment, run_study_with, ChaosConfig, Outcome, StudyCase, StudyOptions,
};
use bomblab::fault::{FaultAction, FaultPlan, FaultSite};
use bomblab::prelude::*;
use proptest::prelude::*;

/// A fast slice of the dataset: three bombs from different challenge
/// categories that each finish in well under a second per cell.
fn fast_cases() -> Vec<StudyCase> {
    vec![
        dataset::decl_time(),
        dataset::covert_stack(),
        dataset::array_l1(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole invariant: any random seeded fault plan yields a
    /// complete bombs × profiles matrix with every injected fault
    /// contained as a well-formed cell, at any job count.
    #[test]
    fn random_fault_plans_are_always_contained(
        seed in 0u64..1_000_000,
        faults in 1usize..6,
    ) {
        let cases = fast_cases();
        let profiles = ToolProfile::paper_lineup();
        let sweeps = chaos_sweep(
            &cases,
            &profiles,
            &ChaosConfig {
                seed,
                sweeps: 1,
                faults: faults as u32,
                jobs: 2,
                ..ChaosConfig::default()
            },
        );
        prop_assert_eq!(sweeps.len(), 1);
        let sweep = &sweeps[0];
        prop_assert!(
            sweep.violations.is_empty(),
            "plan [{}] violated containment: {:?}",
            sweep.plan,
            sweep.violations
        );
        prop_assert_eq!(sweep.report.rows.len(), cases.len());
    }
}

#[test]
fn a_fixed_plan_is_byte_identical_across_job_counts() {
    let cases = fast_cases();
    let profiles = ToolProfile::paper_lineup();
    let plan = FaultPlan::random(42, 4);
    let run = |jobs| {
        run_study_with(
            &cases,
            &profiles,
            &StudyOptions {
                jobs,
                fault_plan: Some(plan.clone()),
                ..StudyOptions::default()
            },
        )
    };
    let serial = run(1);
    let parallel = run(8);
    assert_eq!(
        serial.to_markdown(),
        parallel.to_markdown(),
        "a faulted study must render identically at --jobs 1 and --jobs 8"
    );
    assert_eq!(serial.contained_crashes(), parallel.contained_crashes());
}

#[test]
fn a_panicking_cell_no_longer_aborts_the_study() {
    // Regression for the old `worker.join().expect(...)`: a panic on the
    // very first engine round used to kill the worker and abort the run.
    let cases = fast_cases();
    let profiles = ToolProfile::paper_lineup();
    let plan = FaultPlan::single(FaultSite::EngineRound, 1, FaultAction::Panic);
    let report = run_study_with(
        &cases,
        &profiles,
        &StudyOptions {
            jobs: 2,
            fault_plan: Some(plan),
            ..StudyOptions::default()
        },
    );
    assert_eq!(report.rows.len(), cases.len());
    for row in &report.rows {
        assert_eq!(row.cells.len(), profiles.len());
        for cell in &row.cells {
            assert_eq!(
                cell.outcome,
                Outcome::Abnormal,
                "{} x {}: a first-round panic must land as E",
                row.name,
                cell.profile
            );
            let diag = cell.attempt.evidence.crash.as_ref().expect("crash diag");
            assert!(
                diag.message.contains("injected"),
                "diagnostic should name the injected panic, got {:?}",
                diag.message
            );
        }
    }
    assert!(check_containment(&cases, &profiles, &report).is_empty());
}

#[test]
fn an_injected_stall_is_contained_as_a_deadline_crash() {
    let cases = vec![dataset::covert_stack()];
    let profiles = ToolProfile::paper_lineup();
    let plan = FaultPlan::single(FaultSite::EngineRound, 1, FaultAction::Stall);
    let report = run_study_with(
        &cases,
        &profiles,
        &StudyOptions {
            jobs: 1,
            fault_plan: Some(plan),
            ..StudyOptions::default()
        },
    );
    for cell in &report.rows[0].cells {
        assert_eq!(cell.outcome, Outcome::Abnormal);
        let diag = cell.attempt.evidence.crash.as_ref().expect("crash diag");
        assert!(
            diag.message.contains("deadline"),
            "stall should surface as a deadline crash, got {:?}",
            diag.message
        );
    }
}

#[test]
fn an_injected_solver_unknown_degrades_the_cell_to_abnormal() {
    let cases = vec![dataset::covert_stack()];
    let profiles = ToolProfile::paper_lineup();
    let plan = FaultPlan::single(FaultSite::SolverQuery, 1, FaultAction::Unknown);
    let report = run_study_with(
        &cases,
        &profiles,
        &StudyOptions {
            jobs: 1,
            fault_plan: Some(plan),
            ..StudyOptions::default()
        },
    );
    let row = &report.rows[0];
    let absorbed: Vec<_> = row
        .cells
        .iter()
        .filter(|c| c.attempt.evidence.injected_faults > 0)
        .collect();
    assert!(
        !absorbed.is_empty(),
        "at least one profile queries the solver on covert_stack"
    );
    for cell in absorbed {
        assert_eq!(
            cell.outcome,
            Outcome::Abnormal,
            "{}: an injected Unknown must not launder into a success label",
            cell.profile
        );
        assert!(cell.attempt.solved_input.is_none());
    }
    assert!(check_containment(&cases, &profiles, &report).is_empty());
}

#[test]
fn a_cfg_fault_degrades_the_row_not_the_study() {
    let cases = fast_cases();
    let profiles = ToolProfile::paper_lineup();
    let plan = FaultPlan::single(FaultSite::CfgBuild, 1, FaultAction::Panic);
    let report = run_study_with(
        &cases,
        &profiles,
        &StudyOptions {
            jobs: 2,
            fault_plan: Some(plan),
            ..StudyOptions::default()
        },
    );
    assert_eq!(report.rows.len(), cases.len());
    for row in &report.rows {
        let diag = row
            .analysis_crash
            .as_ref()
            .expect("static analysis crashed on every row");
        assert!(diag.message.contains("injected"));
        // The prediction column degrades to `E`, the cell matrix survives.
        assert_eq!(
            row.static_predictions,
            vec![Outcome::Abnormal; profiles.len()]
        );
        assert_eq!(row.cells.len(), profiles.len());
    }
    assert!(check_containment(&cases, &profiles, &report).is_empty());
    let md = report.to_markdown();
    assert!(md.contains("## Contained crashes"));
}
