//! Elision on/off differential for the Omniscient engine: taint-gated
//! sparse tracing is a pure recording optimisation, so arming it must
//! not change a single flip decision — same outcome, same solved input,
//! same query/round counts — and the solved input must drive the machine
//! to the same final state either way. The three slowest bombs (PRNG +
//! crypto) are excluded to keep the suite's wall clock sane; the ignored
//! data-flow A/B covers them.

use bomblab::bombs::all_cases;
use bomblab::prelude::*;

const SLOW: [&str; 3] = ["ext_srand", "crypto_sha1", "crypto_aes"];

#[test]
fn omniscient_flip_decisions_identical_with_and_without_elision() {
    let sparse = ToolProfile::omniscient();
    assert!(sparse.sparse_trace, "omniscient arms sparse tracing");
    let dense = ToolProfile {
        sparse_trace: false,
        ..ToolProfile::omniscient()
    };

    let mut bombs_with_elision = 0usize;
    let mut total = 0usize;
    for case in all_cases() {
        if SLOW.contains(&case.subject.name.as_str()) {
            continue;
        }
        total += 1;
        let ground = bomblab::concolic::ground_truth(&case.subject, &case.trigger);
        let on = Engine::new(sparse.clone()).explore(&case.subject, &ground);
        let off = Engine::new(dense.clone()).explore(&case.subject, &ground);

        let name = &case.subject.name;
        assert_eq!(on.outcome, off.outcome, "{name}: outcome diverged");
        assert_eq!(
            on.solved_input, off.solved_input,
            "{name}: solved input diverged"
        );
        assert_eq!(
            (
                on.evidence.queries,
                on.evidence.sat_queries,
                on.evidence.rounds
            ),
            (
                off.evidence.queries,
                off.evidence.sat_queries,
                off.evidence.rounds
            ),
            "{name}: flip decisions diverged"
        );

        // Only the sparse leg elides; full capture must never.
        assert_eq!(
            off.evidence.trace_steps_elided, 0,
            "{name}: dense leg elided"
        );
        assert!(
            off.evidence.trace_steps_full > 0,
            "{name}: dense leg traced nothing"
        );
        if on.evidence.trace_steps_elided > 0 {
            bombs_with_elision += 1;
        }

        // Final machine state: the detonating input (when found) lands the
        // machine on the same exit path with the same output, elision on
        // or off at the VM level.
        if let Some(input) = &on.solved_input {
            let run = |sparse_taint: Option<Vec<(u64, u64)>>| {
                let mut config = input.to_config(true, 4_000_000);
                config.sparse_taint = sparse_taint;
                let mut m = Machine::load(&case.subject.image, case.subject.lib.as_ref(), config)
                    .expect("subject loads");
                let result = m.run();
                let stdout = m.stdout().to_vec();
                (result.status, result.steps, stdout)
            };
            let arm = vec![(case.subject.argv1_addr(), input.argv1.len() as u64)];
            assert_eq!(
                run(None),
                run(Some(arm)),
                "{name}: final machine state diverged"
            );
        }
    }

    // The acceptance bar for the sparse path: elision actually fires on
    // most of the dataset, not just on toy programs.
    assert!(
        bombs_with_elision >= 15,
        "elision fired on only {bombs_with_elision}/{total} bombs"
    );
}
