//! Static-analysis layer over the bomb dataset: prediction agreement
//! against the paper's Table II, lint coverage, golden CFG snapshots,
//! and `jr` soundness against the dynamic trace.

use bomblab_bombs::{all_cases, negative_pow};
use bomblab_sa::analyze;

/// Committed regression baseline for static/paper agreement, in percent.
/// The calibrated analyzer currently scores 100%; a drop below this is a
/// real regression, not measurement noise. (The acceptance floor for the
/// feature itself is 70%.)
const AGREEMENT_BASELINE_PCT: usize = 95;

/// The static predictor must agree with the paper's expected outcome on
/// at least [`AGREEMENT_BASELINE_PCT`] of the (bomb × profile) cells.
/// The full matrix is printed so disagreements are diagnosable from the
/// test log.
#[test]
fn static_predictions_agree_with_paper_matrix() {
    let cases = all_cases();
    let mut total = 0usize;
    let mut agree = 0usize;
    let mut report = String::new();
    for case in &cases {
        let a = analyze(&case.subject.image, case.subject.lib.as_ref());
        let expected = case
            .paper_expected
            .expect("dataset rows carry expectations");
        let mut row = format!("{:18}", case.subject.name);
        for (i, (name, stage)) in a.predictions.iter().enumerate() {
            let want = expected[i].glyph();
            let got = stage.glyph();
            total += 1;
            if got == want {
                agree += 1;
                row.push_str(&format!("  {name}:{got}"));
            } else {
                row.push_str(&format!("  {name}:{got}!={want}"));
            }
        }
        report.push_str(&row);
        report.push('\n');
    }
    println!("{report}");
    println!("agreement: {agree}/{total}");
    assert!(
        agree * 100 >= total * AGREEMENT_BASELINE_PCT,
        "static/paper agreement {agree}/{total} regressed below the \
         committed {AGREEMENT_BASELINE_PCT}% baseline\n{report}"
    );
}

/// Every bomb family must trip at least one challenge lint on at least
/// 20 of the 22 bombs.
#[test]
fn lints_fire_on_nearly_all_bombs() {
    let cases = all_cases();
    let mut with_lints = 0usize;
    let mut silent = Vec::new();
    for case in &cases {
        let a = analyze(&case.subject.image, case.subject.lib.as_ref());
        if a.lints.is_empty() {
            silent.push(case.subject.name.clone());
        } else {
            with_lints += 1;
        }
    }
    assert!(
        with_lints >= 20,
        "only {with_lints}/22 bombs produced lints; silent: {silent:?}"
    );
}

/// CFG recovery is deterministic: the per-bomb summaries (block, edge,
/// and function counts; resolved `jr` targets; infeasible edges; lint
/// count) must match the committed golden file byte for byte. Set
/// `UPDATE_GOLDEN=1` to regenerate after an intentional change.
#[test]
fn cfg_summaries_match_the_committed_golden_file() {
    let mut got = String::new();
    for case in all_cases().into_iter().chain([negative_pow()]) {
        let a = analyze(&case.subject.image, case.subject.lib.as_ref());
        got.push_str(&format!("{:18} {}\n", case.subject.name, a.summary()));
    }
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/cfg_summaries.txt"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &got).expect("golden file is writable");
        return;
    }
    let want = std::fs::read_to_string(path).expect("golden file is committed");
    assert_eq!(
        got, want,
        "CFG summaries drifted from tests/golden/cfg_summaries.txt; \
         rerun with UPDATE_GOLDEN=1 if the change is intentional"
    );
}

/// Statically resolved `jr` target sets must be sound: every indirect
/// jump the trigger input actually takes lands inside the static set.
/// The two symbolic-jump bombs must both exercise a resolved site.
#[test]
fn resolved_jr_targets_cover_the_dynamic_trace() {
    use bomblab::isa::Insn;
    use bomblab::vm::Machine;

    let mut exercised = 0usize;
    for case in all_cases() {
        let a = analyze(&case.subject.image, case.subject.lib.as_ref());
        let static_targets = a.jr_targets();
        if static_targets.is_empty() {
            continue;
        }
        for (pc, targets) in &static_targets {
            assert!(
                !targets.is_empty(),
                "{}: resolved jr site {pc:#x} has an empty target set",
                case.subject.name
            );
        }
        let config = case.trigger.to_config(true, 2_000_000);
        let mut machine = Machine::load(&case.subject.image, case.subject.lib.as_ref(), config)
            .expect("trigger input loads");
        machine.run();
        let trace = machine.take_trace();
        let steps: Vec<_> = trace.iter().collect();
        for w in steps.windows(2) {
            let (cur, next) = (&w[0], &w[1]);
            if cur.pid != next.pid || cur.tid != next.tid {
                continue;
            }
            if !matches!(cur.insn, Insn::Jr { .. }) {
                continue;
            }
            if let Some(targets) = static_targets.get(&cur.pc) {
                assert!(
                    targets.contains(&next.pc),
                    "{}: dynamic jr {:#x} -> {:#x} escapes the static set {targets:?}",
                    case.subject.name,
                    cur.pc,
                    next.pc
                );
                exercised += 1;
            }
        }
    }
    assert!(
        exercised >= 2,
        "expected both symbolic-jump bombs to exercise resolved jr sites, saw {exercised}"
    );
}

#[test]
#[ignore]
fn debug_dump_facts() {
    for case in all_cases() {
        let name = &case.subject.name;
        if ![
            "jump_table",
            "crypto_sha1",
            "decl_argv_len",
            "ctx_filename",
            "array_l1",
            "covert_syscall",
            "parallel_fork",
        ]
        .contains(&name.as_str())
        {
            continue;
        }
        let a = analyze(&case.subject.image, case.subject.lib.as_ref());
        println!(
            "=== {name} rounds={} sound={} ===",
            a.rounds, a.resolve_sound
        );
        println!("facts: {:?}", a.facts);
        println!("jr: {:?}", a.vsa.jr);
        println!("tainted_lib_calls: {:?}", a.vsa.tainted_lib_calls);
        println!("summary: {}", a.summary());
    }
}
