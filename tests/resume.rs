//! Durability integration tests: kill-and-resume equivalence for the
//! checkpoint journal, retry convergence for transient faults, and
//! corruption tolerance for the persistent solver cache.
//!
//! The invariant under test everywhere: durability features never change
//! the report. A resumed study, a retried study that converged, and a
//! study reading a half-corrupted cache must all render the exact bytes
//! the plain study renders.

use bomblab::bombs::dataset;
use bomblab::concolic::{
    chaos_sweep, run_study_with, ChaosConfig, Outcome, StudyCase, StudyOptions,
};
use bomblab::fault::{FaultAction, FaultPlan, FaultSite};
use bomblab::prelude::*;
use std::path::PathBuf;

/// A fast slice of the dataset (same pick as the chaos tests): cells
/// finish in well under a second each, so the kill-point sweep stays fast.
fn fast_cases() -> Vec<StudyCase> {
    vec![dataset::decl_time(), dataset::covert_stack()]
}

/// A fresh scratch directory under the system temp dir; removed by the
/// caller via `Scratch`'s `Drop`.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!(
            "bomblab-resume-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn resume_is_byte_identical_at_every_kill_point() {
    let cases = fast_cases();
    let profiles = ToolProfile::paper_lineup();
    let options = |checkpoint: Option<PathBuf>, resume| StudyOptions {
        jobs: 1,
        checkpoint,
        resume,
        ..StudyOptions::default()
    };

    let baseline = run_study_with(&cases, &profiles, &options(None, false)).to_markdown();

    // One complete checkpointed run to harvest a full journal.
    let full = Scratch::new("full");
    let report = run_study_with(&cases, &profiles, &options(Some(full.0.clone()), false));
    assert_eq!(
        report.to_markdown(),
        baseline,
        "checkpointing on must not change the report"
    );
    let journal = std::fs::read_to_string(full.0.join("journal.jsonl")).expect("journal written");
    let lines: Vec<&str> = journal.lines().collect();
    assert_eq!(
        lines.len(),
        1 + cases.len() * profiles.len(),
        "header plus one record per cell"
    );

    // Every kill point: each line boundary (a crash between appends) and
    // each line midpoint (a crash mid-write, leaving a torn record).
    let mut cuts = vec![0usize];
    let mut offset = 0;
    for line in &lines {
        cuts.push(offset + line.len() / 2);
        offset += line.len() + 1;
        cuts.push(offset);
    }
    for cut in cuts {
        let scratch = Scratch::new("cut");
        std::fs::write(scratch.0.join("journal.jsonl"), &journal.as_bytes()[..cut])
            .expect("write truncated journal");
        let resumed = run_study_with(&cases, &profiles, &options(Some(scratch.0.clone()), true));
        assert_eq!(
            resumed.to_markdown(),
            baseline,
            "resume from a journal cut at byte {cut} must render the baseline bytes"
        );
        // Exactly the complete record lines before the cut replay; a torn
        // tail re-executes. `cut` always lands on or inside a line, so
        // complete-lines-before-cut is the newline count in the prefix.
        let complete_lines = journal[..cut].bytes().filter(|&b| b == b'\n').count();
        assert_eq!(
            resumed.stats.cells_replayed,
            complete_lines.saturating_sub(1) as u64,
            "journal cut at byte {cut}: every complete record replays, the torn tail does not"
        );
        // A resumed run self-heals the journal: it must now be complete.
        let healed =
            std::fs::read_to_string(scratch.0.join("journal.jsonl")).expect("healed journal");
        assert_eq!(
            healed.lines().count(),
            1 + cases.len() * profiles.len(),
            "journal cut at byte {cut} did not heal to a full record set"
        );
    }

    // A second resume over the completed journal replays everything.
    let resumed = run_study_with(&cases, &profiles, &options(Some(full.0.clone()), false));
    // (resume=false truncates; run once more with resume to check replay.)
    assert_eq!(resumed.to_markdown(), baseline);
    let replayed = run_study_with(&cases, &profiles, &options(Some(full.0.clone()), true));
    assert_eq!(replayed.to_markdown(), baseline);
    assert_eq!(
        replayed.stats.cells_replayed,
        (cases.len() * profiles.len()) as u64,
        "a complete journal replays every cell"
    );
}

#[test]
fn a_foreign_journal_is_ignored_not_replayed() {
    let cases = fast_cases();
    let profiles = ToolProfile::paper_lineup();
    let scratch = Scratch::new("foreign");
    // Harvest a journal under one configuration...
    let with_plan = StudyOptions {
        jobs: 1,
        fault_plan: Some(FaultPlan::single(
            FaultSite::EngineRound,
            1,
            FaultAction::Panic,
        )),
        checkpoint: Some(scratch.0.clone()),
        ..StudyOptions::default()
    };
    run_study_with(&cases, &profiles, &with_plan);
    // ...then resume under a different one: the fingerprint differs, so
    // the stale records (all Abnormal) must not leak into this report.
    let clean = StudyOptions {
        jobs: 1,
        checkpoint: Some(scratch.0.clone()),
        resume: true,
        ..StudyOptions::default()
    };
    let report = run_study_with(&cases, &profiles, &clean);
    assert_eq!(report.stats.cells_replayed, 0, "foreign journal replayed");
    let baseline = run_study_with(&cases, &profiles, &StudyOptions::default()).to_markdown();
    assert_eq!(report.to_markdown(), baseline);
}

#[test]
fn retried_transient_faults_converge_to_the_clean_report() {
    let cases = fast_cases();
    let profiles = ToolProfile::paper_lineup();
    let baseline = run_study_with(
        &cases,
        &profiles,
        &StudyOptions {
            jobs: 1,
            ..StudyOptions::default()
        },
    );
    // Every cell absorbs an injected first-round panic; with a retry
    // budget the second (unfaulted) attempt must converge to the clean
    // verdict, and the rendered table must equal the fault-free run.
    let plan = FaultPlan::single(FaultSite::EngineRound, 1, FaultAction::Panic);
    let retried = run_study_with(
        &cases,
        &profiles,
        &StudyOptions {
            jobs: 1,
            fault_plan: Some(plan),
            retries: 2,
            ..StudyOptions::default()
        },
    );
    assert_eq!(
        retried.to_markdown(),
        baseline.to_markdown(),
        "a retried transient fault must not change the rendered table"
    );
    for row in &retried.rows {
        for cell in &row.cells {
            let ev = &cell.attempt.evidence;
            assert_eq!(ev.retries, 1, "{} x {}: one retry", row.name, cell.profile);
            assert!(!ev.quarantined);
            assert!(ev.retry_backoff_ns > 0, "backoff was slept and recorded");
            assert_eq!(ev.injected_faults, 0, "final attempt ran unfaulted");
            assert!(ev.crash.is_none());
            assert_eq!(
                ev.retry_log,
                vec!["injected panic in the engine round loop".to_string()],
                "{} x {}: retry log names the transient cause",
                row.name,
                cell.profile
            );
        }
    }
    // Without a retry budget the same plan still labels every cell E —
    // retries stay strictly opt-in.
    let unretried = run_study_with(
        &cases,
        &profiles,
        &StudyOptions {
            jobs: 1,
            fault_plan: Some(FaultPlan::single(
                FaultSite::EngineRound,
                1,
                FaultAction::Panic,
            )),
            ..StudyOptions::default()
        },
    );
    for row in &unretried.rows {
        for cell in &row.cells {
            assert_eq!(cell.outcome, Outcome::Abnormal);
        }
    }
}

#[test]
fn a_corrupt_cache_segment_is_rejected_and_rebuilt_not_fatal() {
    let cases = vec![dataset::covert_stack()];
    let profiles = ToolProfile::paper_lineup();
    let baseline = run_study_with(
        &cases,
        &profiles,
        &StudyOptions {
            jobs: 1,
            ..StudyOptions::default()
        },
    )
    .to_markdown();
    let scratch = Scratch::new("cache");
    let cached = |dir: PathBuf| StudyOptions {
        jobs: 1,
        solver_cache_dir: Some(dir),
        ..StudyOptions::default()
    };
    // Warm the cache; the report must not notice.
    let warm = run_study_with(&cases, &profiles, &cached(scratch.0.clone()));
    assert_eq!(
        warm.to_markdown(),
        baseline,
        "cache on must not change rows"
    );
    // Flip one byte in the middle of every non-empty segment.
    let mut flipped = 0;
    for entry in std::fs::read_dir(&scratch.0).expect("cache dir") {
        let path = entry.expect("dir entry").path();
        let mut bytes = std::fs::read(&path).expect("segment bytes");
        if bytes.len() > 40 {
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x01;
            std::fs::write(&path, bytes).expect("rewrite segment");
            flipped += 1;
        }
    }
    assert!(flipped > 0, "the warm run must have persisted segments");
    // Re-run over the corrupted cache: same bytes out, rejections counted,
    // and the segments rebuilt for the run after that.
    let rerun = run_study_with(&cases, &profiles, &cached(scratch.0.clone()));
    assert_eq!(
        rerun.to_markdown(),
        baseline,
        "corrupted cache segments must not change the report"
    );
    let rejected: u64 = rerun
        .rows
        .iter()
        .flat_map(|r| &r.cells)
        .map(|c| c.attempt.evidence.cache_segments_rejected)
        .sum();
    assert!(rejected > 0, "corruption went unnoticed");
    let after = run_study_with(&cases, &profiles, &cached(scratch.0.clone()));
    assert_eq!(after.to_markdown(), baseline);
}

#[test]
fn chaos_with_io_faults_and_retries_stays_contained() {
    let cases = fast_cases();
    let profiles = ToolProfile::paper_lineup();
    let ckpt = Scratch::new("chaos-ckpt");
    let cache = Scratch::new("chaos-cache");
    let sweeps = chaos_sweep(
        &cases,
        &profiles,
        &ChaosConfig {
            seed: 11,
            sweeps: 2,
            faults: 2,
            io_faults: 3,
            retries: 1,
            jobs: 2,
            checkpoint: Some(ckpt.0.clone()),
            solver_cache_dir: Some(cache.0.clone()),
            ..ChaosConfig::default()
        },
    );
    for sweep in &sweeps {
        assert!(
            sweep.violations.is_empty(),
            "plan [{}] violated containment under io faults: {:?}",
            sweep.plan,
            sweep.violations
        );
    }
}
