//! Interprocedural data-flow layer over the bomb dataset: differential
//! static-vs-dynamic taint soundness, independence coverage, golden
//! `--dataflow` summaries, and property tests for the dominator and
//! reaching-definitions algorithms.

use bomblab_bombs::all_cases;
use bomblab_sa::analyze;
use std::collections::BTreeSet;

/// Dynamic taint verdicts for one case: the pcs of branches the
/// omniscient [`bomblab_taint::TaintEngine`] marks tainted on the
/// trigger trace.
fn dynamic_tainted_branch_pcs(case: &bomblab_concolic::StudyCase) -> BTreeSet<u64> {
    use bomblab_taint::{TaintEngine, TaintPolicy};
    use bomblab_vm::{Machine, ROOT_PID};

    let config = case.trigger.to_config(true, 4_000_000);
    let mut machine = Machine::load(&case.subject.image, case.subject.lib.as_ref(), config)
        .expect("trigger input loads");
    machine.run();
    let trace = machine.take_trace();
    let mut engine = TaintEngine::new(TaintPolicy::omniscient());
    engine.taint_memory(
        ROOT_PID,
        &[(case.subject.argv1_addr(), case.trigger.argv1.len() as u64)],
    );
    let report = engine.run(&trace);
    report
        .tainted_branches
        .iter()
        .map(|&i| trace.pc_at(i))
        .collect()
}

/// Soundness of static taint reachability: every branch the dynamic
/// taint engine marks tainted on the trigger trace must be in the
/// static tainted set — equivalently, no statically "input-independent"
/// branch is ever dynamically tainted. This is the safety argument for
/// the engine skipping independent branches as flip targets.
#[test]
fn static_taint_covers_dynamic_taint_on_every_bomb() {
    let mut failures = String::new();
    for case in all_cases() {
        let a = analyze(&case.subject.image, case.subject.lib.as_ref());
        assert!(
            a.resolve_sound,
            "{}: resolve pass must be sound for the dataset",
            case.subject.name
        );
        let static_tainted: BTreeSet<u64> =
            a.dataflow.taint.tainted_branches.keys().copied().collect();
        let dynamic = dynamic_tainted_branch_pcs(&case);
        let missed: Vec<String> = dynamic
            .difference(&static_tainted)
            .map(|pc| format!("{pc:#x}"))
            .collect();
        if !missed.is_empty() {
            failures.push_str(&format!(
                "{}: dynamically tainted branches missing from the static set: {}\n",
                case.subject.name,
                missed.join(", ")
            ));
        }
    }
    assert!(failures.is_empty(), "static taint unsound:\n{failures}");
}

/// The independence proofs must have teeth: a meaningful number of
/// bombs get a non-empty proven-independent branch set (the acceptance
/// bar is five; the dataset currently clears it on every image).
#[test]
fn independence_proofs_fire_on_enough_bombs() {
    let mut with_proofs = 0usize;
    for case in all_cases() {
        let a = analyze(&case.subject.image, case.subject.lib.as_ref());
        if a.resolve_sound && !a.dataflow.taint.independent.is_empty() {
            with_proofs += 1;
        }
    }
    assert!(
        with_proofs >= 5,
        "only {with_proofs} bombs have a non-empty independent set"
    );
}

/// Every per-bomb data-flow summary line must match the committed golden
/// file byte for byte. Set `UPDATE_GOLDEN=1` to regenerate after an
/// intentional change.
#[test]
fn dataflow_summaries_match_the_committed_golden_file() {
    let mut got = String::new();
    for case in all_cases() {
        let a = analyze(&case.subject.image, case.subject.lib.as_ref());
        got.push_str(&format!(
            "{:18} {}\n",
            case.subject.name,
            a.dataflow_summary()
        ));
    }
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/dataflow_summaries.txt"
    );
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &got).expect("golden file is writable");
        return;
    }
    let want = std::fs::read_to_string(path).expect("golden file is committed");
    assert_eq!(
        got, want,
        "data-flow summaries drifted from tests/golden/dataflow_summaries.txt; \
         rerun with UPDATE_GOLDEN=1 if the change is intentional"
    );
}

/// A/B measurement of the data-flow hints on the omniscient profile,
/// for BENCH_micro.md. Run with:
/// `cargo test --release --test dataflow -- --ignored --nocapture`
#[test]
#[ignore = "bench printer; run manually with --ignored --nocapture"]
fn bench_dataflow_hints_ab() {
    use bomblab_concolic::{Engine, StaticHints, ToolProfile};

    println!(
        "{:18} {:>8} {:>8} {:>10} | {:>8} {:>8} {:>10} | {:>6} {:>6}",
        "bomb", "q_off", "q_on", "ms_off", "r_off", "r_on", "ms_on", "indep", "skips"
    );
    for case in all_cases() {
        let a = analyze(&case.subject.image, case.subject.lib.as_ref());
        let ground = bomblab_concolic::ground_truth(&case.subject, &case.trigger);
        let profile = ToolProfile::omniscient();
        let base = StaticHints::from_analysis(&a);
        let run = |hints: StaticHints| {
            Engine::new(profile.clone())
                .with_static_hints(hints)
                .explore(&case.subject, &ground)
        };
        let off = run(base.clone());
        let on = run(base.with_dataflow(&a));
        assert_eq!(
            off.outcome.to_string(),
            on.outcome.to_string(),
            "{}: hints changed the outcome",
            case.subject.name
        );
        println!(
            "{:18} {:>8} {:>8} {:>10.1} | {:>8} {:>8} {:>10.1} | {:>6} {:>6}",
            case.subject.name,
            off.evidence.queries,
            on.evidence.queries,
            off.evidence.solver_ns as f64 / 1e6,
            off.evidence.rounds,
            on.evidence.rounds,
            on.evidence.solver_ns as f64 / 1e6,
            on.evidence.branches_proven_independent,
            on.evidence.independent_skips,
        );
    }
}

mod props {
    use bomblab_isa::{Insn, Opcode, Reg};
    use bomblab_sa::cfg::{Block, Function};
    use bomblab_sa::{dataflow, dom};
    use proptest::prelude::*;
    use std::collections::{BTreeMap, BTreeSet};

    /// Materializes `n` of the pre-generated adjacency rows as a graph
    /// over nodes `0..n`, reducing raw edge targets modulo `n`.
    fn clamp_graph(n: u64, raw: &[Vec<u64>]) -> Vec<Vec<u64>> {
        raw.iter()
            .take(n as usize)
            .map(|row| row.iter().map(|t| t % n).collect())
            .collect()
    }

    proptest! {
        /// The CHK dominator tree must agree with the naive all-paths
        /// reference on arbitrary (including irreducible) graphs:
        /// `a dom b` in the tree iff `a` is in `b`'s naive dominator set.
        #[test]
        fn chk_dominators_match_naive_reference(
            n in 2u64..10,
            raw in proptest::collection::vec(
                proptest::collection::vec(any::<u64>(), 0..3), 10),
        ) {
            let adj = clamp_graph(n, &raw);
            let succs = |b: u64| adj[b as usize].clone();
            let tree = dom::dominators(0, &succs);
            let naive = dom::naive_dominators(0, &succs);
            for (&b, doms) in &naive {
                for a in 0..adj.len() as u64 {
                    prop_assert_eq!(
                        tree.dominates(a, b),
                        doms.contains(&a),
                        "node {} dominating {} disagrees", a, b
                    );
                }
            }
            // Every reachable node appears in the tree order.
            prop_assert_eq!(tree.order.len(), naive.len());
        }

        /// The reaching-definitions worklist must converge to a true
        /// fixpoint: one more transfer round changes nothing.
        #[test]
        fn reaching_defs_fixpoint_is_idempotent(
            n in 2u64..10,
            raw in proptest::collection::vec(
                proptest::collection::vec(any::<u64>(), 0..3), 10),
            seed in any::<u64>(),
        ) {
            let adj = clamp_graph(n, &raw);
            let (f, blocks) = synth_function(&adj, seed);
            let flow = dataflow::analyze_function(&f, &blocks);
            prop_assert!(flow.fixpoint_stable(&f, &blocks));
        }
    }

    /// Materializes a random digraph as a synthetic [`Function`]: each
    /// node becomes a block of a few deterministic-from-`seed` register
    /// instructions at addresses `node * 0x100`.
    fn synth_function(adj: &[Vec<u64>], seed: u64) -> (Function, BTreeMap<u64, Block>) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let reg = |v: u64| Reg::new((v % 8) as u8 + 1).expect("in range");
        let mut blocks = BTreeMap::new();
        for (i, succs) in adj.iter().enumerate() {
            let start = i as u64 * 0x100;
            let mut insns = Vec::new();
            for k in 0..=(next() % 3) {
                let pc = start + k * 4;
                let insn = match next() % 4 {
                    0 => Insn::Li {
                        rd: reg(next()),
                        imm: next(),
                    },
                    1 => Insn::Mov {
                        rd: reg(next()),
                        rs: reg(next()),
                    },
                    2 => Insn::Alu3 {
                        op: Opcode::Add,
                        rd: reg(next()),
                        rs: reg(next()),
                        rt: reg(next()),
                    },
                    _ => Insn::AluI {
                        op: Opcode::XorI,
                        rd: reg(next()),
                        rs: reg(next()),
                        imm: (next() % 128) as i32,
                    },
                };
                insns.push((pc, insn));
            }
            let end = start + insns.len() as u64 * 4;
            blocks.insert(
                start,
                Block {
                    start,
                    end,
                    insns,
                    succs: succs.iter().map(|&s| s * 0x100).collect(),
                },
            );
        }
        let f = Function {
            entry: 0,
            name: "synth".to_string(),
            blocks: blocks.keys().copied().collect(),
            idom: BTreeMap::new(),
            post_idom: BTreeMap::new(),
            loop_headers: BTreeSet::new(),
            loop_depth: BTreeMap::new(),
        };
        (f, blocks)
    }
}
