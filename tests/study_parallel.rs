//! Parallel study runner: scheduling must never change the science.
//!
//! The report produced by `run_study_jobs` has to be byte-for-byte
//! identical for every worker count, and the solver's cross-round query
//! cache has to actually fire on multi-round explorations.

use bomblab::bombs::dataset;
use bomblab::concolic::ground_truth;
use bomblab::prelude::*;

/// A representative slice: multi-round bombs (`parallel_thread`,
/// `jump_direct`), single-round failures, and a solved case.
fn slice() -> Vec<StudyCase> {
    vec![
        dataset::decl_time(),
        dataset::covert_stack(),
        dataset::array_l1(),
        dataset::ctx_syscallnum(),
        dataset::jump_direct(),
        dataset::parallel_thread(),
    ]
}

#[test]
fn parallel_report_matches_sequential_byte_for_byte() {
    let profiles = ToolProfile::paper_lineup();
    let sequential = run_study_jobs(&slice(), &profiles, 1).to_markdown();
    for jobs in [2, 4, 7] {
        let parallel = run_study_jobs(&slice(), &profiles, jobs).to_markdown();
        assert_eq!(
            sequential, parallel,
            "report changed under --jobs {jobs}: scheduling leaked into results"
        );
    }
}

#[test]
fn oversubscribed_pool_handles_fewer_items_than_workers() {
    let cases = vec![dataset::covert_stack()];
    let profiles = ToolProfile::paper_lineup();
    let sequential = run_study_jobs(&cases, &profiles, 1).to_markdown();
    let parallel = run_study_jobs(&cases, &profiles, 32).to_markdown();
    assert_eq!(sequential, parallel);
}

#[test]
fn multi_round_bombs_hit_the_query_cache() {
    // covert_syscall explores many rounds whose path prefixes overlap
    // heavily: the persistent solver must reuse blasted CNF and answer
    // repeat queries from its cache instead of re-solving. Only the
    // omniscient profile gets the incremental solver — the paper-tool
    // profiles run stateless so the framework's caching cannot make the
    // emulated 2017 tools stronger than their budget calibration.
    let case = dataset::covert_syscall();
    let ground = ground_truth(&case.subject, &case.trigger);
    let attempt = Engine::new(ToolProfile::omniscient()).explore(&case.subject, &ground);
    let ev = &attempt.evidence;
    assert!(
        ev.rounds > 1,
        "expected a multi-round exploration, got {}",
        ev.rounds
    );
    assert!(
        ev.cache_hits > 0,
        "cross-round query cache never hit: {ev:#?}"
    );
    assert!(
        ev.roots_reused > 0,
        "incremental blasting session never reused a constraint: {ev:#?}"
    );
    assert_eq!(
        ev.cache_hits,
        ev.cache_exact_hits + ev.cache_model_hits + ev.cache_unsat_hits,
        "hit breakdown must sum to the total"
    );
}

#[test]
fn paper_profiles_run_a_stateless_solver() {
    for profile in ToolProfile::paper_lineup() {
        assert!(
            !profile.incremental_solver,
            "{}: paper-tool profiles must not reuse solver state across \
             queries — the Table-II budget is calibrated per fresh query",
            profile.name
        );
        let case = dataset::covert_syscall();
        let ground = ground_truth(&case.subject, &case.trigger);
        let attempt = Engine::new(profile).explore(&case.subject, &ground);
        let ev = &attempt.evidence;
        assert_eq!(ev.cache_hits, 0, "stateless profile hit a cache: {ev:#?}");
        assert_eq!(ev.roots_reused, 0, "stateless profile reused CNF: {ev:#?}");
    }
    assert!(ToolProfile::omniscient().incremental_solver);
}
