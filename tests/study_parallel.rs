//! Parallel study runner: scheduling must never change the science.
//!
//! The report produced by `run_study_jobs` has to be byte-for-byte
//! identical for every worker count, and the solver's cross-round query
//! cache has to actually fire on multi-round explorations.

use bomblab::bombs::dataset;
use bomblab::concolic::checkpoint::{fingerprint, CellRecord, Journal};
use bomblab::concolic::{ground_truth, run_study_with, StudyOptions};
use bomblab::prelude::*;
use proptest::prelude::*;

/// A representative slice: multi-round bombs (`parallel_thread`,
/// `jump_direct`), single-round failures, and a solved case.
fn slice() -> Vec<StudyCase> {
    vec![
        dataset::decl_time(),
        dataset::covert_stack(),
        dataset::array_l1(),
        dataset::ctx_syscallnum(),
        dataset::jump_direct(),
        dataset::parallel_thread(),
    ]
}

#[test]
fn parallel_report_matches_sequential_byte_for_byte() {
    let profiles = ToolProfile::paper_lineup();
    let sequential = run_study_jobs(&slice(), &profiles, 1).to_markdown();
    for jobs in [2, 4, 7] {
        let parallel = run_study_jobs(&slice(), &profiles, jobs).to_markdown();
        assert_eq!(
            sequential, parallel,
            "report changed under --jobs {jobs}: scheduling leaked into results"
        );
    }
}

#[test]
fn oversubscribed_pool_handles_fewer_items_than_workers() {
    let cases = vec![dataset::covert_stack()];
    let profiles = ToolProfile::paper_lineup();
    let sequential = run_study_jobs(&cases, &profiles, 1).to_markdown();
    let parallel = run_study_jobs(&cases, &profiles, 32).to_markdown();
    assert_eq!(sequential, parallel);
}

#[test]
fn multi_round_bombs_hit_the_query_cache() {
    // covert_syscall explores many rounds whose path prefixes overlap
    // heavily: the persistent solver must reuse blasted CNF and answer
    // repeat queries from its cache instead of re-solving. Only the
    // omniscient profile gets the incremental solver — the paper-tool
    // profiles run stateless so the framework's caching cannot make the
    // emulated 2017 tools stronger than their budget calibration.
    let case = dataset::covert_syscall();
    let ground = ground_truth(&case.subject, &case.trigger);
    let attempt = Engine::new(ToolProfile::omniscient()).explore(&case.subject, &ground);
    let ev = &attempt.evidence;
    assert!(
        ev.rounds > 1,
        "expected a multi-round exploration, got {}",
        ev.rounds
    );
    assert!(
        ev.cache_hits > 0,
        "cross-round query cache never hit: {ev:#?}"
    );
    assert!(
        ev.roots_reused > 0,
        "incremental blasting session never reused a constraint: {ev:#?}"
    );
    assert_eq!(
        ev.cache_hits,
        ev.cache_exact_hits + ev.cache_model_hits + ev.cache_unsat_hits,
        "hit breakdown must sum to the total"
    );
}

/// Baseline report bytes for the fast three-bomb slice, computed once.
fn fast_baseline() -> &'static str {
    static BASELINE: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    BASELINE.get_or_init(|| {
        run_study_jobs(&fast_slice(), &ToolProfile::paper_lineup(), 1).to_markdown()
    })
}

fn fast_slice() -> Vec<StudyCase> {
    vec![
        dataset::decl_time(),
        dataset::covert_stack(),
        dataset::array_l1(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The cost-aware scheduler reads historical `wall_ns` from the
    /// checkpoint journal to pick its claim order. Whatever costs that
    /// journal carries — and therefore whatever permutation
    /// longest-processing-time-first produces — the report bytes must
    /// not move.
    #[test]
    fn report_bytes_are_invariant_under_random_journal_costs(
        costs in proptest::collection::vec(any::<u64>(), 12),
    ) {
        let cases = fast_slice();
        let profiles = ToolProfile::paper_lineup();
        let dir = std::env::temp_dir().join(format!(
            "bomblab-sched-costs-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        // Seed a journal whose wall_ns history is arbitrary. The cost
        // loader is fingerprint-agnostic, so any fingerprint works.
        let fp = fingerprint(["synthetic"]);
        let (mut journal, _) = Journal::open(&dir, fp, false).expect("open journal");
        let mut k = 0;
        for case in &cases {
            for profile in &profiles {
                journal
                    .append(&CellRecord {
                        index: k as u64,
                        bomb: case.subject.name.clone(),
                        profile: profile.name.clone(),
                        outcome: Outcome::Solved,
                        expected: None,
                        wall_ns: costs[k % costs.len()],
                        rounds: 1,
                        queries: 1,
                        injected_faults: 0,
                        fault_log: Vec::new(),
                        crash: None,
                        retries: 0,
                        quarantined: false,
                        retry_backoff_ns: 0,
                    })
                    .expect("append record");
                k += 1;
            }
        }
        drop(journal);

        let report = run_study_with(
            &cases,
            &profiles,
            &StudyOptions {
                jobs: 2,
                checkpoint: Some(dir.clone()),
                ..StudyOptions::default()
            },
        );
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(
            report.to_markdown(),
            fast_baseline(),
            "journal costs {:?} leaked into the report through the scheduler",
            costs
        );
    }
}

#[test]
fn paper_profiles_run_a_stateless_solver() {
    for profile in ToolProfile::paper_lineup() {
        assert!(
            !profile.incremental_solver,
            "{}: paper-tool profiles must not reuse solver state across \
             queries — the Table-II budget is calibrated per fresh query",
            profile.name
        );
        let case = dataset::covert_syscall();
        let ground = ground_truth(&case.subject, &case.trigger);
        let attempt = Engine::new(profile).explore(&case.subject, &ground);
        let ev = &attempt.evidence;
        assert_eq!(ev.cache_hits, 0, "stateless profile hit a cache: {ev:#?}");
        assert_eq!(ev.roots_reused, 0, "stateless profile reused CNF: {ev:#?}");
    }
    assert!(ToolProfile::omniscient().incremental_solver);
}
