//! # bomblab — concolic execution on small-size binaries
//!
//! A full-stack reproduction of *"Concolic Execution on Small-Size
//! Binaries: Challenges and Empirical Study"* (DSN 2017): a small binary
//! platform (ISA, VM, runtime library), a from-scratch concolic execution
//! engine (taint, lifter, symbolic executor, SMT-lite solver), the paper's
//! 22-logic-bomb dataset, and the study harness that regenerates its
//! evaluation.
//!
//! This facade crate re-exports the workspace:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`isa`] | `bomblab-isa` | BVM instruction set, assembler, linker |
//! | [`vm`] | `bomblab-vm` | concrete machine + simulated OS + tracing |
//! | [`rt`] | `bomblab-rt` | libc/libm/crypto runtime in BVM assembly |
//! | [`ir`] | `bomblab-ir` | intermediate language + lifter |
//! | [`taint`] | `bomblab-taint` | forward dynamic taint analysis |
//! | [`solver`] | `bomblab-solver` | bitvector terms, bit-blasting, CDCL SAT |
//! | [`symex`] | `bomblab-symex` | symbolic state + constraint extraction |
//! | [`concolic`] | `bomblab-concolic` | the engine, tool profiles, study |
//! | [`sa`] | `bomblab-sa` | static analysis: CFG recovery, VSA, lints |
//! | [`fault`] | `bomblab-fault` | deterministic fault injection + crash containment |
//! | [`obs`] | `bomblab-obs` | structured tracing, metrics registry, per-cell profiles |
//! | [`interval`] | `bomblab-interval` | strided-interval arithmetic |
//! | [`bombs`] | `bomblab-bombs` | the 22-bomb dataset |
//!
//! ## Quickstart
//!
//! ```
//! use bomblab::prelude::*;
//!
//! // A tiny crackme: detonates when atoi(argv[1]) == 1207.
//! let image = bomblab::rt::link_program(r#"
//!     .extern atoi, bomb_boom
//!     .global _start
//! _start:
//!     ld a0, [a1+8]
//!     call atoi
//!     li t0, 1207
//!     bne a0, t0, no
//!     call bomb_boom
//! no: li a0, 0
//!     li sv, 0
//!     sys
//! "#)?;
//! let subject = Subject {
//!     name: "crackme".into(),
//!     image,
//!     lib: None,
//!     seed: WorldInput::with_arg("9999"),
//! };
//! let attempt = Engine::new(ToolProfile::omniscient())
//!     .explore(&subject, &GroundTruth::default());
//! assert_eq!(attempt.outcome, Outcome::Solved);
//! let input = attempt.solved_input.expect("solved");
//! assert_eq!(String::from_utf8_lossy(&input.argv1), "1207");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use bomblab_bombs as bombs;
pub use bomblab_concolic as concolic;
pub use bomblab_fault as fault;
pub use bomblab_interval as interval;
pub use bomblab_ir as ir;
pub use bomblab_isa as isa;
pub use bomblab_obs as obs;
pub use bomblab_rt as rt;
pub use bomblab_sa as sa;
pub use bomblab_solver as solver;
pub use bomblab_symex as symex;
pub use bomblab_taint as taint;
pub use bomblab_vm as vm;

/// The most common imports for working with the engine.
pub mod prelude {
    pub use bomblab_concolic::{
        chaos_sweep, check_containment, run_study, run_study_jobs, run_study_with, Attempt,
        ChaosConfig, Engine, GroundTruth, Outcome, StudyCase, StudyOptions, Subject, SweepOutcome,
        ToolProfile, WorldInput,
    };
    pub use bomblab_rt::{link_program, link_program_dynamic};
    pub use bomblab_vm::{Machine, MachineConfig, RunStatus};
}
