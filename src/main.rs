//! `bomblab` — command-line front end for the concolic-execution lab.
//!
//! ```text
//! bomblab asm <file.s> [-o out.bvm]     assemble + link (static, with runtime)
//! bomblab dis <file.s|file.bvm>         disassemble the text segment
//! bomblab run <file.s|file.bvm> [arg]   run concretely, print stdout/exit
//! bomblab trace <file.s|file.bvm> [arg] run and print the executed listing
//! bomblab solve <file.s|file.bvm> [seed] concolically search for BOOM
//! bomblab constraints <file> [arg]      dump path conditions as SMT-LIB
//! bomblab analyze <file.s|file.bvm>     static analysis: annotated listing
//! bomblab analyze --bombs [prefix]      analyze the dataset, print summaries
//! bomblab bombs                         list the dataset
//! bomblab study [prefix] [--jobs N]     run the Table-II study
//! bomblab chaos [prefix] [--seed N] [--faults K] [--sweeps M] [--jobs N]
//!                                       fault-injection sweeps + containment check
//! ```

use bomblab::concolic::{
    chaos_sweep, run_study_jobs, ChaosConfig, Engine, GroundTruth, Outcome, Subject, ToolProfile,
    WorldInput,
};
use bomblab::isa::image::Image;
use bomblab::rt::link_program;
use bomblab::vm::{Machine, MachineConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("asm") => cmd_asm(&args[1..]),
        Some("dis") => cmd_dis(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("solve") => cmd_solve(&args[1..]),
        Some("constraints") => cmd_constraints(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("bombs") => cmd_bombs(),
        Some("study") => cmd_study(&args[1..]),
        Some("chaos") => cmd_chaos(&args[1..]),
        _ => {
            eprintln!(
                "usage: bomblab <asm|dis|run|trace|solve|analyze|bombs|study|chaos> [args]\n\
                 see `bomblab` source documentation for details"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CmdResult = Result<ExitCode, Box<dyn std::error::Error>>;

/// Loads an image from a `.s` source file (assembled against the runtime)
/// or a serialized `.bvm` image.
fn load_image(path: &str) -> Result<Image, Box<dyn std::error::Error>> {
    let bytes = std::fs::read(path)?;
    if bytes.starts_with(b"BVM1") {
        Ok(Image::from_bytes(&bytes)?)
    } else {
        let src = String::from_utf8(bytes)?;
        Ok(link_program(&src)?)
    }
}

fn cmd_asm(args: &[String]) -> CmdResult {
    let input = args.first().ok_or("asm: missing input file")?;
    let out = match args.get(1).map(String::as_str) {
        Some("-o") => args.get(2).ok_or("asm: -o needs a path")?.clone(),
        _ => format!("{}.bvm", input.trim_end_matches(".s")),
    };
    let image = load_image(input)?;
    std::fs::write(&out, image.to_bytes())?;
    println!(
        "wrote {out}: {} text + {} data bytes, entry {:#x}",
        image.text.len(),
        image.data.len(),
        image.entry
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_dis(args: &[String]) -> CmdResult {
    let input = args.first().ok_or("dis: missing input file")?;
    let image = load_image(input)?;
    print!("{}", bomblab::isa::disasm::listing(&image));
    Ok(ExitCode::SUCCESS)
}

fn machine_for(args: &[String], trace: bool) -> Result<Machine, Box<dyn std::error::Error>> {
    let input = args.first().ok_or("missing input file")?;
    let image = load_image(input)?;
    let arg = args.get(1).cloned().unwrap_or_default();
    let config = MachineConfig {
        trace,
        ..MachineConfig::with_arg(arg.into_bytes())
    };
    Ok(Machine::load(&image, None, config)?)
}

fn cmd_run(args: &[String]) -> CmdResult {
    let mut machine = machine_for(args, false)?;
    let result = machine.run();
    print!("{}", String::from_utf8_lossy(machine.stdout()));
    eprintln!("[{} after {} steps]", result.status, result.steps);
    Ok(ExitCode::from(
        result.status.exit_code().unwrap_or(125).clamp(0, 255) as u8,
    ))
}

fn cmd_trace(args: &[String]) -> CmdResult {
    let mut machine = machine_for(args, true)?;
    let result = machine.run();
    for step in machine.trace().iter() {
        println!(
            "[{}:{}] {:#010x}  {}",
            step.pid, step.tid, step.pc, step.insn
        );
    }
    eprintln!("[{} after {} steps]", result.status, result.steps);
    Ok(ExitCode::SUCCESS)
}

fn cmd_solve(args: &[String]) -> CmdResult {
    let input = args.first().ok_or("solve: missing input file")?;
    let image = load_image(input)?;
    let seed = args.get(1).cloned().unwrap_or_else(|| "AAAAAAAA".into());
    let subject = Subject {
        name: input.clone(),
        image,
        lib: None,
        seed: WorldInput::with_arg(seed.into_bytes()),
    };
    let attempt = Engine::new(ToolProfile::omniscient()).explore(&subject, &GroundTruth::default());
    println!(
        "outcome: {} ({} rounds, {} queries)",
        attempt.outcome, attempt.evidence.rounds, attempt.evidence.queries
    );
    if let Some(solution) = attempt.solved_input {
        println!("argv[1] = {:?}", String::from_utf8_lossy(&solution.argv1));
        if solution.epoch != subject.seed.epoch {
            println!("epoch   = {}", solution.epoch);
        }
        return Ok(ExitCode::SUCCESS);
    }
    Ok(ExitCode::FAILURE)
}

fn cmd_constraints(args: &[String]) -> CmdResult {
    use bomblab::symex::{MemoryModel, PropagationPolicy, SymExec};
    let input = args.first().ok_or("constraints: missing input file")?;
    let image = load_image(input)?;
    let arg = args.get(1).cloned().unwrap_or_else(|| "AAAAAAAA".into());
    let config = MachineConfig {
        trace: true,
        ..MachineConfig::with_arg(arg.clone().into_bytes())
    };
    let mut machine = Machine::load(&image, None, config)?;
    let snapshot = machine
        .process_memory(bomblab::vm::ROOT_PID)
        .ok_or("no root process")?
        .clone();
    machine.run();
    let trace = machine.take_trace();
    let mut sx = SymExec::new(
        MemoryModel::SymbolicMap {
            max_indirection: 2,
            region: 256,
        },
        PropagationPolicy::full(),
    );
    sx.set_initial_memory(bomblab::vm::ROOT_PID, snapshot);
    sx.symbolize_bytes(
        bomblab::vm::ROOT_PID,
        bomblab::isa::image::layout::ARGV_BASE + 16 + 5,
        arg.len() as u64,
        "arg1",
    );
    let sym = sx.run(&trace);
    eprintln!(
        "; {} symbolic branches, {} pins on the trace of argv[1] = {arg:?}",
        sym.path.len(),
        sym.pins.len()
    );
    print!("{}", bomblab::solver::smtlib::to_smtlib(&sym.path_query()));
    Ok(ExitCode::SUCCESS)
}

fn cmd_analyze(args: &[String]) -> CmdResult {
    let input = args
        .first()
        .ok_or("analyze: expected a file or `--bombs [prefix]`")?;
    if input == "--bombs" {
        let prefix = args.get(1).cloned().unwrap_or_default();
        let mut silent: Vec<String> = Vec::new();
        let mut seen = false;
        for case in bomblab::bombs::all_cases() {
            if !case.subject.name.starts_with(&prefix) {
                continue;
            }
            seen = true;
            let a = bomblab::sa::analyze(&case.subject.image, case.subject.lib.as_ref());
            let preds: Vec<String> = a
                .predictions
                .iter()
                .map(|(name, stage)| format!("{name}={stage}"))
                .collect();
            println!(
                "{:18} {}  {}",
                case.subject.name,
                a.summary(),
                preds.join(" ")
            );
            if a.lints.is_empty() {
                silent.push(case.subject.name.clone());
            }
        }
        if !seen {
            return Err(format!("no bombs match prefix {prefix:?}").into());
        }
        if !silent.is_empty() {
            eprintln!("analyze: no lints fired on: {}", silent.join(", "));
            return Ok(ExitCode::FAILURE);
        }
        return Ok(ExitCode::SUCCESS);
    }
    let image = load_image(input)?;
    let analysis = bomblab::sa::analyze(&image, None);
    print!("{}", analysis.listing());
    eprintln!("; {}", analysis.summary());
    Ok(ExitCode::SUCCESS)
}

fn cmd_bombs() -> CmdResult {
    println!("| bomb | category | description |");
    println!("|---|---|---|");
    for case in bomblab::bombs::all_cases() {
        println!(
            "| {} | {} | {} |",
            case.subject.name, case.category, case.description
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_study(args: &[String]) -> CmdResult {
    let mut prefix = String::new();
    let mut jobs = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--jobs" || arg == "-j" {
            let n = it.next().ok_or("study: --jobs needs a number")?;
            jobs = n.parse().map_err(|_| format!("study: bad --jobs {n:?}"))?;
        } else if let Some(n) = arg.strip_prefix("--jobs=") {
            jobs = n.parse().map_err(|_| format!("study: bad --jobs {n:?}"))?;
        } else {
            prefix = arg.clone();
        }
    }
    let cases: Vec<_> = bomblab::bombs::all_cases()
        .into_iter()
        .filter(|c| c.subject.name.starts_with(&prefix))
        .collect();
    if cases.is_empty() {
        return Err(format!("no bombs match prefix {prefix:?}").into());
    }
    let report = run_study_jobs(&cases, &ToolProfile::paper_lineup(), jobs);
    println!("{}", report.to_markdown());
    Ok(ExitCode::SUCCESS)
}

fn cmd_chaos(args: &[String]) -> CmdResult {
    let mut prefix = String::new();
    let mut config = ChaosConfig::default();
    let mut it = args.iter();
    config.jobs = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let parse = |flag: &str, value: Option<&String>| -> Result<u64, Box<dyn std::error::Error>> {
        let v = value.ok_or_else(|| format!("chaos: {flag} needs a number"))?;
        v.parse()
            .map_err(|_| format!("chaos: bad {flag} value {v:?}").into())
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => config.seed = parse("--seed", it.next())?,
            "--faults" => config.faults = parse("--faults", it.next())? as u32,
            "--sweeps" => config.sweeps = parse("--sweeps", it.next())? as u32,
            "--jobs" | "-j" => config.jobs = parse("--jobs", it.next())? as usize,
            _ => prefix = arg.clone(),
        }
    }
    if config.jobs == 0 {
        config.jobs = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    }
    let cases: Vec<_> = bomblab::bombs::all_cases()
        .into_iter()
        .filter(|c| c.subject.name.starts_with(&prefix))
        .collect();
    if cases.is_empty() {
        return Err(format!("no bombs match prefix {prefix:?}").into());
    }
    let profiles = ToolProfile::paper_lineup();
    let sweeps = chaos_sweep(&cases, &profiles, &config);
    let mut failed = false;
    for sweep in &sweeps {
        let abnormal = sweep
            .report
            .rows
            .iter()
            .flat_map(|row| &row.cells)
            .filter(|cell| cell.outcome == Outcome::Abnormal)
            .count();
        println!("sweep seed={}: plan [{}]", sweep.seed, sweep.plan);
        println!(
            "  {} cells, {} absorbed injected faults, {} labeled E",
            sweep.report.rows.len() * profiles.len(),
            sweep.injected_cells,
            abnormal
        );
        for line in sweep.report.contained_crashes() {
            println!("  contained: {line}");
        }
        if sweep.violations.is_empty() {
            println!("  containment invariant: OK");
        } else {
            failed = true;
            for v in &sweep.violations {
                println!("  VIOLATION: {v}");
            }
        }
    }
    if failed {
        eprintln!("chaos: containment invariant violated");
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}
