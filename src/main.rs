//! `bomblab` — command-line front end for the concolic-execution lab.
//!
//! ```text
//! bomblab asm <file.s> [-o out.bvm]     assemble + link (static, with runtime)
//! bomblab dis <file.s|file.bvm>         disassemble the text segment
//! bomblab run <file.s|file.bvm> [arg]   run concretely, print stdout/exit
//! bomblab trace <file.s|file.bvm> [arg] run and print the executed listing
//! bomblab solve <file.s|file.bvm> [seed] [--trace out.jsonl]
//!                                       concolically search for BOOM
//! bomblab constraints <file> [arg]      dump path conditions as SMT-LIB
//! bomblab analyze <file.s|file.bvm>     static analysis: annotated listing
//! bomblab analyze --bombs [prefix]      analyze the dataset, print summaries
//! bomblab bombs                         list the dataset
//! bomblab study [prefix] [--jobs N|auto] [--trace out.jsonl]
//!               [--checkpoint dir] [--resume] [--retries N] [--cache-dir dir]
//!               [--tools paper|omniscient] [--no-shared-cache]
//!                                       run the Table-II study (durably)
//! bomblab chaos [prefix] [--seed N] [--faults K] [--io-faults K] [--sweeps M]
//!               [--jobs N|auto] [--retries N] [--checkpoint dir] [--cache-dir dir]
//!               [--trace out.jsonl]     fault-injection sweeps + containment check
//! bomblab tracecheck <file.jsonl>       validate a trace against the schema
//! ```
//!
//! Flags are order-independent — `bomblab study --jobs 4 decl` and
//! `bomblab study decl --jobs 4` are the same invocation — and unknown
//! flags are rejected with the accepted set. `--flag value` and
//! `--flag=value` are both accepted.
//!
//! Exit codes: 0 success, 1 runtime failure (I/O, bad image, failed
//! containment/validation), 2 usage error (unknown flag, bad value,
//! missing argument).

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use bomblab::concolic::{
    chaos_sweep, run_study_with, ChaosConfig, Engine, GroundTruth, Outcome, StaticHints,
    StudyOptions, Subject, ToolProfile, WorldInput,
};
use bomblab::isa::image::Image;
use bomblab::rt::link_program;
use bomblab::vm::{Machine, MachineConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("asm") => cmd_asm(&args[1..]),
        Some("dis") => cmd_dis(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("solve") => cmd_solve(&args[1..]),
        Some("constraints") => cmd_constraints(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("bombs") => cmd_bombs(),
        Some("study") => cmd_study(&args[1..]),
        Some("chaos") => cmd_chaos(&args[1..]),
        Some("tracecheck") => cmd_tracecheck(&args[1..]),
        _ => {
            eprintln!(
                "usage: bomblab <asm|dis|run|trace|solve|analyze|bombs|study|chaos|tracecheck> [args]\n\
                 see `bomblab` source documentation for details"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            e.exit_code()
        }
    }
}

/// A typed CLI failure that carries its process exit code, so every
/// error path maps deliberately onto the shell contract instead of
/// collapsing to a generic `1`.
#[derive(Debug)]
enum CliError {
    /// Bad invocation: unknown flag, bad value, missing argument (exit 2).
    Usage(String),
    /// The OS said no: reading inputs, writing traces or images (exit 1).
    Io(std::io::Error),
    /// Malformed data: bad image bytes, assembly errors, VM load
    /// failures (exit 1).
    Other(String),
}

impl CliError {
    fn exit_code(&self) -> ExitCode {
        match self {
            CliError::Usage(_) => ExitCode::from(2),
            CliError::Io(_) | CliError::Other(_) => ExitCode::FAILURE,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Other(m) => f.write_str(m),
            CliError::Io(e) => e.fmt(f),
        }
    }
}

// Bare strings in command bodies are invocation complaints ("missing
// input file", "unknown flag"): usage errors, exit 2. Library failures
// arrive through the dedicated `From`s below and exit 1.
impl From<String> for CliError {
    fn from(m: String) -> CliError {
        CliError::Usage(m)
    }
}

impl From<&str> for CliError {
    fn from(m: &str) -> CliError {
        CliError::Usage(m.to_string())
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> CliError {
        CliError::Io(e)
    }
}

impl From<bomblab::isa::image::ImageError> for CliError {
    fn from(e: bomblab::isa::image::ImageError) -> CliError {
        CliError::Other(e.to_string())
    }
}

impl From<bomblab::rt::BuildError> for CliError {
    fn from(e: bomblab::rt::BuildError) -> CliError {
        CliError::Other(e.to_string())
    }
}

impl From<bomblab::vm::LoadError> for CliError {
    fn from(e: bomblab::vm::LoadError) -> CliError {
        CliError::Other(e.to_string())
    }
}

impl From<std::string::FromUtf8Error> for CliError {
    fn from(e: std::string::FromUtf8Error) -> CliError {
        CliError::Other(format!("input is neither BVM nor UTF-8 assembly: {e}"))
    }
}

type CmdResult = Result<ExitCode, CliError>;

/// One flag a subcommand accepts: canonical `--name`, optional short
/// alias, and whether it consumes a value (`--flag value` or
/// `--flag=value`; flags without values reject `=`).
struct FlagSpec {
    name: &'static str,
    alias: Option<&'static str>,
    takes_value: bool,
}

const JOBS: FlagSpec = FlagSpec {
    name: "--jobs",
    alias: Some("-j"),
    takes_value: true,
};
const TRACE: FlagSpec = FlagSpec {
    name: "--trace",
    alias: None,
    takes_value: true,
};

/// Parses `args` into positionals and flag values, order-independently.
/// Flags may appear anywhere, repeated flags keep the last value, and
/// anything starting with `-` that is not in `specs` is an error naming
/// the accepted set.
fn parse_flags(
    cmd: &str,
    args: &[String],
    specs: &[FlagSpec],
    max_positional: usize,
) -> Result<
    (
        Vec<String>,
        std::collections::BTreeMap<&'static str, String>,
    ),
    String,
> {
    let mut positional = Vec::new();
    let mut flags = std::collections::BTreeMap::new();
    let accepted = || specs.iter().map(|s| s.name).collect::<Vec<_>>().join(", ");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if !arg.starts_with('-') || arg == "-" {
            if positional.len() == max_positional {
                return Err(format!(
                    "{cmd}: unexpected argument {arg:?} (takes at most {max_positional} positional)"
                ));
            }
            positional.push(arg.clone());
            continue;
        }
        let (name, inline) = match arg.split_once('=') {
            Some((n, v)) => (n, Some(v)),
            None => (arg.as_str(), None),
        };
        let Some(spec) = specs
            .iter()
            .find(|s| s.name == name || s.alias == Some(name))
        else {
            return Err(format!(
                "{cmd}: unknown flag `{name}` (accepted: {})",
                accepted()
            ));
        };
        let value = if spec.takes_value {
            match inline {
                Some(v) => v.to_string(),
                None => it
                    .next()
                    .ok_or_else(|| format!("{cmd}: {} needs a value", spec.name))?
                    .clone(),
            }
        } else {
            if inline.is_some() {
                return Err(format!("{cmd}: {} takes no value", spec.name));
            }
            String::new()
        };
        flags.insert(spec.name, value);
    }
    Ok((positional, flags))
}

/// Parses a required-numeric flag value.
fn parse_num<T: std::str::FromStr>(cmd: &str, flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{cmd}: bad {flag} value {value:?}"))
}

fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

/// Parses a `--jobs` value: the literal `auto` resolves to the machine's
/// available parallelism, anything else must be a positive worker count.
fn parse_jobs(cmd: &str, value: &str) -> Result<usize, String> {
    if value == "auto" {
        return Ok(default_jobs());
    }
    match parse_num(cmd, "--jobs", value)? {
        0 => Err(format!("{cmd}: --jobs must be at least 1 (or `auto`)")),
        n => Ok(n),
    }
}

/// Writes JSONL trace lines to `path` and the profile-summary sidecar
/// next to it (`<path minus .jsonl>.profile.md`), reporting both on
/// stderr so stdout stays machine-readable.
fn write_trace(
    path: &str,
    lines: &[String],
    profile_summary: Option<&str>,
) -> Result<(), CliError> {
    let mut doc = lines.join("\n");
    doc.push('\n');
    std::fs::write(path, doc)?;
    eprintln!("trace: wrote {} lines to {path}", lines.len());
    if let Some(summary) = profile_summary {
        let stem = path.strip_suffix(".jsonl").unwrap_or(path);
        let sidecar = format!("{stem}.profile.md");
        std::fs::write(&sidecar, summary)?;
        eprintln!("trace: wrote profile summary to {sidecar}");
    }
    Ok(())
}

/// Loads an image from a `.s` source file (assembled against the runtime)
/// or a serialized `.bvm` image.
fn load_image(path: &str) -> Result<Image, CliError> {
    let bytes = std::fs::read(path)?;
    if bytes.starts_with(b"BVM1") {
        Ok(Image::from_bytes(&bytes)?)
    } else {
        let src = String::from_utf8(bytes)?;
        Ok(link_program(&src)?)
    }
}

fn cmd_asm(args: &[String]) -> CmdResult {
    const OUTPUT: FlagSpec = FlagSpec {
        name: "--output",
        alias: Some("-o"),
        takes_value: true,
    };
    let (pos, flags) = parse_flags("asm", args, &[OUTPUT], 1)?;
    let input = pos.first().ok_or("asm: missing input file")?;
    let out = match flags.get("--output") {
        Some(path) => path.clone(),
        // `strip_suffix`, not `trim_end_matches`: the latter strips the
        // suffix repeatedly, mangling names like `double.s.s`.
        None => format!("{}.bvm", input.strip_suffix(".s").unwrap_or(input)),
    };
    let image = load_image(input)?;
    std::fs::write(&out, image.to_bytes())?;
    println!(
        "wrote {out}: {} text + {} data bytes, entry {:#x}",
        image.text.len(),
        image.data.len(),
        image.entry
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_dis(args: &[String]) -> CmdResult {
    let input = args.first().ok_or("dis: missing input file")?;
    let image = load_image(input)?;
    print!("{}", bomblab::isa::disasm::listing(&image));
    Ok(ExitCode::SUCCESS)
}

fn machine_for(args: &[String], trace: bool) -> Result<Machine, CliError> {
    let input = args.first().ok_or("missing input file")?;
    let image = load_image(input)?;
    let arg = args.get(1).cloned().unwrap_or_default();
    let config = MachineConfig {
        trace,
        ..MachineConfig::with_arg(arg.into_bytes())
    };
    Ok(Machine::load(&image, None, config)?)
}

fn cmd_run(args: &[String]) -> CmdResult {
    let mut machine = machine_for(args, false)?;
    let result = machine.run();
    print!("{}", String::from_utf8_lossy(machine.stdout()));
    eprintln!("[{} after {} steps]", result.status, result.steps);
    Ok(ExitCode::from(
        result.status.exit_code().unwrap_or(125).clamp(0, 255) as u8,
    ))
}

fn cmd_trace(args: &[String]) -> CmdResult {
    let mut machine = machine_for(args, true)?;
    let result = machine.run();
    for step in machine.trace().iter() {
        println!(
            "[{}:{}] {:#010x}  {}",
            step.pid, step.tid, step.pc, step.insn
        );
    }
    eprintln!("[{} after {} steps]", result.status, result.steps);
    Ok(ExitCode::SUCCESS)
}

fn cmd_solve(args: &[String]) -> CmdResult {
    const NO_DATAFLOW: FlagSpec = FlagSpec {
        name: "--no-dataflow",
        alias: None,
        takes_value: false,
    };
    let (pos, flags) = parse_flags("solve", args, &[TRACE, NO_DATAFLOW], 2)?;
    let input = pos.first().ok_or("solve: missing input file")?;
    let image = load_image(input)?;
    let seed = pos.get(1).cloned().unwrap_or_else(|| "AAAAAAAA".into());
    let subject = Subject {
        name: input.clone(),
        image,
        lib: None,
        seed: WorldInput::with_arg(seed.into_bytes()),
    };
    let profile = ToolProfile::omniscient();
    let obs_token = flags
        .get("--trace")
        .map(|_| bomblab::obs::arm(&subject.name, &profile.name));
    let started = std::time::Instant::now();
    let analysis = bomblab::sa::analyze(&subject.image, subject.lib.as_ref());
    let hints = {
        let h = StaticHints::from_analysis(&analysis);
        if profile.use_dataflow_hints && !flags.contains_key("--no-dataflow") {
            h.with_dataflow(&analysis)
        } else {
            h
        }
    };
    let attempt = Engine::new(profile.clone())
        .with_static_hints(hints)
        .explore(&subject, &GroundTruth::default());
    let wall_ns = started.elapsed().as_nanos() as u64;
    if let Some(token) = obs_token {
        let cell = bomblab::obs::disarm(token);
        let path = &flags["--trace"];
        write_trace(path, &solve_trace_lines(&cell, &attempt, wall_ns), None)?;
    }
    println!(
        "outcome: {} ({} rounds, {} queries)",
        attempt.outcome, attempt.evidence.rounds, attempt.evidence.queries
    );
    if let Some(solution) = attempt.solved_input {
        println!("argv[1] = {:?}", String::from_utf8_lossy(&solution.argv1));
        if solution.epoch != subject.seed.epoch {
            println!("epoch   = {}", solution.epoch);
        }
        return Ok(ExitCode::SUCCESS);
    }
    Ok(ExitCode::FAILURE)
}

/// Renders one `solve` run as schema-valid trace lines: header, the
/// cell's span/event/counter/hist stream, its outcome line, and the
/// summary trailer.
fn solve_trace_lines(
    cell: &bomblab::obs::CellProfile,
    attempt: &bomblab::concolic::Attempt,
    wall_ns: u64,
) -> Vec<String> {
    use bomblab::obs::json::{str_array, Obj};
    use bomblab::obs::trace::{render_cell, SCHEMA_VERSION};
    let mut lines = vec![Obj::new("study_start")
        .u64("schema", SCHEMA_VERSION)
        .u64("bombs", 1)
        .raw("profiles", &str_array(std::slice::from_ref(&cell.profile)))
        .finish()];
    render_cell(cell, &mut lines);
    let ev = &attempt.evidence;
    let mut line = Obj::new("cell")
        .str("bomb", &cell.bomb)
        .str("profile", &cell.profile)
        .str("outcome", &attempt.outcome.to_string())
        .u64("wall_ns", wall_ns)
        .u64("rounds", u64::from(ev.rounds))
        .u64("queries", u64::from(ev.queries));
    if ev.branches_proven_independent > 0 {
        line = line.u64(
            "branches_proven_independent",
            ev.branches_proven_independent,
        );
    }
    if ev.independent_skips > 0 {
        line = line.u64("independent_skips", u64::from(ev.independent_skips));
    }
    if ev.static_slice_checked > 0 {
        line = line
            .u64("static_slice_checked", ev.static_slice_checked)
            .u64("static_slice_agreement", ev.static_slice_agreement);
    }
    if let Some(crash) = &ev.crash {
        line = line
            .str("crash_stage", &crash.stage)
            .str("crash_message", &crash.message);
    }
    lines.push(line.finish());
    lines.push(
        Obj::new("summary")
            .u64("cells", 1)
            .u64("spans", cell.spans.len() as u64)
            .u64("events", cell.events.len() as u64)
            .u64("counters", cell.counters.len() as u64)
            .finish(),
    );
    lines
}

fn cmd_constraints(args: &[String]) -> CmdResult {
    use bomblab::symex::{MemoryModel, PropagationPolicy, SymExec};
    let input = args.first().ok_or("constraints: missing input file")?;
    let image = load_image(input)?;
    let arg = args.get(1).cloned().unwrap_or_else(|| "AAAAAAAA".into());
    let config = MachineConfig {
        trace: true,
        ..MachineConfig::with_arg(arg.clone().into_bytes())
    };
    let mut machine = Machine::load(&image, None, config)?;
    let snapshot = machine
        .process_memory(bomblab::vm::ROOT_PID)
        .ok_or("no root process")?
        .clone();
    machine.run();
    let trace = machine.take_trace();
    let mut sx = SymExec::new(
        MemoryModel::SymbolicMap {
            max_indirection: 2,
            region: 256,
        },
        PropagationPolicy::full(),
    );
    sx.set_initial_memory(bomblab::vm::ROOT_PID, snapshot);
    sx.symbolize_bytes(
        bomblab::vm::ROOT_PID,
        bomblab::isa::image::layout::ARGV_BASE + 16 + 5,
        arg.len() as u64,
        "arg1",
    );
    let sym = sx.run(&trace);
    eprintln!(
        "; {} symbolic branches, {} pins on the trace of argv[1] = {arg:?}",
        sym.path.len(),
        sym.pins.len()
    );
    print!("{}", bomblab::solver::smtlib::to_smtlib(&sym.path_query()));
    Ok(ExitCode::SUCCESS)
}

fn cmd_analyze(args: &[String]) -> CmdResult {
    const BOMBS: FlagSpec = FlagSpec {
        name: "--bombs",
        alias: None,
        takes_value: false,
    };
    const DATAFLOW: FlagSpec = FlagSpec {
        name: "--dataflow",
        alias: None,
        takes_value: false,
    };
    const JSON: FlagSpec = FlagSpec {
        name: "--json",
        alias: None,
        takes_value: false,
    };
    let (pos, flags) = parse_flags("analyze", args, &[BOMBS, DATAFLOW, JSON], 1)?;
    let dataflow = flags.contains_key("--dataflow");
    let json = flags.contains_key("--json");
    if flags.contains_key("--bombs") {
        let prefix = pos.first().cloned().unwrap_or_default();
        let mut silent: Vec<String> = Vec::new();
        let mut seen = false;
        for case in bomblab::bombs::all_cases() {
            if !case.subject.name.starts_with(&prefix) {
                continue;
            }
            seen = true;
            let token = json.then(|| bomblab::obs::arm(&case.subject.name, "analyze"));
            let a = bomblab::sa::analyze(&case.subject.image, case.subject.lib.as_ref());
            let cell = token.map(bomblab::obs::disarm);
            if json {
                println!(
                    "{}",
                    analyze_json_line(&case.subject.name, &a, cell.as_ref())
                );
            } else if dataflow {
                println!("{:18} {}", case.subject.name, a.dataflow_summary());
            } else {
                let preds: Vec<String> = a
                    .predictions
                    .iter()
                    .map(|(name, stage)| format!("{name}={stage}"))
                    .collect();
                println!(
                    "{:18} {}  {}",
                    case.subject.name,
                    a.summary(),
                    preds.join(" ")
                );
            }
            if a.lints.is_empty() {
                silent.push(case.subject.name.clone());
            }
        }
        if !seen {
            return Err(format!("no bombs match prefix {prefix:?}").into());
        }
        if !silent.is_empty() && !json && !dataflow {
            eprintln!("analyze: no lints fired on: {}", silent.join(", "));
            return Ok(ExitCode::FAILURE);
        }
        return Ok(ExitCode::SUCCESS);
    }
    let input = pos
        .first()
        .ok_or("analyze: expected a file or `--bombs [prefix]`")?;
    let token = json.then(|| bomblab::obs::arm(input, "analyze"));
    let image = load_image(input)?;
    let analysis = bomblab::sa::analyze(&image, None);
    let cell = token.map(bomblab::obs::disarm);
    if json {
        println!("{}", analyze_json_line(input, &analysis, cell.as_ref()));
    } else if dataflow {
        print!("{}", analysis.listing_dataflow());
        eprintln!("; {}", analysis.dataflow_summary());
    } else {
        print!("{}", analysis.listing());
        eprintln!("; {}", analysis.summary());
    }
    Ok(ExitCode::SUCCESS)
}

/// Renders one analysis as a machine-readable JSON line: the summary
/// counts, the data-flow products, every lint with its address and
/// per-profile stage forecast, and (when observability was armed) the
/// per-pass timing spans.
fn analyze_json_line(
    name: &str,
    a: &bomblab::sa::Analysis,
    cell: Option<&bomblab::obs::CellProfile>,
) -> String {
    use bomblab::obs::json::{escape, Obj};
    let quoted = |s: &str| format!("\"{}\"", escape(s));
    let t = &a.dataflow.taint;
    let lints: Vec<String> = a
        .lints
        .iter()
        .map(|l| {
            let stages: Vec<String> = l
                .stages
                .iter()
                .map(|(n, s)| quoted(&format!("{n}:{s}")))
                .collect();
            format!(
                "{{\"code\":{},\"pc\":{},\"detail\":{},\"stages\":[{}]}}",
                quoted(l.kind.code()),
                l.pc,
                quoted(&l.detail),
                stages.join(",")
            )
        })
        .collect();
    let predictions: Vec<String> = a
        .predictions
        .iter()
        .map(|(n, s)| {
            format!(
                "{{\"profile\":{},\"stage\":{}}}",
                quoted(n),
                quoted(&s.to_string())
            )
        })
        .collect();
    let mut line = Obj::new("analysis")
        .str("bomb", name)
        .u64("rounds", a.rounds as u64)
        .bool("resolve_sound", a.resolve_sound)
        .u64("blocks", a.cfg.blocks.len() as u64)
        .u64("functions", a.cfg.functions.len() as u64)
        .u64("gaps", a.cfg.gaps.len() as u64)
        .u64("branch_sites", t.branch_sites.len() as u64)
        .u64("tainted_branches", t.tainted_branches.len() as u64)
        .u64("independent_branches", t.independent.len() as u64)
        .u64("races", t.races.len() as u64)
        .raw("lints", &format!("[{}]", lints.join(",")))
        .raw("predictions", &format!("[{}]", predictions.join(",")));
    if let Some(cell) = cell {
        let spans: Vec<String> = cell
            .spans
            .iter()
            .map(|s| format!("{{\"stage\":{},\"ns\":{}}}", quoted(s.stage), s.ns))
            .collect();
        line = line.raw("spans", &format!("[{}]", spans.join(",")));
    }
    line.finish()
}

fn cmd_bombs() -> CmdResult {
    println!("| bomb | category | description |");
    println!("|---|---|---|");
    for case in bomblab::bombs::all_cases() {
        println!(
            "| {} | {} | {} |",
            case.subject.name, case.category, case.description
        );
    }
    Ok(ExitCode::SUCCESS)
}

const CHECKPOINT: FlagSpec = FlagSpec {
    name: "--checkpoint",
    alias: None,
    takes_value: true,
};
const RETRIES: FlagSpec = FlagSpec {
    name: "--retries",
    alias: None,
    takes_value: true,
};
const CACHE_DIR: FlagSpec = FlagSpec {
    name: "--cache-dir",
    alias: None,
    takes_value: true,
};

fn cmd_study(args: &[String]) -> CmdResult {
    const RESUME: FlagSpec = FlagSpec {
        name: "--resume",
        alias: None,
        takes_value: false,
    };
    const NO_SHARED_CACHE: FlagSpec = FlagSpec {
        name: "--no-shared-cache",
        alias: None,
        takes_value: false,
    };
    const TOOLS: FlagSpec = FlagSpec {
        name: "--tools",
        alias: None,
        takes_value: true,
    };
    let (pos, flags) = parse_flags(
        "study",
        args,
        &[
            JOBS,
            TRACE,
            CHECKPOINT,
            RESUME,
            RETRIES,
            CACHE_DIR,
            NO_SHARED_CACHE,
            TOOLS,
        ],
        1,
    )?;
    let prefix = pos.first().cloned().unwrap_or_default();
    let jobs = match flags.get("--jobs") {
        Some(n) => parse_jobs("study", n)?,
        None => default_jobs(),
    };
    let trace_path = flags.get("--trace");
    if flags.contains_key("--resume") && !flags.contains_key("--checkpoint") {
        return Err("study: --resume needs --checkpoint <dir>".into());
    }
    let retries = match flags.get("--retries") {
        Some(n) => parse_num("study", "--retries", n)?,
        None => 0,
    };
    let cases: Vec<_> = bomblab::bombs::all_cases()
        .into_iter()
        .filter(|c| c.subject.name.starts_with(&prefix))
        .collect();
    if cases.is_empty() {
        return Err(format!("no bombs match prefix {prefix:?}").into());
    }
    let profiles = match flags.get("--tools").map(String::as_str) {
        None | Some("paper") => ToolProfile::paper_lineup(),
        Some("omniscient") => vec![ToolProfile::omniscient()],
        Some(other) => {
            return Err(
                format!("study: bad --tools value {other:?} (accepted: paper, omniscient)").into(),
            )
        }
    };
    let options = StudyOptions {
        jobs,
        observe: trace_path.is_some(),
        retries,
        checkpoint: flags.get("--checkpoint").map(std::path::PathBuf::from),
        resume: flags.contains_key("--resume"),
        solver_cache_dir: flags.get("--cache-dir").map(std::path::PathBuf::from),
        shared_cache: !flags.contains_key("--no-shared-cache"),
        ..StudyOptions::default()
    };
    let report = run_study_with(&cases, &profiles, &options);
    println!("{}", report.to_markdown());
    if let Some(path) = trace_path {
        write_trace(path, &report.trace_lines(), Some(&report.profile_summary()))?;
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_chaos(args: &[String]) -> CmdResult {
    const SEED: FlagSpec = FlagSpec {
        name: "--seed",
        alias: None,
        takes_value: true,
    };
    const FAULTS: FlagSpec = FlagSpec {
        name: "--faults",
        alias: None,
        takes_value: true,
    };
    const SWEEPS: FlagSpec = FlagSpec {
        name: "--sweeps",
        alias: None,
        takes_value: true,
    };
    const IO_FAULTS: FlagSpec = FlagSpec {
        name: "--io-faults",
        alias: None,
        takes_value: true,
    };
    let (pos, flags) = parse_flags(
        "chaos",
        args,
        &[
            SEED, FAULTS, IO_FAULTS, SWEEPS, JOBS, TRACE, RETRIES, CHECKPOINT, CACHE_DIR,
        ],
        1,
    )?;
    let prefix = pos.first().cloned().unwrap_or_default();
    let mut config = ChaosConfig {
        jobs: default_jobs(),
        ..ChaosConfig::default()
    };
    if let Some(v) = flags.get("--seed") {
        config.seed = parse_num("chaos", "--seed", v)?;
    }
    if let Some(v) = flags.get("--faults") {
        config.faults = parse_num("chaos", "--faults", v)?;
    }
    if let Some(v) = flags.get("--io-faults") {
        config.io_faults = parse_num("chaos", "--io-faults", v)?;
    }
    if let Some(v) = flags.get("--sweeps") {
        config.sweeps = parse_num("chaos", "--sweeps", v)?;
    }
    if let Some(v) = flags.get("--jobs") {
        config.jobs = parse_jobs("chaos", v)?;
    }
    if let Some(v) = flags.get("--retries") {
        config.retries = parse_num("chaos", "--retries", v)?;
    }
    config.checkpoint = flags.get("--checkpoint").map(std::path::PathBuf::from);
    config.solver_cache_dir = flags.get("--cache-dir").map(std::path::PathBuf::from);
    let trace_path = flags.get("--trace");
    config.observe = trace_path.is_some();
    if config.jobs == 0 {
        config.jobs = default_jobs();
    }
    let cases: Vec<_> = bomblab::bombs::all_cases()
        .into_iter()
        .filter(|c| c.subject.name.starts_with(&prefix))
        .collect();
    if cases.is_empty() {
        return Err(format!("no bombs match prefix {prefix:?}").into());
    }
    let profiles = ToolProfile::paper_lineup();
    let sweeps = chaos_sweep(&cases, &profiles, &config);
    if let Some(path) = trace_path {
        use bomblab::obs::json::Obj;
        let mut lines = Vec::new();
        for sweep in &sweeps {
            lines.push(
                Obj::new("sweep_start")
                    .u64("seed", sweep.seed)
                    .str("plan", &sweep.plan.to_string())
                    .finish(),
            );
            lines.extend(sweep.report.trace_lines());
        }
        write_trace(path, &lines, None)?;
    }
    let mut failed = false;
    for sweep in &sweeps {
        let abnormal = sweep
            .report
            .rows
            .iter()
            .flat_map(|row| &row.cells)
            .filter(|cell| cell.outcome == Outcome::Abnormal)
            .count();
        println!("sweep seed={}: plan [{}]", sweep.seed, sweep.plan);
        println!(
            "  {} cells, {} absorbed injected faults, {} labeled E",
            sweep.report.rows.len() * profiles.len(),
            sweep.injected_cells,
            abnormal
        );
        for line in sweep.report.contained_crashes() {
            println!("  contained: {line}");
        }
        if sweep.violations.is_empty() {
            println!("  containment invariant: OK");
        } else {
            failed = true;
            for v in &sweep.violations {
                println!("  VIOLATION: {v}");
            }
        }
    }
    if failed {
        eprintln!("chaos: containment invariant violated");
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_tracecheck(args: &[String]) -> CmdResult {
    let (pos, _) = parse_flags("tracecheck", args, &[], 1)?;
    let path = pos.first().ok_or("tracecheck: missing trace file")?;
    let text = std::fs::read_to_string(path)?;
    match bomblab::obs::trace::validate_lines(&text) {
        Ok(checked) => {
            let version = bomblab::obs::trace::SCHEMA_VERSION;
            println!("{path}: {checked} lines OK (schema v{version})");
            Ok(ExitCode::SUCCESS)
        }
        Err((line, why)) => {
            eprintln!("{path}:{line}: {why}");
            Ok(ExitCode::FAILURE)
        }
    }
}
