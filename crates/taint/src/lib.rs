//! # bomblab-taint — forward dynamic taint analysis
//!
//! The trace-filtering stage of the paper's framework (Figure 1): walk an
//! execution trace and mark every value derived from symbolic inputs. The
//! concolic engine uses the result to
//!
//! * keep only taint-relevant instructions for constraint extraction,
//! * find branches whose conditions are symbolic,
//! * detect symbolic-address loads/stores (the symbolic-array challenge),
//!   symbolic indirect-jump targets (symbolic jump), and symbolic syscall
//!   arguments/numbers (contextual symbolic values),
//! * measure the Figure-3 instruction inflation caused by library calls.
//!
//! A [`TaintPolicy`] describes which input sources a tool symbolizes
//! (`Es0` failures come from missing sources) and which propagation paths
//! it tracks (`Es2` failures come from dropped flows: files, pipes,
//! threads, child processes). The omniscient policy ([`TaintPolicy::omniscient`])
//! tracks everything and is used as ground truth by the failure diagnosis.

#![warn(missing_docs)]

use bomblab_ir::{lift, Atom, Place, Stmt, SupportMatrix};
use bomblab_isa::{sys, Reg};
use bomblab_vm::{InputSource, OutputSink, SysEffect, Trace};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Which input sources carry taint (i.e. are declared symbolic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaintSources {
    /// Program arguments (`argv[1..]`).
    pub argv: bool,
    /// Bytes read from standard input.
    pub stdin: bool,
    /// The `time` syscall's return value.
    pub time: bool,
    /// Bytes delivered by `net_get`.
    pub net: bool,
    /// Return values of "environment" syscalls (`getpid`, `getuid`).
    pub sys_returns: bool,
}

impl TaintSources {
    /// Only `argv` — what every tool in the paper's study symbolizes.
    pub fn argv_only() -> TaintSources {
        TaintSources {
            argv: true,
            stdin: false,
            time: false,
            net: false,
            sys_returns: false,
        }
    }

    /// Every source.
    pub fn all() -> TaintSources {
        TaintSources {
            argv: true,
            stdin: true,
            time: true,
            net: true,
            sys_returns: true,
        }
    }
}

/// Which propagation paths are tracked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaintPolicy {
    /// Taint sources.
    pub sources: TaintSources,
    /// Follow taint through file writes and re-reads.
    pub through_files: bool,
    /// Follow taint through pipes.
    pub through_pipes: bool,
    /// Track taint in spawned threads.
    pub across_threads: bool,
    /// Track taint in forked child processes.
    pub across_processes: bool,
    /// Loads from a tainted *address* taint the result (needed to even see
    /// the symbolic-array challenge).
    pub through_pointers: bool,
}

impl TaintPolicy {
    /// Ground truth: every source, every propagation path.
    pub fn omniscient() -> TaintPolicy {
        TaintPolicy {
            sources: TaintSources::all(),
            through_files: true,
            through_pipes: true,
            across_threads: true,
            across_processes: true,
            through_pointers: true,
        }
    }

    /// A typical real-tool policy: argv only, no covert flows.
    pub fn argv_direct_only() -> TaintPolicy {
        TaintPolicy {
            sources: TaintSources::argv_only(),
            through_files: false,
            through_pipes: false,
            across_threads: false,
            across_processes: false,
            through_pointers: true,
        }
    }
}

/// Where a policy dropped a tainted flow (used for `Es2` diagnosis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaintLoss {
    /// Tainted bytes written to a file with `through_files` off.
    FileWrite,
    /// Tainted bytes written to a pipe with `through_pipes` off.
    PipeWrite,
    /// Tainted data crossed `fork` with `across_processes` off.
    ForkChild,
    /// Tainted argument crossed `thread_spawn` with `across_threads` off.
    ThreadSpawn,
}

/// Result of a taint pass over a trace.
#[derive(Debug, Clone, Default)]
pub struct TaintReport {
    /// Step indices of conditional branches with tainted operands — the
    /// symbolic branches whose constraints the engine extracts.
    pub tainted_branches: Vec<usize>,
    /// Step indices of indirect jumps with tainted targets (symbolic jump).
    pub tainted_indirect_jumps: Vec<usize>,
    /// Step indices of loads whose *address* is tainted (symbolic array).
    pub tainted_addr_loads: Vec<usize>,
    /// Step indices of stores whose *address* is tainted.
    pub tainted_addr_stores: Vec<usize>,
    /// Steps where a syscall argument register (`a0..a5`) was tainted,
    /// with the argument indices (contextual symbolic value).
    pub tainted_sys_args: Vec<(usize, Vec<u8>)>,
    /// Steps where the syscall *number* (`sv`) was tainted.
    pub tainted_sys_nums: Vec<usize>,
    /// Number of steps that read or wrote tainted data (Figure 3 metric).
    pub tainted_step_count: usize,
    /// Indices of the steps counted by `tainted_step_count`.
    pub tainted_steps: Vec<usize>,
    /// Flows the policy dropped.
    pub losses: Vec<(usize, TaintLoss)>,
}

impl TaintReport {
    /// Whether the trace shows any symbolic control-flow dependence at all.
    pub fn any_symbolic_control(&self) -> bool {
        !self.tainted_branches.is_empty() || !self.tainted_indirect_jumps.is_empty()
    }
}

#[derive(Debug, Clone, Default)]
struct ThreadShadow {
    gpr: [bool; 32],
    fpr: [bool; 16],
    tmp: HashMap<u32, bool>,
}

#[derive(Debug, Clone, Default)]
struct ProcShadow {
    mem: HashSet<u64>,
}

/// The taint engine.
#[derive(Debug)]
pub struct TaintEngine {
    policy: TaintPolicy,
    /// Drop a thread's register taint when it traps (models emulators that
    /// reset state around signals).
    clear_on_trap: bool,
    threads: BTreeMap<(u32, u32), ThreadShadow>,
    procs: BTreeMap<u32, ProcShadow>,
    files: HashSet<String>,
    pipes: HashSet<usize>,
    /// Tainted kernel file positions, keyed by (pid, fd) — the lseek
    /// covert channel.
    fileposes: HashSet<(u32, u64)>,
    /// Register-shadow seeds for forked children, applied when the child's
    /// first step appears in the trace.
    fork_seeds: HashMap<u32, ThreadShadow>,
    support: SupportMatrix,
}

impl TaintEngine {
    /// Creates an engine with the given policy.
    pub fn new(policy: TaintPolicy) -> TaintEngine {
        TaintEngine {
            policy,
            clear_on_trap: false,
            threads: BTreeMap::new(),
            procs: BTreeMap::new(),
            files: HashSet::new(),
            pipes: HashSet::new(),
            fileposes: HashSet::new(),
            fork_seeds: HashMap::new(),
            support: SupportMatrix::full(),
        }
    }

    /// Makes traps clear the trapping thread's register taint.
    pub fn with_trap_clearing(mut self, clear: bool) -> TaintEngine {
        self.clear_on_trap = clear;
        self
    }

    /// Pre-taints memory ranges (the loader-placed `argv` strings).
    pub fn taint_memory(&mut self, pid: u32, ranges: &[(u64, u64)]) {
        let shadow = self.procs.entry(pid).or_default();
        for &(base, len) in ranges {
            for a in base..base + len {
                shadow.mem.insert(a);
            }
        }
    }

    /// Pre-taints a file's contents by name.
    pub fn taint_file(&mut self, name: &str) {
        self.files.insert(name.to_string());
    }

    /// Runs the analysis over a trace.
    pub fn run(&mut self, trace: &Trace) -> TaintReport {
        let obs_timer = bomblab_obs::start();
        let report = self.run_inner(trace);
        if let Some(t0) = obs_timer {
            bomblab_obs::span_ns("taint.run", t0.elapsed().as_nanos() as u64);
            bomblab_obs::counter("taint.steps", trace.len() as u64);
            bomblab_obs::counter("taint.tainted_steps", report.tainted_step_count as u64);
            bomblab_obs::counter(
                "taint.tainted_branches",
                report.tainted_branches.len() as u64,
            );
        }
        report
    }

    fn run_inner(&mut self, trace: &Trace) -> TaintReport {
        let mut report = TaintReport::default();
        for (idx, step) in trace.iter().enumerate() {
            // Seed a forked child's registers on its first appearance.
            if !self.threads.contains_key(&(step.pid, step.tid)) {
                if let Some(seed) = self.fork_seeds.remove(&step.pid) {
                    self.threads.insert((step.pid, step.tid), seed);
                }
            }
            // Sparse traces elide operand capture for steps the VM's taint
            // gate proved clean; the gate's shadow is a superset of ours,
            // so such steps can never touch taint here.
            if step.elided {
                continue;
            }
            let mut step_touches_taint = false;

            // Syscalls are handled from their records.
            if let Some(record) = step.sys {
                let sv_tainted = self.thread(step.pid, step.tid).gpr[Reg::SV.index()];
                if sv_tainted {
                    report.tainted_sys_nums.push(idx);
                    step_touches_taint = true;
                }
                let arg_regs = [Reg::A0, Reg::A1, Reg::A2, Reg::A3, Reg::A4, Reg::A5];
                let tainted_args: Vec<u8> = arg_regs
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| self.thread(step.pid, step.tid).gpr[r.index()])
                    .map(|(i, _)| i as u8)
                    .collect();
                if !tainted_args.is_empty() {
                    report.tainted_sys_args.push((idx, tainted_args));
                    step_touches_taint = true;
                }
                step_touches_taint |=
                    self.apply_syscall(step.pid, step.tid, idx, record, &mut report);
                // The return value lands in a0; taint decided in apply_syscall.
                if step_touches_taint {
                    report.tainted_step_count += 1;
                    report.tainted_steps.push(idx);
                }
                continue;
            }

            if step.trap.is_some() && self.clear_on_trap {
                let shadow = self.thread(step.pid, step.tid);
                shadow.gpr = [false; 32];
                shadow.fpr = [false; 16];
                continue;
            }
            // Ordinary instructions: dataflow over the (fully lifted) IR.
            let block = lift(&step.insn, step.pc, &self.support)
                .expect("full support matrix lifts everything");
            for stmt in &block {
                step_touches_taint |= self.apply_stmt(step, idx, stmt, &mut report);
            }
            if step_touches_taint {
                report.tainted_step_count += 1;
                report.tainted_steps.push(idx);
            }
        }
        report
    }

    fn thread(&mut self, pid: u32, tid: u32) -> &mut ThreadShadow {
        self.threads.entry((pid, tid)).or_default()
    }

    fn proc(&mut self, pid: u32) -> &mut ProcShadow {
        self.procs.entry(pid).or_default()
    }

    fn atom_tainted(&mut self, pid: u32, tid: u32, atom: &Atom) -> bool {
        match atom {
            Atom::Place(p) => self.place_tainted(pid, tid, p),
            Atom::Const(_) | Atom::FConst(_) => false,
        }
    }

    fn place_tainted(&mut self, pid: u32, tid: u32, place: &Place) -> bool {
        let t = self.thread(pid, tid);
        match place {
            Place::Gpr(r) => t.gpr[r.index()],
            Place::Fpr(r) => t.fpr[r.index()],
            Place::Tmp(i) => t.tmp.get(i).copied().unwrap_or(false),
        }
    }

    fn set_place(&mut self, pid: u32, tid: u32, place: &Place, tainted: bool) {
        let t = self.thread(pid, tid);
        match place {
            Place::Gpr(r) => {
                if r.index() != 0 {
                    t.gpr[r.index()] = tainted;
                }
            }
            Place::Fpr(r) => t.fpr[r.index()] = tainted,
            Place::Tmp(i) => {
                t.tmp.insert(*i, tainted);
            }
        }
    }

    fn mem_tainted(&mut self, pid: u32, addr: u64, width: u8) -> bool {
        let shadow = self.proc(pid);
        (0..width as u64).any(|i| shadow.mem.contains(&addr.wrapping_add(i)))
    }

    fn set_mem(&mut self, pid: u32, addr: u64, width: u8, tainted: bool) {
        let shadow = self.proc(pid);
        for i in 0..width as u64 {
            if tainted {
                shadow.mem.insert(addr.wrapping_add(i));
            } else {
                shadow.mem.remove(&addr.wrapping_add(i));
            }
        }
    }

    /// Applies one IR statement; returns whether it touched taint.
    fn apply_stmt(
        &mut self,
        step: bomblab_vm::StepView<'_>,
        idx: usize,
        stmt: &Stmt,
        report: &mut TaintReport,
    ) -> bool {
        let (pid, tid) = (step.pid, step.tid);
        match stmt {
            Stmt::Bin { dst, a, b, .. } => {
                let t = self.atom_tainted(pid, tid, a) | self.atom_tainted(pid, tid, b);
                self.set_place(pid, tid, dst, t);
                t
            }
            Stmt::Un { dst, a, .. } => {
                let t = self.atom_tainted(pid, tid, a);
                self.set_place(pid, tid, dst, t);
                t
            }
            Stmt::Load {
                dst, addr, width, ..
            } => {
                let addr_tainted = self.atom_tainted(pid, tid, addr);
                let Some(acc) = step.mem_read else {
                    // Trapped before completing; nothing loaded.
                    return addr_tainted;
                };
                if addr_tainted {
                    report.tainted_addr_loads.push(idx);
                }
                let mut t = self.mem_tainted(pid, acc.addr, *width);
                if addr_tainted && self.policy.through_pointers {
                    t = true;
                }
                self.set_place(pid, tid, dst, t);
                t || addr_tainted
            }
            Stmt::Store { src, addr, width } => {
                let addr_tainted = self.atom_tainted(pid, tid, addr);
                let Some(acc) = step.mem_write else {
                    return addr_tainted;
                };
                if addr_tainted {
                    report.tainted_addr_stores.push(idx);
                }
                let t = self.atom_tainted(pid, tid, src);
                self.set_mem(pid, acc.addr, *width, t);
                t || addr_tainted
            }
            Stmt::CondJump { a, b, .. } => {
                let t = self.atom_tainted(pid, tid, a) | self.atom_tainted(pid, tid, b);
                if t {
                    report.tainted_branches.push(idx);
                }
                t
            }
            Stmt::IndirectJump { target } => {
                let t = self.atom_tainted(pid, tid, target);
                if t {
                    report.tainted_indirect_jumps.push(idx);
                }
                t
            }
            Stmt::Jump { .. } | Stmt::Syscall | Stmt::Halt => false,
        }
    }

    /// Applies a syscall's data-flow effect; returns whether it touched
    /// taint.
    fn apply_syscall(
        &mut self,
        pid: u32,
        tid: u32,
        idx: usize,
        record: &bomblab_vm::SyscallRecord,
        report: &mut TaintReport,
    ) -> bool {
        let mut touched = false;
        // By default the return value is clean.
        let mut ret_tainted = false;

        match &record.effect {
            SysEffect::OutputBytes {
                addr, bytes, sink, ..
            } => {
                let t = self.mem_range_tainted(pid, *addr, bytes.len() as u64);
                if t {
                    touched = true;
                    match sink {
                        OutputSink::File(name) => {
                            if self.policy.through_files {
                                self.files.insert(name.clone());
                            } else {
                                report.losses.push((idx, TaintLoss::FileWrite));
                            }
                        }
                        OutputSink::Pipe(id) => {
                            if self.policy.through_pipes {
                                self.pipes.insert(*id);
                            } else {
                                report.losses.push((idx, TaintLoss::PipeWrite));
                            }
                        }
                        OutputSink::Stdout => {}
                    }
                }
            }
            SysEffect::InputBytes {
                addr,
                bytes,
                source,
                ..
            } => {
                let t = match source {
                    InputSource::Stdin => self.policy.sources.stdin,
                    InputSource::File(name) => self.files.contains(name),
                    InputSource::Pipe(id) => self.pipes.contains(id),
                    InputSource::Net => self.policy.sources.net,
                };
                self.set_mem_range(pid, *addr, bytes.len() as u64, t);
                touched |= t;
                // read() return length is not tainted.
            }
            SysEffect::Forked { child } => {
                // Child's memory inherits the parent's shadow if tracked.
                let parent_mem = self.proc(pid).mem.clone();
                let parent_regs = self.thread(pid, tid).clone();
                let any = !parent_mem.is_empty()
                    || parent_regs.gpr.iter().any(|&b| b)
                    || parent_regs.fpr.iter().any(|&b| b);
                if self.policy.across_processes {
                    self.procs.insert(*child, ProcShadow { mem: parent_mem });
                    // The child's thread id is assigned by the machine; seed
                    // its registers when its first step appears.
                    self.fork_seeds.insert(*child, parent_regs);
                } else if any {
                    report.losses.push((idx, TaintLoss::ForkChild));
                    touched = true;
                }
            }
            SysEffect::SpawnedThread { tid: new_tid, .. } => {
                let arg_tainted = self.thread(pid, tid).gpr[Reg::A1.index()];
                if self.policy.across_threads {
                    let shadow = self.thread(pid, *new_tid);
                    shadow.gpr[Reg::A0.index()] = arg_tainted;
                } else if arg_tainted {
                    report.losses.push((idx, TaintLoss::ThreadSpawn));
                }
                touched |= arg_tainted;
            }
            SysEffect::PipeCreated { addr, .. } => {
                // fd numbers are clean.
                self.set_mem_range(pid, *addr, 16, false);
            }
            SysEffect::OpenedFile { path, .. } => {
                // A tainted file *name* is the contextual-symbolic-value
                // challenge: the symbolic bytes select which file opens.
                if self.mem_range_tainted(pid, record.args[0], path.len().max(1) as u64) {
                    report.tainted_sys_args.push((idx, vec![0]));
                    touched = true;
                }
            }
            SysEffect::None => {}
        }

        match record.num {
            sys::TIME => ret_tainted = self.policy.sources.time,
            sys::GETPID | sys::GETUID => ret_tainted = self.policy.sources.sys_returns,
            sys::LSEEK => {
                // lseek smuggles a value through the kernel file position.
                let fdkey = (pid, record.args[0]);
                let offset_tainted = self.thread(pid, tid).gpr[Reg::A1.index()];
                if offset_tainted {
                    if self.policy.through_files {
                        self.fileposes.insert(fdkey);
                    } else {
                        report.losses.push((idx, TaintLoss::FileWrite));
                    }
                    touched = true;
                }
                ret_tainted = self.fileposes.contains(&fdkey);
            }
            _ => {}
        }
        let shadow = self.thread(pid, tid);
        shadow.gpr[Reg::A0.index()] = ret_tainted;
        touched |= ret_tainted;
        touched
    }

    fn mem_range_tainted(&mut self, pid: u32, addr: u64, len: u64) -> bool {
        let shadow = self.proc(pid);
        (0..len).any(|i| shadow.mem.contains(&addr.wrapping_add(i)))
    }

    fn set_mem_range(&mut self, pid: u32, addr: u64, len: u64, tainted: bool) {
        let shadow = self.proc(pid);
        for i in 0..len {
            if tainted {
                shadow.mem.insert(addr.wrapping_add(i));
            } else {
                shadow.mem.remove(&addr.wrapping_add(i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_presets_cover_the_capability_space() {
        let omni = TaintPolicy::omniscient();
        assert!(omni.sources.time && omni.sources.net && omni.sources.stdin);
        assert!(omni.through_files && omni.through_pipes);
        assert!(omni.across_threads && omni.across_processes);
        let strict = TaintPolicy::argv_direct_only();
        assert!(strict.sources.argv && !strict.sources.time);
        assert!(!strict.through_files && !strict.across_threads);
        assert!(strict.through_pointers, "pointer taint is table stakes");
    }

    #[test]
    fn taint_memory_marks_exact_ranges() {
        let mut engine = TaintEngine::new(TaintPolicy::omniscient());
        engine.taint_memory(1, &[(0x100, 4), (0x200, 1)]);
        let shadow = engine.procs.get(&1).expect("pid shadow");
        assert!(shadow.mem.contains(&0x100));
        assert!(shadow.mem.contains(&0x103));
        assert!(!shadow.mem.contains(&0x104));
        assert!(shadow.mem.contains(&0x200));
    }

    #[test]
    fn empty_trace_produces_empty_report() {
        let mut engine = TaintEngine::new(TaintPolicy::omniscient());
        let report = engine.run(&bomblab_vm::Trace::new());
        assert!(!report.any_symbolic_control());
        assert_eq!(report.tainted_step_count, 0);
        assert!(report.losses.is_empty());
    }
}
