//! Taint tests over real VM traces.

use bomblab_isa::image::layout;
use bomblab_rt::link_program;
use bomblab_taint::{TaintEngine, TaintLoss, TaintPolicy};
use bomblab_vm::{Machine, MachineConfig, RunStatus, Trace};

/// Runs a statically linked program with tracing and returns the trace.
fn trace_of(src: &str, config: MachineConfig) -> (Trace, RunStatus) {
    let image = link_program(src).expect("program builds");
    let mut machine = Machine::load(
        &image,
        None,
        MachineConfig {
            trace: true,
            ..config
        },
    )
    .expect("loads");
    let result = machine.run();
    (machine.take_trace(), result.status)
}

/// Byte range of `argv[index]`'s string in the loader layout.
fn argv_range(argv: &[&str], index: usize) -> (u64, u64) {
    let mut addr = layout::ARGV_BASE + 8 * argv.len() as u64;
    for (i, a) in argv.iter().enumerate() {
        if i == index {
            return (addr, a.len() as u64);
        }
        addr += a.len() as u64 + 1;
    }
    panic!("argv index out of range");
}

fn engine_with_argv1(policy: TaintPolicy, argv1: &str) -> TaintEngine {
    let mut engine = TaintEngine::new(policy);
    let (base, len) = argv_range(&["bomb", argv1], 1);
    engine.taint_memory(bomblab_vm::ROOT_PID, &[(base, len)]);
    engine
}

#[test]
fn direct_branch_on_argv_is_tainted() {
    let src = r#"
        .extern atoi
        .global _start
    _start:
        ld a0, [a1+8]
        call atoi
        li t0, 7
        beq a0, t0, yes
        li a0, 0
        li sv, 0
        sys
    yes:
        li a0, 1
        li sv, 0
        sys
        "#;
    let (trace, _) = trace_of(src, MachineConfig::with_arg("3"));
    let mut engine = engine_with_argv1(TaintPolicy::argv_direct_only(), "3");
    let report = engine.run(&trace);
    assert!(
        !report.tainted_branches.is_empty(),
        "the beq on atoi(argv[1]) must be tainted"
    );
    // The tainted branch at `beq a0, t0` plus atoi's internal digit checks.
    assert!(report.tainted_step_count > 3);
}

#[test]
fn branch_on_constant_is_clean() {
    let src = r#"
        .global _start
    _start:
        li a0, 5
        li t0, 7
        beq a0, t0, yes
        li a0, 0
        li sv, 0
        sys
    yes:
        li a0, 1
        li sv, 0
        sys
        "#;
    let (trace, _) = trace_of(src, MachineConfig::default());
    let mut engine = engine_with_argv1(TaintPolicy::argv_direct_only(), "");
    let report = engine.run(&trace);
    assert!(report.tainted_branches.is_empty());
    assert_eq!(report.tainted_step_count, 0);
}

#[test]
fn file_covert_channel_needs_through_files() {
    // Write argv[1] byte to a file, read it back, branch on it.
    let src = r#"
        .data
    path: .asciz "covert"
    buf:  .space 8
        .text
        .global _start
    _start:
        ld s0, [a1+8]        # argv[1] ptr
        li a0, path
        li a1, 1
        li sv, 3             # open write
        sys
        mov s1, a0
        mov a0, s1
        mov a1, s0
        li a2, 1
        li sv, 1             # write(fd, argv1, 1)
        sys
        mov a0, s1
        li sv, 4             # close
        sys
        li a0, path
        li a1, 0
        li sv, 3             # open read
        sys
        mov s1, a0
        mov a0, s1
        li a1, buf
        li a2, 1
        li sv, 2             # read back
        sys
        li t0, buf
        lbu t1, [t0]
        li t2, 'X'
        beq t1, t2, boom
        li a0, 0
        li sv, 0
        sys
    boom:
        li a0, 42
        li sv, 0
        sys
        "#;
    let (trace, _) = trace_of(src, MachineConfig::with_arg("A"));

    // Omniscient: branch is tainted through the file.
    let mut omni = engine_with_argv1(TaintPolicy::omniscient(), "A");
    let report = omni.run(&trace);
    assert!(
        !report.tainted_branches.is_empty(),
        "file round-trip must keep taint with through_files"
    );

    // Default policy: taint lost at the file write.
    let mut strict = engine_with_argv1(TaintPolicy::argv_direct_only(), "A");
    let report = strict.run(&trace);
    assert!(report.tainted_branches.is_empty());
    assert!(report
        .losses
        .iter()
        .any(|(_, l)| *l == TaintLoss::FileWrite));
}

#[test]
fn stack_push_pop_keeps_taint() {
    let src = r#"
        .extern atoi
        .global _start
    _start:
        ld a0, [a1+8]
        call atoi
        push a0
        li a0, 0
        pop t0
        li t1, 7
        beq t0, t1, yes
        li a0, 0
        li sv, 0
        sys
    yes:
        li a0, 1
        li sv, 0
        sys
        "#;
    let (trace, _) = trace_of(src, MachineConfig::with_arg("3"));
    let mut engine = engine_with_argv1(TaintPolicy::argv_direct_only(), "3");
    let report = engine.run(&trace);
    assert!(
        !report.tainted_branches.is_empty(),
        "push/pop must propagate taint through the stack"
    );
}

#[test]
fn symbolic_array_index_is_flagged() {
    let src = r#"
        .extern atoi
        .data
    table: .byte 10, 20, 30, 40, 50, 60, 70, 80
        .text
        .global _start
    _start:
        ld a0, [a1+8]
        call atoi
        andi a0, a0, 7
        li t0, table
        add t0, t0, a0       # tainted address
        lbu t1, [t0]
        li t2, 70
        beq t1, t2, yes
        li a0, 0
        li sv, 0
        sys
    yes:
        li a0, 1
        li sv, 0
        sys
        "#;
    let (trace, _) = trace_of(src, MachineConfig::with_arg("2"));
    let mut engine = engine_with_argv1(TaintPolicy::argv_direct_only(), "2");
    let report = engine.run(&trace);
    assert!(
        !report.tainted_addr_loads.is_empty(),
        "tainted array index must be reported"
    );
    assert!(
        !report.tainted_branches.is_empty(),
        "value loaded through a tainted pointer must taint the branch"
    );
}

#[test]
fn symbolic_jump_target_is_flagged() {
    let src = r#"
        .extern atoi
        .global _start
    _start:
        ld a0, [a1+8]
        call atoi
        andi a0, a0, 7
        li t0, base
        add t0, t0, a0
        jr t0                # tainted indirect jump
    base:
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        li a0, 0
        li sv, 0
        sys
        "#;
    let (trace, _) = trace_of(src, MachineConfig::with_arg("0"));
    let mut engine = engine_with_argv1(TaintPolicy::argv_direct_only(), "0");
    let report = engine.run(&trace);
    assert!(
        !report.tainted_indirect_jumps.is_empty(),
        "tainted jr must be reported"
    );
}

#[test]
fn time_source_requires_policy() {
    let src = r#"
        .global _start
    _start:
        li sv, 6             # time
        sys
        li t0, 777
        beq a0, t0, yes
        li a0, 0
        li sv, 0
        sys
    yes:
        li a0, 1
        li sv, 0
        sys
        "#;
    let (trace, _) = trace_of(src, MachineConfig::default());
    let mut strict = TaintEngine::new(TaintPolicy::argv_direct_only());
    assert!(strict.run(&trace).tainted_branches.is_empty());
    let mut omni = TaintEngine::new(TaintPolicy::omniscient());
    assert!(
        !omni.run(&trace).tainted_branches.is_empty(),
        "time must taint the branch when declared symbolic"
    );
}

#[test]
fn thread_argument_crosses_only_with_policy() {
    let src = r#"
        .extern atoi
        .data
    cell: .quad 0
        .text
        .global _start
    _start:
        ld a0, [a1+8]
        call atoi
        mov a1, a0           # arg = atoi(argv[1])
        li a0, worker
        li sv, 11            # thread_spawn
        sys
        li sv, 12            # join
        sys
        li t0, cell
        ld t1, [t0]
        li t2, 8
        beq t1, t2, yes
        li a0, 0
        li sv, 0
        sys
    yes:
        li a0, 1
        li sv, 0
        sys
    worker:
        addi a0, a0, 1
        li t0, cell
        sd [t0], a0
        li a0, 0
        ret
        "#;
    let (trace, _) = trace_of(src, MachineConfig::with_arg("7"));
    let mut omni = engine_with_argv1(TaintPolicy::omniscient(), "7");
    let report = omni.run(&trace);
    assert!(
        !report.tainted_branches.is_empty(),
        "cross-thread flow must be visible omnisciently"
    );

    let mut strict = engine_with_argv1(TaintPolicy::argv_direct_only(), "7");
    let report = strict.run(&trace);
    // atoi's own digit-scanning branches are tainted in any policy; the
    // point is that no tainted branch survives past the thread spawn.
    let spawn_idx = trace
        .iter()
        .position(|s| s.sys.as_ref().is_some_and(|r| r.num == 11))
        .expect("spawn syscall in trace");
    assert!(
        report.tainted_branches.iter().all(|&i| i < spawn_idx),
        "no tainted branch may survive the dropped thread flow"
    );
    assert!(report
        .losses
        .iter()
        .any(|(_, l)| *l == TaintLoss::ThreadSpawn));
}

#[test]
fn fork_pipe_flow_crosses_only_with_policy() {
    let src = r#"
        .extern atoi
        .data
    fds: .space 16
    buf: .space 8
        .text
        .global _start
    _start:
        ld s2, [a1+8]        # argv[1] ptr
        li a0, fds
        li sv, 10            # pipe
        sys
        li sv, 8             # fork
        sys
        beq a0, r0, child
        li a0, fds
        ld a0, [a0]
        li a1, buf
        li a2, 1
        li sv, 2             # read transformed byte
        sys
        li t0, buf
        lbu t1, [t0]
        li t2, 'B'
        beq t1, t2, yes
        li a0, 0
        li sv, 0
        sys
    yes:
        li a0, 1
        li sv, 0
        sys
    child:
        lbu t0, [s2]
        addi t0, t0, 1       # transform argv byte
        li t1, buf
        sb [t1], t0
        li a0, fds
        ld a0, [a0+8]
        li a1, buf
        li a2, 1
        li sv, 1             # write to pipe
        sys
        li a0, 0
        li sv, 0
        sys
        "#;
    let (trace, _) = trace_of(src, MachineConfig::with_arg("A"));
    let mut omni = engine_with_argv1(TaintPolicy::omniscient(), "A");
    let report = omni.run(&trace);
    assert!(
        !report.tainted_branches.is_empty(),
        "fork+pipe flow must be visible omnisciently"
    );

    let mut strict = engine_with_argv1(TaintPolicy::argv_direct_only(), "A");
    let report = strict.run(&trace);
    assert!(report.tainted_branches.is_empty());
}

#[test]
fn tainted_syscall_arguments_are_reported() {
    // argv[1] used as a file name for open().
    let src = r#"
        .global _start
    _start:
        ld a0, [a1+8]        # path = argv[1]
        li a1, 0
        li sv, 3             # open(argv[1], RDONLY)
        sys
        li sv, 0
        sys
        "#;
    let (trace, _) = trace_of(src, MachineConfig::with_arg("zzz"));
    let mut engine = engine_with_argv1(TaintPolicy::argv_direct_only(), "zzz");
    let report = engine.run(&trace);
    assert!(
        report
            .tainted_sys_args
            .iter()
            .any(|(_, args)| args.contains(&0)),
        "open's a0 must be reported tainted"
    );
}

#[test]
fn tainted_syscall_number_is_reported() {
    let src = r#"
        .extern atoi
        .global _start
    _start:
        ld a0, [a1+8]
        call atoi
        addi sv, a0, 6       # syscall number derived from argv
        sys
        li sv, 0
        sys
        "#;
    let (trace, _) = trace_of(src, MachineConfig::with_arg("1"));
    let mut engine = engine_with_argv1(TaintPolicy::argv_direct_only(), "1");
    let report = engine.run(&trace);
    assert!(!report.tainted_sys_nums.is_empty());
}

#[test]
fn figure3_metric_grows_with_printf() {
    let base = r#"
        .extern atoi
        .global _start
    _start:
        ld a0, [a1+8]
        call atoi
        li t0, 0x32
        blt a0, t0, small
        li a0, 0
        li sv, 0
        sys
    small:
        li a0, 1
        li sv, 0
        sys
        "#;
    let with_print = r#"
        .extern atoi, printf
        .data
    fmt: .asciz "input=%d\n"
        .text
        .global _start
    _start:
        ld a0, [a1+8]
        call atoi
        mov s0, a0
        li a0, fmt
        mov a1, s0
        call printf
        mov a0, s0
        li t0, 0x32
        blt a0, t0, small
        li a0, 0
        li sv, 0
        sys
    small:
        li a0, 1
        li sv, 0
        sys
        "#;
    let (t1, _) = trace_of(base, MachineConfig::with_arg("7"));
    let (t2, _) = trace_of(with_print, MachineConfig::with_arg("7"));
    let mut e1 = engine_with_argv1(TaintPolicy::argv_direct_only(), "7");
    let r1 = e1.run(&t1);
    let mut e2 = engine_with_argv1(TaintPolicy::argv_direct_only(), "7");
    let r2 = e2.run(&t2);
    assert!(
        r2.tainted_step_count > r1.tainted_step_count + 10,
        "printf must add tainted instructions: {} vs {}",
        r2.tainted_step_count,
        r1.tainted_step_count
    );
    assert!(
        r2.tainted_branches.len() > r1.tainted_branches.len(),
        "printf adds conditional branches over the symbolic value"
    );
}
