//! Minimal JSON support for the trace sink: a builder that emits the
//! exact subset the trace schema uses (objects of strings, unsigned
//! integers, booleans, arrays, nested objects) and a strict parser for
//! validating emitted lines. No external dependencies, mirroring the
//! hand-rolled JSON in `bench_study`.
//!
//! The parser is deliberately *narrower* than full JSON: numbers must be
//! unsigned integers (the schema never emits floats or negatives), which
//! keeps round-trips exact — no `f64` precision cliff for nanosecond
//! values.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value (trace-schema subset: integers only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the only number form the schema emits).
    U64(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys sorted (BTreeMap) for deterministic comparisons.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as an object, if it is one.
    #[must_use]
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// Renders the value back to compact JSON text. Objects render their
    /// keys in sorted order, so `parse` ∘ `render` is a canonical form.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(k, out);
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Escapes a string for embedding in a JSON string literal.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(s, &mut out);
    out
}

fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Parses one JSON document (trace-schema subset).
///
/// # Errors
///
/// Returns a byte-offset-annotated description of the first syntax
/// error, trailing garbage, or unsupported construct (floats, negative
/// numbers).
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect_byte(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", char::from(want), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b'0'..=b'9') => parse_number(bytes, pos),
        Some(b'-') => Err(format!(
            "negative number at byte {} (schema emits unsigned integers only)",
            *pos
        )),
        Some(&other) => Err(format!(
            "unexpected byte `{}` at {}",
            char::from(other),
            *pos
        )),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad keyword at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    if let Some(b'.' | b'e' | b'E') = bytes.get(*pos) {
        return Err(format!(
            "non-integer number at byte {start} (schema emits unsigned integers only)"
        ));
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .map(Json::U64)
        .ok_or_else(|| format!("bad integer at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect_byte(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("bad \\u code point at byte {}", *pos))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input came from &str, so
                // boundaries are valid).
                let rest = &bytes[*pos..];
                let s = std::str::from_utf8(rest)
                    .map_err(|_| format!("invalid UTF-8 at byte {}", *pos))?;
                let c = s.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect_byte(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect_byte(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect_byte(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        if map.insert(key.clone(), value).is_some() {
            return Err(format!("duplicate key {key:?}"));
        }
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

/// Incremental builder for one JSONL object line. Keys render in
/// insertion order (the builder's callers put `type` first by
/// convention); values are escaped on the way in.
#[derive(Debug)]
pub struct Obj {
    parts: Vec<String>,
}

impl Obj {
    /// Starts a line of the given schema `type`.
    #[must_use]
    pub fn new(type_: &str) -> Obj {
        Obj {
            parts: vec![format!("\"type\":\"{}\"", escape(type_))],
        }
    }

    /// Adds a string field.
    #[must_use]
    pub fn str(mut self, key: &str, value: &str) -> Obj {
        self.parts
            .push(format!("\"{}\":\"{}\"", escape(key), escape(value)));
        self
    }

    /// Adds an unsigned integer field.
    #[must_use]
    pub fn u64(mut self, key: &str, value: u64) -> Obj {
        self.parts.push(format!("\"{}\":{value}", escape(key)));
        self
    }

    /// Adds a boolean field.
    #[must_use]
    pub fn bool(mut self, key: &str, value: bool) -> Obj {
        self.parts.push(format!("\"{}\":{value}", escape(key)));
        self
    }

    /// Adds a field whose value is already-rendered JSON (arrays, nested
    /// objects). The caller is responsible for its validity.
    #[must_use]
    pub fn raw(mut self, key: &str, raw_json: &str) -> Obj {
        self.parts.push(format!("\"{}\":{raw_json}", escape(key)));
        self
    }

    /// Finishes the line.
    #[must_use]
    pub fn finish(self) -> String {
        format!("{{{}}}", self.parts.join(","))
    }
}

/// Renders a `[...]` JSON array of strings.
#[must_use]
pub fn str_array(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|s| format!("\"{}\"", escape(s))).collect();
    format!("[{}]", quoted.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_output_parses_back() {
        let line = Obj::new("span")
            .str("bomb", "decl_time")
            .str("profile", "BAP \"quoted\"\n")
            .u64("ns", u64::MAX)
            .bool("ok", true)
            .raw("profiles", &str_array(&["a".to_string(), "b".to_string()]))
            .finish();
        let parsed = parse(&line).expect("parse");
        let obj = parsed.as_obj().expect("object");
        assert_eq!(obj["type"].as_str(), Some("span"));
        assert_eq!(obj["profile"].as_str(), Some("BAP \"quoted\"\n"));
        assert_eq!(obj["ns"].as_u64(), Some(u64::MAX));
        assert_eq!(obj["ok"], Json::Bool(true));
        assert_eq!(
            obj["profiles"],
            Json::Arr(vec![Json::Str("a".to_string()), Json::Str("b".to_string())])
        );
    }

    #[test]
    fn canonical_render_round_trips() {
        let line = "{\"b\":1,\"a\":[true,null,\"x\\u0001\"],\"c\":{\"k\":0}}";
        let parsed = parse(line).expect("parse");
        let rendered = parsed.render();
        assert_eq!(parse(&rendered).expect("reparse"), parsed);
    }

    #[test]
    fn rejects_floats_negatives_garbage() {
        assert!(parse("{\"x\":1.5}").is_err());
        assert!(parse("{\"x\":-3}").is_err());
        assert!(parse("{\"x\":1e9}").is_err());
        assert!(parse("{\"x\":}").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(
            parse("{\"a\":1,\"a\":2}").is_err(),
            "duplicate keys rejected"
        );
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }
}
