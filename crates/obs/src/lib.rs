//! # bomblab-obs — structured tracing and metrics for the study pipeline
//!
//! The paper's evaluation is about *where* concolic execution spends
//! itself to death: constraint inflation (Fig. 3), solver exhaustion on
//! the crypto rows, per-stage cost splits. This crate is the shared
//! observability substrate that makes those costs inspectable without
//! perturbing the science:
//!
//! * **Spans** — named pipeline stages (`vm.run`, `taint.run`,
//!   `symex.run`, `solver.check`, `sa.analyze`, `lift`) record their
//!   duration per (bomb, profile, round) via [`span_ns`].
//! * **Counters and histograms** — [`counter`] and [`hist`] absorb the
//!   scattered ad-hoc instrumentation (solver cache hits, roots
//!   blasted/reused, query conflict counts) into one per-cell profile
//!   that a [`MetricsRegistry`] aggregates study-wide.
//! * **Events** — [`event`] records structured occurrences (one per
//!   solver query, say) with typed fields.
//! * **Per-cell profiles** — the study runner arms a collection context
//!   around each (bomb, profile) cell with [`arm`]/[`disarm`]; the
//!   returned [`CellProfile`] travels with the cell result and is
//!   rendered to a JSONL trace ([`trace`]) in deterministic dataset
//!   order, so the Table-II report itself never depends on timing.
//!
//! **Zero-overhead discipline** (same as `bomblab-fault`): when no
//! context is armed anywhere in the process, every instrumentation site
//! is a single relaxed atomic load — no allocation, no branch on
//! thread-local state, no clock read. `obs_overhead` in `crates/bench`
//! is the microbench backing that claim.

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod json;
pub mod trace;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Number of threads with an armed collection context. Zero in normal
/// operation, which makes every instrumentation site a single relaxed
/// load.
static ARMED_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Is an observation context armed on *any* thread? This is the fast
/// gate every site checks first; false means the site returns
/// immediately.
#[inline]
pub fn armed() -> bool {
    ARMED_THREADS.load(Ordering::Relaxed) != 0
}

/// A typed value attached to an [`event`] field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Field {
    /// Unsigned integer field.
    U64(u64),
    /// String field.
    Str(String),
    /// Boolean field.
    Bool(bool),
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Field::U64(v) => write!(f, "{v}"),
            Field::Str(s) => write!(f, "{s}"),
            Field::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// One recorded stage duration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Stage name (`vm.run`, `taint.run`, ...).
    pub stage: &'static str,
    /// Engine round the span belongs to (0 before the first round).
    pub round: u32,
    /// Per-cell monotone sequence number shared with events.
    pub seq: u64,
    /// Duration in nanoseconds.
    pub ns: u64,
}

/// One recorded structured event.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Event name (`solver.query`, ...).
    pub name: &'static str,
    /// Engine round the event belongs to.
    pub round: u32,
    /// Per-cell monotone sequence number shared with spans.
    pub seq: u64,
    /// Typed fields, in insertion order.
    pub fields: Vec<(&'static str, Field)>,
}

/// A power-of-two histogram: bucket `0` counts zero values, bucket `i`
/// (1..=64) counts values whose bit length is `i` (i.e. in
/// `[2^(i-1), 2^i)`). Cheap to record, exact on count/sum/min/max,
/// mergeable across cells and worker threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (saturating).
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Bucket counts; see the type docs for the bucketing rule.
    pub buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; 65],
        }
    }
}

impl Histogram {
    /// The bucket index a value lands in.
    #[must_use]
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.buckets[Histogram::bucket_of(value)] += 1;
    }

    /// Merges another histogram into this one. Exact: the merge of two
    /// histograms equals the histogram of the concatenated samples.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }

    /// Mean of the recorded values (0 when empty).
    #[must_use]
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The non-empty buckets as `(index, count)` pairs.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }
}

/// Everything one armed window observed: the cell identity, the span and
/// event streams, and the final counter/histogram values. Travels with
/// the study's cell results and renders to JSONL via [`trace`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CellProfile {
    /// Bomb (dataset case) name.
    pub bomb: String,
    /// Tool profile name (or a pseudo-profile like `oracle+static`).
    pub profile: String,
    /// Recorded spans, in completion order.
    pub spans: Vec<SpanRecord>,
    /// Recorded events, in emission order.
    pub events: Vec<EventRecord>,
    /// Final counter values.
    pub counters: BTreeMap<&'static str, u64>,
    /// Final histograms.
    pub hists: BTreeMap<&'static str, Histogram>,
}

impl CellProfile {
    /// A counter's final value (0 when never bumped).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Total nanoseconds and span count per stage.
    #[must_use]
    pub fn stage_totals(&self) -> BTreeMap<&'static str, (u64, u64)> {
        let mut totals: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        for span in &self.spans {
            let entry = totals.entry(span.stage).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += span.ns;
        }
        totals
    }
}

/// Study-wide aggregation of per-cell profiles: counters summed,
/// histograms merged, stage totals accumulated. Mergeable, so partial
/// registries built by worker threads combine associatively.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    /// Summed counters, keyed by site name.
    pub counters: BTreeMap<String, u64>,
    /// Merged histograms, keyed by site name.
    pub hists: BTreeMap<String, Histogram>,
    /// `(span count, total ns)` per stage.
    pub stages: BTreeMap<String, (u64, u64)>,
    /// Number of cell profiles absorbed.
    pub cells: u64,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to a counter.
    pub fn add_counter(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Records one value into a histogram.
    pub fn record(&mut self, name: &str, value: u64) {
        self.hists
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// A counter's aggregated value (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Absorbs one cell profile: counters summed, histograms merged,
    /// spans folded into the per-stage totals.
    pub fn absorb(&mut self, cell: &CellProfile) {
        self.cells += 1;
        for (&name, &value) in &cell.counters {
            *self.counters.entry(name.to_string()).or_insert(0) += value;
        }
        for (&name, hist) in &cell.hists {
            self.hists.entry(name.to_string()).or_default().merge(hist);
        }
        for (stage, (hits, ns)) in cell.stage_totals() {
            let entry = self.stages.entry(stage.to_string()).or_insert((0, 0));
            entry.0 += hits;
            entry.1 += ns;
        }
    }

    /// Merges another registry into this one (associative, so partial
    /// registries built per worker combine in any grouping).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        self.cells += other.cells;
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, hist) in &other.hists {
            self.hists.entry(name.clone()).or_default().merge(hist);
        }
        for (stage, &(hits, ns)) in &other.stages {
            let entry = self.stages.entry(stage.clone()).or_insert((0, 0));
            entry.0 += hits;
            entry.1 += ns;
        }
    }
}

struct ObsState {
    bomb: String,
    profile: String,
    round: u32,
    seq: u64,
    spans: Vec<SpanRecord>,
    events: Vec<EventRecord>,
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Histogram>,
}

thread_local! {
    static ACTIVE: RefCell<Option<ObsState>> = const { RefCell::new(None) };
}

/// Token proving an observation context is armed on this thread. Pass it
/// back to [`disarm`] (after any `catch_unwind`, so the profile survives
/// a panicking cell) to collect the [`CellProfile`].
#[must_use = "pass the token to disarm() to collect the cell profile"]
pub struct ObsToken {
    _private: (),
}

/// Arms a per-cell observation context on the current thread. Contexts
/// do not stack: arming over an existing context (possible only when a
/// panic unwound past a [`disarm`] and was contained upstream) discards
/// the stale context without double-counting the thread as armed.
pub fn arm(bomb: &str, profile: &str) -> ObsToken {
    let had_stale = ACTIVE.with(|a| {
        let mut a = a.borrow_mut();
        let had_stale = a.is_some();
        *a = Some(ObsState {
            bomb: bomb.to_string(),
            profile: profile.to_string(),
            round: 0,
            seq: 0,
            spans: Vec::new(),
            events: Vec::new(),
            counters: BTreeMap::new(),
            hists: BTreeMap::new(),
        });
        had_stale
    });
    if !had_stale {
        ARMED_THREADS.fetch_add(1, Ordering::Relaxed);
    }
    ObsToken { _private: () }
}

/// Disarms the context armed by [`arm`] and returns what it collected.
pub fn disarm(token: ObsToken) -> CellProfile {
    let _ = token;
    ARMED_THREADS.fetch_sub(1, Ordering::Relaxed);
    ACTIVE.with(|a| {
        a.borrow_mut()
            .take()
            .map_or_else(CellProfile::default, |s| CellProfile {
                bomb: s.bomb,
                profile: s.profile,
                spans: s.spans,
                events: s.events,
                counters: s.counters,
                hists: s.hists,
            })
    })
}

#[inline]
fn with_state(f: impl FnOnce(&mut ObsState)) {
    ACTIVE.with(|a| {
        if let Some(state) = a.borrow_mut().as_mut() {
            f(state);
        }
    });
}

/// Tags subsequent spans and events with the engine round number.
/// No-op when unarmed.
#[inline]
pub fn set_round(round: u32) {
    if !armed() {
        return;
    }
    with_state(|s| s.round = round);
}

/// Starts a conditional stopwatch: `Some(Instant)` when a context is
/// armed somewhere, `None` otherwise (no clock read on the fast path).
/// Pair with [`span_ns`]:
///
/// ```
/// let t = bomblab_obs::start();
/// // ... stage work ...
/// if let Some(t) = t {
///     bomblab_obs::span_ns("stage.name", t.elapsed().as_nanos() as u64);
/// }
/// ```
#[inline]
pub fn start() -> Option<Instant> {
    armed().then(Instant::now)
}

/// Records a completed stage span of `ns` nanoseconds. No-op when this
/// thread has no armed context.
#[inline]
pub fn span_ns(stage: &'static str, ns: u64) {
    if !armed() {
        return;
    }
    span_ns_slow(stage, ns);
}

#[cold]
fn span_ns_slow(stage: &'static str, ns: u64) {
    with_state(|s| {
        let seq = s.seq;
        s.seq += 1;
        s.spans.push(SpanRecord {
            stage,
            round: s.round,
            seq,
            ns,
        });
    });
}

/// Adds `delta` to a per-cell counter. Inert (a single relaxed load)
/// when nothing is armed.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if !armed() {
        return;
    }
    counter_slow(name, delta);
}

#[cold]
fn counter_slow(name: &'static str, delta: u64) {
    with_state(|s| *s.counters.entry(name).or_insert(0) += delta);
}

/// Records one value into a per-cell histogram. Inert when unarmed.
#[inline]
pub fn hist(name: &'static str, value: u64) {
    if !armed() {
        return;
    }
    hist_slow(name, value);
}

#[cold]
fn hist_slow(name: &'static str, value: u64) {
    with_state(|s| s.hists.entry(name).or_default().record(value));
}

/// Emits a structured event. The field vector is built lazily so an
/// unarmed site pays nothing for it.
#[inline]
pub fn event(name: &'static str, fields: impl FnOnce() -> Vec<(&'static str, Field)>) {
    if !armed() {
        return;
    }
    event_slow(name, fields());
}

#[cold]
fn event_slow(name: &'static str, fields: Vec<(&'static str, Field)>) {
    with_state(|s| {
        let seq = s.seq;
        s.seq += 1;
        s.events.push(EventRecord {
            name,
            round: s.round,
            seq,
            fields,
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_sites_are_inert() {
        assert!(!armed());
        counter("x", 1);
        hist("y", 7);
        span_ns("z", 10);
        set_round(3);
        event("e", || vec![("k", Field::U64(1))]);
        assert_eq!(start(), None);
        // Arming afterwards sees none of it.
        let token = arm("bomb", "tool");
        let profile = disarm(token);
        assert!(profile.spans.is_empty());
        assert!(profile.events.is_empty());
        assert!(profile.counters.is_empty());
        assert!(profile.hists.is_empty());
    }

    #[test]
    fn armed_window_collects_spans_events_counters_hists() {
        let token = arm("decl_time", "BAP");
        set_round(1);
        span_ns("vm.run", 500);
        counter("vm.steps", 120);
        counter("vm.steps", 30);
        hist("solver.conflicts", 4);
        hist("solver.conflicts", 9);
        set_round(2);
        event("solver.query", || {
            vec![
                ("outcome", Field::Str("sat".to_string())),
                ("cache_hit", Field::Bool(false)),
                ("conflicts", Field::U64(9)),
            ]
        });
        span_ns("taint.run", 250);
        let p = disarm(token);
        assert_eq!(p.bomb, "decl_time");
        assert_eq!(p.profile, "BAP");
        assert_eq!(p.counter("vm.steps"), 150);
        assert_eq!(p.spans.len(), 2);
        assert_eq!(p.spans[0].round, 1);
        assert_eq!(p.spans[1].round, 2);
        assert_eq!(p.events.len(), 1);
        assert_eq!(p.events[0].round, 2);
        let h = &p.hists["solver.conflicts"];
        assert_eq!((h.count, h.sum, h.min, h.max), (2, 13, 4, 9));
        // Sequence numbers are shared and monotone across spans + events.
        let mut seqs: Vec<u64> = p.spans.iter().map(|s| s.seq).collect();
        seqs.extend(p.events.iter().map(|e| e.seq));
        seqs.sort_unstable();
        assert_eq!(seqs, vec![0, 1, 2]);
        // Fully reset after disarm.
        assert!(!armed());
    }

    #[test]
    fn histogram_bucketing_and_merge_are_exact() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);

        let samples_a = [0u64, 1, 3, 900, 7];
        let samples_b = [2u64, 2, 1 << 40];
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut whole = Histogram::default();
        for &v in &samples_a {
            a.record(v);
            whole.record(v);
        }
        for &v in &samples_b {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole, "merge must equal the concatenated sample set");
        assert_eq!(a.count, 8);
        assert_eq!(a.min, 0);
        assert_eq!(a.max, 1 << 40);
        assert_eq!(a.mean(), whole.sum / 8);

        // Merging an empty histogram is the identity, both ways.
        let mut empty = Histogram::default();
        empty.merge(&whole);
        assert_eq!(empty, whole);
        let mut copy = whole.clone();
        copy.merge(&Histogram::default());
        assert_eq!(copy, whole);
    }

    #[test]
    fn registry_absorbs_and_merges_associatively() {
        let mk = |bomb: &str, steps: u64, ns: u64| {
            let token = arm(bomb, "tool");
            counter("vm.steps", steps);
            hist("solver.conflicts", steps / 2);
            span_ns("vm.run", ns);
            disarm(token)
        };
        let cells = [mk("a", 10, 100), mk("b", 20, 200), mk("c", 30, 300)];

        let mut whole = MetricsRegistry::new();
        for c in &cells {
            whole.absorb(c);
        }
        // Partial registries merged in a different grouping agree.
        let mut left = MetricsRegistry::new();
        left.absorb(&cells[0]);
        let mut right = MetricsRegistry::new();
        right.absorb(&cells[1]);
        right.absorb(&cells[2]);
        left.merge(&right);
        assert_eq!(left, whole);
        assert_eq!(whole.counter("vm.steps"), 60);
        assert_eq!(whole.cells, 3);
        assert_eq!(whole.stages["vm.run"], (3, 600));
        assert_eq!(whole.hists["solver.conflicts"].count, 3);
    }

    #[test]
    fn counters_aggregate_exactly_under_a_worker_pool() {
        // The study's worker pool arms one context per cell per thread;
        // the registry must add up regardless of interleaving.
        use std::sync::Mutex;
        let registry = Mutex::new(MetricsRegistry::new());
        std::thread::scope(|scope| {
            for w in 0..4u64 {
                let registry = &registry;
                scope.spawn(move || {
                    for i in 0..8u64 {
                        let token = arm(&format!("bomb{w}_{i}"), "tool");
                        counter("work.items", 1);
                        counter("work.units", w * 8 + i);
                        hist("work.size", i);
                        span_ns("work.stage", 10);
                        let profile = disarm(token);
                        registry.lock().expect("registry lock").absorb(&profile);
                    }
                });
            }
        });
        let reg = registry.into_inner().expect("registry");
        assert_eq!(reg.cells, 32);
        assert_eq!(reg.counter("work.items"), 32);
        assert_eq!(reg.counter("work.units"), (0..32).sum::<u64>());
        assert_eq!(reg.hists["work.size"].count, 32);
        assert_eq!(reg.stages["work.stage"], (32, 320));
        assert!(!armed(), "all contexts disarmed");
    }

    #[test]
    fn stage_totals_fold_spans_per_stage() {
        let token = arm("b", "p");
        span_ns("vm.run", 10);
        span_ns("vm.run", 20);
        span_ns("taint.run", 5);
        let p = disarm(token);
        let totals = p.stage_totals();
        assert_eq!(totals["vm.run"], (2, 30));
        assert_eq!(totals["taint.run"], (1, 5));
    }
}
