//! The JSONL trace schema: renderers from [`CellProfile`](crate::CellProfile)
//! to trace lines, and a strict validator used by the round-trip tests,
//! the `bomblab tracecheck` subcommand, and CI.
//!
//! Every line is one JSON object with a `type` field. Versioning is the
//! `schema` field on the `study_start` line ([`SCHEMA_VERSION`]). Types:
//!
//! | type | meaning |
//! |---|---|
//! | `study_start` | header: schema version, dataset size, profile lineup |
//! | `sweep_start` | chaos-only: seed + armed fault plan of the next sweep |
//! | `span` | one stage duration for a (bomb, profile, round) |
//! | `event` | one structured occurrence (e.g. a solver query) |
//! | `counter` | final per-cell counter value |
//! | `hist` | final per-cell histogram (count/sum/min/max + log2 buckets) |
//! | `cell` | one (bomb, profile) outcome with wall clock and totals |
//! | `stage_total` | study-wide span aggregate for one stage |
//! | `slow_cell` | profile sidecar: a slowest-cells ranking entry |
//! | `hot_cell` | profile sidecar: a hottest-queries ranking entry |
//! | `summary` | trailer: line/cell totals for quick sanity checks |
//!
//! The validator is *strict*: unknown types, missing required fields,
//! wrongly typed fields, and unknown extra fields are all errors, so any
//! schema drift fails CI instead of silently changing the format.

use crate::json::{self, Json, Obj};
use crate::{CellProfile, Field};

/// Version stamped on every `study_start` line.
///
/// History: v1 — initial format; v2 — optional VM-dispatch and SAT
/// hot-loop counters on `cell` lines (`vm_steps`, `bb_*`, `steps_decoded`,
/// `blocker_skips`, `lbd_evictions`); v3 — durability fields: optional
/// retry/quarantine counters and persistent-cache counters on `cell`
/// lines (`retries`, `quarantined`, `retry_backoff_ns`, `disk_cache_hits`,
/// `cache_segments_rejected`) and checkpoint counters on the `summary`
/// trailer (`cells_replayed`, `checkpoint_io_errors`); v4 — scaling
/// fields: optional SAT `propagations` and shared in-process cache
/// counters (`shared_cache_hits`, `shared_cache_stores`,
/// `shared_cache_rejected`) on `cell` lines, plus cost-aware scheduler
/// counters (`sched_costed`, `sched_estimated`) on the `summary` trailer,
/// and a sanity bound tying `blocker_skips` to `propagations`; v5 —
/// trace-arena fields: optional recording counters on `cell` lines
/// (`trace_steps_full`, `trace_steps_elided`, `trace_arena_bytes`) with a
/// sanity bound requiring a non-empty arena whenever any step was
/// recorded. All additions are optional fields, so v1–v4 traces still
/// validate (each bound applies only when its counters are present).
pub const SCHEMA_VERSION: u64 = 5;

/// Field kinds the validator distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Str,
    U64,
    Bool,
    Arr,
    Obj,
}

impl Kind {
    fn matches(self, v: &Json) -> bool {
        match self {
            Kind::Str => matches!(v, Json::Str(_)),
            Kind::U64 => matches!(v, Json::U64(_)),
            Kind::Bool => matches!(v, Json::Bool(_)),
            Kind::Arr => matches!(v, Json::Arr(_)),
            Kind::Obj => matches!(v, Json::Obj(_)),
        }
    }

    fn name(self) -> &'static str {
        match self {
            Kind::Str => "string",
            Kind::U64 => "unsigned integer",
            Kind::Bool => "boolean",
            Kind::Arr => "array",
            Kind::Obj => "object",
        }
    }
}

/// `(type, required fields, optional fields)`.
type TypeSchema = (
    &'static str,
    &'static [(&'static str, Kind)],
    &'static [(&'static str, Kind)],
);

const SCHEMA: &[TypeSchema] = &[
    (
        "study_start",
        &[
            ("schema", Kind::U64),
            ("bombs", Kind::U64),
            ("profiles", Kind::Arr),
        ],
        &[],
    ),
    (
        "sweep_start",
        &[("seed", Kind::U64), ("plan", Kind::Str)],
        &[],
    ),
    (
        "span",
        &[
            ("bomb", Kind::Str),
            ("profile", Kind::Str),
            ("stage", Kind::Str),
            ("round", Kind::U64),
            ("seq", Kind::U64),
            ("ns", Kind::U64),
        ],
        &[],
    ),
    (
        "event",
        &[
            ("bomb", Kind::Str),
            ("profile", Kind::Str),
            ("name", Kind::Str),
            ("round", Kind::U64),
            ("seq", Kind::U64),
            ("fields", Kind::Obj),
        ],
        &[],
    ),
    (
        "counter",
        &[
            ("bomb", Kind::Str),
            ("profile", Kind::Str),
            ("name", Kind::Str),
            ("value", Kind::U64),
        ],
        &[],
    ),
    (
        "hist",
        &[
            ("bomb", Kind::Str),
            ("profile", Kind::Str),
            ("name", Kind::Str),
            ("count", Kind::U64),
            ("sum", Kind::U64),
            ("min", Kind::U64),
            ("max", Kind::U64),
            ("buckets", Kind::Arr),
        ],
        &[],
    ),
    (
        "cell",
        &[
            ("bomb", Kind::Str),
            ("profile", Kind::Str),
            ("outcome", Kind::Str),
            ("wall_ns", Kind::U64),
            ("rounds", Kind::U64),
            ("queries", Kind::U64),
        ],
        &[
            ("simplify_hits", Kind::U64),
            ("terms_pruned", Kind::U64),
            ("slices", Kind::U64),
            ("witness_hits", Kind::U64),
            ("simplify_ns", Kind::U64),
            ("interval_ns", Kind::U64),
            ("slice_ns", Kind::U64),
            ("vm_steps", Kind::U64),
            ("bb_hits", Kind::U64),
            ("bb_misses", Kind::U64),
            ("bb_invalidations", Kind::U64),
            ("steps_decoded", Kind::U64),
            ("blocker_skips", Kind::U64),
            ("lbd_evictions", Kind::U64),
            ("branches_proven_independent", Kind::U64),
            ("independent_skips", Kind::U64),
            ("static_slice_checked", Kind::U64),
            ("static_slice_agreement", Kind::U64),
            ("retries", Kind::U64),
            ("quarantined", Kind::Bool),
            ("retry_backoff_ns", Kind::U64),
            ("disk_cache_hits", Kind::U64),
            ("cache_segments_rejected", Kind::U64),
            ("propagations", Kind::U64),
            ("shared_cache_hits", Kind::U64),
            ("shared_cache_stores", Kind::U64),
            ("shared_cache_rejected", Kind::U64),
            ("trace_steps_full", Kind::U64),
            ("trace_steps_elided", Kind::U64),
            ("trace_arena_bytes", Kind::U64),
            ("expected", Kind::Str),
            ("crash_stage", Kind::Str),
            ("crash_message", Kind::Str),
        ],
    ),
    (
        "stage_total",
        &[
            ("stage", Kind::Str),
            ("spans", Kind::U64),
            ("ns", Kind::U64),
        ],
        &[],
    ),
    (
        "slow_cell",
        &[
            ("rank", Kind::U64),
            ("bomb", Kind::Str),
            ("profile", Kind::Str),
            ("wall_ns", Kind::U64),
        ],
        &[],
    ),
    (
        "hot_cell",
        &[
            ("rank", Kind::U64),
            ("bomb", Kind::Str),
            ("profile", Kind::Str),
            ("queries", Kind::U64),
            ("solver_ns", Kind::U64),
        ],
        &[],
    ),
    (
        "summary",
        &[
            ("cells", Kind::U64),
            ("spans", Kind::U64),
            ("events", Kind::U64),
            ("counters", Kind::U64),
        ],
        &[
            ("cells_replayed", Kind::U64),
            ("checkpoint_io_errors", Kind::U64),
            ("sched_costed", Kind::U64),
            ("sched_estimated", Kind::U64),
        ],
    ),
];

/// Validates one trace line against the schema.
///
/// # Errors
///
/// Returns a description of the first problem: JSON syntax errors,
/// non-object lines, unknown `type`, missing or wrongly typed required
/// fields, or fields the schema does not know.
pub fn validate_line(line: &str) -> Result<(), String> {
    let value = json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
    let obj = value.as_obj().ok_or("line is not a JSON object")?;
    let type_ = obj
        .get("type")
        .and_then(Json::as_str)
        .ok_or("missing string `type` field")?;
    let (_, required, optional) = SCHEMA
        .iter()
        .find(|(t, _, _)| *t == type_)
        .ok_or_else(|| format!("unknown line type `{type_}`"))?;
    for (field, kind) in *required {
        match obj.get(*field) {
            None => return Err(format!("{type_}: missing required field `{field}`")),
            Some(v) if !kind.matches(v) => {
                return Err(format!(
                    "{type_}: field `{field}` must be a {}",
                    kind.name()
                ))
            }
            Some(_) => {}
        }
    }
    for (key, value) in obj {
        if key == "type" {
            continue;
        }
        let known = required
            .iter()
            .chain(optional.iter())
            .find(|(f, _)| f == key);
        match known {
            None => return Err(format!("{type_}: unknown field `{key}`")),
            Some((_, kind)) if !kind.matches(value) => {
                return Err(format!("{type_}: field `{key}` must be a {}", kind.name()))
            }
            Some(_) => {}
        }
    }
    // Semantic (v3): a quarantined cell was by definition retried at least
    // once — the verdict needs two identical failures to form.
    if type_ == "cell" && obj.get("quarantined") == Some(&Json::Bool(true)) {
        let retries = obj.get("retries").and_then(Json::as_u64).unwrap_or(0);
        if retries < 1 {
            return Err("cell: quarantined without at least one retry".to_string());
        }
    }
    // Semantic (v4): blocker skips happen inside watch-list walks, which
    // only propagations drive — a cell reporting skips without a single
    // propagation is instrumentation drift, and a skip count orders of
    // magnitude beyond the walked-entries ceiling (conservatively 4096
    // watchers per propagated literal) is the tombstoned-watcher
    // re-walking pathology this bound was added to catch.
    if type_ == "cell" {
        let skips = obj.get("blocker_skips").and_then(Json::as_u64);
        let props = obj.get("propagations").and_then(Json::as_u64);
        if let (Some(skips), Some(props)) = (skips, props) {
            if skips > 0 && props == 0 {
                return Err("cell: blocker_skips without any propagations".to_string());
            }
            if skips > props.saturating_mul(4096) {
                return Err(format!(
                    "cell: blocker_skips ({skips}) exceeds {} (propagations x 4096) — \
                     watch lists are re-walking dead entries",
                    props.saturating_mul(4096)
                ));
            }
        }
    }
    // Semantic (v5): every recorded step occupies a fixed-size table row,
    // so a cell reporting steps with a zero-byte arena is instrumentation
    // drift (the counters and the arena are maintained by the same
    // recorder).
    if type_ == "cell" {
        let full = obj.get("trace_steps_full").and_then(Json::as_u64);
        let elided = obj.get("trace_steps_elided").and_then(Json::as_u64);
        let bytes = obj.get("trace_arena_bytes").and_then(Json::as_u64);
        let steps = full.unwrap_or(0) + elided.unwrap_or(0);
        if let Some(bytes) = bytes {
            if steps > 0 && bytes == 0 {
                return Err(format!(
                    "cell: {steps} recorded trace steps with an empty arena"
                ));
            }
        }
    }
    Ok(())
}

/// Validates every non-empty line of a JSONL document.
///
/// # Errors
///
/// Returns `(1-based line number, description)` of the first invalid
/// line.
pub fn validate_lines(text: &str) -> Result<usize, (usize, String)> {
    let mut checked = 0;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_line(line).map_err(|e| (i + 1, e))?;
        checked += 1;
    }
    Ok(checked)
}

fn field_json(field: &Field) -> String {
    match field {
        Field::U64(v) => v.to_string(),
        Field::Str(s) => format!("\"{}\"", json::escape(s)),
        Field::Bool(b) => b.to_string(),
    }
}

/// Renders one cell profile as trace lines (spans, events, counters,
/// histograms), appending to `out`. Deterministic given the profile.
pub fn render_cell(cell: &CellProfile, out: &mut Vec<String>) {
    for span in &cell.spans {
        out.push(
            Obj::new("span")
                .str("bomb", &cell.bomb)
                .str("profile", &cell.profile)
                .str("stage", span.stage)
                .u64("round", u64::from(span.round))
                .u64("seq", span.seq)
                .u64("ns", span.ns)
                .finish(),
        );
    }
    for event in &cell.events {
        let fields: Vec<String> = event
            .fields
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", json::escape(k), field_json(v)))
            .collect();
        out.push(
            Obj::new("event")
                .str("bomb", &cell.bomb)
                .str("profile", &cell.profile)
                .str("name", event.name)
                .u64("round", u64::from(event.round))
                .u64("seq", event.seq)
                .raw("fields", &format!("{{{}}}", fields.join(",")))
                .finish(),
        );
    }
    for (&name, &value) in &cell.counters {
        out.push(
            Obj::new("counter")
                .str("bomb", &cell.bomb)
                .str("profile", &cell.profile)
                .str("name", name)
                .u64("value", value)
                .finish(),
        );
    }
    for (&name, hist) in &cell.hists {
        let buckets: Vec<String> = hist
            .nonzero_buckets()
            .map(|(i, c)| format!("[{i},{c}]"))
            .collect();
        out.push(
            Obj::new("hist")
                .str("bomb", &cell.bomb)
                .str("profile", &cell.profile)
                .str("name", name)
                .u64("count", hist.count)
                .u64("sum", hist.sum)
                .u64("min", hist.min)
                .u64("max", hist.max)
                .raw("buckets", &format!("[{}]", buckets.join(",")))
                .finish(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{arm, counter, disarm, event, hist, set_round, span_ns};

    #[test]
    fn rendered_cells_validate_and_round_trip() {
        let token = arm("decl_time", "BAP");
        set_round(1);
        span_ns("vm.run", 12345);
        counter("vm.steps", 777);
        hist("solver.conflicts", 3);
        hist("solver.conflicts", 200);
        event("solver.query", || {
            vec![
                ("outcome", Field::Str("sat".to_string())),
                ("cache_hit", Field::Bool(true)),
                ("conflicts", Field::U64(3)),
            ]
        });
        let profile = disarm(token);
        let mut lines = Vec::new();
        render_cell(&profile, &mut lines);
        assert_eq!(lines.len(), 4, "span + event + counter + hist");
        for line in &lines {
            validate_line(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        // Round-trip: the parsed values carry the recorded data exactly.
        let span = json::parse(&lines[0]).expect("span json");
        let span = span.as_obj().expect("obj");
        assert_eq!(span["stage"].as_str(), Some("vm.run"));
        assert_eq!(span["ns"].as_u64(), Some(12345));
        assert_eq!(span["round"].as_u64(), Some(1));
        let event_line = json::parse(&lines[1]).expect("event json");
        let fields = event_line.as_obj().expect("obj")["fields"]
            .as_obj()
            .expect("fields obj")
            .clone();
        assert_eq!(fields["outcome"].as_str(), Some("sat"));
        assert_eq!(fields["cache_hit"], Json::Bool(true));
        assert_eq!(fields["conflicts"].as_u64(), Some(3));
        let hist_line = json::parse(&lines[3]).expect("hist json");
        let hist_obj = hist_line.as_obj().expect("obj");
        assert_eq!(hist_obj["count"].as_u64(), Some(2));
        assert_eq!(hist_obj["sum"].as_u64(), Some(203));
        assert_eq!(hist_obj["min"].as_u64(), Some(3));
        assert_eq!(hist_obj["max"].as_u64(), Some(200));
    }

    #[test]
    fn validator_rejects_schema_drift() {
        // Unknown type.
        assert!(validate_line("{\"type\":\"mystery\"}").is_err());
        // Missing required field.
        assert!(validate_line(
            "{\"type\":\"counter\",\"bomb\":\"b\",\"profile\":\"p\",\"name\":\"n\"}"
        )
        .is_err());
        // Wrongly typed field.
        assert!(validate_line(
            "{\"type\":\"counter\",\"bomb\":\"b\",\"profile\":\"p\",\"name\":\"n\",\"value\":\"9\"}"
        )
        .is_err());
        // Unknown extra field.
        assert!(validate_line(
            "{\"type\":\"counter\",\"bomb\":\"b\",\"profile\":\"p\",\"name\":\"n\",\"value\":9,\"extra\":1}"
        )
        .is_err());
        // Not an object / not JSON.
        assert!(validate_line("[1,2]").is_err());
        assert!(validate_line("{nope}").is_err());
        // The golden positive case.
        assert!(validate_line(
            "{\"type\":\"counter\",\"bomb\":\"b\",\"profile\":\"p\",\"name\":\"n\",\"value\":9}"
        )
        .is_ok());
    }

    #[test]
    fn v3_durability_fields_validate() {
        let base = "\"type\":\"cell\",\"bomb\":\"b\",\"profile\":\"p\",\"outcome\":\"Y\",\
                    \"wall_ns\":1,\"rounds\":1,\"queries\":1";
        // All durability fields present and well typed.
        assert!(validate_line(&format!(
            "{{{base},\"retries\":2,\"quarantined\":true,\"retry_backoff_ns\":30000000,\
             \"disk_cache_hits\":4,\"cache_segments_rejected\":1}}"
        ))
        .is_ok());
        // A boolean where an integer belongs is drift.
        assert!(validate_line(&format!("{{{base},\"retries\":true}}")).is_err());
        // Quarantine without a retry is semantically impossible.
        assert!(validate_line(&format!("{{{base},\"quarantined\":true}}")).is_err());
        assert!(validate_line(&format!("{{{base},\"quarantined\":true,\"retries\":0}}")).is_err());
        // Quarantined=false needs no retries.
        assert!(validate_line(&format!("{{{base},\"quarantined\":false}}")).is_ok());
        // Summary trailer accepts the checkpoint counters.
        assert!(validate_line(
            "{\"type\":\"summary\",\"cells\":1,\"spans\":0,\"events\":0,\"counters\":0,\
             \"cells_replayed\":1,\"checkpoint_io_errors\":0}"
        )
        .is_ok());
    }

    #[test]
    fn v4_scaling_fields_validate() {
        let base = "\"type\":\"cell\",\"bomb\":\"b\",\"profile\":\"p\",\"outcome\":\"Y\",\
                    \"wall_ns\":1,\"rounds\":1,\"queries\":1";
        // All scaling fields present and well typed.
        assert!(validate_line(&format!(
            "{{{base},\"propagations\":500,\"blocker_skips\":900,\"shared_cache_hits\":3,\
             \"shared_cache_stores\":2,\"shared_cache_rejected\":1}}"
        ))
        .is_ok());
        // A string where an integer belongs is drift.
        assert!(validate_line(&format!("{{{base},\"shared_cache_hits\":\"3\"}}")).is_err());
        // Blocker skips without a single propagation is impossible.
        assert!(validate_line(&format!(
            "{{{base},\"blocker_skips\":7,\"propagations\":0}}"
        ))
        .is_err());
        // A skip count beyond the watched-entries ceiling is the
        // dead-watcher re-walk pathology.
        assert!(validate_line(&format!(
            "{{{base},\"blocker_skips\":355219364,\"propagations\":10}}"
        ))
        .is_err());
        assert!(validate_line(&format!(
            "{{{base},\"blocker_skips\":40960,\"propagations\":10}}"
        ))
        .is_ok());
        // Old traces without `propagations` are not judged by the bound.
        assert!(validate_line(&format!("{{{base},\"blocker_skips\":355219364}}")).is_ok());
        // Summary trailer accepts the scheduler counters.
        assert!(validate_line(
            "{\"type\":\"summary\",\"cells\":1,\"spans\":0,\"events\":0,\"counters\":0,\
             \"sched_costed\":80,\"sched_estimated\":8}"
        )
        .is_ok());
    }

    #[test]
    fn v5_trace_arena_fields_validate() {
        let base = "\"type\":\"cell\",\"bomb\":\"b\",\"profile\":\"p\",\"outcome\":\"Y\",\
                    \"wall_ns\":1,\"rounds\":1,\"queries\":1";
        // All trace-arena fields present and well typed.
        assert!(validate_line(&format!(
            "{{{base},\"trace_steps_full\":120,\"trace_steps_elided\":80,\
             \"trace_arena_bytes\":8192}}"
        ))
        .is_ok());
        // A string where an integer belongs is drift.
        assert!(validate_line(&format!("{{{base},\"trace_steps_elided\":\"80\"}}")).is_err());
        // Recorded steps with an empty arena are impossible: every step
        // occupies a table row.
        assert!(validate_line(&format!(
            "{{{base},\"trace_steps_full\":1,\"trace_arena_bytes\":0}}"
        ))
        .is_err());
        assert!(validate_line(&format!(
            "{{{base},\"trace_steps_elided\":5,\"trace_arena_bytes\":0}}"
        ))
        .is_err());
        // Zero steps and zero bytes is a fine (untraced) cell.
        assert!(validate_line(&format!(
            "{{{base},\"trace_steps_full\":0,\"trace_steps_elided\":0,\"trace_arena_bytes\":0}}"
        ))
        .is_ok());
        // Old traces without the byte counter are not judged by the bound.
        assert!(validate_line(&format!("{{{base},\"trace_steps_full\":7}}")).is_ok());
    }

    #[test]
    fn validate_lines_reports_the_offending_line_number() {
        let doc = "{\"type\":\"study_start\",\"schema\":1,\"bombs\":2,\"profiles\":[\"BAP\"]}\n\n{\"type\":\"bogus\"}\n";
        let err = validate_lines(doc).expect_err("third line is invalid");
        assert_eq!(err.0, 3);
        let ok_doc = "{\"type\":\"summary\",\"cells\":1,\"spans\":2,\"events\":3,\"counters\":4}\n";
        assert_eq!(validate_lines(ok_doc), Ok(1));
    }
}
