//! Dataset sanity: seeds never detonate, triggers always do.

use bomblab_bombs::{all_cases, dataset_stats, negative_pow};

const BUDGET: u64 = 2_000_000;

#[test]
fn every_trigger_detonates_and_every_seed_does_not() {
    for case in all_cases() {
        assert!(
            !case.subject.detonates(&case.subject.seed, BUDGET),
            "{}: seed must not detonate",
            case.subject.name
        );
        assert!(
            case.subject.detonates(&case.trigger, BUDGET),
            "{}: trigger must detonate",
            case.subject.name
        );
    }
}

#[test]
fn dataset_has_22_bombs_covering_all_categories() {
    let cases = all_cases();
    assert_eq!(cases.len(), 22);
    let categories: std::collections::BTreeSet<&str> =
        cases.iter().map(|c| c.category.as_str()).collect();
    assert_eq!(
        categories.len(),
        9,
        "nine challenge categories expected, got {categories:?}"
    );
    // Every case carries a paper oracle row.
    assert!(cases.iter().all(|c| c.paper_expected.is_some()));
}

#[test]
fn negative_bomb_never_detonates() {
    let case = negative_pow();
    assert!(!case.subject.detonates(&case.subject.seed, BUDGET));
    // A few probing inputs, for good measure.
    for arg in ["0", "1", "9", "Z", "\u{7f}"] {
        let input = bomblab_concolic::WorldInput::with_arg(arg);
        assert!(
            !case.subject.detonates(&input, BUDGET),
            "negative bomb detonated on {arg:?}"
        );
    }
}

#[test]
fn dataset_sizes_have_the_papers_shape() {
    let stats = dataset_stats();
    assert_eq!(stats.count, 22);
    // Tight range, kilobyte scale — the BVM analogue of 10-25 KB.
    assert!(stats.min_bytes > 1000, "min {}", stats.min_bytes);
    assert!(
        stats.max_bytes < 6 * stats.min_bytes,
        "range should be tight: {}..{}",
        stats.min_bytes,
        stats.max_bytes
    );
    assert!(stats.median_bytes >= stats.min_bytes && stats.median_bytes <= stats.max_bytes);
}
