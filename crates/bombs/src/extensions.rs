//! Extension bombs beyond the paper's Table II.
//!
//! The paper closes its challenge list with: *"we do not intend to propose
//! a complete list of all challenges. Loop is an exception which we
//! haven't discussed... Users may extend the list with new challenges
//! following our approach."* This module does exactly that: three
//! additional bombs in the paper's style, usable with the same engine and
//! study harness.

use bomblab_concolic::{StudyCase, Subject, WorldInput};
use bomblab_rt::link_program_dynamic;

fn subject(name: &str, src: &str, seed: WorldInput) -> Subject {
    let (image, lib) = link_program_dynamic(src)
        .unwrap_or_else(|e| panic!("extension bomb `{name}` failed to build: {e}"));
    Subject {
        name: name.to_string(),
        image,
        lib: Some(lib),
        seed,
    }
}

/// The loop challenge the paper explicitly defers: the bomb requires an
/// input-dependent iteration *count*, so each candidate count is a
/// distinct path — the classic loop path-explosion shape.
pub fn loop_count() -> StudyCase {
    let src = r#"
        .extern atoi, bomb_boom
        .global _start
    _start:
        ld a0, [a1+8]
        call atoi
        li t0, 0             # counter
        li t1, 0             # accumulator
    loop:
        bge t0, a0, done     # iterate atoi(argv[1]) times
        addi t1, t1, 3
        addi t0, t0, 1
        jmp loop
    done:
        li t2, 51            # 17 iterations * 3
        bne t1, t2, no
        call bomb_boom
    no: li a0, 0
        li sv, 0
        sys
    "#;
    StudyCase {
        subject: subject("ext_loop_count", src, WorldInput::with_arg("03")),
        category: "Extension: Loop".to_string(),
        description: "Bomb requires an input-dependent loop iteration count".to_string(),
        trigger: WorldInput::with_arg("17"),
        paper_expected: None,
    }
}

/// Stdin as the symbolic source — a declaration challenge the paper's
/// dataset leaves out (its tools only symbolize argv).
pub fn stdin_guard() -> StudyCase {
    let src = r#"
        .extern bomb_boom
        .data
    buf: .space 8
        .text
        .global _start
    _start:
        li a0, 0
        li a1, buf
        li a2, 2
        li sv, 2             # read(stdin, buf, 2)
        sys
        li t0, buf
        lbu t1, [t0]
        lbu t2, [t0+1]
        shli t2, t2, 8
        or t1, t1, t2
        li t0, 0x4B4F        # "OK"
        bne t1, t0, no
        call bomb_boom
    no: li a0, 0
        li sv, 0
        sys
    "#;
    let seed = WorldInput {
        stdin: b"??".to_vec(),
        ..WorldInput::with_arg("x")
    };
    let trigger = WorldInput {
        stdin: b"OK".to_vec(),
        ..WorldInput::with_arg("x")
    };
    StudyCase {
        subject: subject("ext_stdin_guard", src, seed),
        category: "Extension: Stdin".to_string(),
        description: "Bomb conditions on bytes read from standard input".to_string(),
        trigger,
        paper_expected: None,
    }
}

/// A double covert hop: the value crosses a thread *and then* a file —
/// composing two Table-II challenges, as real malware would.
pub fn chained_covert() -> StudyCase {
    let src = r#"
        .extern atoi, bomb_boom
        .data
    path: .asciz "relay"
    buf:  .space 8
        .text
        .global _start
    _start:
        ld a0, [a1+8]
        call atoi
        mov a1, a0
        li a0, worker
        li sv, 11            # thread_spawn(worker, x): hop 1
        sys
        li sv, 12            # join
        sys
        li a0, path
        li a1, 0
        li sv, 3             # open("relay")
        sys
        mov s1, a0
        mov a0, s1
        li a1, buf
        li a2, 1
        li sv, 2             # read the relayed byte: hop 2
        sys
        li t0, buf
        lbu t1, [t0]
        li t2, 77
        bne t1, t2, no
        call bomb_boom
    no: li a0, 0
        li sv, 0
        sys
    worker:
        addi s2, a0, 7       # transform in the thread
        li a0, path
        li a1, 1
        li sv, 3             # open("relay", write)
        sys
        mov s3, a0
        li t0, buf
        sb [t0], s2
        mov a0, s3
        li a1, buf
        li a2, 1
        li sv, 1             # write transformed byte
        sys
        mov a0, s3
        li sv, 4
        sys
        li a0, 0
        ret
    "#;
    StudyCase {
        subject: subject("ext_chained_covert", src, WorldInput::with_arg("10")),
        category: "Extension: Chained Covert".to_string(),
        description: "Symbolic value crosses a thread and then a file".to_string(),
        trigger: WorldInput::with_arg("70"),
        paper_expected: None,
    }
}

/// All extension bombs.
pub fn extension_cases() -> Vec<StudyCase> {
    vec![loop_count(), stdin_guard(), chained_covert()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use bomblab_concolic::{ground_truth, Engine, Outcome, ToolProfile};

    const BUDGET: u64 = 2_000_000;

    #[test]
    fn extension_seeds_and_triggers_behave() {
        for case in extension_cases() {
            assert!(
                !case.subject.detonates(&case.subject.seed, BUDGET),
                "{}: seed must not detonate",
                case.subject.name
            );
            assert!(
                case.subject.detonates(&case.trigger, BUDGET),
                "{}: trigger must detonate",
                case.subject.name
            );
        }
    }

    #[test]
    fn omniscient_engine_solves_the_loop_bomb() {
        let case = loop_count();
        let ground = ground_truth(&case.subject, &case.trigger);
        let attempt = Engine::new(ToolProfile::omniscient()).explore(&case.subject, &ground);
        assert_eq!(
            attempt.outcome,
            Outcome::Solved,
            "generational search unrolls the loop one flip at a time"
        );
    }

    #[test]
    fn omniscient_engine_solves_the_stdin_bomb() {
        let case = stdin_guard();
        let ground = ground_truth(&case.subject, &case.trigger);
        let attempt = Engine::new(ToolProfile::omniscient()).explore(&case.subject, &ground);
        assert_eq!(attempt.outcome, Outcome::Solved);
        assert_eq!(attempt.solved_input.unwrap().stdin, b"OK");
    }

    #[test]
    fn paper_tools_fail_the_stdin_bomb_at_declaration() {
        let case = stdin_guard();
        let ground = ground_truth(&case.subject, &case.trigger);
        let attempt = Engine::new(ToolProfile::bap()).explore(&case.subject, &ground);
        assert_ne!(attempt.outcome, Outcome::Solved);
    }

    #[test]
    fn omniscient_engine_solves_the_chained_covert_bomb() {
        let case = chained_covert();
        let ground = ground_truth(&case.subject, &case.trigger);
        let attempt = Engine::new(ToolProfile::omniscient()).explore(&case.subject, &ground);
        assert_eq!(attempt.outcome, Outcome::Solved);
        let arg = attempt.solved_input.unwrap().argv1;
        assert!(arg.starts_with(b"70"), "x + 7 == 77 wants 70, got {arg:?}");
    }

    #[test]
    fn paper_tools_fail_the_chained_covert_bomb() {
        let case = chained_covert();
        let ground = ground_truth(&case.subject, &case.trigger);
        for profile in ToolProfile::paper_lineup() {
            let attempt = Engine::new(profile.clone()).explore(&case.subject, &ground);
            assert_eq!(
                attempt.outcome,
                Outcome::Es2,
                "{} must lose the chained flow",
                profile.name
            );
        }
    }
}
