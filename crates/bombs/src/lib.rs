//! # bomblab-bombs — the logic-bomb dataset
//!
//! The 22 challenge programs of the DSN'17 paper's Table II, plus the
//! negative bomb from Section V.C and the Figure-3 instruction-inflation
//! program. Every bomb is a dynamically linked BVM executable whose bomb
//! path prints `BOOM` and exits 42.
//!
//! ```
//! use bomblab_bombs::dataset;
//!
//! let cases = dataset::all_cases();
//! assert_eq!(cases.len(), 22);
//! // Every case knows its trigger; the seed never detonates.
//! let first = &cases[0];
//! assert!(first.subject.detonates(&first.trigger, 2_000_000));
//! assert!(!first.subject.detonates(&first.subject.seed, 2_000_000));
//! ```

#![warn(missing_docs)]

pub mod dataset;
pub mod extensions;
pub mod figure3;

pub use dataset::{all_cases, negative_pow};
pub use extensions::extension_cases;

/// Dataset statistics for the paper's Section V.A size claims.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetStats {
    /// Number of bombs.
    pub count: usize,
    /// Smallest executable (loadable bytes, program + shared library).
    pub min_bytes: usize,
    /// Largest executable.
    pub max_bytes: usize,
    /// Median executable size.
    pub median_bytes: usize,
}

/// Computes size statistics over the dataset (paper Section V.A reports
/// 10–25 KB with a 14 KB median for its gcc-built x86_64 binaries).
pub fn dataset_stats() -> DatasetStats {
    let mut sizes: Vec<usize> = all_cases()
        .iter()
        .map(|c| {
            c.subject.image.loadable_size()
                + c.subject
                    .lib
                    .as_ref()
                    .map_or(0, bomblab_isa::image::Image::loadable_size)
        })
        .collect();
    sizes.sort_unstable();
    DatasetStats {
        count: sizes.len(),
        min_bytes: sizes[0],
        max_bytes: *sizes.last().expect("non-empty dataset"),
        median_bytes: sizes[sizes.len() / 2],
    }
}
