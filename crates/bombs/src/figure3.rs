//! The Figure-3 program: constraint inflation from external calls.
//!
//! The paper initializes `argv[1] = 7` and compares the number of
//! instructions that propagate symbolic values with the `printf` line
//! commented out (5 in the paper) versus enabled (66). The shape — a
//! single library call multiplying the tainted-instruction count — is what
//! the reproduction checks.

/// Source of the Figure-3 program.
///
/// With `with_print == false`, only the `atoi`/compare chain touches the
/// symbolic value; with `true`, a `printf("%d")` call drags the formatted
/// printer's loops and branches into the tainted slice.
pub fn figure3_source(with_print: bool) -> String {
    let print_part = if with_print {
        r#"
        mov s0, a0
        li a0, fmt
        mov a1, s0
        call printf
        mov a0, s0
        "#
    } else {
        ""
    };
    format!(
        r#"
        .extern atoi, printf, bomb_boom
        .data
    fmt: .asciz "input=%d\n"
        .text
        .global _start
    _start:
        ld a0, [a1+8]
        call atoi
{print_part}
        li t0, 0x32
        blt a0, t0, small
        call bomb_boom
    small:
        li a0, 0
        li sv, 0
        sys
    "#
    )
}

/// A parameterized variant with `k` consecutive `printf` calls, used by
/// the external-call scalability sweep (bench `scale_external`).
pub fn external_calls_source(k: usize) -> String {
    let mut prints = String::new();
    for _ in 0..k {
        prints.push_str(
            r#"
        li a0, fmt
        mov a1, s0
        call printf
        "#,
        );
    }
    format!(
        r#"
        .extern atoi, printf, bomb_boom
        .data
    fmt: .asciz "v=%d\n"
        .text
        .global _start
    _start:
        ld a0, [a1+8]
        call atoi
        mov s0, a0
{prints}
        li t0, 0x32
        blt s0, t0, small
        call bomb_boom
    small:
        li a0, 0
        li sv, 0
        sys
    "#
    )
}
