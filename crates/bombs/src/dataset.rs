//! The 22-bomb dataset: one program per Table-II row of the DSN'17 paper.
//!
//! Every bomb prints `BOOM` and exits 42 (via the runtime's `bomb_boom`)
//! exactly when its challenge is solved. Each [`StudyCase`] carries the
//! bomb's known trigger input (ground truth for the study's failure
//! diagnosis) and the paper's expected Table-II row (the agreement
//! oracle). Seeds never detonate; triggers always do — both facts are
//! enforced by this crate's test suite.

use bomblab_concolic::{Outcome, StudyCase, Subject, WorldInput};
use bomblab_rt::{link_program_dynamic, reference};

/// Builds a dynamically linked subject from bomb assembly.
fn subject(name: &str, src: &str, seed: WorldInput) -> Subject {
    let (image, lib) =
        link_program_dynamic(src).unwrap_or_else(|e| panic!("bomb `{name}` failed to build: {e}"));
    Subject {
        name: name.to_string(),
        image,
        lib: Some(lib),
        seed,
    }
}

fn case(
    name: &str,
    category: &str,
    description: &str,
    src: &str,
    seed: WorldInput,
    trigger: WorldInput,
    expected: [Outcome; 4],
) -> StudyCase {
    StudyCase {
        subject: subject(name, src, seed),
        category: category.to_string(),
        description: description.to_string(),
        trigger,
        paper_expected: Some(expected),
    }
}

use Outcome::{Abnormal as E, Es0, Es1, Es2, Es3, Partial as P, Solved as OK};

/// Row 1: the bomb only detonates at a magic `time()` value.
pub fn decl_time() -> StudyCase {
    let src = r#"
        .extern bomb_boom
        .global _start
    _start:
        li sv, 6             # time
        sys
        li t0, 1234567891
        bne a0, t0, no
        call bomb_boom
    no: li a0, 0
        li sv, 0
        sys
    "#;
    case(
        "decl_time",
        "Symbolic Variable Declaration",
        "Employ time info in conditions for triggering a bomb",
        src,
        WorldInput::with_arg("7"),
        WorldInput {
            epoch: 1_234_567_891,
            ..WorldInput::with_arg("7")
        },
        [Es0, Es0, Es0, Es0],
    )
}

/// Row 2: the bomb checks the content served by the (simulated) web.
pub fn decl_web() -> StudyCase {
    let src = r#"
        .extern bomb_boom
        .data
    url: .asciz "http://bvm/flag"
    buf: .space 64
        .text
        .global _start
    _start:
        li a0, url
        li a1, buf
        li a2, 64
        li sv, 13            # net_get
        sys
        li t0, buf
        lwu t1, [t0]
        li t2, 0x45444F43    # "CODE" little-endian
        bne t1, t2, no
        call bomb_boom
    no: li a0, 0
        li sv, 0
        sys
    "#;
    case(
        "decl_web",
        "Symbolic Variable Declaration",
        "Employ web contents in conditions for triggering a bomb",
        src,
        WorldInput::with_arg("7"),
        WorldInput {
            net: b"CODE-RED\n".to_vec(),
            ..WorldInput::with_arg("7")
        },
        [Es0, Es0, E, E],
    )
}

/// Row 3: the bomb conditions on a syscall return value (`getuid`).
pub fn decl_syscall() -> StudyCase {
    let src = r#"
        .extern bomb_boom
        .global _start
    _start:
        li sv, 16            # getuid
        sys
        li t0, 991
        remu t1, a0, t0
        li t0, 17
        bne t1, t0, no
        call bomb_boom
    no: li a0, 0
        li sv, 0
        sys
    "#;
    case(
        "decl_syscall",
        "Symbolic Variable Declaration",
        "Employ the return values of system calls in conditions",
        src,
        WorldInput::with_arg("7"),
        WorldInput {
            uid: 1008, // 1008 % 991 == 17
            ..WorldInput::with_arg("7")
        },
        [Es0, Es0, P, P],
    )
}

/// Row 4: the bomb conditions on `strlen(argv[1])`.
pub fn decl_argv_len() -> StudyCase {
    let src = r#"
        .extern strlen, bomb_boom
        .global _start
    _start:
        ld a0, [a1+8]
        call strlen
        li t0, 3
        bne a0, t0, no
        call bomb_boom
    no: li a0, 0
        li sv, 0
        sys
    "#;
    case(
        "decl_argv_len",
        "Symbolic Variable Declaration",
        "Employ the length of argv[1] in conditions",
        src,
        WorldInput::with_arg("AAAAAAAA"),
        WorldInput::with_arg("AAA"),
        [Es2, Es0, OK, OK],
    )
}

/// Row 5: the symbolic value round-trips through push/pop.
pub fn covert_stack() -> StudyCase {
    let src = r#"
        .extern atoi, bomb_boom
        .global _start
    _start:
        ld a0, [a1+8]
        call atoi
        push a0
        li a0, 0
        pop t0
        li t1, 9
        bne t0, t1, no
        call bomb_boom
    no: li a0, 0
        li sv, 0
        sys
    "#;
    case(
        "covert_stack",
        "Covert Symbolic Propagation",
        "Push symbolic values into the stack and pop out",
        src,
        WorldInput::with_arg("5"),
        WorldInput::with_arg("9"),
        [Es1, OK, OK, OK],
    )
}

/// Row 6: the symbolic value round-trips through a file.
pub fn covert_file() -> StudyCase {
    let src = r#"
        .extern bomb_boom
        .data
    path: .asciz "covert"
    buf:  .space 8
        .text
        .global _start
    _start:
        ld s0, [a1+8]
        li a0, path
        li a1, 1
        li sv, 3             # open write
        sys
        mov s1, a0
        mov a0, s1
        mov a1, s0
        li a2, 1
        li sv, 1             # write the argv byte
        sys
        mov a0, s1
        li sv, 4             # close
        sys
        li a0, path
        li a1, 0
        li sv, 3             # open read
        sys
        mov s1, a0
        mov a0, s1
        li a1, buf
        li a2, 1
        li sv, 2             # read it back
        sys
        li t0, buf
        lbu t1, [t0]
        addi t1, t1, 1
        li t2, 'Z'
        bne t1, t2, no
        call bomb_boom
    no: li a0, 0
        li sv, 0
        sys
    "#;
    case(
        "covert_file",
        "Covert Symbolic Propagation",
        "Save symbolic values to a file and then read back",
        src,
        WorldInput::with_arg("A"),
        WorldInput::with_arg("Y"),
        [Es2, Es2, E, Es2],
    )
}

/// Row 7: the symbolic value round-trips through kernel state (`lseek`).
pub fn covert_syscall() -> StudyCase {
    let src = r#"
        .extern atoi, bomb_boom
        .data
    path: .asciz "scratch"
        .text
        .global _start
    _start:
        ld a0, [a1+8]
        call atoi
        mov s0, a0
        li a0, path
        li a1, 2
        li sv, 3             # open rdwr (creates)
        sys
        mov s1, a0
        mov a0, s1
        mov a1, s0
        li a2, 0
        li sv, 15            # lseek(fd, x, SET): x enters the kernel
        sys
        mov a0, s1
        li a1, 0
        li a2, 1
        li sv, 15            # lseek(fd, 0, CUR): x comes back out
        sys
        li t0, 4242
        bne a0, t0, no
        call bomb_boom
    no: li a0, 0
        li sv, 0
        sys
    "#;
    case(
        "covert_syscall",
        "Covert Symbolic Propagation",
        "Save symbolic values via system call and then read back",
        src,
        WorldInput::with_arg("1111"),
        WorldInput::with_arg("4242"),
        [Es2, Es2, P, P],
    )
}

/// Row 8: the bomb is reached through a division trap.
pub fn covert_exception() -> StudyCase {
    let src = r#"
        .extern atoi, bomb_boom
        .global _start
    _start:
        ld a0, [a1+8]
        call atoi
        mov s0, a0
        li a0, handler
        li sv, 14            # set_trap_handler
        sys
        addi t0, s0, -77
        li t1, 1000
        divs t2, t1, t0      # traps iff atoi(argv[1]) == 77
        li a0, 0
        li sv, 0
        sys
    handler:
        call bomb_boom
    "#;
    case(
        "covert_exception",
        "Covert Symbolic Propagation",
        "Change symbolic values in an exception (division trap)",
        src,
        WorldInput::with_arg("55"),
        WorldInput::with_arg("77"),
        [OK, Es1, E, Es2],
    )
}

/// Row 9: the symbolic value is transformed on a file-operation error path.
pub fn covert_file_error() -> StudyCase {
    let src = r#"
        .extern bomb_boom
        .data
    primary: .asciz "primary"
    backup:  .asciz "backup"
    buf:     .space 8
        .text
        .global _start
    _start:
        ld s2, [a1+8]
        li a0, primary
        li a1, 0
        li sv, 3             # open("primary") fails: error path below
        sys
        li t0, -1
        bne a0, t0, no
        # error path: stash the argv byte in a backup file
        li a0, backup
        li a1, 1
        li sv, 3
        sys
        mov s1, a0
        mov a0, s1
        mov a1, s2
        li a2, 1
        li sv, 1
        sys
        mov a0, s1
        li sv, 4
        sys
        li a0, backup
        li a1, 0
        li sv, 3
        sys
        mov s1, a0
        mov a0, s1
        li a1, buf
        li a2, 1
        li sv, 2
        sys
        li t0, buf
        lbu t1, [t0]
        addi t1, t1, 4
        li t2, 'w'
        bne t1, t2, no
        call bomb_boom
    no: li a0, 0
        li sv, 0
        sys
    "#;
    case(
        "covert_file_error",
        "Covert Symbolic Propagation",
        "Change symbolic values in a file operation exception",
        src,
        WorldInput::with_arg("A"),
        WorldInput::with_arg("s"),
        [Es2, Es2, Es2, Es2],
    )
}

/// Row 10: the symbolic value is transformed in a second thread.
pub fn parallel_thread() -> StudyCase {
    let src = r#"
        .extern atoi, bomb_boom
        .data
    cell: .quad 0
        .text
        .global _start
    _start:
        ld a0, [a1+8]
        call atoi
        mov a1, a0
        li a0, worker
        li sv, 11            # thread_spawn(worker, x)
        sys
        li sv, 12            # thread_join
        sys
        li t0, cell
        ld t1, [t0]
        li t2, 99
        bne t1, t2, no
        call bomb_boom
    no: li a0, 0
        li sv, 0
        sys
    worker:
        addi a0, a0, 58
        li t0, cell
        sd [t0], a0
        li a0, 0
        ret
    "#;
    case(
        "parallel_thread",
        "Parallel Program",
        "Change symbolic values in multi-threads via thread_spawn",
        src,
        WorldInput::with_arg("55"),
        WorldInput::with_arg("41"),
        [OK, Es2, Es2, Es2],
    )
}

/// Row 11: the symbolic value is transformed in a forked child and sent
/// back through a pipe.
pub fn parallel_fork() -> StudyCase {
    let src = r#"
        .extern atoi, bomb_boom
        .data
    fds: .space 16
    buf: .space 8
        .text
        .global _start
    _start:
        ld a0, [a1+8]
        call atoi
        mov s0, a0
        li a0, fds
        li sv, 10            # pipe
        sys
        li sv, 8             # fork
        sys
        beq a0, zero, child
        li a0, fds
        ld a0, [a0]
        li a1, buf
        li a2, 1
        li sv, 2             # read the transformed byte
        sys
        li t0, buf
        lbu t1, [t0]
        li t2, 100
        bne t1, t2, no
        call bomb_boom
    no: li a0, 0
        li sv, 0
        sys
    child:
        muli t0, s0, 3
        addi t0, t0, 7       # y = 3x + 7
        li t1, buf
        sb [t1], t0
        li a0, fds
        ld a0, [a0+8]
        li a1, buf
        li a2, 1
        li sv, 1             # send y
        sys
        li a0, 0
        li sv, 0
        sys
    "#;
    case(
        "parallel_fork",
        "Parallel Program",
        "Change symbolic values in multi-processes via fork/pipe",
        src,
        WorldInput::with_arg("10"),
        WorldInput::with_arg("31"),
        [Es2, Es2, Es2, OK],
    )
}

/// Row 12: one-level symbolic array index.
pub fn array_l1() -> StudyCase {
    let src = r#"
        .extern atoi, bomb_boom
        .data
    table: .byte 10, 20, 30, 40, 50, 60, 70, 80
        .text
        .global _start
    _start:
        ld a0, [a1+8]
        call atoi
        andi a0, a0, 7
        li t0, table
        add t0, t0, a0
        lbu t1, [t0]
        li t2, 70
        bne t1, t2, no
        call bomb_boom
    no: li a0, 0
        li sv, 0
        sys
    "#;
    case(
        "array_l1",
        "Symbolic Array",
        "Employ symbolic values as offsets for a level-one array",
        src,
        WorldInput::with_arg("2"),
        WorldInput::with_arg("6"),
        [Es3, Es3, OK, OK],
    )
}

/// Row 13: two-level symbolic array index.
pub fn array_l2() -> StudyCase {
    let src = r#"
        .extern atoi, bomb_boom
        .data
    idx:   .byte 3, 0, 1, 2, 7, 6, 5, 4
    table: .byte 10, 20, 30, 40, 50, 60, 70, 80
        .text
        .global _start
    _start:
        ld a0, [a1+8]
        call atoi
        andi a0, a0, 7
        li t0, idx
        add t0, t0, a0
        lbu t1, [t0]         # level 1
        li t0, table
        add t0, t0, t1
        lbu t2, [t0]         # level 2
        li t3, 80
        bne t2, t3, no
        call bomb_boom
    no: li a0, 0
        li sv, 0
        sys
    "#;
    case(
        "array_l2",
        "Symbolic Array",
        "Employ symbolic values as offsets for a level-two array",
        src,
        WorldInput::with_arg("1"),
        WorldInput::with_arg("4"),
        [Es3, Es3, Es3, Es3],
    )
}

/// Row 14: the symbolic value names the file to open.
pub fn ctx_filename() -> StudyCase {
    let src = r#"
        .extern bomb_boom
        .global _start
    _start:
        ld a0, [a1+8]        # path = argv[1]
        li a1, 0
        li sv, 3             # open(argv[1], RDONLY)
        sys
        li t0, -1
        beq a0, t0, no
        call bomb_boom
    no: li a0, 0
        li sv, 0
        sys
    "#;
    let files = vec![("key".to_string(), b"v".to_vec())];
    case(
        "ctx_filename",
        "Contextual Symbolic Value",
        "Employ symbolic values as the name of a file",
        src,
        WorldInput {
            files: files.clone(),
            ..WorldInput::with_arg("AAA")
        },
        WorldInput {
            files,
            ..WorldInput::with_arg("key")
        },
        [Es2, Es3, Es2, Es2],
    )
}

/// Row 15: the symbolic value selects the syscall number.
pub fn ctx_syscallnum() -> StudyCase {
    let src = r#"
        .extern atoi, bomb_boom
        .global _start
    _start:
        ld a0, [a1+8]
        call atoi
        andi a0, a0, 1
        addi sv, a0, 6       # even -> time(6), odd -> getpid(7)
        sys
        li t0, 1
        bne a0, t0, no       # getpid() == 1 detonates
        call bomb_boom
    no: li a0, 0
        li sv, 0
        sys
    "#;
    case(
        "ctx_syscallnum",
        "Contextual Symbolic Value",
        "Employ symbolic values as the number of a system call",
        src,
        WorldInput::with_arg("2"),
        WorldInput::with_arg("1"),
        [Es2, Es3, Es2, Es2],
    )
}

/// Row 16: the symbolic value offsets an indirect jump.
pub fn jump_direct() -> StudyCase {
    let src = r#"
        .extern atoi, bomb_boom
        .global _start
    _start:
        ld a0, [a1+8]
        call atoi
        andi a0, a0, 7
        shli a0, a0, 3       # 8-byte slots
        li t0, base
        add t0, t0, a0
        jr t0
    base:
        jmp ok
        nop
        nop
        nop
        jmp ok
        nop
        nop
        nop
        jmp ok
        nop
        nop
        nop
        jmp ok
        nop
        nop
        nop
        jmp ok
        nop
        nop
        nop
        jmp ok
        nop
        nop
        nop
        jmp boom             # slot 6
        nop
        nop
        nop
        jmp ok
        nop
        nop
        nop
    ok:
        li a0, 0
        li sv, 0
        sys
    boom:
        call bomb_boom
    "#;
    case(
        "jump_direct",
        "Symbolic Jump",
        "Employ symbolic values as unconditional jump addresses",
        src,
        WorldInput::with_arg("0"),
        WorldInput::with_arg("6"),
        [Es3, Es3, Es2, Es2],
    )
}

/// Row 17: the symbolic value indexes a table of jump targets.
pub fn jump_table() -> StudyCase {
    let src = r#"
        .extern atoi, bomb_boom
        .data
        .align 8
    targets: .quad ok, ok, ok, boom, ok, ok, ok, ok
        .text
        .global _start
    _start:
        ld a0, [a1+8]
        call atoi
        andi a0, a0, 7
        shli a0, a0, 3
        li t0, targets
        add t0, t0, a0
        ld t1, [t0]          # load the target address (level 1)
        jr t1                # jump through it
    ok:
        li a0, 0
        li sv, 0
        sys
    boom:
        call bomb_boom
    "#;
    case(
        "jump_table",
        "Symbolic Jump",
        "Employ symbolic values as offsets to an address array",
        src,
        WorldInput::with_arg("0"),
        WorldInput::with_arg("3"),
        [Es3, Es3, Es3, Es3],
    )
}

/// Row 18: IEEE-754 absorption — `1024 + x == 1024 && x > 0`.
pub fn float_cmp() -> StudyCase {
    let src = r#"
        .extern atoi, bomb_boom
        .global _start
    _start:
        ld a0, [a1+8]
        call atoi
        cvt.si2d f0, a0
        fli f1, 1000000000000000000.0
        fdiv.d f0, f0, f1    # x = n / 1e18
        fli f2, 1024.0
        fadd.d f3, f2, f0
        fbeq f3, f2, check2  # 1024 + x == 1024
        jmp no
    check2:
        fli f4, 0.0
        fblt f4, f0, boom    # x > 0
    no: li a0, 0
        li sv, 0
        sys
    boom:
        call bomb_boom
    "#;
    case(
        "float_cmp",
        "Floating-point Number",
        "Employ floating-point numbers in symbolic conditions",
        src,
        WorldInput::with_arg("0"),
        WorldInput::with_arg("1"),
        [Es1, Es1, E, Es3],
    )
}

/// Row 19: the condition goes through the external `sin`.
pub fn ext_sin() -> StudyCase {
    let src = r#"
        .extern atoi, sin, bomb_boom
        .global _start
    _start:
        ld a0, [a1+8]
        call atoi
        cvt.si2d f0, a0
        call sin
        fli f1, -0.9999
        fblt f0, f1, boom    # sin(x) < -0.9999
        li a0, 0
        li sv, 0
        sys
    boom:
        call bomb_boom
    "#;
    case(
        "ext_sin",
        "External Function Call",
        "Employ symbolic values as the parameter of sin",
        src,
        WorldInput::with_arg("1"),
        WorldInput::with_arg("11"), // sin(11) ~ -0.99999
        [Es1, Es1, E, Es2],
    )
}

/// Row 20: the condition goes through `srand`/`rand`.
pub fn ext_srand() -> StudyCase {
    // Precompute the magic low bits the trigger seed produces after eight
    // draws from the runtime's LCG.
    let mut lcg = reference::Lcg::seed(123_456);
    let mut last = 0;
    for _ in 0..8 {
        last = lcg.next();
    }
    let magic = last & 0xfffff;
    let src = format!(
        r#"
        .extern atoi, srand, rand, bomb_boom
        .global _start
    _start:
        ld a0, [a1+8]
        call atoi
        call srand
        li s0, 8
    draw:
        call rand
        addi s0, s0, -1
        bne s0, zero, draw
        li t0, 0xfffff
        and a0, a0, t0
        li t0, {magic}
        bne a0, t0, no
        call bomb_boom
    no: li a0, 0
        li sv, 0
        sys
    "#
    );
    case(
        "ext_srand",
        "External Function Call",
        "Employ symbolic values as the parameter of srand",
        &src,
        WorldInput::with_arg("000001"),
        WorldInput::with_arg("123456"),
        [Es2, E, E, Es2],
    )
}

/// Row 21: SHA-1 preimage.
pub fn crypto_sha1() -> StudyCase {
    let digest = reference::sha1(b"S3cr3t42");
    let bytes: Vec<String> = digest.iter().map(|b| format!("{b:#04x}")).collect();
    let src = format!(
        r#"
        .extern sha1, bomb_boom
        .data
    target: .byte {target}
    out:    .space 20
        .text
        .global _start
    _start:
        ld a0, [a1+8]
        li a1, 8
        li a2, out
        call sha1
        li s0, 0
    cmp:
        li t0, 20
        bge s0, t0, boom     # all 20 bytes matched
        li t1, out
        add t1, t1, s0
        lbu t1, [t1]
        li t2, target
        add t2, t2, s0
        lbu t2, [t2]
        bne t1, t2, no
        addi s0, s0, 1
        jmp cmp
    no: li a0, 0
        li sv, 0
        sys
    boom:
        call bomb_boom
    "#,
        target = bytes.join(", ")
    );
    case(
        "crypto_sha1",
        "Crypto Function",
        "Infer the plain text from an SHA1 result",
        &src,
        WorldInput::with_arg("AAAAAAAA"),
        WorldInput::with_arg("S3cr3t42"),
        [E, E, E, Es2],
    )
}

/// Row 22: AES-128 key recovery.
pub fn crypto_aes() -> StudyCase {
    let key = *b"KEY-4242-BVM-42!";
    let pt = *b"bomblab-plain-16";
    let ct = reference::aes128_encrypt(&key, &pt);
    let pt_bytes: Vec<String> = pt.iter().map(|b| format!("{b:#04x}")).collect();
    let ct_bytes: Vec<String> = ct.iter().map(|b| format!("{b:#04x}")).collect();
    let src = format!(
        r#"
        .extern aes128_encrypt, bomb_boom
        .data
    pt:     .byte {pt}
    target: .byte {ct}
    out:    .space 16
        .text
        .global _start
    _start:
        ld a0, [a1+8]        # key = argv[1] (16 bytes)
        li a1, pt
        li a2, out
        call aes128_encrypt
        li s0, 0
    cmp:
        li t0, 16
        bge s0, t0, boom
        li t1, out
        add t1, t1, s0
        lbu t1, [t1]
        li t2, target
        add t2, t2, s0
        lbu t2, [t2]
        bne t1, t2, no
        addi s0, s0, 1
        jmp cmp
    no: li a0, 0
        li sv, 0
        sys
    boom:
        call bomb_boom
    "#,
        pt = pt_bytes.join(", "),
        ct = ct_bytes.join(", ")
    );
    case(
        "crypto_aes",
        "Crypto Function",
        "Infer the key from an AES encryption result",
        &src,
        WorldInput::with_arg("AAAAAAAAAAAAAAAA"),
        WorldInput::with_arg(&key[..]),
        [Es2, Es2, Es2, Es2],
    )
}

/// The negative bomb of Section V.C: guarded by `pow(x, 2) == -1`, which
/// is unsatisfiable — a tool that claims it reachable is wrong.
pub fn negative_pow() -> StudyCase {
    let src = r#"
        .extern pow_int, bomb_boom
        .global _start
    _start:
        ld t0, [a1+8]
        lbu t1, [t0]
        cvt.si2d f0, t1
        li a0, 2
        call pow_int         # f0 = x^2
        fli f1, -1.0
        fbeq f0, f1, boom    # never true over the reals
        li a0, 0
        li sv, 0
        sys
    boom:
        call bomb_boom
    "#;
    StudyCase {
        subject: subject("negative_pow", src, WorldInput::with_arg("5")),
        category: "Probe".to_string(),
        description: "Negative bomb guarded by pow(x, 2) == -1 (unsatisfiable)".to_string(),
        trigger: WorldInput::with_arg("5"), // there is no trigger; seed stands in
        paper_expected: None,
    }
}

/// All 22 Table-II bombs, in paper row order.
pub fn all_cases() -> Vec<StudyCase> {
    vec![
        decl_time(),
        decl_web(),
        decl_syscall(),
        decl_argv_len(),
        covert_stack(),
        covert_file(),
        covert_syscall(),
        covert_exception(),
        covert_file_error(),
        parallel_thread(),
        parallel_fork(),
        array_l1(),
        array_l2(),
        ctx_filename(),
        ctx_syscallnum(),
        jump_direct(),
        jump_table(),
        float_cmp(),
        ext_sin(),
        ext_srand(),
        crypto_sha1(),
        crypto_aes(),
    ]
}
