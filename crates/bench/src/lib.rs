//! # bomblab-bench — experiment harness
//!
//! Regenerates every table and figure of the DSN'17 paper's evaluation:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1` | Table I — challenge → error-stage mapping |
//! | `table2` | Table II — 22 bombs × 4 tool profiles |
//! | `figure3` | Figure 3 — `printf` instruction inflation |
//! | `dataset_stats` | §V.A binary-size statistics |
//! | `negative_bomb` | §V.C false-positive probe |
//!
//! Criterion benches (`cargo bench`) cover the scalability claims of
//! §IV.C: constraint growth with external calls (`scale_external`) and
//! solver hardness of crypto functions (`scale_crypto`), plus solver and
//! VM microbenchmarks.

use bomblab_concolic::{Outcome, StudyReport};
use std::collections::BTreeMap;

/// Parses `--jobs N` / `-j N` / `--jobs=N` from the process arguments,
/// defaulting to the machine's available parallelism. Shared by the
/// bench binaries so they accept the same knob as `bomblab study`.
pub fn jobs_from_args() -> usize {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--jobs" || arg == "-j" {
            if let Some(n) = it.next().and_then(|n| n.parse().ok()) {
                return n;
            }
        } else if let Some(n) = arg.strip_prefix("--jobs=") {
            if let Ok(n) = n.parse() {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

/// Derives the Table-I view (challenge category → set of error stages
/// observed across tools) from a Table-II study report.
pub fn table1_from_report(report: &StudyReport) -> BTreeMap<String, Vec<&'static str>> {
    let mut map: BTreeMap<String, std::collections::BTreeSet<&'static str>> = BTreeMap::new();
    for row in &report.rows {
        let entry = map.entry(row.category.clone()).or_default();
        for cell in &row.cells {
            match cell.outcome {
                Outcome::Es0 => {
                    entry.insert("Es0");
                }
                Outcome::Es1 => {
                    entry.insert("Es1");
                }
                Outcome::Es2 | Outcome::Partial => {
                    entry.insert("Es2");
                }
                Outcome::Es3 => {
                    entry.insert("Es3");
                }
                Outcome::Solved | Outcome::Abnormal => {}
            }
        }
    }
    map.into_iter()
        .map(|(k, v)| (k, v.into_iter().collect()))
        .collect()
}
