//! Regenerates the paper's Table I: which error stages each challenge can
//! incur. The paper presents this as a-priori analysis; here it is
//! *derived* from the Table-II study — the union of error labels observed
//! for each challenge category across the four tools — and printed next to
//! the paper's static mapping.

use bomblab_bench::table1_from_report;
use bomblab_bombs::all_cases;
use bomblab_concolic::{run_study, ToolProfile};

fn main() {
    let paper: &[(&str, &str)] = &[
        ("Symbolic Variable Declaration", "Es0 Es1 Es2 Es3"),
        ("Covert Symbolic Propagation", "Es2 Es3"),
        ("Parallel Program", "Es2 Es3"),
        ("Symbolic Array", "Es3"),
        ("Contextual Symbolic Value", "Es3"),
        ("Symbolic Jump", "Es3"),
        ("Floating-point Number", "Es3"),
        ("External Function Call", "(scalability)"),
        ("Crypto Function", "(scalability)"),
    ];
    let report = run_study(&all_cases(), &ToolProfile::paper_lineup());
    let derived = table1_from_report(&report);
    println!("Table I — challenge -> error stages (derived from the study)\n");
    println!("| challenge | observed stages | paper's mapping |");
    println!("|---|---|---|");
    for (category, expected) in paper {
        let observed = derived
            .get(*category)
            .map_or_else(|| "-".to_string(), |v| v.join(" "));
        println!("| {category} | {observed} | {expected} |");
    }
}
