//! Regenerates the paper's Figure 3: the number of instructions that
//! propagate symbolic values, with and without a `printf` call
//! (`argv[1] = 7`, BAP-style trace + taint).

use bomblab_bombs::figure3::figure3_source;
use bomblab_isa::image::layout;
use bomblab_rt::link_program;
use bomblab_taint::{TaintEngine, TaintPolicy};
use bomblab_vm::{Machine, MachineConfig, ROOT_PID};

fn tainted_count(with_print: bool) -> (usize, usize, usize) {
    let src = figure3_source(with_print);
    let image = link_program(&src).expect("figure-3 program builds");
    let config = MachineConfig {
        trace: true,
        ..MachineConfig::with_arg("7")
    };
    let mut machine = Machine::load(&image, None, config).expect("loads");
    machine.run();
    let trace = machine.take_trace();
    let mut engine = TaintEngine::new(TaintPolicy::argv_direct_only());
    engine.taint_memory(ROOT_PID, &[(layout::ARGV_BASE + 16 + 5, 1)]);
    let report = engine.run(&trace);
    (
        trace.len(),
        report.tainted_step_count,
        report.tainted_branches.len(),
    )
}

fn main() {
    println!("Figure 3 — instructions propagating symbolic values (argv[1] = 7)\n");
    let (total_off, tainted_off, branches_off) = tainted_count(false);
    let (total_on, tainted_on, branches_on) = tainted_count(true);
    println!("| configuration | trace length | tainted instructions | tainted branches |");
    println!("|---|---|---|---|");
    println!("| printf commented out | {total_off} | {tainted_off} | {branches_off} |");
    println!("| printf enabled | {total_on} | {tainted_on} | {branches_on} |");
    println!(
        "\nprintf adds {} tainted instructions and {} conditional branches \
         (paper: 5 -> 66 instructions).",
        tainted_on - tainted_off,
        branches_on - branches_off
    );
    assert!(tainted_on > tainted_off + 10, "figure-3 shape must hold");
}
