//! Benchmarks the study runner: sequential (`--jobs 1`) against the
//! parallel worker pool, and the solver's cross-round cache behaviour.
//! Emits `BENCH_study.json` (hand-rolled JSON, no serde dependency).
//!
//! ```text
//! bench_study [--jobs N] [--out PATH]
//! ```
//!
//! `--jobs` sets the parallel leg's worker count (default 4, the paper
//! machine's core count); the sequential leg always runs with one.

use bomblab_bombs::all_cases;
use bomblab_concolic::{run_study_jobs, StudyReport, ToolProfile};
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut jobs = 4usize;
    let mut out_path = "BENCH_study.json".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--jobs" || arg == "-j" {
            jobs = it
                .next()
                .and_then(|n| n.parse().ok())
                .expect("--jobs needs a number");
        } else if let Some(n) = arg.strip_prefix("--jobs=") {
            jobs = n.parse().expect("--jobs needs a number");
        } else if arg == "--out" {
            out_path = it.next().expect("--out needs a path").clone();
        }
    }

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let cases = all_cases();
    let profiles = ToolProfile::paper_lineup();
    eprintln!(
        "bench_study: {} bombs x {} profiles, sequential vs --jobs {jobs} ({cores} core(s))",
        cases.len(),
        profiles.len()
    );

    let t0 = Instant::now();
    let sequential = run_study_jobs(&cases, &profiles, 1);
    let seq_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let parallel = run_study_jobs(&cases, &profiles, jobs);
    let par_s = t1.elapsed().as_secs_f64();

    let identical = sequential.to_markdown() == parallel.to_markdown();
    let json = render(&sequential, seq_s, par_s, jobs, cores, identical);
    std::fs::write(&out_path, &json).expect("write BENCH_study.json");
    if cores > 1 {
        eprintln!(
            "sequential {seq_s:.2}s, --jobs {jobs} {par_s:.2}s ({:.2}x), reports identical: {identical}",
            seq_s / par_s
        );
    } else {
        // On one core the parallel leg is pure oversubscription; a
        // "speedup" ratio would be noise, not signal.
        eprintln!(
            "sequential {seq_s:.2}s, --jobs {jobs} {par_s:.2}s (single core, \
             no speedup measured), reports identical: {identical}"
        );
    }
    eprintln!("wrote {out_path}");
    assert!(identical, "parallel report diverged from sequential");
}

fn render(
    report: &StudyReport,
    seq_s: f64,
    par_s: f64,
    jobs: usize,
    cores: usize,
    identical: bool,
) -> String {
    let mut cells = String::new();
    let (mut hits, mut misses, mut blasted, mut reused) = (0u64, 0u64, 0u64, 0u64);
    let (mut simp_hits, mut pruned, mut slices, mut witnessed) = (0u64, 0u64, 0u64, 0u64);
    let (mut simp_ns, mut intv_ns, mut slice_ns) = (0u64, 0u64, 0u64);
    let (mut vm_steps, mut bb_hits, mut bb_misses, mut decoded) = (0u64, 0u64, 0u64, 0u64);
    let mut bb_invalidations = 0u64;
    let (mut blockers, mut evictions) = (0u64, 0u64);
    let (mut retries, mut quarantined, mut backoff_ns) = (0u64, 0u64, 0u64);
    let (mut disk_hits, mut seg_rejected) = (0u64, 0u64);
    for row in &report.rows {
        for cell in &row.cells {
            let ev = &cell.attempt.evidence;
            hits += ev.cache_hits;
            misses += ev.cache_misses;
            blasted += ev.roots_blasted;
            reused += ev.roots_reused;
            simp_hits += ev.simplify_hits;
            pruned += ev.terms_pruned;
            slices += ev.slices;
            witnessed += ev.witness_hits;
            simp_ns += ev.simplify_ns;
            intv_ns += ev.interval_ns;
            slice_ns += ev.slice_ns;
            vm_steps += ev.vm_steps;
            bb_hits += ev.bb_hits;
            bb_misses += ev.bb_misses;
            bb_invalidations += ev.bb_invalidations;
            decoded += ev.steps_decoded;
            blockers += ev.blocker_skips;
            evictions += ev.lbd_evictions;
            retries += u64::from(ev.retries);
            quarantined += u64::from(ev.quarantined);
            backoff_ns += ev.retry_backoff_ns;
            disk_hits += ev.disk_cache_hits;
            seg_rejected += ev.cache_segments_rejected;
            if !cells.is_empty() {
                cells.push_str(",\n");
            }
            // Derived steps/second from the cell's own VM wall clock;
            // null when the VM never ran (no rate to report).
            let steps_per_sec = if ev.vm_ns > 0 {
                format!("{:.0}", ev.vm_steps as f64 / (ev.vm_ns as f64 / 1e9))
            } else {
                "null".to_string()
            };
            let _ = write!(
                cells,
                "    {{\"case\": \"{}\", \"profile\": \"{}\", \"outcome\": \"{}\", \
                 \"wall_ms\": {:.3}, \"rounds\": {}, \"queries\": {}, \
                 \"vm_ms\": {:.3}, \"taint_ms\": {:.3}, \"symex_ms\": {:.3}, \"solver_ms\": {:.3}, \
                 \"vm_steps\": {}, \"steps_per_sec\": {steps_per_sec}, \
                 \"simplify_hits\": {}, \"terms_pruned\": {}, \"slices\": {}, \
                 \"witness_hits\": {}, \
                 \"simplify_ms\": {:.3}, \"interval_ms\": {:.3}, \"slice_ms\": {:.3}, \
                 \"cache_hits\": {}, \"cache_misses\": {}, \
                 \"roots_blasted\": {}, \"roots_reused\": {}, \
                 \"retries\": {}, \"quarantined\": {}, \
                 \"disk_cache_hits\": {}, \"cache_segments_rejected\": {}}}",
                row.name,
                cell.profile,
                cell.outcome,
                cell.wall_ns as f64 / 1e6,
                ev.rounds,
                ev.queries,
                ev.vm_ns as f64 / 1e6,
                ev.taint_ns as f64 / 1e6,
                ev.symex_ns as f64 / 1e6,
                ev.solver_ns as f64 / 1e6,
                ev.vm_steps,
                ev.simplify_hits,
                ev.terms_pruned,
                ev.slices,
                ev.witness_hits,
                ev.simplify_ns as f64 / 1e6,
                ev.interval_ns as f64 / 1e6,
                ev.slice_ns as f64 / 1e6,
                ev.cache_hits,
                ev.cache_misses,
                ev.roots_blasted,
                ev.roots_reused,
                ev.retries,
                ev.quarantined,
                ev.disk_cache_hits,
                ev.cache_segments_rejected,
            );
        }
    }
    // A speedup ratio on a single core measures scheduler overhead, not
    // parallelism: report null so downstream jq does not mistake it for a
    // regression (or an impossible win).
    let speedup = if cores > 1 {
        format!("{:.3}", seq_s / par_s)
    } else {
        "null".to_string()
    };
    format!(
        "{{\n  \"bench\": \"study\",\n  \"cores\": {cores},\n  \"bombs\": {},\n  \
         \"profiles\": {},\n  \"sequential_s\": {seq_s:.3},\n  \"parallel_jobs\": {jobs},\n  \
         \"parallel_s\": {par_s:.3},\n  \"speedup\": {speedup},\n  \
         \"reports_identical\": {identical},\n  \"solver_cache\": {{\"hits\": {hits}, \
         \"misses\": {misses}, \"roots_blasted\": {blasted}, \"roots_reused\": {reused}}},\n  \
         \"optimizer\": {{\"simplify_hits\": {simp_hits}, \"terms_pruned\": {pruned}, \
         \"slices\": {slices}, \"witness_hits\": {witnessed}, \
         \"simplify_ms\": {:.3}, \"interval_ms\": {:.3}, \
         \"slice_ms\": {:.3}}},\n  \
         \"vm\": {{\"vm_steps\": {vm_steps}, \"bb_hits\": {bb_hits}, \
         \"bb_misses\": {bb_misses}, \"bb_invalidations\": {bb_invalidations}, \
         \"steps_decoded\": {decoded}}},\n  \
         \"sat\": {{\"blocker_skips\": {blockers}, \"lbd_evictions\": {evictions}}},\n  \
         \"durability\": {{\"retries\": {retries}, \"quarantined\": {quarantined}, \
         \"retry_backoff_ms\": {:.3}, \"disk_cache_hits\": {disk_hits}, \
         \"cache_segments_rejected\": {seg_rejected}, \"cells_replayed\": {}, \
         \"checkpoint_io_errors\": {}}},\n  \
         \"cells\": [\n{cells}\n  ]\n}}\n",
        report.rows.len(),
        report.profiles.len(),
        simp_ns as f64 / 1e6,
        intv_ns as f64 / 1e6,
        slice_ns as f64 / 1e6,
        backoff_ns as f64 / 1e6,
        report.stats.cells_replayed,
        report.stats.checkpoint_io_errors,
    )
}
