//! Benchmarks the study runner: a jobs-vs-wall-clock curve over the
//! worker pool (sequential always included), plus an incremental-profile
//! leg that exercises the solver's query cache and the shared cross-cell
//! cache. Emits `BENCH_study.json` (hand-rolled JSON, no serde
//! dependency).
//!
//! ```text
//! bench_study [--jobs N|auto] [--out PATH]
//! ```
//!
//! The curve always starts at `--jobs 1`; on a multi-core machine it adds
//! `--jobs 2` and `--jobs <cores>`. `--jobs` appends one extra explicit
//! leg (default `min(4, cores)` — never oversubscribe a small box just
//! because the paper machine had four cores). `speedup` is the sequential
//! wall over the best parallel leg, and is `null` only on a single-core
//! machine where any ratio would measure scheduler overhead, not
//! parallelism.

use bomblab_bombs::all_cases;
use bomblab_concolic::{run_study_with, StudyOptions, StudyReport, ToolProfile};
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let mut jobs = 4.min(cores);
    let mut out_path = "BENCH_study.json".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--jobs" || arg == "-j" {
            jobs = parse_jobs(it.next().expect("--jobs needs a value"), cores);
        } else if let Some(n) = arg.strip_prefix("--jobs=") {
            jobs = parse_jobs(n, cores);
        } else if arg == "--out" {
            out_path = it.next().expect("--out needs a path").clone();
        }
    }

    let cases = all_cases();
    let profiles = ToolProfile::paper_lineup();

    // The curve: sequential, then {2, cores} when they exist, then the
    // explicit leg. Sorted and deduplicated so each level runs once.
    let mut levels = vec![1];
    if cores > 1 {
        levels.extend([2, cores]);
    }
    levels.push(jobs);
    levels.sort_unstable();
    levels.dedup();

    eprintln!(
        "bench_study: {} bombs x {} profiles, jobs curve {levels:?} ({cores} core(s))",
        cases.len(),
        profiles.len()
    );

    let mut curve: Vec<(usize, f64)> = Vec::new();
    let mut baseline: Option<StudyReport> = None;
    let mut identical = true;
    // The LPT scheduler only arms on parallel legs; keep the counters
    // from the widest one.
    let mut sched = (0u64, 0u64);
    for &level in &levels {
        let t = Instant::now();
        let report = run_study_with(
            &cases,
            &profiles,
            &StudyOptions {
                jobs: level,
                ..StudyOptions::default()
            },
        );
        let wall = t.elapsed().as_secs_f64();
        eprintln!("  --jobs {level}: {wall:.2}s");
        curve.push((level, wall));
        if level > 1 {
            sched = (report.stats.sched_costed, report.stats.sched_estimated);
        }
        match &baseline {
            None => baseline = Some(report),
            Some(seq) => identical &= seq.to_markdown() == report.to_markdown(),
        }
    }
    let sequential = baseline.expect("curve always includes --jobs 1");
    let seq_s = curve[0].1;

    // The incremental leg: one Omniscient column with the query cache and
    // shared cross-cell cache live (read-through). The paper lineup is
    // stateless by design, so this leg is where the cache counters in the
    // report measure something real. The omniscient solver grinds the
    // PRNG/crypto bombs for tens of minutes each, so those three are
    // excluded — this leg measures cache traffic, not crypto hardness.
    const SLOW_FOR_OMNISCIENT: [&str; 3] = ["ext_srand", "crypto_sha1", "crypto_aes"];
    let inc_cases: Vec<_> = all_cases()
        .into_iter()
        .filter(|c| !SLOW_FOR_OMNISCIENT.contains(&c.subject.name.as_str()))
        .collect();
    eprintln!(
        "  incremental leg: {} bombs (excluding {:?})",
        inc_cases.len(),
        SLOW_FOR_OMNISCIENT
    );
    let t = Instant::now();
    let incremental = run_study_with(
        &inc_cases,
        &[ToolProfile::omniscient()],
        &StudyOptions {
            jobs: *levels.last().expect("levels is non-empty"),
            ..StudyOptions::default()
        },
    );
    let inc_s = t.elapsed().as_secs_f64();
    eprintln!("  incremental (Omniscient): {inc_s:.2}s");

    let json = render(
        &sequential,
        &curve,
        &incremental,
        inc_s,
        cores,
        identical,
        sched,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_study.json");
    let best_par = curve
        .iter()
        .filter(|(level, _)| *level > 1)
        .map(|&(_, wall)| wall)
        .fold(f64::INFINITY, f64::min);
    if cores > 1 && best_par.is_finite() {
        eprintln!(
            "sequential {seq_s:.2}s, best parallel {best_par:.2}s ({:.2}x), reports identical: {identical}",
            seq_s / best_par
        );
    } else {
        // On one core the parallel leg is pure oversubscription; a
        // "speedup" ratio would be noise, not signal.
        eprintln!("sequential {seq_s:.2}s (single core, no speedup measured)");
    }
    eprintln!("wrote {out_path}");
    assert!(identical, "parallel report diverged from sequential");
}

fn parse_jobs(value: &str, cores: usize) -> usize {
    if value == "auto" {
        return cores;
    }
    let n: usize = value.parse().expect("--jobs needs a number or `auto`");
    assert!(n > 0, "--jobs must be at least 1");
    n
}

/// Sums every cell's evidence counters across a report.
#[derive(Default)]
struct Totals {
    hits: u64,
    misses: u64,
    blasted: u64,
    reused: u64,
    shared_hits: u64,
    shared_stores: u64,
    shared_rejected: u64,
    trace_full: u64,
    trace_elided: u64,
    trace_bytes: u64,
}

fn cache_totals(report: &StudyReport) -> Totals {
    let mut t = Totals::default();
    for cell in report.rows.iter().flat_map(|row| &row.cells) {
        let ev = &cell.attempt.evidence;
        t.hits += ev.cache_hits;
        t.misses += ev.cache_misses;
        t.blasted += ev.roots_blasted;
        t.reused += ev.roots_reused;
        t.shared_hits += ev.shared_cache_hits;
        t.shared_stores += ev.shared_cache_stores;
        t.shared_rejected += ev.shared_cache_rejected;
        t.trace_full += ev.trace_steps_full;
        t.trace_elided += ev.trace_steps_elided;
        t.trace_bytes += ev.trace_arena_bytes;
    }
    t
}

#[allow(clippy::too_many_arguments)]
fn render(
    report: &StudyReport,
    curve: &[(usize, f64)],
    incremental: &StudyReport,
    inc_s: f64,
    cores: usize,
    identical: bool,
    sched: (u64, u64),
) -> String {
    let mut cells = String::new();
    let (mut simp_hits, mut pruned, mut slices, mut witnessed) = (0u64, 0u64, 0u64, 0u64);
    let (mut simp_ns, mut intv_ns, mut slice_ns) = (0u64, 0u64, 0u64);
    let (mut vm_steps, mut bb_hits, mut bb_misses, mut decoded) = (0u64, 0u64, 0u64, 0u64);
    let mut bb_invalidations = 0u64;
    let (mut blockers, mut propagations, mut evictions) = (0u64, 0u64, 0u64);
    let (mut retries, mut quarantined, mut backoff_ns) = (0u64, 0u64, 0u64);
    let (mut disk_hits, mut seg_rejected) = (0u64, 0u64);
    for row in &report.rows {
        for cell in &row.cells {
            let ev = &cell.attempt.evidence;
            simp_hits += ev.simplify_hits;
            pruned += ev.terms_pruned;
            slices += ev.slices;
            witnessed += ev.witness_hits;
            simp_ns += ev.simplify_ns;
            intv_ns += ev.interval_ns;
            slice_ns += ev.slice_ns;
            vm_steps += ev.vm_steps;
            bb_hits += ev.bb_hits;
            bb_misses += ev.bb_misses;
            bb_invalidations += ev.bb_invalidations;
            decoded += ev.steps_decoded;
            blockers += ev.blocker_skips;
            propagations += ev.propagations;
            evictions += ev.lbd_evictions;
            retries += u64::from(ev.retries);
            quarantined += u64::from(ev.quarantined);
            backoff_ns += ev.retry_backoff_ns;
            disk_hits += ev.disk_cache_hits;
            seg_rejected += ev.cache_segments_rejected;
            if !cells.is_empty() {
                cells.push_str(",\n");
            }
            // Derived steps/second from the cell's own VM wall clock;
            // null when the VM never ran (no rate to report).
            let steps_per_sec = if ev.vm_ns > 0 {
                format!("{:.0}", ev.vm_steps as f64 / (ev.vm_ns as f64 / 1e9))
            } else {
                "null".to_string()
            };
            let _ = write!(
                cells,
                "    {{\"case\": \"{}\", \"profile\": \"{}\", \"outcome\": \"{}\", \
                 \"wall_ms\": {:.3}, \"rounds\": {}, \"queries\": {}, \
                 \"vm_ms\": {:.3}, \"taint_ms\": {:.3}, \"symex_ms\": {:.3}, \"solver_ms\": {:.3}, \
                 \"vm_steps\": {}, \"steps_per_sec\": {steps_per_sec}, \
                 \"simplify_hits\": {}, \"terms_pruned\": {}, \"slices\": {}, \
                 \"witness_hits\": {}, \
                 \"simplify_ms\": {:.3}, \"interval_ms\": {:.3}, \"slice_ms\": {:.3}, \
                 \"cache_hits\": {}, \"cache_misses\": {}, \
                 \"roots_blasted\": {}, \"roots_reused\": {}, \
                 \"propagations\": {}, \"blocker_skips\": {}, \
                 \"retries\": {}, \"quarantined\": {}, \
                 \"disk_cache_hits\": {}, \"cache_segments_rejected\": {}}}",
                row.name,
                cell.profile,
                cell.outcome,
                cell.wall_ns as f64 / 1e6,
                ev.rounds,
                ev.queries,
                ev.vm_ns as f64 / 1e6,
                ev.taint_ns as f64 / 1e6,
                ev.symex_ns as f64 / 1e6,
                ev.solver_ns as f64 / 1e6,
                ev.vm_steps,
                ev.simplify_hits,
                ev.terms_pruned,
                ev.slices,
                ev.witness_hits,
                ev.simplify_ns as f64 / 1e6,
                ev.interval_ns as f64 / 1e6,
                ev.slice_ns as f64 / 1e6,
                ev.cache_hits,
                ev.cache_misses,
                ev.roots_blasted,
                ev.roots_reused,
                ev.propagations,
                ev.blocker_skips,
                ev.retries,
                ev.quarantined,
                ev.disk_cache_hits,
                ev.cache_segments_rejected,
            );
        }
    }
    let seq_s = curve[0].1;
    let jobs_curve = curve
        .iter()
        .map(|&(level, wall)| format!("{{\"jobs\": {level}, \"wall_s\": {wall:.3}}}"))
        .collect::<Vec<_>>()
        .join(", ");
    // Compatibility fields: the highest-jobs leg stands in for the old
    // single "parallel" measurement.
    let &(par_jobs, par_s) = curve.last().expect("curve is non-empty");
    // A speedup ratio on a single core measures scheduler overhead, not
    // parallelism: report null so downstream jq does not mistake it for a
    // regression (or an impossible win).
    let best_par = curve
        .iter()
        .filter(|(level, _)| *level > 1)
        .map(|&(_, wall)| wall)
        .fold(f64::INFINITY, f64::min);
    let speedup = if cores > 1 && best_par.is_finite() {
        format!("{:.3}", seq_s / best_par)
    } else {
        "null".to_string()
    };
    // The stateless paper lineup never reads a cache; the incremental
    // Omniscient leg is where the query-cache and shared-cache counters
    // carry signal. Same split for the trace path: the paper lineup
    // records full arena capture (Table II must not depend on elision),
    // while Omniscient arms the taint gate and records sparse — its
    // `trace_steps_elided` total is the elision counter.
    let paper = cache_totals(report);
    let inc = cache_totals(incremental);
    format!(
        "{{\n  \"bench\": \"study\",\n  \"cores\": {cores},\n  \"bombs\": {},\n  \
         \"profiles\": {},\n  \"sequential_s\": {seq_s:.3},\n  \"parallel_jobs\": {par_jobs},\n  \
         \"parallel_s\": {par_s:.3},\n  \"speedup\": {speedup},\n  \
         \"jobs_curve\": [{jobs_curve}],\n  \
         \"reports_identical\": {identical},\n  \
         \"scheduler\": {{\"sched_costed\": {}, \"sched_estimated\": {}}},\n  \
         \"solver_cache\": {{\"hits\": {}, \
         \"misses\": {}, \"roots_blasted\": {}, \"roots_reused\": {}, \
         \"shared_cache_hits\": {}, \"shared_cache_stores\": {}, \
         \"shared_cache_rejected\": {}}},\n  \
         \"incremental\": {{\"profile\": \"Omniscient\", \"bombs\": {}, \
         \"wall_s\": {inc_s:.3}, \
         \"cache_hits\": {}, \"cache_misses\": {}, \
         \"roots_blasted\": {}, \"roots_reused\": {}, \
         \"shared_cache_hits\": {}, \"shared_cache_stores\": {}, \
         \"shared_cache_rejected\": {}, \
         \"trace_steps_full\": {}, \"trace_steps_elided\": {}, \
         \"trace_arena_bytes\": {}}},\n  \
         \"optimizer\": {{\"simplify_hits\": {simp_hits}, \"terms_pruned\": {pruned}, \
         \"slices\": {slices}, \"witness_hits\": {witnessed}, \
         \"simplify_ms\": {:.3}, \"interval_ms\": {:.3}, \
         \"slice_ms\": {:.3}}},\n  \
         \"vm\": {{\"vm_steps\": {vm_steps}, \"bb_hits\": {bb_hits}, \
         \"bb_misses\": {bb_misses}, \"bb_invalidations\": {bb_invalidations}, \
         \"steps_decoded\": {decoded}}},\n  \
         \"trace\": {{\"path\": \"arena\", \"paper_capture\": \"full\", \
         \"incremental_capture\": \"sparse\", \"steps_full\": {}, \
         \"steps_elided\": {}, \"arena_bytes\": {}}},\n  \
         \"sat\": {{\"propagations\": {propagations}, \"blocker_skips\": {blockers}, \
         \"lbd_evictions\": {evictions}}},\n  \
         \"durability\": {{\"retries\": {retries}, \"quarantined\": {quarantined}, \
         \"retry_backoff_ms\": {:.3}, \"disk_cache_hits\": {disk_hits}, \
         \"cache_segments_rejected\": {seg_rejected}, \"cells_replayed\": {}, \
         \"checkpoint_io_errors\": {}}},\n  \
         \"cells\": [\n{cells}\n  ]\n}}\n",
        report.rows.len(),
        report.profiles.len(),
        sched.0,
        sched.1,
        paper.hits,
        paper.misses,
        paper.blasted,
        paper.reused,
        paper.shared_hits,
        paper.shared_stores,
        paper.shared_rejected,
        incremental.rows.len(),
        inc.hits,
        inc.misses,
        inc.blasted,
        inc.reused,
        inc.shared_hits,
        inc.shared_stores,
        inc.shared_rejected,
        inc.trace_full,
        inc.trace_elided,
        inc.trace_bytes,
        simp_ns as f64 / 1e6,
        intv_ns as f64 / 1e6,
        slice_ns as f64 / 1e6,
        paper.trace_full,
        paper.trace_elided,
        paper.trace_bytes,
        backoff_ns as f64 / 1e6,
        report.stats.cells_replayed,
        report.stats.checkpoint_io_errors,
    )
}
