//! Regenerates the paper's Section V.C negative-bomb probe: a bomb guarded
//! by the unsatisfiable `pow(x, 2) == -1`. A sound tool reports it
//! unreachable; the paper observes that Angr (without loaded libraries)
//! aggressively assigns a return value to `pow` and claims the bomb
//! triggerable.

use bomblab_bombs::negative_pow;
use bomblab_concolic::{ground_truth, Engine, Outcome, ToolProfile};

fn main() {
    let case = negative_pow();
    let ground = ground_truth(&case.subject, &case.trigger);
    println!("Negative bomb: pow(x, 2) == -1 (unsatisfiable)\n");
    println!("| tool | outcome | claims reachable? |");
    println!("|---|---|---|");
    for profile in ToolProfile::paper_lineup() {
        let name = profile.name.clone();
        let attempt = Engine::new(profile).explore(&case.subject, &ground);
        let claims = attempt.evidence.sat_queries > 0 && attempt.outcome != Outcome::Solved;
        println!("| {} | {} | {} |", name, attempt.outcome, claims);
    }
    println!("\n(The paper reports the false positive for Angr's unloaded-library mode.)");
}
