//! Regenerates the paper's Table II: 22 logic bombs × 4 tool profiles.

use bomblab_bombs::all_cases;
use bomblab_concolic::{run_study_jobs, ToolProfile};

fn main() {
    let jobs = bomblab_bench::jobs_from_args();
    let cases = all_cases();
    let profiles = ToolProfile::paper_lineup();
    eprintln!(
        "running {} bombs x {} profiles on {} worker(s) ...",
        cases.len(),
        profiles.len(),
        jobs
    );
    let start = std::time::Instant::now();
    let report = run_study_jobs(&cases, &profiles, jobs);
    eprintln!("done in {:.1?}", start.elapsed());
    println!("{}", report.to_markdown());
    let counts = report.solved_counts();
    println!(
        "\nSolved: BAP={} Triton={} Angr={} Angr-NoLib={} (paper: 2 / 1 / 3 / 4; Angr union {})",
        counts[0],
        counts[1],
        counts[2],
        counts[3],
        report
            .rows
            .iter()
            .filter(|r| r.cells[2..4]
                .iter()
                .any(|c| c.outcome == bomblab_concolic::Outcome::Solved))
            .count()
    );
}
