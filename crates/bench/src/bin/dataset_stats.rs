//! Regenerates the paper's Section V.A dataset statistics: the bombs'
//! binary sizes (the paper reports 10–25 KB with a 14 KB median for its
//! gcc-built x86_64 binaries).

use bomblab_bombs::{all_cases, dataset_stats};

fn main() {
    let stats = dataset_stats();
    println!("Dataset statistics ({} bombs)\n", stats.count);
    println!("| bomb | category | loadable bytes |");
    println!("|---|---|---|");
    for case in all_cases() {
        let size = case.subject.image.loadable_size()
            + case
                .subject
                .lib
                .as_ref()
                .map_or(0, bomblab_isa::image::Image::loadable_size);
        println!("| {} | {} | {size} |", case.subject.name, case.category);
    }
    println!(
        "\nrange [{} B, {} B], median {} B (paper: [10 KB, 25 KB], median 14 KB)",
        stats.min_bytes, stats.max_bytes, stats.median_bytes
    );
}
