//! §IV.C.1 scalability: how the tainted-instruction count and the symbolic
//! path grow with the number of external (`printf`) calls.

use bomblab_bombs::figure3::external_calls_source;
use bomblab_isa::image::layout;
use bomblab_rt::link_program;
use bomblab_symex::{MemoryModel, PropagationPolicy, SymExec};
use bomblab_taint::{TaintEngine, TaintPolicy};
use bomblab_vm::{Machine, MachineConfig, ROOT_PID};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

struct PipelineOut {
    tainted: usize,
    path_len: usize,
}

fn pipeline(k: usize) -> PipelineOut {
    let src = external_calls_source(k);
    let image = link_program(&src).expect("builds");
    let config = MachineConfig {
        trace: true,
        ..MachineConfig::with_arg("7")
    };
    let mut machine = Machine::load(&image, None, config).expect("loads");
    let snapshot = machine.process_memory(ROOT_PID).expect("root").clone();
    machine.run();
    let trace = machine.take_trace();

    let mut taint = TaintEngine::new(TaintPolicy::argv_direct_only());
    taint.taint_memory(ROOT_PID, &[(layout::ARGV_BASE + 16 + 5, 1)]);
    let report = taint.run(&trace);

    let mut sx = SymExec::new(MemoryModel::Concretize, PropagationPolicy::full());
    sx.set_initial_memory(ROOT_PID, snapshot);
    sx.symbolize_bytes(ROOT_PID, layout::ARGV_BASE + 16 + 5, 1, "arg1");
    let sym = sx.run(&trace);
    PipelineOut {
        tainted: report.tainted_step_count,
        path_len: sym.path.len(),
    }
}

fn bench(c: &mut Criterion) {
    // Print the sweep once, so the series shape is visible in bench logs.
    println!("external-call sweep (k printf calls -> tainted insns, path length):");
    for k in [0usize, 1, 2, 4, 8] {
        let out = pipeline(k);
        println!("  k={k}: tainted={} path={}", out.tainted, out.path_len);
    }
    let mut group = c.benchmark_group("scale_external");
    for k in [0usize, 1, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| pipeline(k));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
