//! §IV.C.2 scalability: crypto functions defeat the solver. Measures the
//! cost of extracting and attempting to solve SHA-1 preimage constraints
//! as the (symbolic) message length grows.

use bomblab_isa::image::layout;
use bomblab_rt::link_program;
use bomblab_solver::expr::Term;
use bomblab_solver::{Solver, SolverBudget};
use bomblab_symex::{MemoryModel, PropagationPolicy, SymExec};
use bomblab_vm::{Machine, MachineConfig, ROOT_PID};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Builds a program hashing `len` bytes of argv and branch-free comparing
/// the *whole* digest against a fixed target (one final conditional), so
/// the flip query demands a full SHA-1 preimage; returns the query's node
/// count and the solver verdict.
fn sha1_pipeline(len: usize) -> (usize, &'static str) {
    let target = bomblab_rt::reference::sha1(b"the-target-msg");
    let bytes: Vec<String> = target.iter().map(|b| format!("{b:#04x}")).collect();
    let src = format!(
        r#"
        .extern sha1, bomb_boom
        .data
    out:    .space 20
    target: .byte {target}
        .text
        .global _start
    _start:
        ld a0, [a1+8]
        li a1, {len}
        li a2, out
        call sha1
        # mismatch accumulator: s1 = OR of byte differences
        li s1, 0
        li s0, 0
    acc:
        li t0, 20
        bge s0, t0, check
        li t1, out
        add t1, t1, s0
        lbu t1, [t1]
        li t2, target
        add t2, t2, s0
        lbu t2, [t2]
        xor t3, t1, t2
        or s1, s1, t3
        addi s0, s0, 1
        jmp acc
    check:
        bne s1, zero, no     # flip = full 20-byte preimage
        call bomb_boom
    no: li a0, 0
        li sv, 0
        sys
    "#,
        target = bytes.join(", ")
    );
    let image = link_program(&src).expect("builds");
    let arg = vec![b'A'; len];
    let config = MachineConfig {
        trace: true,
        ..MachineConfig::with_arg(arg)
    };
    let mut machine = Machine::load(&image, None, config).expect("loads");
    let snapshot = machine.process_memory(ROOT_PID).expect("root").clone();
    machine.run();
    let trace = machine.take_trace();

    let mut sx = SymExec::new(MemoryModel::Concretize, PropagationPolicy::full());
    sx.set_initial_memory(ROOT_PID, snapshot);
    sx.symbolize_bytes(ROOT_PID, layout::ARGV_BASE + 16 + 5, len as u64, "arg1");
    let sym = sx.run(&trace);
    let last = sym.path.len() - 1;
    let query = sym.flip_query(last);
    let nodes: usize = query.iter().map(Term::size).sum();
    // A small conflict budget keeps the bench quick; the verdict is the
    // same at any practical budget (full preimages are out of reach).
    let solver = Solver::new().with_budget(SolverBudget {
        max_conflicts: 50,
        max_formula_nodes: 1_000_000,
    });
    let verdict = match solver.check(&query) {
        bomblab_solver::SolveOutcome::Sat(_) => "sat",
        bomblab_solver::SolveOutcome::Unsat => "unsat",
        bomblab_solver::SolveOutcome::Unknown(_) => "budget-exhausted",
    };
    (nodes, verdict)
}

fn bench(c: &mut Criterion) {
    println!("sha1 preimage sweep (message bytes -> formula nodes, verdict):");
    for len in [1usize, 4, 8] {
        let (nodes, verdict) = sha1_pipeline(len);
        println!("  len={len}: nodes={nodes} verdict={verdict}");
    }
    let mut group = c.benchmark_group("scale_crypto");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(20));
    for len in [1usize, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, &len| {
            b.iter(|| sha1_pipeline(len));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
