//! Observability overhead: an unarmed instrumentation site must cost a
//! single relaxed atomic load, and an unarmed end-to-end VM run must be
//! indistinguishable from the pre-instrumentation baseline.
//!
//! Compare `vm_loop_unarmed` against `vm_loop_armed` (and against the
//! `vm` group in `vm_throughput.rs`, which measures the same program):
//! the unarmed number is the one the study pays when `--trace` is off.

use bomblab_obs as obs;
use bomblab_rt::link_program;
use bomblab_vm::{Machine, MachineConfig};
use criterion::{criterion_group, criterion_main, Criterion};

const LOOP: &str = r#"
    .global _start
_start:
    li t0, 0
    li t1, 100000
loop:
    addi t0, t0, 1
    bne t0, t1, loop
    li a0, 0
    li sv, 0
    sys
"#;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");

    // The raw site: one counter bump. Unarmed this is a relaxed load and
    // a branch; armed it walks the thread-local profile.
    group.bench_function("site_unarmed", |b| {
        assert!(!obs::armed());
        b.iter(|| obs::counter("bench.counter", 1));
    });
    group.bench_function("site_armed", |b| {
        let token = obs::arm("bench", "bench");
        b.iter(|| obs::counter("bench.counter", 1));
        let profile = obs::disarm(token);
        assert!(profile.counter("bench.counter") > 0);
    });

    // End to end: the instrumented VM interpreting 200k steps. The
    // unarmed case is the zero-overhead claim.
    let image = link_program(LOOP).expect("builds");
    group.sample_size(20);
    group.bench_function("vm_loop_unarmed", |b| {
        assert!(!obs::armed());
        b.iter(|| {
            let mut m = Machine::load(&image, None, MachineConfig::default()).unwrap();
            m.run().steps
        });
    });
    group.bench_function("vm_loop_armed", |b| {
        let token = obs::arm("bench", "bench");
        b.iter(|| {
            let mut m = Machine::load(&image, None, MachineConfig::default()).unwrap();
            m.run().steps
        });
        let profile = obs::disarm(token);
        assert!(profile.spans.iter().any(|s| s.stage == "vm.run"));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
