//! Solver microbenchmarks: bit-blasting and CDCL on representative
//! constraint shapes.

use bomblab_solver::expr::{BvOp, CmpOp, Term};
use bomblab_solver::sat::{Lit, SatResult, SatSolver};
use bomblab_solver::{SolveOutcome, Solver};
use criterion::{criterion_group, criterion_main, Criterion};

fn crackme_query(width: u8) -> Term {
    // (x ^ K1) * 3 + K2 == K3
    let x = Term::var("x", width);
    let e = Term::bin(
        BvOp::Add,
        &Term::bin(
            BvOp::Mul,
            &Term::bin(BvOp::Xor, &x, &Term::bv(0x5A, width)),
            &Term::bv(3, width),
        ),
        &Term::bv(0x11, width),
    );
    Term::cmp(CmpOp::Eq, &e, &Term::bv(0x42, width))
}

/// The shape of a paper-profile flip query: one crackme condition plus
/// independent nonzero guards on each argv byte — exactly what the
/// cone-of-influence slicer is built to pull apart.
fn flip_style_query() -> Vec<Term> {
    let mut q = vec![crackme_query(32)];
    for b in 0..8 {
        let var = Term::var(format!("arg1_b{b}"), 8);
        q.push(Term::not(&Term::cmp(CmpOp::Eq, &var, &Term::bv(0, 8))));
    }
    q
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver");
    for width in [8u8, 32, 64] {
        group.bench_function(format!("crackme_{width}bit"), |b| {
            b.iter(|| {
                let q = crackme_query(width);
                matches!(Solver::new().check(&[q]), SolveOutcome::Sat(_))
            });
        });
    }
    group.bench_function("div_rem_16bit", |b| {
        b.iter(|| {
            let x = Term::var("x", 16);
            let c1 = Term::cmp(
                CmpOp::Eq,
                &Term::bin(BvOp::UDiv, &x, &Term::bv(7, 16)),
                &Term::bv(35, 16),
            );
            let c2 = Term::cmp(
                CmpOp::Eq,
                &Term::bin(BvOp::URem, &x, &Term::bv(7, 16)),
                &Term::bv(3, 16),
            );
            matches!(Solver::new().check(&[c1, c2]), SolveOutcome::Sat(_))
        });
    });
    group.finish();

    // Word-level optimizer ablation: the same flip-style query with each
    // stage toggled off, so a regression in either stage shows up as the
    // `full` leg converging on `raw`.
    let mut group = c.benchmark_group("optimizer");
    for (name, simplify, slicing) in [
        ("flip_full", true, true),
        ("flip_no_simplify", false, true),
        ("flip_no_slice", true, false),
        ("flip_raw", false, false),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let q = flip_style_query();
                matches!(
                    Solver::new()
                        .with_simplify(simplify)
                        .with_slicing(slicing)
                        .check(&q),
                    SolveOutcome::Sat(_)
                )
            });
        });
    }
    group.finish();

    // Raw CDCL propagation loop, no bit-blasting in front. The chain leg
    // is conflict-free — one unit triggers a deterministic cascade down
    // long implication chains, so it times the watch-arena walk itself.
    // The pigeonhole legs add conflict/learning/reduction churn on top.
    let mut group = c.benchmark_group("propagation");
    let chain = || {
        let mut s = SatSolver::new();
        for _ in 0..64 {
            let vars: Vec<u32> = (0..1000).map(|_| s.new_var()).collect();
            for w in vars.windows(2) {
                s.add_clause(&[Lit::neg(w[0]), Lit::pos(w[1])]);
            }
            s.add_clause(&[Lit::pos(vars[0])]);
        }
        let sat = matches!(s.solve(1000), SatResult::Sat(_));
        (sat, s.conflicts())
    };
    group.bench_function("chain_64x1000", |b| {
        b.iter(|| chain().0);
    });
    // Work diagnostic alongside the timing: the same leg's conflict count.
    // Two runs that differ in conflicts are solving different search
    // problems (heuristic drift), not running the same problem at
    // different speeds — this is what separated a pigeonhole "slowdown"
    // (5194 vs 3300 conflicts) from a real hot-loop regression.
    println!("  propagation/chain_64x1000: conflicts {}", chain().1);
    for holes in [6usize, 7] {
        let run = move || {
            let mut s = SatSolver::new();
            pigeonhole(&mut s, holes);
            let unsat = matches!(s.solve(5_000_000), SatResult::Unsat);
            (unsat, s.conflicts())
        };
        group.bench_function(format!("pigeonhole_{holes}"), |b| {
            b.iter(|| run().0);
        });
        println!("  propagation/pigeonhole_{holes}: conflicts {}", run().1);
    }
    group.finish();
}

/// Pigeonhole principle PHP(n+1, n): n+1 pigeons, n holes — unsatisfiable,
/// and every conflict is found through long propagation chains.
fn pigeonhole(s: &mut SatSolver, holes: usize) {
    let pigeons = holes + 1;
    let vars: Vec<u32> = (0..pigeons * holes).map(|_| s.new_var()).collect();
    let var = |p: usize, h: usize| vars[p * holes + h];
    for p in 0..pigeons {
        let clause: Vec<Lit> = (0..holes).map(|h| Lit::pos(var(p, h))).collect();
        s.add_clause(&clause);
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                s.add_clause(&[Lit::neg(var(p1, h)), Lit::neg(var(p2, h))]);
            }
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
