//! Solver microbenchmarks: bit-blasting and CDCL on representative
//! constraint shapes.

use bomblab_solver::expr::{BvOp, CmpOp, Term};
use bomblab_solver::{SolveOutcome, Solver};
use criterion::{criterion_group, criterion_main, Criterion};

fn crackme_query(width: u8) -> Term {
    // (x ^ K1) * 3 + K2 == K3
    let x = Term::var("x", width);
    let e = Term::bin(
        BvOp::Add,
        &Term::bin(
            BvOp::Mul,
            &Term::bin(BvOp::Xor, &x, &Term::bv(0x5A, width)),
            &Term::bv(3, width),
        ),
        &Term::bv(0x11, width),
    );
    Term::cmp(CmpOp::Eq, &e, &Term::bv(0x42, width))
}

/// The shape of a paper-profile flip query: one crackme condition plus
/// independent nonzero guards on each argv byte — exactly what the
/// cone-of-influence slicer is built to pull apart.
fn flip_style_query() -> Vec<Term> {
    let mut q = vec![crackme_query(32)];
    for b in 0..8 {
        let var = Term::var(format!("arg1_b{b}"), 8);
        q.push(Term::not(&Term::cmp(CmpOp::Eq, &var, &Term::bv(0, 8))));
    }
    q
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver");
    for width in [8u8, 32, 64] {
        group.bench_function(format!("crackme_{width}bit"), |b| {
            b.iter(|| {
                let q = crackme_query(width);
                matches!(Solver::new().check(&[q]), SolveOutcome::Sat(_))
            });
        });
    }
    group.bench_function("div_rem_16bit", |b| {
        b.iter(|| {
            let x = Term::var("x", 16);
            let c1 = Term::cmp(
                CmpOp::Eq,
                &Term::bin(BvOp::UDiv, &x, &Term::bv(7, 16)),
                &Term::bv(35, 16),
            );
            let c2 = Term::cmp(
                CmpOp::Eq,
                &Term::bin(BvOp::URem, &x, &Term::bv(7, 16)),
                &Term::bv(3, 16),
            );
            matches!(Solver::new().check(&[c1, c2]), SolveOutcome::Sat(_))
        });
    });
    group.finish();

    // Word-level optimizer ablation: the same flip-style query with each
    // stage toggled off, so a regression in either stage shows up as the
    // `full` leg converging on `raw`.
    let mut group = c.benchmark_group("optimizer");
    for (name, simplify, slicing) in [
        ("flip_full", true, true),
        ("flip_no_simplify", false, true),
        ("flip_no_slice", true, false),
        ("flip_raw", false, false),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let q = flip_style_query();
                matches!(
                    Solver::new()
                        .with_simplify(simplify)
                        .with_slicing(slicing)
                        .check(&q),
                    SolveOutcome::Sat(_)
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
