//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * memory model: concretizing vs symbolic-index tables, and the cost of
//!   growing the table region;
//! * interval pre-solving: how often it saves a bit-blast.

use bomblab_isa::image::layout;
use bomblab_rt::link_program;
use bomblab_solver::expr::{BvOp, CmpOp, Term};
use bomblab_solver::{SolveOutcome, Solver};
use bomblab_symex::{MemoryModel, PropagationPolicy, SymExec};
use bomblab_vm::{Machine, MachineConfig, ROOT_PID};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const ARRAY_BOMB: &str = r#"
    .extern atoi, bomb_boom
    .data
table: .byte 10, 20, 30, 40, 50, 60, 70, 80
    .text
    .global _start
_start:
    ld a0, [a1+8]
    call atoi
    andi a0, a0, 7
    li t0, table
    add t0, t0, a0
    lbu t1, [t0]
    li t2, 70
    bne t1, t2, no
    call bomb_boom
no: li a0, 0
    li sv, 0
    sys
"#;

/// Traces the array bomb once, replays it under `model`, solves every
/// branch flip, and reports whether any generated input detonates — the
/// end-to-end effect the memory model is responsible for.
fn array_pipeline(model: MemoryModel) -> bool {
    let image = link_program(ARRAY_BOMB).expect("builds");
    let config = MachineConfig {
        trace: true,
        ..MachineConfig::with_arg("2")
    };
    let mut machine = Machine::load(&image, None, config).expect("loads");
    let snapshot = machine.process_memory(ROOT_PID).expect("root").clone();
    machine.run();
    let trace = machine.take_trace();
    let mut sx = SymExec::new(model, PropagationPolicy::full());
    sx.set_initial_memory(ROOT_PID, snapshot);
    sx.symbolize_bytes(ROOT_PID, layout::ARGV_BASE + 16 + 5, 1, "arg1");
    let sym = sx.run(&trace);
    let solver = Solver::new();
    for i in 0..sym.path.len() {
        let SolveOutcome::Sat(m) = solver.check(&sym.flip_query(i)) else {
            continue;
        };
        let byte = m.get("arg1_b0").map_or(b'2', |v| v as u8);
        let mut replay =
            Machine::load(&image, None, MachineConfig::with_arg(vec![byte])).expect("loads");
        if replay.run().status.exit_code() == Some(42) {
            return true;
        }
    }
    false
}

fn memory_model_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_memory_model");
    group.bench_function("concretize", |b| {
        b.iter(|| array_pipeline(MemoryModel::Concretize));
    });
    for region in [16u64, 64, 256] {
        group.bench_with_input(
            BenchmarkId::new("symbolic_map", region),
            &region,
            |b, &region| {
                b.iter(|| {
                    array_pipeline(MemoryModel::SymbolicMap {
                        max_indirection: 1,
                        region,
                    })
                });
            },
        );
    }
    group.finish();
    // Sanity outside timing: concretization cannot solve, the map can.
    assert!(!array_pipeline(MemoryModel::Concretize));
    assert!(array_pipeline(MemoryModel::SymbolicMap {
        max_indirection: 1,
        region: 64
    }));
}

fn interval_presolve_ablation(c: &mut Criterion) {
    // A constraint the interval pre-solver kills instantly vs forcing the
    // full bit-blast by shifting the constant into range.
    let x = Term::var("x", 32);
    let masked = Term::bin(BvOp::And, &x, &Term::bv(0xFF, 32));
    let dead = Term::cmp(CmpOp::Eq, &masked, &Term::bv(0x1_0000, 32));
    let alive = Term::cmp(CmpOp::Eq, &masked, &Term::bv(0x42, 32));
    let mut group = c.benchmark_group("ablation_interval");
    group.bench_function("presolved_unsat", |b| {
        b.iter(|| {
            matches!(
                Solver::new().check(std::slice::from_ref(&dead)),
                SolveOutcome::Unsat
            )
        });
    });
    group.bench_function("blasted_sat", |b| {
        b.iter(|| {
            matches!(
                Solver::new().check(std::slice::from_ref(&alive)),
                SolveOutcome::Sat(_)
            )
        });
    });
    group.finish();
}

criterion_group!(benches, memory_model_ablation, interval_presolve_ablation);
criterion_main!(benches);
