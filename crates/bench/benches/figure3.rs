//! Criterion bench for the Figure-3 pipeline: trace + taint of the
//! printf-enabled and printf-disabled programs.

use bomblab_bombs::figure3::figure3_source;
use bomblab_isa::image::layout;
use bomblab_rt::link_program;
use bomblab_taint::{TaintEngine, TaintPolicy};
use bomblab_vm::{Machine, MachineConfig, ROOT_PID};
use criterion::{criterion_group, criterion_main, Criterion};

fn figure3_pipeline(with_print: bool) -> usize {
    let src = figure3_source(with_print);
    let image = link_program(&src).expect("builds");
    let config = MachineConfig {
        trace: true,
        ..MachineConfig::with_arg("7")
    };
    let mut machine = Machine::load(&image, None, config).expect("loads");
    machine.run();
    let trace = machine.take_trace();
    let mut engine = TaintEngine::new(TaintPolicy::argv_direct_only());
    engine.taint_memory(ROOT_PID, &[(layout::ARGV_BASE + 16 + 5, 1)]);
    engine.run(&trace).tainted_step_count
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure3");
    group.bench_function("without_printf", |b| b.iter(|| figure3_pipeline(false)));
    group.bench_function("with_printf", |b| b.iter(|| figure3_pipeline(true)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
