//! VM microbenchmarks: raw interpretation speed with and without tracing.

use bomblab_rt::link_program;
use bomblab_vm::{Machine, MachineConfig};
use criterion::{criterion_group, criterion_main, Criterion};

const LOOP: &str = r#"
    .global _start
_start:
    li t0, 0
    li t1, 100000
loop:
    addi t0, t0, 1
    bne t0, t1, loop
    li a0, 0
    li sv, 0
    sys
"#;

fn bench(c: &mut Criterion) {
    let image = link_program(LOOP).expect("builds");
    let mut group = c.benchmark_group("vm");
    group.sample_size(20);
    group.bench_function("loop_200k_steps", |b| {
        b.iter(|| {
            let mut m = Machine::load(&image, None, MachineConfig::default()).unwrap();
            m.run().steps
        });
    });
    group.bench_function("loop_200k_steps_traced", |b| {
        b.iter(|| {
            let config = MachineConfig {
                trace: true,
                ..MachineConfig::default()
            };
            let mut m = Machine::load(&image, None, config).unwrap();
            m.run().steps
        });
    });
    // Sparse tracing: the taint gate armed with no tainted input at all,
    // so every step of the loop records as an elided skeleton — the upper
    // bound on what taint-gated elision can save over `traced`.
    group.bench_function("loop_200k_steps_traced_sparse", |b| {
        b.iter(|| {
            let config = MachineConfig {
                trace: true,
                sparse_taint: Some(Vec::new()),
                ..MachineConfig::default()
            };
            let mut m = Machine::load(&image, None, config).unwrap();
            m.run().steps
        });
    });
    // A/B ablation: the same loops with the predecoded block cache off,
    // byte-decoding every step. The `loop_200k_steps` / `nocache` ratio is
    // the dispatch speedup the cache buys.
    group.bench_function("loop_200k_steps_nocache", |b| {
        b.iter(|| {
            let config = MachineConfig {
                bbcache: false,
                ..MachineConfig::default()
            };
            let mut m = Machine::load(&image, None, config).unwrap();
            m.run().steps
        });
    });
    group.bench_function("loop_200k_steps_traced_nocache", |b| {
        b.iter(|| {
            let config = MachineConfig {
                trace: true,
                bbcache: false,
                ..MachineConfig::default()
            };
            let mut m = Machine::load(&image, None, config).unwrap();
            m.run().steps
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
