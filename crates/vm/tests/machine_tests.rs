//! End-to-end machine tests: assemble → link → run.

use bomblab_isa::asm::assemble;
use bomblab_isa::link::Linker;
use bomblab_isa::{sys, trap};
use bomblab_vm::{Machine, MachineConfig, RunStatus, SysEffect};

fn build(src: &str) -> bomblab_isa::image::Image {
    let obj = assemble(src).expect("assembly");
    Linker::new().add_object(obj).link().expect("link")
}

fn run_with(src: &str, config: MachineConfig) -> (RunStatus, Machine) {
    let image = build(src);
    let mut machine = Machine::load(&image, None, config).expect("load");
    let result = machine.run();
    (result.status, machine)
}

fn run(src: &str) -> (RunStatus, Machine) {
    run_with(src, MachineConfig::default())
}

#[test]
fn exit_code_is_reported() {
    let (status, _) = run(r#"
        .global _start
    _start:
        li a0, 42
        li sv, 0
        sys
        "#);
    assert_eq!(status, RunStatus::Exited(42));
}

#[test]
fn main_return_falls_into_exit_stub() {
    // `_start` just returns; ra points at the VM exit stub, so the return
    // value in a0 becomes the exit code.
    let (status, _) = run(r#"
        .global _start
    _start:
        li a0, 9
        ret
        "#);
    assert_eq!(status, RunStatus::Exited(9));
}

#[test]
fn write_to_stdout_is_captured() {
    let (status, machine) = run(r#"
        .data
    msg: .asciz "hello, vm\n"
        .text
        .global _start
    _start:
        li a0, 1        # stdout
        li a1, msg
        li a2, 10
        li sv, 1        # write
        sys
        li a0, 0
        li sv, 0
        sys
        "#);
    assert_eq!(status, RunStatus::Exited(0));
    assert_eq!(machine.stdout(), b"hello, vm\n");
}

#[test]
fn argv_is_laid_out_for_the_program() {
    // Exit with the first byte of argv[1].
    let src = r#"
        .global _start
    _start:
        ld a1, [a1+8]   # argv[1]
        lbu a0, [a1]
        li sv, 0
        sys
        "#;
    let (status, _) = run_with(src, MachineConfig::with_arg("Z rest"));
    assert_eq!(status, RunStatus::Exited(b'Z' as i64));
}

#[test]
fn file_round_trip_through_the_simulated_fs() {
    let src = r#"
        .data
    path: .asciz "tmp.dat"
    buf:  .space 16
        .text
        .global _start
    _start:
        # open("tmp.dat", O_WRONLY)
        li a0, path
        li a1, 1
        li sv, 3
        sys
        mov s0, a0          # fd
        # write(fd, path, 3) -- writes "tmp"
        mov a0, s0
        li a1, path
        li a2, 3
        li sv, 1
        sys
        # close(fd)
        mov a0, s0
        li sv, 4
        sys
        # open("tmp.dat", O_RDONLY)
        li a0, path
        li a1, 0
        li sv, 3
        sys
        mov s0, a0
        # read(fd, buf, 16)
        mov a0, s0
        li a1, buf
        li a2, 16
        li sv, 2
        sys
        # exit(first byte read)
        li a1, buf
        lbu a0, [a1]
        li sv, 0
        sys
        "#;
    let (status, machine) = run(src);
    assert_eq!(status, RunStatus::Exited(b't' as i64));
    assert_eq!(machine.os().file("tmp.dat"), Some(&b"tmp"[..]));
}

#[test]
fn open_missing_file_for_read_fails() {
    let src = r#"
        .data
    path: .asciz "nope"
        .text
        .global _start
    _start:
        li a0, path
        li a1, 0
        li sv, 3
        sys
        # a0 is -1; exit(a0 + 2) == 1
        addi a0, a0, 2
        li sv, 0
        sys
        "#;
    let (status, _) = run(src);
    assert_eq!(status, RunStatus::Exited(1));
}

#[test]
fn time_syscall_returns_configured_epoch() {
    let src = r#"
        .global _start
    _start:
        li sv, 6
        sys
        li sv, 0
        sys
        "#;
    let config = MachineConfig {
        epoch: 777,
        ..MachineConfig::default()
    };
    let (status, _) = run_with(src, config);
    assert_eq!(status, RunStatus::Exited(777));
}

#[test]
fn unhandled_div_zero_faults_the_process() {
    let (status, _) = run(r#"
        .global _start
    _start:
        li a0, 10
        li a1, 0
        divs a2, a0, a1
        li sv, 0
        sys
        "#);
    match status {
        RunStatus::Faulted { cause, .. } => assert_eq!(cause, trap::DIV_ZERO),
        other => panic!("expected fault, got {other:?}"),
    }
}

#[test]
fn trap_handler_receives_cause_and_resumes() {
    // Install a handler that sets s0 = 99 and resumes after the faulting
    // instruction; then divide by zero and exit with s0.
    let (status, _) = run(r#"
        .global _start
    _start:
        li a0, handler
        li sv, 14            # set_trap_handler
        sys
        li a0, 10
        li a1, 0
        divs a2, a0, a1      # traps; handler resumes after this insn
        mov a0, s0
        li sv, 0
        sys
    handler:
        li s0, 99
        jr tr
        "#);
    assert_eq!(status, RunStatus::Exited(99));
}

#[test]
fn fork_returns_zero_in_child_and_pid_in_parent() {
    // Parent waits for child; child exits 5; parent exits child_status + 1.
    let (status, _) = run(r#"
        .global _start
    _start:
        li sv, 8             # fork
        sys
        beq a0, r0, child
        # parent: waitpid(child)
        li sv, 9
        sys
        addi a0, a0, 1
        li sv, 0
        sys
    child:
        li a0, 5
        li sv, 0
        sys
        "#);
    assert_eq!(status, RunStatus::Exited(6));
}

#[test]
fn pipe_carries_bytes_between_processes() {
    // Parent forks; child writes a byte into the pipe and exits; parent
    // reads it (blocking until available) and exits with it.
    let (status, machine) = run(r#"
        .data
    fds: .space 16
    buf: .space 8
        .text
        .global _start
    _start:
        li a0, fds
        li sv, 10            # pipe
        sys
        li sv, 8             # fork
        sys
        beq a0, r0, child
        # parent: close write end, then read
        li a0, fds
        ld a0, [a0+8]
        li sv, 4             # close(wfd)
        sys
        li a0, fds
        ld a0, [a0]
        li a1, buf
        li a2, 1
        li sv, 2             # read(rfd, buf, 1)
        sys
        li a1, buf
        lbu a0, [a1]
        li sv, 0
        sys
    child:
        li a0, fds
        ld a0, [a0+8]
        li a1, marker
        li a2, 1
        li sv, 1             # write(wfd, marker, 1)
        sys
        li a0, 0
        li sv, 0
        sys
        .data
    marker: .byte 0x5A
        "#);
    assert_eq!(
        status,
        RunStatus::Exited(0x5A),
        "stdout: {:?}",
        machine.stdout()
    );
}

#[test]
fn threads_share_memory_and_join_returns_value() {
    // Spawn a thread that increments a shared cell by 3 and returns 11;
    // main joins, then exits with cell + join value.
    let (status, _) = run(r#"
        .data
    cell: .quad 4
        .text
        .global _start
    _start:
        li a0, worker
        li a1, 3
        li sv, 11            # thread_spawn(worker, 3)
        sys
        # join
        li sv, 12
        sys
        mov s1, a0           # 11
        li a1, cell
        ld a0, [a1]
        add a0, a0, s1       # 7 + 11
        li sv, 0
        sys
    worker:
        li t0, cell
        ld t1, [t0]
        add t1, t1, a0       # cell += arg
        sd [t0], t1
        li a0, 11
        ret                  # returns to THREAD_EXIT stub
        "#);
    assert_eq!(status, RunStatus::Exited(18));
}

#[test]
fn net_get_serves_configured_response() {
    let src = r#"
        .data
    url: .asciz "http://bvm/flag"
    buf: .space 64
        .text
        .global _start
    _start:
        li a0, url
        li a1, buf
        li a2, 64
        li sv, 13            # net_get
        sys
        li a1, buf
        lbu a0, [a1]
        li sv, 0
        sys
        "#;
    let config = MachineConfig {
        net_response: b"Xsecret".to_vec(),
        ..MachineConfig::default()
    };
    let (status, _) = run_with(src, config);
    assert_eq!(status, RunStatus::Exited(b'X' as i64));
}

#[test]
fn infinite_loop_hits_step_budget() {
    let src = r#"
        .global _start
    _start:
        jmp _start
        "#;
    let config = MachineConfig {
        step_budget: 10_000,
        ..MachineConfig::default()
    };
    let (status, _) = run_with(src, config);
    assert_eq!(status, RunStatus::OutOfBudget);
}

#[test]
fn read_from_never_filled_pipe_deadlocks() {
    let (status, _) = run(r#"
        .data
    fds: .space 16
    buf: .space 8
        .text
        .global _start
    _start:
        li a0, fds
        li sv, 10            # pipe
        sys
        li a0, fds
        ld a0, [a0]
        li a1, buf
        li a2, 1
        li sv, 2             # read -- blocks forever (we hold the write end)
        sys
        li a0, 0
        li sv, 0
        sys
        "#);
    assert_eq!(status, RunStatus::Deadlock);
}

#[test]
fn read_from_closed_pipe_returns_eof() {
    let (status, _) = run(r#"
        .data
    fds: .space 16
    buf: .space 8
        .text
        .global _start
    _start:
        li a0, fds
        li sv, 10            # pipe
        sys
        li a0, fds
        ld a0, [a0+8]
        li sv, 4             # close write end
        sys
        li a0, fds
        ld a0, [a0]
        li a1, buf
        li a2, 1
        li sv, 2             # read -> 0 (EOF)
        sys
        li sv, 0
        sys
        "#);
    assert_eq!(status, RunStatus::Exited(0));
}

#[test]
fn trace_records_syscall_effects() {
    let src = r#"
        .data
    msg: .asciz "x"
        .text
        .global _start
    _start:
        li a0, 1
        li a1, msg
        li a2, 1
        li sv, 1
        sys
        li a0, 0
        li sv, 0
        sys
        "#;
    let config = MachineConfig {
        trace: true,
        ..MachineConfig::default()
    };
    let (status, mut machine) = run_with(src, config);
    assert_eq!(status, RunStatus::Exited(0));
    let trace = machine.take_trace();
    assert!(!trace.is_empty());
    let write_step = trace
        .iter()
        .find(|s| s.sys.as_ref().is_some_and(|r| r.num == sys::WRITE))
        .expect("write syscall in trace");
    match &write_step.sys.as_ref().unwrap().effect {
        SysEffect::OutputBytes { bytes, .. } => assert_eq!(bytes, b"x"),
        other => panic!("expected OutputBytes, got {other:?}"),
    }
}

#[test]
fn halt_stops_with_a0_as_exit_code() {
    let (status, _) = run(r#"
        .global _start
    _start:
        li a0, 3
        halt
        "#);
    assert_eq!(status, RunStatus::Exited(3));
}

#[test]
fn stdin_is_readable() {
    let src = r#"
        .data
    buf: .space 8
        .text
        .global _start
    _start:
        li a0, 0
        li a1, buf
        li a2, 4
        li sv, 2
        sys
        li a1, buf
        lbu a0, [a1+1]
        li sv, 0
        sys
        "#;
    let config = MachineConfig {
        stdin: b"abcd".to_vec(),
        ..MachineConfig::default()
    };
    let (status, _) = run_with(src, config);
    assert_eq!(status, RunStatus::Exited(b'b' as i64));
}

#[test]
fn lseek_repositions_reads() {
    let src = r#"
        .data
    path: .asciz "f"
    buf:  .space 8
        .text
        .global _start
    _start:
        li a0, path
        li a1, 0
        li sv, 3         # open read
        sys
        mov s0, a0
        li a1, 2
        li a2, 0
        li sv, 15        # lseek(fd, 2, SET)
        sys
        mov a0, s0
        li a1, buf
        li a2, 1
        li sv, 2
        sys
        li a1, buf
        lbu a0, [a1]
        li sv, 0
        sys
        "#;
    let config = MachineConfig {
        files: vec![("f".to_string(), b"ABCDE".to_vec())],
        ..MachineConfig::default()
    };
    let (status, _) = run_with(src, config);
    assert_eq!(status, RunStatus::Exited(b'C' as i64));
}

#[test]
fn unknown_syscall_returns_minus_one() {
    let (status, _) = run(r#"
        .global _start
    _start:
        li sv, 9999
        sys
        addi a0, a0, 2   # -1 + 2 = 1
        li sv, 0
        sys
        "#);
    assert_eq!(status, RunStatus::Exited(1));
}

#[test]
fn getpid_and_getuid_return_fixed_values() {
    let (status, _) = run(r#"
        .global _start
    _start:
        li sv, 7         # getpid -> 1 (root)
        sys
        mov s0, a0
        li sv, 16        # getuid -> 1000
        sys
        add a0, a0, s0
        li sv, 0
        sys
        "#);
    assert_eq!(status, RunStatus::Exited(1001));
}

#[test]
fn write_to_readonly_fd_fails() {
    let src = r#"
        .data
    path: .asciz "f"
        .text
        .global _start
    _start:
        li a0, path
        li a1, 0
        li sv, 3             # open read-only
        sys
        mov s0, a0
        mov a0, s0
        li a1, path
        li a2, 1
        li sv, 1             # write -> -1
        sys
        addi a0, a0, 2       # -1 + 2 = 1
        li sv, 0
        sys
        "#;
    let config = MachineConfig {
        files: vec![("f".to_string(), b"x".to_vec())],
        ..MachineConfig::default()
    };
    let (status, _) = run_with(src, config);
    assert_eq!(status, RunStatus::Exited(1));
}

#[test]
fn closed_fd_is_reusable_and_stale_handle_fails() {
    let src = r#"
        .data
    p1: .asciz "a"
    p2: .asciz "b"
        .text
        .global _start
    _start:
        li a0, p1
        li a1, 1
        li sv, 3             # open "a" -> fd X
        sys
        mov s0, a0
        mov a0, s0
        li sv, 4             # close X
        sys
        li a0, p2
        li a1, 1
        li sv, 3             # open "b" -> should reuse fd X
        sys
        bne a0, s0, bad
        # write through the stale copy of X? same number now "b"; instead
        # close the new fd twice: second close fails.
        mov a0, s0
        li sv, 4
        sys
        mov a0, s0
        li sv, 4             # double close -> -1
        sys
        addi a0, a0, 2
        li sv, 0
        sys
    bad:
        li a0, 99
        li sv, 0
        sys
        "#;
    let (status, _) = run(src);
    assert_eq!(status, RunStatus::Exited(1));
}

#[test]
fn open_with_bad_flags_fails() {
    let (status, _) = run(r#"
        .data
    p: .asciz "x"
        .text
        .global _start
    _start:
        li a0, p
        li a1, 9             # invalid flags
        li sv, 3
        sys
        addi a0, a0, 2
        li sv, 0
        sys
        "#);
    assert_eq!(status, RunStatus::Exited(1));
}

#[test]
fn lseek_end_and_bad_whence() {
    let src = r#"
        .data
    p: .asciz "f"
        .text
        .global _start
    _start:
        li a0, p
        li a1, 0
        li sv, 3
        sys
        mov s0, a0
        mov a0, s0
        li a1, -2
        li a2, 2             # SEEK_END - 2 => 3
        li sv, 15
        sys
        mov s1, a0
        mov a0, s0
        li a1, 0
        li a2, 7             # bad whence -> -1
        li sv, 15
        sys
        addi a0, a0, 1       # 0
        add a0, a0, s1       # 3
        li sv, 0
        sys
        "#;
    let config = MachineConfig {
        files: vec![("f".to_string(), b"ABCDE".to_vec())],
        ..MachineConfig::default()
    };
    let (status, _) = run_with(src, config);
    assert_eq!(status, RunStatus::Exited(3));
}

#[test]
fn unlink_removes_files() {
    let src = r#"
        .data
    p: .asciz "gone"
        .text
        .global _start
    _start:
        li a0, p
        li sv, 5             # unlink -> 0
        sys
        mov s0, a0
        li a0, p
        li sv, 5             # unlink again -> -1
        sys
        addi a0, a0, 2       # 1
        add a0, a0, s0       # +0
        li sv, 0
        sys
        "#;
    let config = MachineConfig {
        files: vec![("gone".to_string(), b"x".to_vec())],
        ..MachineConfig::default()
    };
    let (status, machine) = run_with(src, config);
    assert_eq!(status, RunStatus::Exited(1));
    assert!(machine.os().file("gone").is_none());
}

#[test]
fn waitpid_for_unrelated_pid_fails() {
    let (status, _) = run(r#"
        .global _start
    _start:
        li a0, 999
        li sv, 9             # waitpid(999) -> -1 (no such child)
        sys
        addi a0, a0, 2
        li sv, 0
        sys
        "#);
    assert_eq!(status, RunStatus::Exited(1));
}

#[test]
fn thread_join_of_unknown_tid_fails() {
    let (status, _) = run(r#"
        .global _start
    _start:
        li a0, 777
        li sv, 12            # thread_join(777) -> -1
        sys
        addi a0, a0, 2
        li sv, 0
        sys
        "#);
    assert_eq!(status, RunStatus::Exited(1));
}

#[test]
fn two_threads_interleave_deterministically() {
    // Two spawned threads each add to a cell with distinct increments; the
    // round-robin scheduler makes the result deterministic across runs.
    let src = r#"
        .data
    cell: .quad 0
        .text
        .global _start
    _start:
        li a0, w1
        li a1, 0
        li sv, 11
        sys
        mov s0, a0
        li a0, w2
        li a1, 0
        li sv, 11
        sys
        mov s1, a0
        mov a0, s0
        li sv, 12
        sys
        mov a0, s1
        li sv, 12
        sys
        li t0, cell
        ld a0, [t0]
        li sv, 0
        sys
    w1:
        li t0, cell
        li t1, 0
    w1l:
        li t2, 100
        bge t1, t2, w1d
        ld t3, [t0]
        addi t3, t3, 1
        sd [t0], t3
        addi t1, t1, 1
        jmp w1l
    w1d:
        li a0, 0
        ret
    w2:
        li t0, cell
        li t1, 0
    w2l:
        li t2, 100
        bge t1, t2, w2d
        ld t3, [t0]
        addi t3, t3, 2
        sd [t0], t3
        addi t1, t1, 1
        jmp w2l
    w2d:
        li a0, 0
        ret
        "#;
    let (s1, _) = run(src);
    let (s2, _) = run(src);
    assert_eq!(s1, s2, "scheduling must be deterministic");
    // The read-modify-write is not atomic: preemption between ld and sd
    // loses updates — real data-race semantics, but deterministically so
    // under the round-robin scheduler.
    let value = s1.exit_code().expect("clean exit");
    assert!(
        (200..=300).contains(&value),
        "lost updates bound the racy sum: {value}"
    );
}
