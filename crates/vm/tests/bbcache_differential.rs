//! Differential property test for the predecoded block cache: random
//! programs — including stores that overwrite already-executed code and
//! branches that re-enter the middle of a decoded run — must produce the
//! exact same trace, final status, step count, and data memory whether
//! dispatch goes through the block cache or byte-decodes every step.

use bomblab_isa::asm::assemble;
use bomblab_isa::link::Linker;
use bomblab_vm::{Machine, MachineConfig, RunStatus, TraceStep, ROOT_PID};
use proptest::prelude::*;
use std::fmt::Write as _;

/// One filler instruction from a small trap-free, register-only menu
/// (plus aligned loads/stores against the `scratch` data buffer in `s7`).
fn filler_line(out: &mut String, choice: u8, imm: i16) {
    let imm = i64::from(imm);
    match choice % 8 {
        0 => {
            let _ = writeln!(out, "    li   t2, {imm}");
        }
        1 => {
            let _ = writeln!(out, "    addi t2, t2, {}", imm % 128);
        }
        2 => {
            let _ = writeln!(out, "    add  t3, t3, t2");
        }
        3 => {
            let _ = writeln!(out, "    xor  t3, t3, t2");
        }
        4 => {
            let _ = writeln!(out, "    mul  t3, t3, t2");
        }
        5 => {
            let _ = writeln!(out, "    sb   [s7+{}], t3", imm.rem_euclid(56));
        }
        6 => {
            let _ = writeln!(out, "    ld   t4, [s7+{}]", imm.rem_euclid(7) * 8);
        }
        _ => {
            let _ = writeln!(out, "    nop");
        }
    }
}

/// Assembles the differential skeleton:
///
/// 1. `target` runs once (its block gets decoded and cached),
/// 2. a store patches `target`'s first byte (self-modifying code),
/// 3. `target` runs again — possibly decoding garbage, trapping, or
///    wandering; whatever happens must happen identically without the
///    cache,
/// 4. a two-iteration loop whose back edge lands on `mid`, re-entering a
///    straight-line run that was decoded from `loop_head`.
fn build_program(
    f1: &[(u8, i16)],
    f2: &[(u8, i16)],
    f3: &[(u8, i16)],
    f4: &[(u8, i16)],
    payload: u8,
) -> String {
    let mut src = String::from(
        "
.text
.global _start
_start:
    li   s7, scratch
",
    );
    for &(c, i) in f1 {
        filler_line(&mut src, c, i);
    }
    let _ = write!(
        src,
        "    call target
    li   t5, target
    li   t6, {payload}
    sb   [t5+0], t6
    call target
    li   t0, 0
loop_head:
"
    );
    for &(c, i) in f2 {
        filler_line(&mut src, c, i);
    }
    src.push_str("mid:\n");
    for &(c, i) in f3 {
        filler_line(&mut src, c, i);
    }
    src.push_str(
        "    addi t0, t0, 1
    li   t1, 2
    blt  t0, t1, mid
    li   a0, 0
    li   sv, 0
    sys
target:
",
    );
    for &(c, i) in f4 {
        filler_line(&mut src, c, i);
    }
    src.push_str(
        "    ret
.data
scratch:
    .quad 0, 0, 0, 0, 0, 0, 0, 0
",
    );
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cached_dispatch_matches_decode_per_step(
        f1 in proptest::collection::vec((any::<u8>(), any::<i16>()), 1..8),
        f2 in proptest::collection::vec((any::<u8>(), any::<i16>()), 1..6),
        f3 in proptest::collection::vec((any::<u8>(), any::<i16>()), 1..6),
        f4 in proptest::collection::vec((any::<u8>(), any::<i16>()), 1..6),
        payload in any::<u8>(),
    ) {
        let src = build_program(&f1, &f2, &f3, &f4, payload);
        let obj = assemble(&src).expect("generated program assembles");
        let image = Linker::new().add_object(obj).link().expect("generated program links");

        let run = |bbcache: bool| -> (RunStatus, u64, Vec<TraceStep>, Option<Vec<u8>>) {
            let config = MachineConfig {
                trace: true,
                step_budget: 50_000,
                bbcache,
                ..MachineConfig::default()
            };
            let mut machine = Machine::load(&image, None, config).expect("image loads");
            let result = machine.run();
            let steps: Vec<TraceStep> = machine.take_trace().to_steps();
            let scratch = machine
                .process_memory(ROOT_PID)
                .and_then(|m| m.read_bytes(image.data_base, 64).ok());
            (result.status, result.steps, steps, scratch)
        };

        let (status_on, steps_on, trace_on, mem_on) = run(true);
        let (status_off, steps_off, trace_off, mem_off) = run(false);

        prop_assert_eq!(status_on, status_off, "run status diverged");
        prop_assert_eq!(steps_on, steps_off, "step count diverged");
        prop_assert_eq!(mem_on, mem_off, "final data memory diverged");
        prop_assert_eq!(trace_on.len(), trace_off.len(), "trace length diverged");
        for (i, (a, b)) in trace_on.iter().zip(&trace_off).enumerate() {
            prop_assert_eq!(a, b, "trace diverged at step {}", i);
        }
    }
}
