//! Differential property tests for the arena-backed trace:
//!
//! 1. the arena recording path and the legacy `TraceStep` append path
//!    converge to the exact same trace when elision is off (round-trip
//!    through `to_steps` / `push_step` is the identity), and
//! 2. taint-gated elision is invisible to execution: identical run
//!    status, step count, and final data memory, with the sparse trace's
//!    step skeleton matching the dense trace step-for-step.

use bomblab_isa::asm::assemble;
use bomblab_isa::link::Linker;
use bomblab_isa::{FReg, Insn, Reg};
use bomblab_vm::{
    Machine, MachineConfig, MemAccess, SysEffect, SyscallRecord, Trace, TraceStep, ROOT_PID,
};
use proptest::prelude::*;
use std::fmt::Write as _;

/// One filler instruction from a trap-free menu: integer ALU, aligned
/// loads/stores against `scratch` (in `s7`), and float arithmetic so the
/// freg arena sees traffic too.
fn filler_line(out: &mut String, choice: u8, imm: i16) {
    let imm = i64::from(imm);
    match choice % 10 {
        0 => {
            let _ = writeln!(out, "    li   t2, {imm}");
        }
        1 => {
            let _ = writeln!(out, "    addi t2, t2, {}", imm % 128);
        }
        2 => {
            let _ = writeln!(out, "    add  t3, t3, t2");
        }
        3 => {
            let _ = writeln!(out, "    xor  t3, t3, t2");
        }
        4 => {
            let _ = writeln!(out, "    mul  t3, t3, t2");
        }
        5 => {
            let _ = writeln!(out, "    sb   [s7+{}], t3", imm.rem_euclid(56));
        }
        6 => {
            let _ = writeln!(out, "    ld   t4, [s7+{}]", imm.rem_euclid(7) * 8);
        }
        7 => {
            let _ = writeln!(out, "    fli  f1, {}.5", imm % 64);
        }
        8 => {
            let _ = writeln!(out, "    fadd f2, f2, f1");
        }
        _ => {
            let _ = writeln!(out, "    nop");
        }
    }
}

/// A random straight-line body wrapped in a two-iteration loop (so
/// conditional branches record both directions), ending in a clean exit.
fn build_program(body: &[(u8, i16)], tail: &[(u8, i16)]) -> String {
    let mut src = String::from(
        "
.text
.global _start
_start:
    li   s7, scratch
    li   t0, 0
head:
",
    );
    for &(c, i) in body {
        filler_line(&mut src, c, i);
    }
    src.push_str(
        "    addi t0, t0, 1
    li   t1, 2
    blt  t0, t1, head
",
    );
    for &(c, i) in tail {
        filler_line(&mut src, c, i);
    }
    src.push_str(
        "    li   a0, 0
    li   sv, 0
    sys
.data
scratch:
    .quad 0, 0, 0, 0, 0, 0, 0, 0
",
    );
    src
}

fn run_traced(src: &str, sparse: bool) -> (Machine, u64) {
    let obj = assemble(src).expect("generated program assembles");
    let image = Linker::new()
        .add_object(obj)
        .link()
        .expect("generated program links");
    let config = MachineConfig {
        trace: true,
        step_budget: 50_000,
        sparse_taint: sparse.then(Vec::new),
        ..MachineConfig::default()
    };
    let mut machine = Machine::load(&image, None, config).expect("image loads");
    let result = machine.run();
    assert_eq!(result.status.exit_code(), Some(0), "clean exit: {src}");
    (machine, image.data_base)
}

/// Decodes one arbitrary legacy step from a compact seed. The operand
/// mix is unconstrained on purpose — the arena must round-trip whatever
/// a recorder could emit: any operand counts, an optional memory access,
/// branch direction, trap cause, and a rare syscall payload.
fn arb_step(pc: u64, a: u64, b: u64, shape: u8, ra: u8, rb: u8) -> TraceStep {
    let pid = 1 + u32::from(shape >> 6 & 1);
    let tid = 1 + u32::from(shape >> 5 & 1);
    let mut step = TraceStep::new(pid, tid, pc, Insn::Nop);
    for i in 0..ra % 3 {
        step.reg_reads
            .push((Reg::new((ra + i) % 32).unwrap(), a ^ u64::from(i)));
    }
    for i in 0..rb % 3 {
        step.reg_writes
            .push((Reg::new((rb + i) % 32).unwrap(), b ^ u64::from(i)));
    }
    if ra & 0x10 != 0 {
        let f = FReg::new(rb % 16).unwrap();
        step.freg_reads.push((f, a as f64));
        step.freg_writes.push((f, b as f64 * 0.5));
    }
    if shape & 4 != 0 {
        let acc = MemAccess {
            addr: a,
            value: b,
            width: [1, 2, 4, 8][rb as usize % 4],
        };
        if shape & 8 != 0 {
            step.mem_write = Some(acc);
        } else {
            step.mem_read = Some(acc);
        }
    }
    if shape & 16 != 0 {
        step.taken = Some(shape & 32 != 0);
    }
    if shape & 64 != 0 {
        step.trap = Some(b & 0xff);
    }
    if shape & 128 != 0 {
        step.sys = Some(Box::new(SyscallRecord {
            num: 4,
            args: [pc, a, b, 0, 0, 0],
            ret: 0,
            effect: SysEffect::None,
        }));
    }
    step
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary legacy steps survive `push_step` → `to_steps` unchanged,
    /// and the arena's accounting matches the stream it holds.
    #[test]
    fn push_step_to_steps_round_trips(
        raw in proptest::collection::vec(
            (any::<u64>(), any::<u64>(), any::<u64>(), any::<u8>(), any::<u8>(), any::<u8>()),
            0..12,
        ),
    ) {
        let steps: Vec<TraceStep> = raw
            .iter()
            .map(|&(pc, a, b, shape, ra, rb)| arb_step(pc, a, b, shape, ra, rb))
            .collect();
        let mut trace = Trace::new();
        for step in &steps {
            trace.push_step(step);
        }
        prop_assert_eq!(trace.len(), steps.len());
        prop_assert_eq!(trace.full_steps(), steps.len() as u64);
        prop_assert_eq!(trace.elided_steps(), 0);
        prop_assert_eq!(trace.to_steps(), steps);
        for (i, v) in trace.iter().enumerate() {
            prop_assert!(!v.elided);
            prop_assert_eq!(v.pc, steps[i].pc, "pc at {}", i);
        }
    }

    /// With elision off, the VM's arena recording path produces the exact
    /// trace the legacy append path would: materializing every step and
    /// re-appending through `push_step` rebuilds a bit-identical arena.
    #[test]
    fn arena_recording_matches_legacy_append(
        body in proptest::collection::vec((any::<u8>(), any::<i16>()), 1..10),
        tail in proptest::collection::vec((any::<u8>(), any::<i16>()), 1..6),
    ) {
        let src = build_program(&body, &tail);
        let (machine, _) = run_traced(&src, false);
        let trace = machine.trace();
        prop_assert_eq!(trace.elided_steps(), 0, "elision is off");

        let legacy: Vec<TraceStep> = trace.to_steps();
        let mut rebuilt = Trace::new();
        for step in &legacy {
            rebuilt.push_step(step);
        }
        prop_assert_eq!(&rebuilt, trace, "append path diverged from recorder");
        prop_assert_eq!(rebuilt.arena_bytes(), trace.arena_bytes());
        prop_assert_eq!(rebuilt.to_steps(), legacy);
    }

    /// Arming the taint gate (with nothing tainted — maximum elision)
    /// never changes what the program *does*, and the sparse trace keeps
    /// the dense trace's skeleton: same pc/insn/thread/branch/trap per
    /// step, with operands present exactly on the non-elided steps.
    #[test]
    fn elision_is_invisible_to_execution(
        body in proptest::collection::vec((any::<u8>(), any::<i16>()), 1..10),
        tail in proptest::collection::vec((any::<u8>(), any::<i16>()), 1..6),
    ) {
        let src = build_program(&body, &tail);
        let (dense_m, data_base) = run_traced(&src, false);
        let (sparse_m, _) = run_traced(&src, true);

        prop_assert_eq!(dense_m.steps(), sparse_m.steps(), "step count diverged");
        let mem = |m: &Machine| {
            m.process_memory(ROOT_PID)
                .and_then(|mm| mm.read_bytes(data_base, 64).ok())
        };
        prop_assert_eq!(mem(&dense_m), mem(&sparse_m), "final data memory diverged");

        let dense = dense_m.trace();
        let sparse = sparse_m.trace();
        prop_assert_eq!(dense.len(), sparse.len(), "trace length diverged");
        prop_assert!(sparse.elided_steps() > 0, "nothing tainted, yet nothing elided");
        prop_assert!(sparse.arena_bytes() < dense.arena_bytes());
        for (i, (d, s)) in dense.iter().zip(sparse.iter()).enumerate() {
            prop_assert_eq!(d.pc, s.pc, "pc at {}", i);
            prop_assert_eq!(d.insn, s.insn, "insn at {}", i);
            prop_assert_eq!((d.pid, d.tid), (s.pid, s.tid), "thread at {}", i);
            prop_assert_eq!(d.taken, s.taken, "branch direction at {}", i);
            prop_assert_eq!(d.trap, s.trap, "trap at {}", i);
            if s.elided {
                prop_assert!(s.reg_reads.is_empty() && s.reg_writes.is_empty());
                prop_assert!(s.freg_reads.is_empty() && s.freg_writes.is_empty());
                prop_assert!(s.mem_read.is_none() && s.mem_write.is_none());
                prop_assert!(s.sys.is_none());
            } else {
                prop_assert_eq!(d.to_step(), s.to_step(), "full step at {}", i);
            }
        }
    }
}
