//! Property tests for the VM: memory invariants and CPU/encoder agreement.

use bomblab_isa::{Insn, Opcode, Reg};
use bomblab_vm::{Memory, Regs};
use proptest::prelude::*;

proptest! {
    #[test]
    fn memory_uint_round_trips(
        addr in 0u64..3000,
        value in any::<u64>(),
        width_i in 0usize..4,
    ) {
        let width = [1u8, 2, 4, 8][width_i];
        let mut m = Memory::new();
        m.map(0, 4096);
        m.write_uint(addr, value, width).expect("mapped");
        let mask = if width == 8 { u64::MAX } else { (1u64 << (8 * width)) - 1 };
        prop_assert_eq!(m.read_uint(addr, width).expect("mapped"), value & mask);
    }

    #[test]
    fn memory_bytes_round_trip(
        addr in 0u64..2048,
        bytes in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let mut m = Memory::new();
        m.map(0, 4096);
        m.write_bytes(addr, &bytes).expect("mapped");
        prop_assert_eq!(m.read_bytes(addr, bytes.len() as u64).expect("mapped"), bytes);
    }

    #[test]
    fn unmapped_accesses_always_fault(addr in 0x10_0000u64..0x20_0000) {
        let m = Memory::new();
        prop_assert!(m.read_u8(addr).is_err());
        prop_assert!(m.read_uint(addr, 8).is_err());
    }

    /// The CPU's ALU agrees with a direct computation for every operator
    /// and operand pair.
    #[test]
    fn cpu_alu_matches_reference(a in any::<u64>(), b in any::<u64>(), op_i in 0usize..13) {
        let ops = [
            Opcode::Add, Opcode::Sub, Opcode::Mul, Opcode::And, Opcode::Or,
            Opcode::Xor, Opcode::Shl, Opcode::Shru, Opcode::Shrs,
            Opcode::Slt, Opcode::Sltu, Opcode::Divu, Opcode::Remu,
        ];
        let op = ops[op_i];
        // Division by zero traps; skip that case here (covered by unit
        // tests).
        prop_assume!(!(matches!(op, Opcode::Divu | Opcode::Remu) && b == 0));
        let expected = match op {
            Opcode::Add => a.wrapping_add(b),
            Opcode::Sub => a.wrapping_sub(b),
            Opcode::Mul => a.wrapping_mul(b),
            Opcode::And => a & b,
            Opcode::Or => a | b,
            Opcode::Xor => a ^ b,
            Opcode::Shl => a.wrapping_shl(b as u32 & 63),
            Opcode::Shru => a.wrapping_shr(b as u32 & 63),
            Opcode::Shrs => ((a as i64).wrapping_shr(b as u32 & 63)) as u64,
            Opcode::Slt => ((a as i64) < (b as i64)) as u64,
            Opcode::Sltu => (a < b) as u64,
            Opcode::Divu => a / b,
            Opcode::Remu => a % b,
            _ => unreachable!(),
        };
        let mut regs = Regs::new();
        let mut mem = Memory::new();
        mem.map(0, 4096);
        regs.pc = 0;
        regs.set(Reg::A0, a);
        regs.set(Reg::A1, b);
        let insn = Insn::Alu3 { op, rd: Reg::A2, rs: Reg::A0, rt: Reg::A1 };
        let out = bomblab_vm::cpu::exec(insn, &mut regs, &mut mem, 0, 0, None);
        prop_assert_eq!(out.effect, bomblab_vm::Effect::Continue);
        prop_assert_eq!(regs.get(Reg::A2), expected);
    }

    /// Push then pop restores both the value and the stack pointer.
    #[test]
    fn push_pop_is_identity(value in any::<u64>(), sp_off in 64u64..1024) {
        let mut regs = Regs::new();
        let mut mem = Memory::new();
        mem.map(0, 4096);
        let sp0 = 1024 + (sp_off & !7);
        mem.map(sp0 - 64, 4096);
        regs.set(Reg::SP, sp0);
        regs.set(Reg::A0, value);
        bomblab_vm::cpu::exec(Insn::Push { rs: Reg::A0 }, &mut regs, &mut mem, 0, 0, None);
        bomblab_vm::cpu::exec(Insn::Pop { rd: Reg::A1 }, &mut regs, &mut mem, 0, 0, None);
        prop_assert_eq!(regs.get(Reg::A1), value);
        prop_assert_eq!(regs.get(Reg::SP), sp0);
    }
}
