//! The multi-process, multi-thread BVM machine.
//!
//! A [`Machine`] loads an [`Image`] (plus an optional shared library),
//! simulates a small deterministic OS, and runs threads round-robin with a
//! fixed quantum. With tracing enabled it records every executed
//! instruction — the concolic engine's raw material.

use crate::bbcache::{self, BbStats, BlockCache, MicroOp};
use crate::cpu::{self, Effect, Recorder, Regs, StepOutcome};
use crate::gate::TaintGate;
use crate::mem::{MemFault, Memory};
use crate::os::{Fd, Os, O_RDONLY, O_RDWR, O_WRONLY};
use crate::trace::{Capture, InputSource, OutputSink, SysEffect, SyscallRecord, Trace};
use bomblab_fault::{check_deadline, fault_point, trip_stall, FaultAction, FaultSite};
use bomblab_isa::image::{layout, Image, ImageError};
use bomblab_isa::{sys, Insn, Reg};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::Arc;

/// Pid of the initial process.
pub const ROOT_PID: u32 = 1;

/// Exit code conventionally used by logic bombs on detonation.
pub const BOOM_EXIT_CODE: i64 = 42;

/// Configuration for a machine run.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Program arguments, including `argv[0]`.
    pub argv: Vec<Vec<u8>>,
    /// Bytes available on standard input.
    pub stdin: Vec<u8>,
    /// Initial filesystem contents.
    pub files: Vec<(String, Vec<u8>)>,
    /// Value returned by the `time` syscall.
    pub epoch: u64,
    /// Value returned by the `getuid` syscall.
    pub uid: u64,
    /// Bytes served by the `net_get` syscall.
    pub net_response: Vec<u8>,
    /// Maximum total instructions before the run is cut off.
    pub step_budget: u64,
    /// Instructions per scheduling quantum.
    pub quantum: u32,
    /// Record a full instruction trace.
    pub trace: bool,
    /// Pre-tainted guest byte ranges `(base, len)` for the online taint
    /// gate. `Some` arms taint-gated sparse recording: steps provably
    /// untouched by tainted data are recorded as pc/branch skeletons with
    /// operand capture elided. `None` (the default) keeps full capture —
    /// paper-faithful profiles rely on this. Only meaningful with `trace`.
    pub sparse_taint: Option<Vec<(u64, u64)>>,
    /// Dispatch through the shared predecoded basic-block cache
    /// ([`crate::bbcache`]). Disable for A/B runs against the
    /// decode-per-step path; the `BOMBLAB_NO_BBCACHE` environment
    /// variable overrides this to `false` at load time.
    pub bbcache: bool,
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig {
            argv: vec![b"bomb".to_vec()],
            stdin: Vec::new(),
            files: Vec::new(),
            epoch: 1_500_000_000,
            uid: 1000,
            net_response: b"HELLO FROM BVM-NET\n".to_vec(),
            step_budget: 5_000_000,
            quantum: 64,
            trace: false,
            sparse_taint: None,
            bbcache: true,
        }
    }
}

impl MachineConfig {
    /// Convenience: a config whose `argv[1]` is `arg`.
    pub fn with_arg(arg: impl Into<Vec<u8>>) -> MachineConfig {
        MachineConfig {
            argv: vec![b"bomb".to_vec(), arg.into()],
            ..MachineConfig::default()
        }
    }
}

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// The root process exited with this code.
    Exited(i64),
    /// The root process took an unhandled hardware trap.
    Faulted {
        /// Trap cause (see [`bomblab_isa::trap`]).
        cause: u64,
        /// Faulting pc.
        pc: u64,
    },
    /// Every live thread was blocked.
    Deadlock,
    /// The step budget was exhausted.
    OutOfBudget,
    /// The machine itself failed: an internal invariant broke or a fault
    /// was injected into the emulator. The guest is in an undefined state.
    Crashed(MachineError),
}

impl RunStatus {
    /// The exit code, if the root process exited normally.
    pub fn exit_code(&self) -> Option<i64> {
        match self {
            RunStatus::Exited(c) => Some(*c),
            _ => None,
        }
    }
}

impl fmt::Display for RunStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunStatus::Exited(c) => write!(f, "exited({c})"),
            RunStatus::Faulted { cause, pc } => write!(f, "faulted(cause={cause}, pc={pc:#x})"),
            RunStatus::Deadlock => write!(f, "deadlock"),
            RunStatus::OutOfBudget => write!(f, "out of budget"),
            RunStatus::Crashed(e) => write!(f, "machine crashed: {e}"),
        }
    }
}

/// An internal machine failure: the emulator (not the guest) went wrong.
///
/// These are the typed replacements for what used to be `expect()` calls
/// on the VM's fallible paths: instead of unwinding through the study
/// runner, a broken invariant ends the run with
/// [`RunStatus::Crashed`] and the concolic engine records the cell as
/// abnormal (the paper's `E` label).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineError {
    /// A scheduled pid no longer exists.
    DeadProcess {
        /// The missing process.
        pid: u32,
    },
    /// A scheduled (pid, tid) no longer exists.
    DeadThread {
        /// Owning process.
        pid: u32,
        /// The missing thread.
        tid: u32,
    },
    /// A memory access the kernel believed valid faulted.
    Memory {
        /// Faulting address.
        addr: u64,
    },
    /// The scheduler loop ended without recording a run status.
    MissingResult,
    /// Injected fault: instruction decode failure at `pc`.
    InjectedDecodeFault {
        /// Guest pc at injection.
        pc: u64,
    },
    /// Injected fault: spurious memory fault at `pc`.
    InjectedMemFault {
        /// Guest pc at injection.
        pc: u64,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::DeadProcess { pid } => write!(f, "scheduled dead process {pid}"),
            MachineError::DeadThread { pid, tid } => {
                write!(f, "scheduled dead thread {pid}:{tid}")
            }
            MachineError::Memory { addr } => {
                write!(f, "kernel memory access faulted at {addr:#x}")
            }
            MachineError::MissingResult => write!(f, "scheduler loop ended without a result"),
            MachineError::InjectedDecodeFault { pc } => {
                write!(f, "injected decode fault at pc {pc:#x}")
            }
            MachineError::InjectedMemFault { pc } => {
                write!(f, "injected memory fault at pc {pc:#x}")
            }
        }
    }
}

impl std::error::Error for MachineError {}

impl From<MemFault> for MachineError {
    fn from(e: MemFault) -> MachineError {
        MachineError::Memory { addr: e.addr }
    }
}

/// Result of [`Machine::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunResult {
    /// Why the run ended.
    pub status: RunStatus,
    /// Total instructions executed.
    pub steps: u64,
}

/// Errors while loading an image into a machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// Import resolution or image patching failed.
    Image(ImageError),
    /// The image has imports but no shared library was supplied.
    MissingLibrary(String),
    /// Populating freshly mapped guest memory faulted (overlapping or
    /// inconsistent segment layout in the image).
    Memory(MemFault),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Image(e) => write!(f, "image error: {e}"),
            LoadError::MissingLibrary(s) => {
                write!(f, "image imports `{s}` but no shared library was provided")
            }
            LoadError::Memory(e) => write!(f, "loader memory write faulted: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<ImageError> for LoadError {
    fn from(e: ImageError) -> LoadError {
        LoadError::Image(e)
    }
}

impl From<MemFault> for LoadError {
    fn from(e: MemFault) -> LoadError {
        LoadError::Memory(e)
    }
}

#[derive(Debug, Clone)]
struct Thread {
    regs: Regs,
    blocked: bool,
}

#[derive(Debug, Clone)]
struct Process {
    parent: u32,
    mem: Memory,
    threads: BTreeMap<u32, Thread>,
    fds: Vec<Option<Fd>>,
    trap_handler: Option<u64>,
    stdin_pos: usize,
    stdout: Vec<u8>,
    thread_exits: BTreeMap<u32, u64>,
    next_stack_index: u64,
}

/// The BVM virtual machine.
#[derive(Debug, Clone)]
pub struct Machine {
    os: Os,
    procs: BTreeMap<u32, Process>,
    /// pid → (parent, exit status) for exited processes (until reaped).
    exited: BTreeMap<u32, (u32, i64)>,
    rr: VecDeque<(u32, u32)>,
    steps: u64,
    step_budget: u64,
    quantum: u32,
    tracing: bool,
    trace: Trace,
    /// Online taint shadow for sparse recording (`None` = full capture).
    gate: Option<TaintGate>,
    stdin: Vec<u8>,
    next_pid: u32,
    next_tid: u32,
    result: Option<RunStatus>,
    blocked_streak: usize,
    root_stdout_backup: Option<Vec<u8>>,
    /// Shared predecoded-block cache (`None` when disabled).
    bbcache: Option<Arc<BlockCache>>,
    /// Dispatch cursor: the block currently being threaded through, so
    /// within-block steps skip the cache lookup entirely.
    bbcursor: Option<BbCursor>,
    /// Code ranges *this machine* has overwritten (self-modifying code,
    /// syscall writes into text, injected decode faults). Cached ops
    /// overlapping a dirty range fall back to byte-decoding live memory.
    dirty_code: Vec<(u64, u64)>,
    bb_stats: BbStats,
}

/// Position inside a predecoded block: the next op is served without
/// taking the cache lock as long as control flow stays straight-line.
#[derive(Debug, Clone)]
struct BbCursor {
    pid: u32,
    tid: u32,
    block: Arc<[MicroOp]>,
    next: usize,
    next_pc: u64,
}

impl Machine {
    /// Loads an executable image (resolving imports against `lib` if given)
    /// and prepares the root process.
    ///
    /// # Errors
    ///
    /// Returns [`LoadError`] if the image has imports and no library is
    /// provided, if import resolution fails, or if populating guest
    /// memory faults (inconsistent segment layout).
    pub fn load(
        image: &Image,
        lib: Option<&Image>,
        config: MachineConfig,
    ) -> Result<Machine, LoadError> {
        let mut image = image.clone();
        if !image.imports.is_empty() {
            match lib {
                Some(l) => image.resolve_imports(&l.symbols)?,
                None => return Err(LoadError::MissingLibrary(image.imports[0].symbol.clone())),
            }
        }

        let mut mem = Memory::new();
        mem.map(image.text_base, image.text.len().max(1) as u64);
        mem.write_bytes(image.text_base, &image.text)?;
        mem.map(image.data_base, image.data.len().max(1) as u64);
        mem.write_bytes(image.data_base, &image.data)?;
        if let Some(l) = lib {
            mem.map(l.text_base, l.text.len().max(1) as u64);
            mem.write_bytes(l.text_base, &l.text)?;
            mem.map(l.data_base, l.data.len().max(1) as u64);
            mem.write_bytes(l.data_base, &l.data)?;
        }
        mem.map(layout::HEAP_BASE, layout::HEAP_SIZE);
        mem.map(layout::STACK_TOP - layout::STACK_SIZE, layout::STACK_SIZE);
        mem.map(layout::ARGV_BASE, layout::ARGV_SIZE);

        // VM-injected exit trampolines.
        mem.map(layout::STUB_BASE, 4096);
        let mut stub = Vec::new();
        Insn::Li {
            rd: Reg::SV,
            imm: sys::EXIT,
        }
        .encode(&mut stub);
        Insn::Sys.encode(&mut stub);
        mem.write_bytes(layout::EXIT_STUB, &stub)?;
        let mut tstub = Vec::new();
        Insn::Li {
            rd: Reg::SV,
            imm: sys::THREAD_EXIT,
        }
        .encode(&mut tstub);
        Insn::Sys.encode(&mut tstub);
        mem.write_bytes(layout::THREAD_EXIT_STUB, &tstub)?;

        // argv: pointer array then the strings.
        let argc = config.argv.len() as u64;
        let mut str_addr = layout::ARGV_BASE + 8 * argc;
        for (i, arg) in config.argv.iter().enumerate() {
            mem.write_uint(layout::ARGV_BASE + 8 * i as u64, str_addr, 8)?;
            mem.write_bytes(str_addr, arg)?;
            mem.write_u8(str_addr + arg.len() as u64, 0)?;
            str_addr += arg.len() as u64 + 1;
        }

        let mut regs = Regs::new();
        regs.pc = image.entry;
        regs.set(Reg::A0, argc);
        regs.set(Reg::A1, layout::ARGV_BASE);
        regs.set(Reg::SP, layout::STACK_TOP - 64);
        regs.set(Reg::FP, layout::STACK_TOP - 64);
        regs.set(Reg::RA, layout::EXIT_STUB);

        let mut os = Os::new();
        os.epoch = config.epoch;
        os.uid = config.uid;
        os.net_response = config.net_response.clone();
        for (name, content) in &config.files {
            os.fs.insert(name.clone(), content.clone());
        }

        let root = Process {
            parent: 0,
            mem,
            threads: [(
                1,
                Thread {
                    regs,
                    blocked: false,
                },
            )]
            .into_iter()
            .collect(),
            fds: vec![Some(Fd::Stdin), Some(Fd::Stdout)],
            trap_handler: None,
            stdin_pos: 0,
            stdout: Vec::new(),
            thread_exits: BTreeMap::new(),
            next_stack_index: 1,
        };

        // The block cache keys on the *resolved* text bytes, so every
        // round of every profile loading the same image (same imports,
        // same library) shares one lazily decoded cache.
        let use_cache = config.bbcache && std::env::var_os("BOMBLAB_NO_BBCACHE").is_none();
        let bbcache = use_cache.then(|| {
            let mut regions: Vec<(u64, &[u8])> = vec![(image.text_base, image.text.as_slice())];
            if let Some(l) = lib {
                regions.push((l.text_base, l.text.as_slice()));
            }
            BlockCache::for_regions(&regions)
        });

        let gate = match (&config.sparse_taint, config.trace) {
            (Some(ranges), true) => Some(TaintGate::new(ROOT_PID, ranges)),
            _ => None,
        };

        Ok(Machine {
            os,
            procs: [(ROOT_PID, root)].into_iter().collect(),
            exited: BTreeMap::new(),
            rr: [(ROOT_PID, 1)].into_iter().collect(),
            steps: 0,
            step_budget: config.step_budget,
            quantum: config.quantum.max(1),
            tracing: config.trace,
            trace: Trace::new(),
            gate,
            stdin: config.stdin,
            next_pid: ROOT_PID + 1,
            next_tid: 2,
            result: None,
            blocked_streak: 0,
            root_stdout_backup: None,
            bbcache,
            bbcursor: None,
            dirty_code: Vec::new(),
            bb_stats: BbStats::default(),
        })
    }

    /// Runs until the root process ends, deadlock, budget exhaustion, or an
    /// internal machine failure ([`RunStatus::Crashed`]).
    pub fn run(&mut self) -> RunResult {
        let obs_timer = bomblab_obs::start();
        let steps_before = self.steps;
        let bb_before = self.bb_stats;
        let result = self.run_inner();
        if let Some(t0) = obs_timer {
            bomblab_obs::span_ns("vm.run", t0.elapsed().as_nanos() as u64);
            bomblab_obs::counter("vm.steps", result.steps - steps_before);
            let bb = self.bb_stats;
            for (name, delta) in [
                ("vm.bb_hits", bb.bb_hits - bb_before.bb_hits),
                ("vm.bb_misses", bb.bb_misses - bb_before.bb_misses),
                (
                    "vm.bb_invalidations",
                    bb.bb_invalidations - bb_before.bb_invalidations,
                ),
                (
                    "vm.steps_decoded",
                    bb.steps_decoded - bb_before.steps_decoded,
                ),
            ] {
                if delta > 0 {
                    bomblab_obs::counter(name, delta);
                }
            }
        }
        result
    }

    fn run_inner(&mut self) -> RunResult {
        while self.result.is_none() {
            // Containment watchdog: when the study runner armed a cell
            // deadline this panics (caught at the cell boundary) instead of
            // letting a hung guest hang the whole study. Inert otherwise.
            check_deadline();
            if self.steps >= self.step_budget {
                self.result = Some(RunStatus::OutOfBudget);
                break;
            }
            let Some((pid, tid)) = self.rr.pop_front() else {
                // No runnable threads and the root never exited.
                self.result = Some(RunStatus::Deadlock);
                break;
            };
            if !self
                .procs
                .get(&pid)
                .is_some_and(|p| p.threads.contains_key(&tid))
            {
                continue; // thread or process died while queued
            }
            let mut made_progress = false;
            let mut alive = true;
            let mut remaining = u64::from(self.quantum);
            while remaining > 0 {
                if self.steps >= self.step_budget || self.result.is_some() {
                    break;
                }
                // Fast path first: burn through cached straight-line code
                // in one borrow, then let `step_thread` handle whatever
                // stopped the span (cache miss, dirty code, store into
                // code, or nothing — the span may just exhaust the slice).
                let limit = remaining.min(self.step_budget - self.steps);
                let (fast, settled) = self.run_cached_span(pid, tid, limit);
                if fast > 0 {
                    made_progress = true;
                    remaining -= fast;
                }
                let stepped = match settled {
                    Some(r) => {
                        // The settling instruction consumed a slot of its
                        // own on top of the `fast` plain-continue steps.
                        remaining = remaining.saturating_sub(1);
                        r
                    }
                    None => {
                        if fast == limit || self.result.is_some() {
                            continue;
                        }
                        remaining -= 1;
                        self.step_thread(pid, tid)
                    }
                };
                match stepped {
                    Ok(ThreadStep::Ran) => {
                        made_progress = true;
                    }
                    Ok(ThreadStep::Blocked) => {
                        break;
                    }
                    Ok(ThreadStep::Died) => {
                        alive = false;
                        break;
                    }
                    Err(e) => {
                        self.result = Some(RunStatus::Crashed(e));
                        alive = false;
                        break;
                    }
                }
            }
            if made_progress {
                self.blocked_streak = 0;
            } else if alive {
                self.blocked_streak += 1;
                if self.blocked_streak >= self.live_threads() && self.live_threads() > 0 {
                    self.result = Some(RunStatus::Deadlock);
                }
            }
            if alive {
                self.rr.push_back((pid, tid));
            }
        }
        RunResult {
            status: self
                .result
                .unwrap_or(RunStatus::Crashed(MachineError::MissingResult)),
            steps: self.steps,
        }
    }

    /// Total instructions executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The root process's standard output.
    pub fn stdout(&self) -> &[u8] {
        self.stdout_of(ROOT_PID).unwrap_or(&[])
    }

    /// A process's standard output (works for exited processes too, as long
    /// as they are unreaped; root output is always retained).
    pub fn stdout_of(&self, pid: u32) -> Option<&[u8]> {
        self.procs
            .get(&pid)
            .map(|p| p.stdout.as_slice())
            .or_else(|| {
                self.root_stdout_backup
                    .as_deref()
                    .filter(|_| pid == ROOT_PID)
            })
    }

    /// The recorded trace (empty unless tracing was enabled).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Takes ownership of the recorded trace.
    pub fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.trace)
    }

    /// Read-only view of kernel state (filesystem etc.).
    pub fn os(&self) -> &Os {
        &self.os
    }

    /// A live process's memory (snapshot it *before* `run` to get the
    /// loaded-image state the symbolic executor mirrors).
    pub fn process_memory(&self, pid: u32) -> Option<&Memory> {
        self.procs.get(&pid).map(|p| &p.mem)
    }

    fn live_threads(&self) -> usize {
        self.procs.values().map(|p| p.threads.len()).sum()
    }

    /// Dispatch counters of the block-cache layer (all zero when the cache
    /// is disabled, except `steps_decoded`, which then counts every step).
    pub fn bb_stats(&self) -> BbStats {
        self.bb_stats
    }

    /// Records that `[addr, addr + len)` was written. When the range
    /// overlaps a cached code region, the overlapping decoded blocks are
    /// counted as invalidated and the range joins this machine's dirty
    /// list, forcing cached fetches there back onto the byte-decode path.
    fn note_code_write(&mut self, addr: u64, len: u64) {
        let Some(cache) = &self.bbcache else {
            return;
        };
        if len == 0 || !cache.overlaps_code(addr, len) {
            return;
        }
        self.bb_stats.bb_invalidations += cache.blocks_overlapping(addr, len);
        self.dirty_code.push((addr, addr.wrapping_add(len)));
        self.bbcursor = None;
    }

    /// Whether any byte of `[start, end)` is in this machine's dirty list.
    fn range_is_dirty(&self, start: u64, end: u64) -> bool {
        !self.dirty_code.is_empty() && self.dirty_code.iter().any(|&(s, e)| s < end && start < e)
    }

    /// Serves the micro-op at `pc` from the cache, advancing the dispatch
    /// cursor. `None` means fall back to byte-decoding (pc outside cached
    /// regions or its bytes never decoded).
    fn cached_op(&mut self, pid: u32, tid: u32, pc: u64) -> Option<MicroOp> {
        if let Some(cur) = &mut self.bbcursor {
            if cur.pid == pid && cur.tid == tid {
                if cur.next_pc == pc && cur.next < cur.block.len() {
                    let op = cur.block[cur.next];
                    cur.next += 1;
                    cur.next_pc = op.pc.wrapping_add(op.len as u64);
                    return Some(op);
                }
                // Branch target inside the current run (tight loops jump
                // back into their own block): reindex locally instead of
                // taking the shared cache lock. Ops are sorted by pc.
                if let Ok(i) = cur.block.binary_search_by_key(&pc, |op| op.pc) {
                    let op = cur.block[i];
                    cur.next = i + 1;
                    cur.next_pc = op.pc.wrapping_add(op.len as u64);
                    return Some(op);
                }
            }
        }
        let cache = self.bbcache.as_ref()?;
        let (block, idx) = cache.lookup(pc)?;
        let op = block[idx];
        self.bbcursor = Some(BbCursor {
            pid,
            tid,
            block,
            next: idx + 1,
            next_pc: op.pc.wrapping_add(op.len as u64),
        });
        Some(op)
    }

    /// Executes one instruction of `(pid, tid)` at `pc`: through the block
    /// cache when possible, else by byte-decoding live memory.
    fn dispatch(&mut self, pid: u32, tid: u32, pc: u64) -> Result<StepOutcome, MachineError> {
        if self.bbcache.is_some() {
            if let Some(op) = self.cached_op(pid, tid, pc) {
                // Per-op dirty check: ops whose bytes this machine has
                // overwritten must re-decode from live memory.
                if !self.range_is_dirty(op.pc, op.pc.wrapping_add(op.len as u64)) {
                    return self.exec_cached(pid, tid, op);
                }
                self.bbcursor = None;
            }
            self.bb_stats.bb_misses += 1;
        }
        self.decode_step(pid, tid)
    }

    /// Executes a predecoded micro-op, first running its store recipe
    /// against the cached code regions so self-modifying writes are
    /// caught *before* they land.
    fn exec_cached(
        &mut self,
        pid: u32,
        tid: u32,
        op: MicroOp,
    ) -> Result<StepOutcome, MachineError> {
        if let Some(sc) = op.store {
            let base = self
                .procs
                .get(&pid)
                .ok_or(MachineError::DeadProcess { pid })?
                .threads
                .get(&tid)
                .ok_or(MachineError::DeadThread { pid, tid })?
                .regs
                .get(sc.base);
            let addr = base.wrapping_add(sc.off as u64);
            self.note_code_write(addr, sc.width as u64);
        }
        self.bb_stats.bb_hits += 1;
        let capture = match self.gate.as_mut() {
            Some(g) => g.capture(pid, tid, &op.insn),
            None => Capture::Full,
        };
        let proc = self
            .procs
            .get_mut(&pid)
            .ok_or(MachineError::DeadProcess { pid })?;
        let thread = proc
            .threads
            .get_mut(&tid)
            .ok_or(MachineError::DeadThread { pid, tid })?;
        let rec: Recorder<'_> = if self.tracing {
            Some((&mut self.trace, capture))
        } else {
            None
        };
        Ok(cpu::exec(
            op.insn,
            &mut thread.regs,
            &mut proc.mem,
            pid,
            tid,
            rec,
        ))
    }

    /// The byte-decode path. With a cache armed, the instruction is peeked
    /// first so stores into cached code regions are still caught; fetch
    /// faults delegate to [`cpu::step`] for exact trap construction.
    fn decode_step(&mut self, pid: u32, tid: u32) -> Result<StepOutcome, MachineError> {
        self.bb_stats.steps_decoded += 1;
        if self.bbcache.is_some() {
            let fetched = {
                let proc = self
                    .procs
                    .get(&pid)
                    .ok_or(MachineError::DeadProcess { pid })?;
                let thread = proc
                    .threads
                    .get(&tid)
                    .ok_or(MachineError::DeadThread { pid, tid })?;
                cpu::fetch(&proc.mem, thread.regs.pc).ok().map(|insn| {
                    let write = bbcache::store_class(&insn).map(|sc| {
                        (
                            thread.regs.get(sc.base).wrapping_add(sc.off as u64),
                            sc.width as u64,
                        )
                    });
                    (insn, write)
                })
            };
            if let Some((insn, write)) = fetched {
                if let Some((addr, len)) = write {
                    self.note_code_write(addr, len);
                }
                let capture = match self.gate.as_mut() {
                    Some(g) => g.capture(pid, tid, &insn),
                    None => Capture::Full,
                };
                let proc = self
                    .procs
                    .get_mut(&pid)
                    .ok_or(MachineError::DeadProcess { pid })?;
                let thread = proc
                    .threads
                    .get_mut(&tid)
                    .ok_or(MachineError::DeadThread { pid, tid })?;
                let rec: Recorder<'_> = if self.tracing {
                    Some((&mut self.trace, capture))
                } else {
                    None
                };
                return Ok(cpu::exec(
                    insn,
                    &mut thread.regs,
                    &mut proc.mem,
                    pid,
                    tid,
                    rec,
                ));
            }
        }
        let proc = self
            .procs
            .get_mut(&pid)
            .ok_or(MachineError::DeadProcess { pid })?;
        let thread = proc
            .threads
            .get_mut(&tid)
            .ok_or(MachineError::DeadThread { pid, tid })?;
        // The instruction is unknown before the fetch, so the gate cannot
        // pre-approve a skeleton — record fully (always sound).
        let rec: Recorder<'_> = if self.tracing {
            Some((&mut self.trace, Capture::Full))
        } else {
            None
        };
        Ok(cpu::step(&mut thread.regs, &mut proc.mem, pid, tid, rec))
    }

    /// Executes up to `limit` consecutive cached micro-ops of `(pid, tid)`
    /// under a single process/thread borrow — the dispatch fast path. The
    /// per-step overhead (scheduler bookkeeping, map lookups, cache probes)
    /// is paid once per span instead of once per instruction.
    ///
    /// Returns how many plain-continue instructions ran, plus the settled
    /// result of a control-effect instruction (halt, trap, syscall) or
    /// injected fault if one ended the span — that instruction is *not*
    /// included in the count, so the caller's progress/quantum accounting
    /// mirrors the per-step path's ThreadStep semantics. `(0, None)` means
    /// the fast path could not serve the next instruction at all — the
    /// caller falls back to
    /// [`Machine::step_thread`], which handles cache misses, dirty code,
    /// and store-into-code invalidation precisely.
    fn run_cached_span(
        &mut self,
        pid: u32,
        tid: u32,
        limit: u64,
    ) -> (u64, Option<Result<ThreadStep, MachineError>>) {
        let mut ran = 0u64;
        let mut pending: Option<StepOutcome> = None;
        let mut pending_fault: Option<(FaultAction, u64)> = None;
        {
            // Disjoint field borrows: the cache (shared), the cursor, the
            // process map, stats, and the trace are all distinct fields of
            // `self`, so the loop body never re-borrows `self` whole.
            let Some(cache) = self.bbcache.as_deref() else {
                return (0, None);
            };
            let Some(cur) = self.bbcursor.as_mut() else {
                return (0, None);
            };
            if cur.pid != pid || cur.tid != tid {
                return (0, None);
            }
            let Some(proc) = self.procs.get_mut(&pid) else {
                return (0, None);
            };
            let Some(thread) = proc.threads.get_mut(&tid) else {
                return (0, None);
            };
            while ran < limit {
                // Any dirty range forces the precise per-op checks of the
                // slow path (ranges only appear via settled effects, so
                // this is really an entry check — but it is two loads).
                if !self.dirty_code.is_empty() {
                    break;
                }
                let pc = thread.regs.pc;
                // Fault-injection point, same cadence as the slow path:
                // one hit per executed instruction.
                if let Some(action) = fault_point(FaultSite::VmStep) {
                    match action {
                        FaultAction::Stall => trip_stall(),
                        FaultAction::Panic => panic!("injected panic in the vm step loop"),
                        FaultAction::Unknown => {}
                        fault => {
                            pending_fault = Some((fault, pc));
                            break;
                        }
                    }
                }
                // Peek the next op: straight-line from the cursor, or an
                // in-block branch target (ops are sorted by pc). Advance
                // the cursor only once the op is committed to execute.
                let (op, next) = if cur.next < cur.block.len() && cur.next_pc == pc {
                    (cur.block[cur.next], cur.next + 1)
                } else if let Ok(i) = cur.block.binary_search_by_key(&pc, |op| op.pc) {
                    (cur.block[i], i + 1)
                } else {
                    break;
                };
                if let Some(sc) = op.store {
                    let addr = thread.regs.get(sc.base).wrapping_add(sc.off as u64);
                    if cache.overlaps_code(addr, u64::from(sc.width)) {
                        // Store into cached code: the slow path owns the
                        // invalidation protocol.
                        break;
                    }
                }
                cur.next = next;
                cur.next_pc = op.pc.wrapping_add(u64::from(op.len));
                self.bb_stats.bb_hits += 1;
                let capture = match self.gate.as_mut() {
                    Some(g) => g.capture(pid, tid, &op.insn),
                    None => Capture::Full,
                };
                let rec: Recorder<'_> = if self.tracing {
                    Some((&mut self.trace, capture))
                } else {
                    None
                };
                let outcome = cpu::exec(op.insn, &mut thread.regs, &mut proc.mem, pid, tid, rec);
                match outcome.effect {
                    Effect::Continue => {
                        ran += 1;
                        if let (Some(g), Some(idx)) = (self.gate.as_mut(), outcome.step) {
                            let view = self.trace.view(idx as usize);
                            if !view.elided && g.observe(view) {
                                self.trace.demote_last();
                            }
                        }
                    }
                    _ => {
                        // The settling instruction is accounted separately
                        // (`ran` only counts plain-continue steps, so the
                        // caller's progress tracking matches the per-step
                        // path's ThreadStep semantics exactly).
                        pending = Some(outcome);
                        break;
                    }
                }
            }
        }
        self.steps += ran;
        if let Some((action, pc)) = pending_fault {
            let err = match action {
                FaultAction::DecodeError => {
                    // An injected decode fault poisons the instruction's
                    // bytes: any block decoded over them is invalidated.
                    self.note_code_write(pc, 1);
                    MachineError::InjectedDecodeFault { pc }
                }
                _ => MachineError::InjectedMemFault { pc },
            };
            return (ran, Some(Err(err)));
        }
        if let Some(outcome) = pending {
            self.steps += 1;
            return (ran, Some(self.settle(pid, tid, outcome)));
        }
        (ran, None)
    }

    fn step_thread(&mut self, pid: u32, tid: u32) -> Result<ThreadStep, MachineError> {
        let pc = self
            .procs
            .get(&pid)
            .ok_or(MachineError::DeadProcess { pid })?
            .threads
            .get(&tid)
            .ok_or(MachineError::DeadThread { pid, tid })?
            .regs
            .pc;
        // Fault-injection point: one hit per executed instruction. A single
        // relaxed atomic load unless a chaos plan is armed on this thread.
        if let Some(action) = fault_point(FaultSite::VmStep) {
            match action {
                FaultAction::DecodeError => {
                    // An injected decode fault poisons the instruction's
                    // bytes: any block decoded over them is invalidated.
                    self.note_code_write(pc, 1);
                    return Err(MachineError::InjectedDecodeFault { pc });
                }
                FaultAction::MemFault => return Err(MachineError::InjectedMemFault { pc }),
                FaultAction::Panic => panic!("injected panic in the vm step loop"),
                FaultAction::Stall => trip_stall(),
                // `Unknown` plus the durability-layer actions (torn write,
                // short read, rename failure, bit flip) — none apply to an
                // instruction step and `valid_actions` never plans them
                // here.
                _ => {}
            }
        }
        let outcome = self.dispatch(pid, tid, pc)?;
        self.steps += 1;
        self.settle(pid, tid, outcome)
    }

    /// Applies the control effect of one executed instruction: trace
    /// recording, process exit, trap delivery, or syscall handling.
    fn settle(
        &mut self,
        pid: u32,
        tid: u32,
        outcome: StepOutcome,
    ) -> Result<ThreadStep, MachineError> {
        match outcome.effect {
            Effect::Continue => {
                self.gate_observe(outcome.step);
                Ok(ThreadStep::Ran)
            }
            Effect::Halt => {
                self.gate_observe(outcome.step);
                let code = self
                    .procs
                    .get(&pid)
                    .and_then(|p| p.threads.get(&tid))
                    .ok_or(MachineError::DeadThread { pid, tid })?
                    .regs
                    .get(Reg::A0) as i64;
                self.exit_process(pid, code);
                Ok(ThreadStep::Died)
            }
            Effect::Trap(fault) => {
                self.gate_observe(outcome.step);
                let proc = self
                    .procs
                    .get_mut(&pid)
                    .ok_or(MachineError::DeadProcess { pid })?;
                match proc.trap_handler {
                    Some(handler) => {
                        let thread = proc
                            .threads
                            .get_mut(&tid)
                            .ok_or(MachineError::DeadThread { pid, tid })?;
                        let resume = thread.regs.pc.wrapping_add(fault.insn_len);
                        thread.regs.set(Reg::TC, fault.cause);
                        thread.regs.set(Reg::TR, resume);
                        thread.regs.pc = handler;
                        Ok(ThreadStep::Ran)
                    }
                    None => {
                        let pc = proc
                            .threads
                            .get(&tid)
                            .ok_or(MachineError::DeadThread { pid, tid })?
                            .regs
                            .pc;
                        self.exit_process(pid, 128 + fault.cause as i64);
                        if pid == ROOT_PID {
                            self.result = Some(RunStatus::Faulted {
                                cause: fault.cause,
                                pc,
                            });
                        }
                        Ok(ThreadStep::Died)
                    }
                }
            }
            Effect::Sys => self.handle_syscall(pid, tid, outcome.step),
        }
    }

    /// Advances the taint gate past a recorded non-`sys` step and demotes
    /// the step to a skeleton when nothing tainted flowed through it. The
    /// step is always the most recently recorded one (nothing records
    /// between execution and settling).
    fn gate_observe(&mut self, step: Option<u32>) {
        let (Some(gate), Some(idx)) = (self.gate.as_mut(), step) else {
            return;
        };
        let view = self.trace.view(idx as usize);
        if !view.elided && gate.observe(view) {
            self.trace.demote_last();
        }
    }

    fn exit_process(&mut self, pid: u32, status: i64) {
        let Some(proc) = self.procs.remove(&pid) else {
            return;
        };
        // Release pipe ends so blocked peers observe EOF/closure.
        for fd in proc.fds.iter().flatten() {
            match fd {
                Fd::PipeRead(id) => self.os.pipes[*id].readers -= 1,
                Fd::PipeWrite(id) => self.os.pipes[*id].writers -= 1,
                _ => {}
            }
        }
        if pid == ROOT_PID {
            self.root_stdout_backup = Some(proc.stdout.clone());
            if self.result.is_none() {
                self.result = Some(RunStatus::Exited(status));
            }
        }
        self.exited.insert(pid, (proc.parent, status));
    }

    fn handle_syscall(
        &mut self,
        pid: u32,
        tid: u32,
        step: Option<u32>,
    ) -> Result<ThreadStep, MachineError> {
        let proc = self
            .procs
            .get_mut(&pid)
            .ok_or(MachineError::DeadProcess { pid })?;
        let regs = &proc
            .threads
            .get(&tid)
            .ok_or(MachineError::DeadThread { pid, tid })?
            .regs;
        let num = regs.get(Reg::SV);
        let args = [
            regs.get(Reg::A0),
            regs.get(Reg::A1),
            regs.get(Reg::A2),
            regs.get(Reg::A3),
            regs.get(Reg::A4),
            regs.get(Reg::A5),
        ];

        let outcome = self.do_syscall(pid, tid, num, args)?;
        // Syscalls that write guest memory (read, net_get, pipe) can land
        // in cached code regions; their effects carry the written range.
        if let SysOutcome::Done { effect, .. } = &outcome {
            match effect {
                SysEffect::InputBytes { addr, bytes, .. } => {
                    self.note_code_write(*addr, bytes.len() as u64);
                }
                SysEffect::PipeCreated { addr, .. } => self.note_code_write(*addr, 16),
                _ => {}
            }
        }
        match outcome {
            SysOutcome::Done { ret, effect } => {
                // The process may have exited (sys::EXIT) — only advance pc
                // for still-running threads.
                if let Some(p) = self.procs.get_mut(&pid) {
                    if let Some(t) = p.threads.get_mut(&tid) {
                        t.regs.set(Reg::A0, ret);
                        t.regs.pc = t.regs.pc.wrapping_add(1);
                        t.blocked = false;
                    }
                }
                if let Some(idx) = step {
                    let record = SyscallRecord {
                        num,
                        args,
                        ret,
                        effect,
                    };
                    if let Some(g) = self.gate.as_mut() {
                        g.observe_syscall(pid, tid, &record);
                    }
                    self.trace.attach_sys(idx, record);
                }
                let died = !self
                    .procs
                    .get(&pid)
                    .is_some_and(|p| p.threads.contains_key(&tid));
                if died {
                    Ok(ThreadStep::Died)
                } else {
                    Ok(ThreadStep::Ran)
                }
            }
            SysOutcome::Block => {
                if let Some(p) = self.procs.get_mut(&pid) {
                    if let Some(t) = p.threads.get_mut(&tid) {
                        t.blocked = true;
                    }
                }
                // A blocked syscall re-executes later; the legacy stream
                // never contained the blocked attempt, so unwind it.
                if let Some(idx) = step {
                    self.trace.pop_last(idx);
                }
                Ok(ThreadStep::Blocked)
            }
        }
    }

    fn do_syscall(
        &mut self,
        pid: u32,
        tid: u32,
        num: u64,
        args: [u64; 6],
    ) -> Result<SysOutcome, MachineError> {
        let neg1 = u64::MAX;
        Ok(match num {
            sys::EXIT => {
                self.exit_process(pid, args[0] as i64);
                SysOutcome::done(0)
            }
            sys::THREAD_EXIT => {
                let proc = self
                    .procs
                    .get_mut(&pid)
                    .ok_or(MachineError::DeadProcess { pid })?;
                proc.threads.remove(&tid);
                proc.thread_exits.insert(tid, args[0]);
                if proc.threads.is_empty() {
                    self.exit_process(pid, args[0] as i64);
                }
                SysOutcome::done(0)
            }
            sys::WRITE => {
                let (fd, buf, len) = (args[0] as usize, args[1], args[2]);
                let proc = self
                    .procs
                    .get_mut(&pid)
                    .ok_or(MachineError::DeadProcess { pid })?;
                if !proc.mem.is_mapped(buf, len) {
                    return Ok(SysOutcome::done(neg1));
                }
                let bytes = proc.mem.read_bytes(buf, len)?;
                let Some(Some(entry)) = proc.fds.get_mut(fd) else {
                    return Ok(SysOutcome::done(neg1));
                };
                let (sink, offset) = match entry {
                    Fd::Stdout => {
                        let off = proc.stdout.len() as u64;
                        proc.stdout.extend_from_slice(&bytes);
                        (OutputSink::Stdout, off)
                    }
                    Fd::File {
                        name,
                        pos,
                        writable,
                        ..
                    } => {
                        if !*writable {
                            return Ok(SysOutcome::done(neg1));
                        }
                        let name = name.clone();
                        let at = *pos as usize;
                        let file = self.os.fs.entry(name.clone()).or_default();
                        if file.len() < at + bytes.len() {
                            file.resize(at + bytes.len(), 0);
                        }
                        file[at..at + bytes.len()].copy_from_slice(&bytes);
                        *pos += bytes.len() as u64;
                        (OutputSink::File(name), at as u64)
                    }
                    Fd::PipeWrite(id) => {
                        let id = *id;
                        let pipe = &mut self.os.pipes[id];
                        let off = pipe.write_off;
                        pipe.buf.extend(bytes.iter().copied());
                        pipe.write_off += bytes.len() as u64;
                        (OutputSink::Pipe(id), off)
                    }
                    Fd::Stdin | Fd::PipeRead(_) => return Ok(SysOutcome::done(neg1)),
                };
                SysOutcome::Done {
                    ret: bytes.len() as u64,
                    effect: SysEffect::OutputBytes {
                        addr: buf,
                        bytes,
                        sink,
                        offset,
                    },
                }
            }
            sys::READ => {
                let (fd, buf, len) = (args[0] as usize, args[1], args[2]);
                let proc = self
                    .procs
                    .get_mut(&pid)
                    .ok_or(MachineError::DeadProcess { pid })?;
                if !proc.mem.is_mapped(buf, len) {
                    return Ok(SysOutcome::done(neg1));
                }
                let Some(Some(entry)) = proc.fds.get_mut(fd) else {
                    return Ok(SysOutcome::done(neg1));
                };
                let (bytes, source, offset) = match entry {
                    Fd::Stdin => {
                        let off = proc.stdin_pos as u64;
                        let avail = &self.stdin[proc.stdin_pos.min(self.stdin.len())..];
                        let n = avail.len().min(len as usize);
                        let bytes = avail[..n].to_vec();
                        proc.stdin_pos += n;
                        (bytes, InputSource::Stdin, off)
                    }
                    Fd::File {
                        name,
                        pos,
                        readable,
                        ..
                    } => {
                        if !*readable {
                            return Ok(SysOutcome::done(neg1));
                        }
                        let content = self.os.fs.get(name).cloned().unwrap_or_default();
                        let at = (*pos as usize).min(content.len());
                        let n = (content.len() - at).min(len as usize);
                        *pos += n as u64;
                        (
                            content[at..at + n].to_vec(),
                            InputSource::File(name.clone()),
                            at as u64,
                        )
                    }
                    Fd::PipeRead(id) => {
                        let id = *id;
                        let pipe = &mut self.os.pipes[id];
                        if pipe.buf.is_empty() {
                            if pipe.writers > 0 {
                                return Ok(SysOutcome::Block);
                            }
                            (Vec::new(), InputSource::Pipe(id), pipe.read_off)
                        } else {
                            let n = pipe.buf.len().min(len as usize);
                            let off = pipe.read_off;
                            let bytes: Vec<u8> = pipe.buf.drain(..n).collect();
                            pipe.read_off += n as u64;
                            (bytes, InputSource::Pipe(id), off)
                        }
                    }
                    Fd::Stdout | Fd::PipeWrite(_) => return Ok(SysOutcome::done(neg1)),
                };
                proc.mem.write_bytes(buf, &bytes)?;
                SysOutcome::Done {
                    ret: bytes.len() as u64,
                    effect: SysEffect::InputBytes {
                        addr: buf,
                        bytes,
                        source,
                        offset,
                    },
                }
            }
            sys::OPEN => {
                let proc = self
                    .procs
                    .get_mut(&pid)
                    .ok_or(MachineError::DeadProcess { pid })?;
                let Ok(path) = proc.mem.read_cstr(args[0], 256) else {
                    return Ok(SysOutcome::done(neg1));
                };
                let name = String::from_utf8_lossy(&path).into_owned();
                let flags = args[1];
                let entry = match flags {
                    O_RDONLY => {
                        if !self.os.fs.contains_key(&name) {
                            return Ok(SysOutcome::Done {
                                ret: neg1,
                                effect: SysEffect::OpenedFile { path, fd: -1 },
                            });
                        }
                        Fd::File {
                            name: name.clone(),
                            pos: 0,
                            readable: true,
                            writable: false,
                        }
                    }
                    O_WRONLY => {
                        self.os.fs.insert(name.clone(), Vec::new());
                        Fd::File {
                            name: name.clone(),
                            pos: 0,
                            readable: false,
                            writable: true,
                        }
                    }
                    O_RDWR => {
                        self.os.fs.entry(name.clone()).or_default();
                        Fd::File {
                            name: name.clone(),
                            pos: 0,
                            readable: true,
                            writable: true,
                        }
                    }
                    _ => return Ok(SysOutcome::done(neg1)),
                };
                let fd = alloc_fd(&mut proc.fds, entry);
                SysOutcome::Done {
                    ret: fd as u64,
                    effect: SysEffect::OpenedFile {
                        path,
                        fd: fd as i64,
                    },
                }
            }
            sys::CLOSE => {
                let proc = self
                    .procs
                    .get_mut(&pid)
                    .ok_or(MachineError::DeadProcess { pid })?;
                let fd = args[0] as usize;
                match proc.fds.get_mut(fd).and_then(Option::take) {
                    Some(Fd::PipeRead(id)) => {
                        self.os.pipes[id].readers -= 1;
                        SysOutcome::done(0)
                    }
                    Some(Fd::PipeWrite(id)) => {
                        self.os.pipes[id].writers -= 1;
                        SysOutcome::done(0)
                    }
                    Some(_) => SysOutcome::done(0),
                    None => SysOutcome::done(neg1),
                }
            }
            sys::UNLINK => {
                let proc = self
                    .procs
                    .get_mut(&pid)
                    .ok_or(MachineError::DeadProcess { pid })?;
                let Ok(path) = proc.mem.read_cstr(args[0], 256) else {
                    return Ok(SysOutcome::done(neg1));
                };
                let name = String::from_utf8_lossy(&path).into_owned();
                match self.os.fs.remove(&name) {
                    Some(_) => SysOutcome::done(0),
                    None => SysOutcome::done(neg1),
                }
            }
            sys::TIME => SysOutcome::done(self.os.epoch),
            sys::GETPID => SysOutcome::done(pid as u64),
            sys::GETUID => SysOutcome::done(self.os.uid),
            sys::FORK => {
                let child_pid = self.next_pid;
                self.next_pid += 1;
                let child_tid = self.next_tid;
                self.next_tid += 1;
                let proc = self
                    .procs
                    .get_mut(&pid)
                    .ok_or(MachineError::DeadProcess { pid })?;
                // Bump pipe refcounts for inherited descriptors.
                let fds = proc.fds.clone();
                let mut child = Process {
                    parent: pid,
                    mem: proc.mem.clone(),
                    threads: BTreeMap::new(),
                    fds,
                    trap_handler: proc.trap_handler,
                    stdin_pos: proc.stdin_pos,
                    stdout: Vec::new(),
                    thread_exits: BTreeMap::new(),
                    next_stack_index: proc.next_stack_index,
                };
                let mut regs = proc.threads[&tid].regs.clone();
                regs.set(Reg::A0, 0);
                regs.pc = regs.pc.wrapping_add(1); // past the sys insn
                child.threads.insert(
                    child_tid,
                    Thread {
                        regs,
                        blocked: false,
                    },
                );
                for fd in child.fds.iter().flatten() {
                    match fd {
                        Fd::PipeRead(id) => self.os.pipes[*id].readers += 1,
                        Fd::PipeWrite(id) => self.os.pipes[*id].writers += 1,
                        _ => {}
                    }
                }
                self.procs.insert(child_pid, child);
                self.rr.push_back((child_pid, child_tid));
                SysOutcome::Done {
                    ret: child_pid as u64,
                    effect: SysEffect::Forked { child: child_pid },
                }
            }
            sys::WAITPID => {
                let target = args[0] as u32;
                if let Some(&(parent, status)) = self.exited.get(&target) {
                    if parent == pid {
                        self.exited.remove(&target);
                        return Ok(SysOutcome::done(status as u64));
                    }
                    return Ok(SysOutcome::done(neg1));
                }
                if self.procs.contains_key(&target) {
                    SysOutcome::Block
                } else {
                    SysOutcome::done(neg1)
                }
            }
            sys::PIPE => {
                let id = self.os.create_pipe();
                let proc = self
                    .procs
                    .get_mut(&pid)
                    .ok_or(MachineError::DeadProcess { pid })?;
                if !proc.mem.is_mapped(args[0], 16) {
                    return Ok(SysOutcome::done(neg1));
                }
                let rfd = alloc_fd(&mut proc.fds, Fd::PipeRead(id));
                let wfd = alloc_fd(&mut proc.fds, Fd::PipeWrite(id));
                proc.mem.write_uint(args[0], rfd as u64, 8)?;
                proc.mem.write_uint(args[0] + 8, wfd as u64, 8)?;
                SysOutcome::Done {
                    ret: 0,
                    effect: SysEffect::PipeCreated {
                        rfd: rfd as i64,
                        wfd: wfd as i64,
                        addr: args[0],
                    },
                }
            }
            sys::THREAD_SPAWN => {
                let (entry, arg) = (args[0], args[1]);
                let new_tid = self.next_tid;
                self.next_tid += 1;
                let proc = self
                    .procs
                    .get_mut(&pid)
                    .ok_or(MachineError::DeadProcess { pid })?;
                let index = proc.next_stack_index;
                proc.next_stack_index += 1;
                let top = layout::STACK_TOP - index * layout::STACK_STRIDE;
                proc.mem.map(top - layout::STACK_SIZE, layout::STACK_SIZE);
                let mut regs = Regs::new();
                regs.pc = entry;
                regs.set(Reg::A0, arg);
                regs.set(Reg::SP, top - 64);
                regs.set(Reg::FP, top - 64);
                regs.set(Reg::RA, layout::THREAD_EXIT_STUB);
                proc.threads.insert(
                    new_tid,
                    Thread {
                        regs,
                        blocked: false,
                    },
                );
                self.rr.push_back((pid, new_tid));
                SysOutcome::Done {
                    ret: new_tid as u64,
                    effect: SysEffect::SpawnedThread {
                        tid: new_tid,
                        entry,
                        arg,
                    },
                }
            }
            sys::THREAD_JOIN => {
                let target = args[0] as u32;
                let proc = self
                    .procs
                    .get_mut(&pid)
                    .ok_or(MachineError::DeadProcess { pid })?;
                if let Some(ret) = proc.thread_exits.remove(&target) {
                    SysOutcome::done(ret)
                } else if proc.threads.contains_key(&target) {
                    SysOutcome::Block
                } else {
                    SysOutcome::done(neg1)
                }
            }
            sys::NET_GET => {
                let (_url, buf, len) = (args[0], args[1], args[2]);
                let response = self.os.net_response.clone();
                let n = response.len().min(args[2] as usize);
                let proc = self
                    .procs
                    .get_mut(&pid)
                    .ok_or(MachineError::DeadProcess { pid })?;
                if !proc.mem.is_mapped(buf, len.min(n as u64)) {
                    return Ok(SysOutcome::done(neg1));
                }
                proc.mem.write_bytes(buf, &response[..n])?;
                SysOutcome::Done {
                    ret: n as u64,
                    effect: SysEffect::InputBytes {
                        addr: buf,
                        bytes: response[..n].to_vec(),
                        source: InputSource::Net,
                        offset: 0,
                    },
                }
            }
            sys::SET_TRAP_HANDLER => {
                let proc = self
                    .procs
                    .get_mut(&pid)
                    .ok_or(MachineError::DeadProcess { pid })?;
                proc.trap_handler = (args[0] != 0).then_some(args[0]);
                SysOutcome::done(0)
            }
            sys::LSEEK => {
                let proc = self
                    .procs
                    .get_mut(&pid)
                    .ok_or(MachineError::DeadProcess { pid })?;
                let fd = args[0] as usize;
                let off = args[1] as i64;
                let whence = args[2];
                let Some(Some(Fd::File { name, pos, .. })) = proc.fds.get_mut(fd) else {
                    return Ok(SysOutcome::done(neg1));
                };
                let size = self.os.fs.get(name).map_or(0, Vec::len) as i64;
                let new = match whence {
                    0 => off,
                    1 => *pos as i64 + off,
                    2 => size + off,
                    _ => return Ok(SysOutcome::done(neg1)),
                };
                if new < 0 {
                    return Ok(SysOutcome::done(neg1));
                }
                *pos = new as u64;
                SysOutcome::done(new as u64)
            }
            _ => SysOutcome::done(neg1),
        })
    }
}

fn alloc_fd(fds: &mut Vec<Option<Fd>>, entry: Fd) -> usize {
    for (i, slot) in fds.iter_mut().enumerate() {
        if slot.is_none() {
            *slot = Some(entry);
            return i;
        }
    }
    fds.push(Some(entry));
    fds.len() - 1
}

enum ThreadStep {
    Ran,
    Blocked,
    Died,
}

enum SysOutcome {
    Done { ret: u64, effect: SysEffect },
    Block,
}

impl SysOutcome {
    fn done(ret: u64) -> SysOutcome {
        SysOutcome::Done {
            ret,
            effect: SysEffect::None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bomblab_fault::{arm, disarm, FaultPlan};
    use bomblab_isa::asm::assemble;
    use bomblab_isa::link::Linker;

    fn exit7() -> Image {
        let obj = assemble(
            r"
            .text
            .global _start
        _start:
            li   a0, 7
            li   sv, 0      # SYS_EXIT
            sys
            ",
        )
        .unwrap();
        Linker::new().add_object(obj).link().unwrap()
    }

    #[test]
    fn injected_decode_fault_ends_the_run_as_crashed() {
        let mut m = Machine::load(&exit7(), None, MachineConfig::default()).unwrap();
        let plan = FaultPlan::single(FaultSite::VmStep, 2, FaultAction::DecodeError);
        let token = arm(Some(&plan), None);
        let result = m.run();
        let containment = disarm(token);
        assert_eq!(containment.injected, 1);
        assert!(
            matches!(
                result.status,
                RunStatus::Crashed(MachineError::InjectedDecodeFault { .. })
            ),
            "expected an injected crash, got {}",
            result.status
        );
        assert_eq!(result.steps, 1, "one instruction ran before injection");
    }

    #[test]
    fn injected_mem_fault_ends_the_run_as_crashed() {
        let mut m = Machine::load(&exit7(), None, MachineConfig::default()).unwrap();
        let plan = FaultPlan::single(FaultSite::VmStep, 1, FaultAction::MemFault);
        let token = arm(Some(&plan), None);
        let result = m.run();
        let containment = disarm(token);
        assert_eq!(containment.injected, 1);
        assert!(matches!(
            result.status,
            RunStatus::Crashed(MachineError::InjectedMemFault { .. })
        ));
    }

    #[test]
    fn a_plan_past_the_programs_length_is_a_no_op() {
        let mut m = Machine::load(&exit7(), None, MachineConfig::default()).unwrap();
        let plan = FaultPlan::single(FaultSite::VmStep, 1_000_000, FaultAction::Panic);
        let token = arm(Some(&plan), None);
        let result = m.run();
        let containment = disarm(token);
        assert_eq!(containment.injected, 0);
        assert_eq!(result.status.exit_code(), Some(7));
    }

    #[test]
    fn unarmed_runs_are_untouched_by_the_fault_layer() {
        let mut m = Machine::load(&exit7(), None, MachineConfig::default()).unwrap();
        assert_eq!(m.run().status.exit_code(), Some(7));
    }
}
