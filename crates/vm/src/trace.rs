//! Instruction traces — the VM's equivalent of an Intel Pin tool.
//!
//! The trace is stored as a flat **arena**: one contiguous step table
//! ([`StepRec`], private) plus side arenas for register/float operands,
//! memory accesses, and the rare payloads (syscalls, traps). Recording a
//! step is a handful of bump-pointer appends with zero steady-state heap
//! allocation, which keeps traced runs close to untraced speed.
//!
//! Consumers read steps through [`StepView`], a cheap `Copy` view whose
//! fields mirror the legacy [`TraceStep`] struct (which survives as an
//! owned materialization for tests and differential harnesses).
//!
//! Steps come in two capture levels ([`Capture`]): `Full` records every
//! operand value; `Skeleton` records only the pc/branch/trap skeleton.
//! Skeleton ("elided") steps are produced by the taint gate for
//! instructions that provably touch no symbolic data — the taint and
//! symbolic replay stages skip them entirely.

use bomblab_isa::{FReg, Insn, Reg};

/// One memory access performed by an instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemAccess {
    /// Effective address.
    pub addr: u64,
    /// Value transferred (zero-extended into 64 bits, little-endian).
    pub value: u64,
    /// Access width in bytes.
    pub width: u8,
}

/// Where input bytes delivered by a syscall came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InputSource {
    /// Standard input.
    Stdin,
    /// A file in the simulated filesystem.
    File(String),
    /// A pipe (identified by its kernel id).
    Pipe(usize),
    /// The simulated network.
    Net,
}

/// Where output bytes sent by a syscall went.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutputSink {
    /// Standard output.
    Stdout,
    /// A file in the simulated filesystem.
    File(String),
    /// A pipe (identified by its kernel id).
    Pipe(usize),
}

/// Data-flow relevant side effects of a syscall, recorded for taint
/// tracking.
#[derive(Debug, Clone, PartialEq)]
pub enum SysEffect {
    /// No data-flow effect (e.g. `getpid`).
    None,
    /// Bytes were copied *into* guest memory (`read`, `net_get`).
    InputBytes {
        /// Destination buffer address.
        addr: u64,
        /// The bytes delivered.
        bytes: Vec<u8>,
        /// Their origin.
        source: InputSource,
        /// Byte offset within the source stream (file position, cumulative
        /// pipe/stdin position; 0 for net).
        offset: u64,
    },
    /// Bytes were copied *out of* guest memory (`write`).
    OutputBytes {
        /// Source buffer address.
        addr: u64,
        /// The bytes sent.
        bytes: Vec<u8>,
        /// Their destination.
        sink: OutputSink,
        /// Byte offset within the sink stream (file position, cumulative
        /// pipe/stdout position).
        offset: u64,
    },
    /// A file was opened; `path` is the NUL-terminated name that was read
    /// from guest memory.
    OpenedFile {
        /// The path bytes.
        path: Vec<u8>,
        /// Resulting descriptor (`-1` on failure).
        fd: i64,
    },
    /// `fork` created a child process.
    Forked {
        /// The child pid (the child observes return value 0).
        child: u32,
    },
    /// `thread_spawn` created a thread.
    SpawnedThread {
        /// New thread id.
        tid: u32,
        /// Entry address.
        entry: u64,
        /// Argument passed in `a0`.
        arg: u64,
    },
    /// `pipe` allocated descriptors and wrote them to guest memory.
    PipeCreated {
        /// Read-end descriptor.
        rfd: i64,
        /// Write-end descriptor.
        wfd: i64,
        /// Address the fd pair was written to.
        addr: u64,
    },
}

/// A completed syscall.
#[derive(Debug, Clone, PartialEq)]
pub struct SyscallRecord {
    /// Syscall number (the value of `sv`).
    pub num: u64,
    /// Arguments `a0..a5` at entry.
    pub args: [u64; 6],
    /// Return value placed in `a0`.
    pub ret: u64,
    /// Data-flow effect.
    pub effect: SysEffect,
}

/// How much of a step the trace captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Capture {
    /// Record every operand value (the legacy behaviour).
    Full,
    /// Record only pc/insn/branch-direction/trap — the step is marked
    /// *elided* and the taint/symbolic stages skip it.
    Skeleton,
}

/// One executed instruction with everything it observed and did — the
/// legacy owned representation, materialized on demand from the arena
/// (see [`StepView::to_step`]). The rare syscall payload is boxed so the
/// common-case step stays small.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStep {
    /// Process id.
    pub pid: u32,
    /// Thread id (unique within the machine).
    pub tid: u32,
    /// Address of the instruction.
    pub pc: u64,
    /// The decoded instruction.
    pub insn: Insn,
    /// Values of general registers read, in operand order.
    pub reg_reads: Vec<(Reg, u64)>,
    /// Values of floating-point registers read.
    pub freg_reads: Vec<(FReg, f64)>,
    /// General registers written with their new values.
    pub reg_writes: Vec<(Reg, u64)>,
    /// Floating-point registers written with their new values.
    pub freg_writes: Vec<(FReg, f64)>,
    /// Memory read performed, if any.
    pub mem_read: Option<MemAccess>,
    /// Memory write performed, if any.
    pub mem_write: Option<MemAccess>,
    /// For conditional branches: whether the branch was taken.
    pub taken: Option<bool>,
    /// For `sys`: the completed syscall (boxed — rare payload).
    pub sys: Option<Box<SyscallRecord>>,
    /// Trap cause if this instruction trapped (see [`bomblab_isa::trap`]).
    pub trap: Option<u64>,
}

impl TraceStep {
    /// Creates an empty step for `insn` at `pc` (builder-style, used by
    /// tests).
    pub fn new(pid: u32, tid: u32, pc: u64, insn: Insn) -> TraceStep {
        TraceStep {
            pid,
            tid,
            pc,
            insn,
            reg_reads: Vec::new(),
            freg_reads: Vec::new(),
            reg_writes: Vec::new(),
            freg_writes: Vec::new(),
            mem_read: None,
            mem_write: None,
            taken: None,
            sys: None,
            trap: None,
        }
    }
}

/// A borrowed view of one recorded step. Field names mirror [`TraceStep`]
/// so consumer code reads identically; operand lists are slices into the
/// trace's side arenas.
#[derive(Debug, Clone, Copy)]
pub struct StepView<'a> {
    /// Process id.
    pub pid: u32,
    /// Thread id (unique within the machine).
    pub tid: u32,
    /// Address of the instruction.
    pub pc: u64,
    /// The decoded instruction.
    pub insn: Insn,
    /// Values of general registers read, in operand order.
    pub reg_reads: &'a [(Reg, u64)],
    /// Values of floating-point registers read.
    pub freg_reads: &'a [(FReg, f64)],
    /// General registers written with their new values.
    pub reg_writes: &'a [(Reg, u64)],
    /// Floating-point registers written with their new values.
    pub freg_writes: &'a [(FReg, f64)],
    /// Memory read performed, if any.
    pub mem_read: Option<MemAccess>,
    /// Memory write performed, if any.
    pub mem_write: Option<MemAccess>,
    /// For conditional branches: whether the branch was taken.
    pub taken: Option<bool>,
    /// For `sys`: the completed syscall.
    pub sys: Option<&'a SyscallRecord>,
    /// Trap cause if this instruction trapped.
    pub trap: Option<u64>,
    /// Whether operand capture was elided (skeleton step). Elided steps
    /// never carry operands, memory accesses, or syscalls.
    pub elided: bool,
}

impl StepView<'_> {
    /// Materializes the legacy owned representation.
    pub fn to_step(&self) -> TraceStep {
        TraceStep {
            pid: self.pid,
            tid: self.tid,
            pc: self.pc,
            insn: self.insn,
            reg_reads: self.reg_reads.to_vec(),
            freg_reads: self.freg_reads.to_vec(),
            reg_writes: self.reg_writes.to_vec(),
            freg_writes: self.freg_writes.to_vec(),
            mem_read: self.mem_read,
            mem_write: self.mem_write,
            taken: self.taken,
            sys: self.sys.map(|r| Box::new(r.clone())),
            trap: self.trap,
        }
    }
}

// Step flags (packed into `StepRec::flags`).
const F_TAKEN_SET: u8 = 1 << 0;
const F_TAKEN: u8 = 1 << 1;
const F_MEM_READ: u8 = 1 << 2;
const F_MEM_WRITE: u8 = 1 << 3;
const F_SYS: u8 = 1 << 4;
const F_TRAP: u8 = 1 << 5;
const F_ELIDED: u8 = 1 << 6;

/// One row of the step table: fixed-size, operands live in side arenas.
#[derive(Debug, Clone, Copy, PartialEq)]
struct StepRec {
    pc: u64,
    insn: Insn,
    pid: u32,
    tid: u32,
    reg_start: u32,
    freg_start: u32,
    mem_start: u32,
    reg_reads: u8,
    reg_writes: u8,
    freg_reads: u8,
    freg_writes: u8,
    flags: u8,
}

/// A full execution trace, arena-backed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    steps: Vec<StepRec>,
    /// Per-step register operands: reads first, then writes.
    reg_ops: Vec<(Reg, u64)>,
    freg_ops: Vec<(FReg, f64)>,
    /// At most one access per step (reads and writes never co-occur).
    mem_ops: Vec<MemAccess>,
    /// Rare payloads, keyed by step index, sorted by construction.
    sys: Vec<(u32, SyscallRecord)>,
    traps: Vec<(u32, u64)>,
    full_steps: u64,
    elided_steps: u64,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Steps recorded with full operand capture.
    pub fn full_steps(&self) -> u64 {
        self.full_steps
    }

    /// Steps recorded as elided skeletons.
    pub fn elided_steps(&self) -> u64 {
        self.elided_steps
    }

    /// Bytes held by the step table and side arenas (by length, not
    /// capacity — the recorded data, not the allocator's slack).
    pub fn arena_bytes(&self) -> u64 {
        use std::mem::size_of;
        (self.steps.len() * size_of::<StepRec>()
            + self.reg_ops.len() * size_of::<(Reg, u64)>()
            + self.freg_ops.len() * size_of::<(FReg, f64)>()
            + self.mem_ops.len() * size_of::<MemAccess>()
            + self.sys.len() * size_of::<(u32, SyscallRecord)>()
            + self.traps.len() * size_of::<(u32, u64)>()) as u64
    }

    // ---- recording (used by the CPU and the machine) ----

    /// Starts a new step, returning its index. Operand pushes and flag
    /// setters below always target the *last* started step.
    pub fn begin_step(&mut self, pid: u32, tid: u32, pc: u64, insn: Insn, capture: Capture) -> u32 {
        let idx = self.steps.len() as u32;
        let flags = match capture {
            Capture::Full => {
                self.full_steps += 1;
                0
            }
            Capture::Skeleton => {
                self.elided_steps += 1;
                F_ELIDED
            }
        };
        self.steps.push(StepRec {
            pc,
            insn,
            pid,
            tid,
            reg_start: self.reg_ops.len() as u32,
            freg_start: self.freg_ops.len() as u32,
            mem_start: self.mem_ops.len() as u32,
            reg_reads: 0,
            reg_writes: 0,
            freg_reads: 0,
            freg_writes: 0,
            flags,
        });
        idx
    }

    /// Records a general-register read on the last step.
    #[inline]
    pub fn push_reg_read(&mut self, r: Reg, v: u64) {
        self.reg_ops.push((r, v));
        if let Some(rec) = self.steps.last_mut() {
            debug_assert_eq!(rec.reg_writes, 0, "reads must precede writes");
            rec.reg_reads += 1;
        }
    }

    /// Records a general-register write on the last step.
    #[inline]
    pub fn push_reg_write(&mut self, r: Reg, v: u64) {
        self.reg_ops.push((r, v));
        if let Some(rec) = self.steps.last_mut() {
            rec.reg_writes += 1;
        }
    }

    /// Records a float-register read on the last step.
    #[inline]
    pub fn push_freg_read(&mut self, r: FReg, v: f64) {
        self.freg_ops.push((r, v));
        if let Some(rec) = self.steps.last_mut() {
            debug_assert_eq!(rec.freg_writes, 0, "reads must precede writes");
            rec.freg_reads += 1;
        }
    }

    /// Records a float-register write on the last step.
    #[inline]
    pub fn push_freg_write(&mut self, r: FReg, v: f64) {
        self.freg_ops.push((r, v));
        if let Some(rec) = self.steps.last_mut() {
            rec.freg_writes += 1;
        }
    }

    /// Records the memory read of the last step.
    #[inline]
    pub fn set_mem_read(&mut self, acc: MemAccess) {
        self.mem_ops.push(acc);
        if let Some(rec) = self.steps.last_mut() {
            rec.flags |= F_MEM_READ;
        }
    }

    /// Records the memory write of the last step.
    #[inline]
    pub fn set_mem_write(&mut self, acc: MemAccess) {
        self.mem_ops.push(acc);
        if let Some(rec) = self.steps.last_mut() {
            rec.flags |= F_MEM_WRITE;
        }
    }

    /// Records the branch direction of the last step.
    #[inline]
    pub fn set_taken(&mut self, taken: bool) {
        if let Some(rec) = self.steps.last_mut() {
            rec.flags |= F_TAKEN_SET;
            if taken {
                rec.flags |= F_TAKEN;
            }
        }
    }

    /// Records the trap cause of the last step. Survives demotion: the
    /// engine scans the full trace for trap edges.
    pub fn set_trap(&mut self, cause: u64) {
        if let Some(rec) = self.steps.last_mut() {
            rec.flags |= F_TRAP;
            let idx = (self.steps.len() - 1) as u32;
            self.traps.push((idx, cause));
        }
    }

    /// Attaches the completed syscall to step `idx` (always the last step:
    /// the machine settles a `sys` effect before any other thread runs).
    pub fn attach_sys(&mut self, idx: u32, record: SyscallRecord) {
        debug_assert_eq!(idx as usize + 1, self.steps.len(), "sys step is last");
        if let Some(rec) = self.steps.get_mut(idx as usize) {
            rec.flags |= F_SYS;
            self.sys.push((idx, record));
        }
    }

    /// Removes step `idx` (must be the last step) — used when a syscall
    /// blocks and the instruction will re-execute later.
    pub fn pop_last(&mut self, idx: u32) {
        debug_assert_eq!(
            idx as usize + 1,
            self.steps.len(),
            "can only pop the last step"
        );
        let Some(rec) = self.steps.pop() else { return };
        self.reg_ops.truncate(rec.reg_start as usize);
        self.freg_ops.truncate(rec.freg_start as usize);
        self.mem_ops.truncate(rec.mem_start as usize);
        while self.sys.last().is_some_and(|e| e.0 == idx) {
            self.sys.pop();
        }
        while self.traps.last().is_some_and(|e| e.0 == idx) {
            self.traps.pop();
        }
        if rec.flags & F_ELIDED != 0 {
            self.elided_steps -= 1;
        } else {
            self.full_steps -= 1;
        }
    }

    /// Demotes the last step to an elided skeleton, releasing its operand
    /// arena entries. The trap cause (if any) is kept; the caller (the
    /// taint gate) guarantees the step has no memory write and no syscall.
    pub fn demote_last(&mut self) {
        let Some(rec) = self.steps.last_mut() else {
            return;
        };
        if rec.flags & F_ELIDED != 0 {
            return;
        }
        debug_assert_eq!(rec.flags & (F_MEM_WRITE | F_SYS), 0, "unsound demotion");
        self.reg_ops.truncate(rec.reg_start as usize);
        self.freg_ops.truncate(rec.freg_start as usize);
        self.mem_ops.truncate(rec.mem_start as usize);
        rec.reg_reads = 0;
        rec.reg_writes = 0;
        rec.freg_reads = 0;
        rec.freg_writes = 0;
        rec.flags = (rec.flags & !F_MEM_READ) | F_ELIDED;
        self.full_steps -= 1;
        self.elided_steps += 1;
    }

    /// Appends a legacy step (test builders, trace filtering).
    pub fn push_step(&mut self, step: &TraceStep) {
        let idx = self.begin_step(step.pid, step.tid, step.pc, step.insn, Capture::Full);
        for &(r, v) in &step.reg_reads {
            self.push_reg_read(r, v);
        }
        for &(r, v) in &step.freg_reads {
            self.push_freg_read(r, v);
        }
        for &(r, v) in &step.reg_writes {
            self.push_reg_write(r, v);
        }
        for &(r, v) in &step.freg_writes {
            self.push_freg_write(r, v);
        }
        if let Some(acc) = step.mem_read {
            self.set_mem_read(acc);
        }
        if let Some(acc) = step.mem_write {
            self.set_mem_write(acc);
        }
        if let Some(taken) = step.taken {
            self.set_taken(taken);
        }
        if let Some(cause) = step.trap {
            self.set_trap(cause);
        }
        if let Some(rec) = &step.sys {
            self.attach_sys(idx, (**rec).clone());
        }
    }

    fn append_view(&mut self, v: StepView<'_>) {
        let capture = if v.elided {
            Capture::Skeleton
        } else {
            Capture::Full
        };
        let idx = self.begin_step(v.pid, v.tid, v.pc, v.insn, capture);
        for &(r, val) in v.reg_reads {
            self.push_reg_read(r, val);
        }
        for &(r, val) in v.freg_reads {
            self.push_freg_read(r, val);
        }
        for &(r, val) in v.reg_writes {
            self.push_reg_write(r, val);
        }
        for &(r, val) in v.freg_writes {
            self.push_freg_write(r, val);
        }
        if let Some(acc) = v.mem_read {
            self.set_mem_read(acc);
        }
        if let Some(acc) = v.mem_write {
            self.set_mem_write(acc);
        }
        if let Some(taken) = v.taken {
            self.set_taken(taken);
        }
        if let Some(cause) = v.trap {
            self.set_trap(cause);
        }
        if let Some(rec) = v.sys {
            self.sys.push((idx, rec.clone()));
            if let Some(r) = self.steps.last_mut() {
                r.flags |= F_SYS;
            }
        }
    }

    /// A new trace containing only the steps `keep` accepts, in order.
    pub fn filter(&self, mut keep: impl FnMut(StepView<'_>) -> bool) -> Trace {
        let mut out = Trace::new();
        for v in self.iter() {
            if keep(v) {
                out.append_view(v);
            }
        }
        out
    }

    // ---- reading ----

    /// The view of step `idx`. Panics if out of range.
    pub fn view(&self, idx: usize) -> StepView<'_> {
        let rec = &self.steps[idx];
        let rs = rec.reg_start as usize;
        let nrr = rec.reg_reads as usize;
        let nrw = rec.reg_writes as usize;
        let fs = rec.freg_start as usize;
        let nfr = rec.freg_reads as usize;
        let nfw = rec.freg_writes as usize;
        let mem = ((rec.flags & (F_MEM_READ | F_MEM_WRITE)) != 0)
            .then(|| self.mem_ops[rec.mem_start as usize]);
        StepView {
            pid: rec.pid,
            tid: rec.tid,
            pc: rec.pc,
            insn: rec.insn,
            reg_reads: &self.reg_ops[rs..rs + nrr],
            reg_writes: &self.reg_ops[rs + nrr..rs + nrr + nrw],
            freg_reads: &self.freg_ops[fs..fs + nfr],
            freg_writes: &self.freg_ops[fs + nfr..fs + nfr + nfw],
            mem_read: if rec.flags & F_MEM_READ != 0 {
                mem
            } else {
                None
            },
            mem_write: if rec.flags & F_MEM_WRITE != 0 {
                mem
            } else {
                None
            },
            taken: (rec.flags & F_TAKEN_SET != 0).then_some(rec.flags & F_TAKEN != 0),
            sys: (rec.flags & F_SYS != 0).then(|| {
                let i = self
                    .sys
                    .binary_search_by_key(&(idx as u32), |e| e.0)
                    .expect("F_SYS implies a side-table entry");
                &self.sys[i].1
            }),
            trap: (rec.flags & F_TRAP != 0).then(|| {
                let i = self
                    .traps
                    .binary_search_by_key(&(idx as u32), |e| e.0)
                    .expect("F_TRAP implies a side-table entry");
                self.traps[i].1
            }),
            elided: rec.flags & F_ELIDED != 0,
        }
    }

    /// The pc of step `idx` without building a view.
    pub fn pc_at(&self, idx: usize) -> u64 {
        self.steps[idx].pc
    }

    /// Materializes step `idx` as a legacy [`TraceStep`].
    pub fn step(&self, idx: usize) -> TraceStep {
        self.view(idx).to_step()
    }

    /// Materializes the whole trace as legacy steps (tests, differential
    /// harnesses).
    pub fn to_steps(&self) -> Vec<TraceStep> {
        self.iter().map(|v| v.to_step()).collect()
    }

    /// Iterates over the steps as views.
    pub fn iter(&self) -> Steps<'_> {
        Steps { t: self, idx: 0 }
    }

    /// Whether any step executed at `pc` (in any process/thread).
    pub fn visited(&self, pc: u64) -> bool {
        self.steps.iter().any(|s| s.pc == pc)
    }

    /// Steps belonging to one (pid, tid) pair, in order.
    pub fn thread_steps(&self, pid: u32, tid: u32) -> impl Iterator<Item = StepView<'_>> {
        self.iter().filter(move |s| s.pid == pid && s.tid == tid)
    }
}

/// Iterator over a trace's steps as [`StepView`]s.
#[derive(Debug, Clone)]
pub struct Steps<'a> {
    t: &'a Trace,
    idx: usize,
}

impl<'a> Iterator for Steps<'a> {
    type Item = StepView<'a>;

    fn next(&mut self) -> Option<StepView<'a>> {
        if self.idx >= self.t.len() {
            return None;
        }
        let v = self.t.view(self.idx);
        self.idx += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.t.len() - self.idx;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Steps<'_> {}

impl<'a> IntoIterator for &'a Trace {
    type Item = StepView<'a>;
    type IntoIter = Steps<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visited_and_thread_filtering() {
        let mut t = Trace::new();
        t.push_step(&TraceStep::new(0, 0, 0x1000, Insn::Nop));
        t.push_step(&TraceStep::new(0, 1, 0x2000, Insn::Nop));
        t.push_step(&TraceStep::new(1, 2, 0x3000, Insn::Halt));
        assert!(t.visited(0x2000));
        assert!(!t.visited(0x4000));
        assert_eq!(t.thread_steps(0, 1).count(), 1);
        assert_eq!(t.thread_steps(0, 0).next().unwrap().pc, 0x1000);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn arena_round_trips_operands_and_payloads() {
        let mut t = Trace::new();
        let mut s = TraceStep::new(1, 2, 0x10, Insn::Nop);
        s.reg_reads = vec![(Reg::A0, 3), (Reg::A1, 4)];
        s.reg_writes = vec![(Reg::A2, 7)];
        s.mem_read = Some(MemAccess {
            addr: 0x800,
            value: 9,
            width: 8,
        });
        s.taken = Some(true);
        t.push_step(&s);
        let mut sys_step = TraceStep::new(1, 2, 0x14, Insn::Sys);
        sys_step.sys = Some(Box::new(SyscallRecord {
            num: 3,
            args: [1, 2, 3, 4, 5, 6],
            ret: 0,
            effect: SysEffect::None,
        }));
        t.push_step(&sys_step);
        let mut trap_step = TraceStep::new(1, 2, 0x18, Insn::Nop);
        trap_step.trap = Some(2);
        t.push_step(&trap_step);

        assert_eq!(t.to_steps(), vec![s.clone(), sys_step, trap_step]);
        assert_eq!(t.full_steps(), 3);
        assert_eq!(t.elided_steps(), 0);
        let v = t.view(0);
        assert_eq!(v.reg_reads, &[(Reg::A0, 3), (Reg::A1, 4)]);
        assert_eq!(v.reg_writes, &[(Reg::A2, 7)]);
        assert_eq!(v.taken, Some(true));
        assert!(!v.elided);
        assert_eq!(t.view(1).sys.unwrap().num, 3);
        assert_eq!(t.view(2).trap, Some(2));
        assert_eq!(t.pc_at(2), 0x18);
        assert!(t.arena_bytes() > 0);
    }

    #[test]
    fn demote_drops_operands_but_keeps_skeleton() {
        let mut t = Trace::new();
        t.begin_step(0, 0, 0x100, Insn::Nop, Capture::Full);
        t.push_reg_read(Reg::A0, 1);
        t.push_reg_write(Reg::A1, 2);
        t.set_taken(false);
        t.set_trap(7);
        t.demote_last();
        assert_eq!(t.full_steps(), 0);
        assert_eq!(t.elided_steps(), 1);
        let v = t.view(0);
        assert!(v.elided);
        assert!(v.reg_reads.is_empty() && v.reg_writes.is_empty());
        assert_eq!(v.taken, Some(false), "branch skeleton survives");
        assert_eq!(v.trap, Some(7), "trap cause survives");
        // Demoting twice is a no-op.
        t.demote_last();
        assert_eq!(t.elided_steps(), 1);
    }

    #[test]
    fn pop_last_unwinds_a_blocked_syscall_step() {
        let mut t = Trace::new();
        t.begin_step(0, 0, 0x100, Insn::Nop, Capture::Full);
        t.push_reg_read(Reg::A0, 1);
        let idx = t.begin_step(0, 0, 0x104, Insn::Sys, Capture::Full);
        t.pop_last(idx);
        assert_eq!(t.len(), 1);
        assert_eq!(t.full_steps(), 1);
        assert_eq!(t.view(0).reg_reads, &[(Reg::A0, 1)]);
    }

    #[test]
    fn filter_preserves_step_content() {
        let mut t = Trace::new();
        let mut a = TraceStep::new(0, 0, 0x10, Insn::Nop);
        a.reg_reads = vec![(Reg::A0, 1)];
        t.push_step(&a);
        let b = TraceStep::new(1, 1, 0x20, Insn::Nop);
        t.push_step(&b);
        let kept = t.filter(|s| s.pid == 0);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept.to_steps(), vec![a]);
    }
}
