//! Instruction traces — the VM's equivalent of an Intel Pin tool.
//!
//! Every executed instruction can be recorded as a [`TraceStep`] carrying
//! the concrete values it observed, which is exactly the information a
//! trace-based concolic executor needs for lifting and constraint
//! extraction.

use bomblab_isa::{FReg, Insn, Reg};

/// One memory access performed by an instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemAccess {
    /// Effective address.
    pub addr: u64,
    /// Value transferred (zero-extended into 64 bits, little-endian).
    pub value: u64,
    /// Access width in bytes.
    pub width: u8,
}

/// Where input bytes delivered by a syscall came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InputSource {
    /// Standard input.
    Stdin,
    /// A file in the simulated filesystem.
    File(String),
    /// A pipe (identified by its kernel id).
    Pipe(usize),
    /// The simulated network.
    Net,
}

/// Where output bytes sent by a syscall went.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutputSink {
    /// Standard output.
    Stdout,
    /// A file in the simulated filesystem.
    File(String),
    /// A pipe (identified by its kernel id).
    Pipe(usize),
}

/// Data-flow relevant side effects of a syscall, recorded for taint
/// tracking.
#[derive(Debug, Clone, PartialEq)]
pub enum SysEffect {
    /// No data-flow effect (e.g. `getpid`).
    None,
    /// Bytes were copied *into* guest memory (`read`, `net_get`).
    InputBytes {
        /// Destination buffer address.
        addr: u64,
        /// The bytes delivered.
        bytes: Vec<u8>,
        /// Their origin.
        source: InputSource,
        /// Byte offset within the source stream (file position, cumulative
        /// pipe/stdin position; 0 for net).
        offset: u64,
    },
    /// Bytes were copied *out of* guest memory (`write`).
    OutputBytes {
        /// Source buffer address.
        addr: u64,
        /// The bytes sent.
        bytes: Vec<u8>,
        /// Their destination.
        sink: OutputSink,
        /// Byte offset within the sink stream (file position, cumulative
        /// pipe/stdout position).
        offset: u64,
    },
    /// A file was opened; `path` is the NUL-terminated name that was read
    /// from guest memory.
    OpenedFile {
        /// The path bytes.
        path: Vec<u8>,
        /// Resulting descriptor (`-1` on failure).
        fd: i64,
    },
    /// `fork` created a child process.
    Forked {
        /// The child pid (the child observes return value 0).
        child: u32,
    },
    /// `thread_spawn` created a thread.
    SpawnedThread {
        /// New thread id.
        tid: u32,
        /// Entry address.
        entry: u64,
        /// Argument passed in `a0`.
        arg: u64,
    },
    /// `pipe` allocated descriptors and wrote them to guest memory.
    PipeCreated {
        /// Read-end descriptor.
        rfd: i64,
        /// Write-end descriptor.
        wfd: i64,
        /// Address the fd pair was written to.
        addr: u64,
    },
}

/// A completed syscall.
#[derive(Debug, Clone, PartialEq)]
pub struct SyscallRecord {
    /// Syscall number (the value of `sv`).
    pub num: u64,
    /// Arguments `a0..a5` at entry.
    pub args: [u64; 6],
    /// Return value placed in `a0`.
    pub ret: u64,
    /// Data-flow effect.
    pub effect: SysEffect,
}

/// One executed instruction with everything it observed and did.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStep {
    /// Process id.
    pub pid: u32,
    /// Thread id (unique within the machine).
    pub tid: u32,
    /// Address of the instruction.
    pub pc: u64,
    /// The decoded instruction.
    pub insn: Insn,
    /// Values of general registers read, in operand order.
    pub reg_reads: Vec<(Reg, u64)>,
    /// Values of floating-point registers read.
    pub freg_reads: Vec<(FReg, f64)>,
    /// General registers written with their new values.
    pub reg_writes: Vec<(Reg, u64)>,
    /// Floating-point registers written with their new values.
    pub freg_writes: Vec<(FReg, f64)>,
    /// Memory read performed, if any.
    pub mem_read: Option<MemAccess>,
    /// Memory write performed, if any.
    pub mem_write: Option<MemAccess>,
    /// For conditional branches: whether the branch was taken.
    pub taken: Option<bool>,
    /// For `sys`: the completed syscall.
    pub sys: Option<SyscallRecord>,
    /// Trap cause if this instruction trapped (see [`bomblab_isa::trap`]).
    pub trap: Option<u64>,
}

impl TraceStep {
    /// Creates an empty step for `insn` at `pc` (builder-style, used by the
    /// CPU).
    pub fn new(pid: u32, tid: u32, pc: u64, insn: Insn) -> TraceStep {
        TraceStep {
            pid,
            tid,
            pc,
            insn,
            reg_reads: Vec::new(),
            freg_reads: Vec::new(),
            reg_writes: Vec::new(),
            freg_writes: Vec::new(),
            mem_read: None,
            mem_write: None,
            taken: None,
            sys: None,
            trap: None,
        }
    }
}

/// A full execution trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Executed steps in machine order (interleaving all threads).
    pub steps: Vec<TraceStep>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Iterates over the steps.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceStep> {
        self.steps.iter()
    }

    /// Whether any step executed at `pc` (in any process/thread).
    pub fn visited(&self, pc: u64) -> bool {
        self.steps.iter().any(|s| s.pc == pc)
    }

    /// Steps belonging to one (pid, tid) pair, in order.
    pub fn thread_steps(&self, pid: u32, tid: u32) -> impl Iterator<Item = &TraceStep> {
        self.steps
            .iter()
            .filter(move |s| s.pid == pid && s.tid == tid)
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceStep;
    type IntoIter = std::slice::Iter<'a, TraceStep>;

    fn into_iter(self) -> Self::IntoIter {
        self.steps.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visited_and_thread_filtering() {
        let mut t = Trace::new();
        t.steps.push(TraceStep::new(0, 0, 0x1000, Insn::Nop));
        t.steps.push(TraceStep::new(0, 1, 0x2000, Insn::Nop));
        t.steps.push(TraceStep::new(1, 2, 0x3000, Insn::Halt));
        assert!(t.visited(0x2000));
        assert!(!t.visited(0x4000));
        assert_eq!(t.thread_steps(0, 1).count(), 1);
        assert_eq!(t.thread_steps(0, 0).next().unwrap().pc, 0x1000);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }
}
