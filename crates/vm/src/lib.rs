//! # bomblab-vm — the concrete BVM machine
//!
//! This crate executes [`bomblab_isa`] images on a small deterministic
//! virtual machine with a simulated operating system:
//!
//! * a CPU interpreter with precise hardware traps ([`cpu`]),
//! * sparse paged memory ([`mem`]),
//! * an in-memory filesystem, pipes, a fixed clock, a simulated network
//!   service, `fork`/`waitpid`, and round-robin threads ([`os`],
//!   [`machine`]),
//! * full instruction tracing ([`trace`]) — the equivalent of the Intel
//!   Pin tools used by the concolic executors studied in the DSN'17 paper.
//!
//! Everything is deterministic: the same image and [`MachineConfig`] always
//! produce the same trace, which is what makes the concolic study
//! reproducible.
//!
//! ## Example
//!
//! ```
//! use bomblab_isa::asm::assemble;
//! use bomblab_isa::link::Linker;
//! use bomblab_vm::{Machine, MachineConfig};
//!
//! let obj = assemble(
//!     r#"
//!     .text
//!     .global _start
//! _start:
//!     li   a0, 7
//!     li   sv, 0      # SYS_EXIT
//!     sys
//!     "#,
//! )?;
//! let image = Linker::new().add_object(obj).link()?;
//! let mut machine = Machine::load(&image, None, MachineConfig::default())?;
//! let result = machine.run();
//! assert_eq!(result.status.exit_code(), Some(7));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
// Crash-containment surface: fallible paths must carry typed errors
// ([`machine::MachineError`]) instead of unwinding through the study
// runner. The workspace lint table cannot be extended per crate, so the
// stricter policy lives here; CI's `-D warnings` promotes it.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod bbcache;
pub mod cpu;
mod gate;
pub mod machine;
pub mod mem;
pub mod os;
pub mod trace;

pub use bbcache::{BbStats, BlockCache, MicroOp, StoreClass};
pub use cpu::{Effect, Regs};
pub use machine::{
    LoadError, Machine, MachineConfig, MachineError, RunResult, RunStatus, BOOM_EXIT_CODE, ROOT_PID,
};
pub use mem::{MemFault, Memory};
pub use os::{Fd, Os};
pub use trace::{
    Capture, InputSource, MemAccess, OutputSink, StepView, Steps, SysEffect, SyscallRecord, Trace,
    TraceStep,
};
