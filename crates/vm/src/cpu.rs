//! The BVM CPU: single-instruction semantics.
//!
//! [`step`] executes exactly one instruction against a register file and a
//! memory, optionally recording into an arena [`Trace`]. Syscalls and
//! traps are *reported*, not handled — the [`crate::machine::Machine`]
//! owns those.

use crate::mem::Memory;
use crate::trace::{Capture, MemAccess, Trace};
use bomblab_isa::{trap, DecodeError, Insn, Opcode, Reg};

/// Architectural register state of one thread.
#[derive(Debug, Clone, PartialEq)]
pub struct Regs {
    /// General-purpose registers.
    pub gpr: [u64; 32],
    /// Floating-point registers.
    pub fpr: [f64; 16],
    /// Program counter.
    pub pc: u64,
}

impl Default for Regs {
    fn default() -> Regs {
        Regs {
            gpr: [0; 32],
            fpr: [0.0; 16],
            pc: 0,
        }
    }
}

impl Regs {
    /// Creates zeroed registers.
    pub fn new() -> Regs {
        Regs::default()
    }

    /// Reads a general register. `r0` always reads as zero.
    pub fn get(&self, r: Reg) -> u64 {
        self.gpr[r.index()]
    }

    /// Writes a general register. Writes to `r0` are ignored (it is the
    /// hardwired zero register).
    pub fn set(&mut self, r: Reg, v: u64) {
        if r.index() != 0 {
            self.gpr[r.index()] = v;
        }
    }
}

/// A hardware trap raised by an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Trap cause (see [`bomblab_isa::trap`]).
    pub cause: u64,
    /// Faulting address for memory traps.
    pub addr: Option<u64>,
    /// Length of the faulting instruction (for trap-resume).
    pub insn_len: u64,
}

/// What happened when an instruction was stepped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Effect {
    /// Normal execution; `pc` has been advanced.
    Continue,
    /// The instruction was `sys`; `pc` has *not* been advanced. The machine
    /// must perform the syscall, then advance `pc` by 1 (or leave it to
    /// retry a blocking call).
    Sys,
    /// The instruction was `halt`.
    Halt,
    /// The instruction trapped; `pc` is unchanged.
    Trap(Fault),
}

/// The recording target of one step: the trace arena plus the capture
/// level the machine's taint gate selected for this instruction.
pub type Recorder<'a> = Option<(&'a mut Trace, Capture)>;

/// Result of stepping one instruction: the effect plus the arena index of
/// the recorded step (present when a recorder was supplied, even for
/// traps).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepOutcome {
    /// Control effect.
    pub effect: Effect,
    /// Index of the recorded step in the trace, when tracing.
    pub step: Option<u32>,
}

/// Executes one instruction at `regs.pc`.
///
/// `pid`/`tid` are only used to label the trace record.
///
/// Undecodable instruction bytes and unmapped fetches are reported as
/// [`Effect::Trap`] with cause [`trap::BAD_INSN`] / [`trap::BAD_MEM`].
pub fn step(
    regs: &mut Regs,
    mem: &mut Memory,
    pid: u32,
    tid: u32,
    rec: Recorder<'_>,
) -> StepOutcome {
    let pc = regs.pc;
    match fetch(mem, pc) {
        Ok(insn) => exec(insn, regs, mem, pid, tid, rec),
        Err(fault) => StepOutcome {
            effect: Effect::Trap(fault),
            step: rec.map(|(t, capture)| {
                let idx = t.begin_step(pid, tid, pc, Insn::Nop, capture);
                t.set_trap(fault.cause);
                idx
            }),
        },
    }
}

/// Fetches and decodes the instruction at `pc` without executing it.
///
/// # Errors
///
/// Returns the hardware [`Fault`] a fetch would raise: [`trap::BAD_MEM`]
/// when the first byte is unmapped, [`trap::BAD_INSN`] when the bytes do
/// not decode.
pub fn fetch(mem: &Memory, pc: u64) -> Result<Insn, Fault> {
    // Fetch up to the maximum instruction length (10 bytes).
    let mut buf = [0u8; 10];
    let mut n = 0;
    for (i, slot) in buf.iter_mut().enumerate() {
        match mem.read_u8(pc.wrapping_add(i as u64)) {
            Ok(b) => {
                *slot = b;
                n = i + 1;
            }
            Err(_) => break,
        }
    }
    if n == 0 {
        return Err(Fault {
            cause: trap::BAD_MEM,
            addr: Some(pc),
            insn_len: 1,
        });
    }
    match Insn::decode(&buf[..n]) {
        Ok((insn, _)) => Ok(insn),
        Err(DecodeError::BadOpcode(_))
        | Err(DecodeError::BadRegister(_))
        | Err(DecodeError::Truncated) => Err(Fault {
            cause: trap::BAD_INSN,
            addr: Some(pc),
            insn_len: 1,
        }),
    }
}

/// Executes an already-decoded instruction (used by `step` and by tests).
pub fn exec(
    insn: Insn,
    regs: &mut Regs,
    mem: &mut Memory,
    pid: u32,
    tid: u32,
    rec: Recorder<'_>,
) -> StepOutcome {
    let pc = regs.pc;
    let len = insn.len() as u64;
    let next = pc.wrapping_add(len);
    // `full` gates operand recording; branch direction and traps are
    // recorded even for skeleton steps.
    let mut full = false;
    let mut tr: Option<&mut Trace> = None;
    let step = rec.map(|(t, capture)| {
        full = capture == Capture::Full;
        let idx = t.begin_step(pid, tid, pc, insn, capture);
        tr = Some(t);
        idx
    });

    macro_rules! rr {
        ($r:expr) => {{
            let v = regs.get($r);
            if full {
                if let Some(t) = tr.as_mut() {
                    t.push_reg_read($r, v);
                }
            }
            v
        }};
    }
    macro_rules! rw {
        ($r:expr, $v:expr) => {{
            let v: u64 = $v;
            regs.set($r, v);
            if full {
                if let Some(t) = tr.as_mut() {
                    // Record the architecturally visible value (r0 stays 0).
                    t.push_reg_write($r, regs.get($r));
                }
            }
        }};
    }
    macro_rules! fr {
        ($r:expr) => {{
            let v = regs.fpr[$r.index()];
            if full {
                if let Some(t) = tr.as_mut() {
                    t.push_freg_read($r, v);
                }
            }
            v
        }};
    }
    macro_rules! fw {
        ($r:expr, $v:expr) => {{
            let v: f64 = $v;
            regs.fpr[$r.index()] = v;
            if full {
                if let Some(t) = tr.as_mut() {
                    t.push_freg_write($r, v);
                }
            }
        }};
    }
    macro_rules! trap {
        ($cause:expr, $addr:expr) => {{
            if let Some(t) = tr.as_mut() {
                t.set_trap($cause);
            }
            return StepOutcome {
                effect: Effect::Trap(Fault {
                    cause: $cause,
                    addr: $addr,
                    insn_len: len,
                }),
                step,
            };
        }};
    }
    macro_rules! load {
        ($addr:expr, $w:expr) => {{
            let addr: u64 = $addr;
            match mem.read_uint(addr, $w) {
                Ok(v) => {
                    if full {
                        if let Some(t) = tr.as_mut() {
                            t.set_mem_read(MemAccess {
                                addr,
                                value: v,
                                width: $w,
                            });
                        }
                    }
                    v
                }
                Err(f) => trap!(trap::BAD_MEM, Some(f.addr)),
            }
        }};
    }
    macro_rules! store {
        ($addr:expr, $v:expr, $w:expr) => {{
            let addr: u64 = $addr;
            let v: u64 = $v;
            match mem.write_uint(addr, v, $w) {
                Ok(()) => {
                    if full {
                        if let Some(t) = tr.as_mut() {
                            t.set_mem_write(MemAccess {
                                addr,
                                value: v,
                                width: $w,
                            });
                        }
                    }
                }
                Err(f) => trap!(trap::BAD_MEM, Some(f.addr)),
            }
        }};
    }

    let mut effect = Effect::Continue;
    let mut new_pc = next;

    match insn {
        Insn::Alu3 { op, rd, rs, rt } => {
            let a = rr!(rs);
            let b = rr!(rt);
            let v = match op {
                Opcode::Add => a.wrapping_add(b),
                Opcode::Sub => a.wrapping_sub(b),
                Opcode::Mul => a.wrapping_mul(b),
                Opcode::Divu => {
                    if b == 0 {
                        trap!(trap::DIV_ZERO, None)
                    }
                    a / b
                }
                Opcode::Divs => {
                    if b == 0 {
                        trap!(trap::DIV_ZERO, None)
                    }
                    (a as i64).wrapping_div(b as i64) as u64
                }
                Opcode::Remu => {
                    if b == 0 {
                        trap!(trap::DIV_ZERO, None)
                    }
                    a % b
                }
                Opcode::Rems => {
                    if b == 0 {
                        trap!(trap::DIV_ZERO, None)
                    }
                    (a as i64).wrapping_rem(b as i64) as u64
                }
                Opcode::And => a & b,
                Opcode::Or => a | b,
                Opcode::Xor => a ^ b,
                Opcode::Shl => a.wrapping_shl(b as u32 & 63),
                Opcode::Shru => a.wrapping_shr(b as u32 & 63),
                Opcode::Shrs => ((a as i64).wrapping_shr(b as u32 & 63)) as u64,
                Opcode::Slt => ((a as i64) < (b as i64)) as u64,
                Opcode::Sltu => (a < b) as u64,
                _ => unreachable!("non-ALU3 opcode in Alu3"),
            };
            rw!(rd, v);
        }
        Insn::AluI { op, rd, rs, imm } => {
            let a = rr!(rs);
            let b = imm as i64 as u64;
            let v = match op {
                Opcode::AddI => a.wrapping_add(b),
                Opcode::MulI => a.wrapping_mul(b),
                Opcode::AndI => a & b,
                Opcode::OrI => a | b,
                Opcode::XorI => a ^ b,
                Opcode::ShlI => a.wrapping_shl(b as u32 & 63),
                Opcode::ShruI => a.wrapping_shr(b as u32 & 63),
                Opcode::ShrsI => ((a as i64).wrapping_shr(b as u32 & 63)) as u64,
                Opcode::SltI => ((a as i64) < (b as i64)) as u64,
                Opcode::SltuI => (a < b) as u64,
                _ => unreachable!("non-ALUI opcode in AluI"),
            };
            rw!(rd, v);
        }
        Insn::Mov { rd, rs } => {
            let v = rr!(rs);
            rw!(rd, v);
        }
        Insn::Not { rd, rs } => {
            let v = rr!(rs);
            rw!(rd, !v);
        }
        Insn::Neg { rd, rs } => {
            let v = rr!(rs);
            rw!(rd, v.wrapping_neg());
        }
        Insn::Li { rd, imm } => {
            rw!(rd, imm);
        }
        Insn::Load { op, rd, base, off } => {
            let b = rr!(base);
            let addr = b.wrapping_add(off as i64 as u64);
            let v = match op {
                Opcode::Lb => load!(addr, 1) as i8 as i64 as u64,
                Opcode::Lbu => load!(addr, 1),
                Opcode::Lh => load!(addr, 2) as i16 as i64 as u64,
                Opcode::Lhu => load!(addr, 2),
                Opcode::Lw => load!(addr, 4) as i32 as i64 as u64,
                Opcode::Lwu => load!(addr, 4),
                Opcode::Ld => load!(addr, 8),
                _ => unreachable!("non-load opcode in Load"),
            };
            rw!(rd, v);
        }
        Insn::Store { op, src, base, off } => {
            let v = rr!(src);
            let b = rr!(base);
            let addr = b.wrapping_add(off as i64 as u64);
            let w = match op {
                Opcode::Sb => 1,
                Opcode::Sh => 2,
                Opcode::Sw => 4,
                Opcode::Sd => 8,
                _ => unreachable!("non-store opcode in Store"),
            };
            let mask = if w == 8 {
                u64::MAX
            } else {
                (1u64 << (8 * w)) - 1
            };
            store!(addr, v & mask, w);
        }
        Insn::Push { rs } => {
            let v = rr!(rs);
            let sp = rr!(Reg::SP).wrapping_sub(8);
            store!(sp, v, 8);
            rw!(Reg::SP, sp);
        }
        Insn::Pop { rd } => {
            let sp = rr!(Reg::SP);
            let v = load!(sp, 8);
            rw!(rd, v);
            rw!(Reg::SP, sp.wrapping_add(8));
        }
        Insn::Branch { op, rs, rt, rel } => {
            let a = rr!(rs);
            let b = rr!(rt);
            let taken = match op {
                Opcode::Beq => a == b,
                Opcode::Bne => a != b,
                Opcode::Blt => (a as i64) < (b as i64),
                Opcode::Bge => (a as i64) >= (b as i64),
                Opcode::Bltu => a < b,
                Opcode::Bgeu => a >= b,
                _ => unreachable!("non-branch opcode in Branch"),
            };
            if let Some(t) = tr.as_mut() {
                t.set_taken(taken);
            }
            if taken {
                new_pc = pc.wrapping_add(rel as i64 as u64);
            }
        }
        Insn::Jmp { rel } => {
            new_pc = pc.wrapping_add(rel as i64 as u64);
        }
        Insn::Jr { rs } => {
            new_pc = rr!(rs);
        }
        Insn::Call { rel } => {
            rw!(Reg::RA, next);
            new_pc = pc.wrapping_add(rel as i64 as u64);
        }
        Insn::Callr { rs } => {
            let target = rr!(rs);
            rw!(Reg::RA, next);
            new_pc = target;
        }
        Insn::Ret => {
            new_pc = rr!(Reg::RA);
        }
        Insn::Sys => {
            // The machine performs the call; pc stays at the sys insn.
            effect = Effect::Sys;
            new_pc = pc;
        }
        Insn::Nop => {}
        Insn::Halt => {
            effect = Effect::Halt;
            new_pc = pc;
        }
        Insn::FAlu3 { op, fd, fs, ft } => {
            let a = fr!(fs);
            let b = fr!(ft);
            let v = match op {
                Opcode::FAdd => a + b,
                Opcode::FSub => a - b,
                Opcode::FMul => a * b,
                Opcode::FDiv => a / b,
                _ => unreachable!("non-FALU3 opcode"),
            };
            fw!(fd, v);
        }
        Insn::FAlu2 { op, fd, fs } => {
            let a = fr!(fs);
            let v = match op {
                Opcode::FSqrt => a.sqrt(),
                Opcode::FNeg => -a,
                Opcode::FMov => a,
                _ => unreachable!("non-FALU2 opcode"),
            };
            fw!(fd, v);
        }
        Insn::FLd { fd, base, off } => {
            let b = rr!(base);
            let addr = b.wrapping_add(off as i64 as u64);
            let bits = load!(addr, 8);
            fw!(fd, f64::from_bits(bits));
        }
        Insn::FSt { fs, base, off } => {
            let v = fr!(fs);
            let b = rr!(base);
            let addr = b.wrapping_add(off as i64 as u64);
            store!(addr, v.to_bits(), 8);
        }
        Insn::FLi { fd, bits } => {
            fw!(fd, f64::from_bits(bits));
        }
        Insn::FCvtSiToD { fd, rs } => {
            let v = rr!(rs);
            fw!(fd, v as i64 as f64);
        }
        Insn::FCvtDToSi { rd, fs } => {
            let v = fr!(fs);
            rw!(rd, v as i64 as u64);
        }
        Insn::FBranch { op, fs, ft, rel } => {
            let a = fr!(fs);
            let b = fr!(ft);
            let taken = match op {
                Opcode::FBeq => a == b,
                Opcode::FBlt => a < b,
                Opcode::FBle => a <= b,
                _ => unreachable!("non-FBranch opcode"),
            };
            if let Some(t) = tr.as_mut() {
                t.set_taken(taken);
            }
            if taken {
                new_pc = pc.wrapping_add(rel as i64 as u64);
            }
        }
        Insn::FBits { rd, fs } => {
            let v = fr!(fs);
            rw!(rd, v.to_bits());
        }
        Insn::FFromBits { fd, rs } => {
            let v = rr!(rs);
            fw!(fd, f64::from_bits(v));
        }
    }

    regs.pc = new_pc;
    StepOutcome { effect, step }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceStep;
    use bomblab_isa::FReg;

    fn setup() -> (Regs, Memory) {
        let mut mem = Memory::new();
        mem.map(0x1000, 0x1000);
        mem.map(0x8000, 0x1000);
        let mut regs = Regs::new();
        regs.pc = 0x1000;
        regs.set(Reg::SP, 0x8800);
        (regs, mem)
    }

    /// Executes with full tracing and returns the recorded step.
    fn run(insn: Insn, regs: &mut Regs, mem: &mut Memory) -> (StepOutcome, TraceStep) {
        let mut trace = Trace::new();
        let out = exec(insn, regs, mem, 0, 0, Some((&mut trace, Capture::Full)));
        let idx = out.step.expect("tracing was on");
        (out, trace.step(idx as usize))
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let (mut regs, mut mem) = setup();
        run(
            Insn::Li {
                rd: Reg::ZERO,
                imm: 1234,
            },
            &mut regs,
            &mut mem,
        );
        assert_eq!(regs.get(Reg::ZERO), 0);
    }

    #[test]
    fn alu_arithmetic_wraps() {
        let (mut regs, mut mem) = setup();
        regs.set(Reg::A0, u64::MAX);
        regs.set(Reg::A1, 2);
        run(
            Insn::Alu3 {
                op: Opcode::Add,
                rd: Reg::A2,
                rs: Reg::A0,
                rt: Reg::A1,
            },
            &mut regs,
            &mut mem,
        );
        assert_eq!(regs.get(Reg::A2), 1);
        assert_eq!(regs.pc, 0x1004);
    }

    #[test]
    fn signed_and_unsigned_comparisons_differ() {
        let (mut regs, mut mem) = setup();
        regs.set(Reg::A0, u64::MAX); // -1 signed
        regs.set(Reg::A1, 1);
        run(
            Insn::Alu3 {
                op: Opcode::Slt,
                rd: Reg::A2,
                rs: Reg::A0,
                rt: Reg::A1,
            },
            &mut regs,
            &mut mem,
        );
        assert_eq!(regs.get(Reg::A2), 1, "-1 < 1 signed");
        run(
            Insn::Alu3 {
                op: Opcode::Sltu,
                rd: Reg::A2,
                rs: Reg::A0,
                rt: Reg::A1,
            },
            &mut regs,
            &mut mem,
        );
        assert_eq!(regs.get(Reg::A2), 0, "MAX > 1 unsigned");
    }

    #[test]
    fn division_by_zero_traps() {
        let (mut regs, mut mem) = setup();
        regs.set(Reg::A1, 0);
        let (out, t) = run(
            Insn::Alu3 {
                op: Opcode::Divs,
                rd: Reg::A2,
                rs: Reg::A0,
                rt: Reg::A1,
            },
            &mut regs,
            &mut mem,
        );
        match out.effect {
            Effect::Trap(f) => {
                assert_eq!(f.cause, trap::DIV_ZERO);
                assert_eq!(f.insn_len, 4);
            }
            other => panic!("expected trap, got {other:?}"),
        }
        assert_eq!(regs.pc, 0x1000, "pc unchanged on trap");
        assert_eq!(t.trap, Some(trap::DIV_ZERO));
    }

    #[test]
    fn int_min_div_minus_one_wraps() {
        let (mut regs, mut mem) = setup();
        regs.set(Reg::A0, i64::MIN as u64);
        regs.set(Reg::A1, u64::MAX);
        let (out, _) = run(
            Insn::Alu3 {
                op: Opcode::Divs,
                rd: Reg::A2,
                rs: Reg::A0,
                rt: Reg::A1,
            },
            &mut regs,
            &mut mem,
        );
        assert_eq!(out.effect, Effect::Continue);
        assert_eq!(regs.get(Reg::A2), i64::MIN as u64);
    }

    #[test]
    fn loads_extend_correctly() {
        let (mut regs, mut mem) = setup();
        mem.write_uint(0x8000, 0xFF, 1).unwrap();
        regs.set(Reg::A0, 0x8000);
        run(
            Insn::Load {
                op: Opcode::Lb,
                rd: Reg::A1,
                base: Reg::A0,
                off: 0,
            },
            &mut regs,
            &mut mem,
        );
        assert_eq!(regs.get(Reg::A1) as i64, -1);
        run(
            Insn::Load {
                op: Opcode::Lbu,
                rd: Reg::A1,
                base: Reg::A0,
                off: 0,
            },
            &mut regs,
            &mut mem,
        );
        assert_eq!(regs.get(Reg::A1), 0xFF);
    }

    #[test]
    fn store_truncates_to_width() {
        let (mut regs, mut mem) = setup();
        regs.set(Reg::A0, 0x8000);
        regs.set(Reg::A1, 0x1234_5678_9ABC_DEF0);
        mem.write_uint(0x8000, u64::MAX, 8).unwrap();
        run(
            Insn::Store {
                op: Opcode::Sh,
                src: Reg::A1,
                base: Reg::A0,
                off: 0,
            },
            &mut regs,
            &mut mem,
        );
        assert_eq!(mem.read_uint(0x8000, 8).unwrap(), 0xFFFF_FFFF_FFFF_DEF0);
    }

    #[test]
    fn unmapped_store_traps_with_address() {
        let (mut regs, mut mem) = setup();
        regs.set(Reg::A0, 0xdead_0000);
        let (out, _) = run(
            Insn::Store {
                op: Opcode::Sd,
                src: Reg::A1,
                base: Reg::A0,
                off: 0,
            },
            &mut regs,
            &mut mem,
        );
        match out.effect {
            Effect::Trap(f) => {
                assert_eq!(f.cause, trap::BAD_MEM);
                assert_eq!(f.addr, Some(0xdead_0000));
            }
            other => panic!("expected trap, got {other:?}"),
        }
    }

    #[test]
    fn push_pop_round_trip_and_sp_discipline() {
        let (mut regs, mut mem) = setup();
        regs.set(Reg::A0, 0xCAFE);
        let sp0 = regs.get(Reg::SP);
        run(Insn::Push { rs: Reg::A0 }, &mut regs, &mut mem);
        assert_eq!(regs.get(Reg::SP), sp0 - 8);
        run(Insn::Pop { rd: Reg::A1 }, &mut regs, &mut mem);
        assert_eq!(regs.get(Reg::A1), 0xCAFE);
        assert_eq!(regs.get(Reg::SP), sp0);
    }

    #[test]
    fn branch_taken_and_not_taken() {
        let (mut regs, mut mem) = setup();
        regs.set(Reg::A0, 5);
        regs.set(Reg::A1, 5);
        let (_, t) = run(
            Insn::Branch {
                op: Opcode::Beq,
                rs: Reg::A0,
                rt: Reg::A1,
                rel: 100,
            },
            &mut regs,
            &mut mem,
        );
        assert_eq!(regs.pc, 0x1000 + 100);
        assert_eq!(t.taken, Some(true));

        regs.pc = 0x1000;
        regs.set(Reg::A1, 6);
        let (_, t) = run(
            Insn::Branch {
                op: Opcode::Beq,
                rs: Reg::A0,
                rt: Reg::A1,
                rel: 100,
            },
            &mut regs,
            &mut mem,
        );
        assert_eq!(regs.pc, 0x1007, "fallthrough past 7-byte branch");
        assert_eq!(t.taken, Some(false));
    }

    #[test]
    fn call_sets_ra_and_ret_returns() {
        let (mut regs, mut mem) = setup();
        run(Insn::Call { rel: 0x40 }, &mut regs, &mut mem);
        assert_eq!(regs.pc, 0x1040);
        assert_eq!(regs.get(Reg::RA), 0x1005);
        run(Insn::Ret, &mut regs, &mut mem);
        assert_eq!(regs.pc, 0x1005);
    }

    #[test]
    fn indirect_jump_goes_to_register_value() {
        let (mut regs, mut mem) = setup();
        regs.set(Reg::A0, 0x1234);
        run(Insn::Jr { rs: Reg::A0 }, &mut regs, &mut mem);
        assert_eq!(regs.pc, 0x1234);
    }

    #[test]
    fn float_conversion_matches_paper_semantics() {
        let (mut regs, mut mem) = setup();
        regs.set(Reg::A0, (-3i64) as u64);
        run(
            Insn::FCvtSiToD {
                fd: FReg::new(0).unwrap(),
                rs: Reg::A0,
            },
            &mut regs,
            &mut mem,
        );
        assert_eq!(regs.fpr[0], -3.0);
        regs.fpr[1] = 2.9;
        run(
            Insn::FCvtDToSi {
                rd: Reg::A1,
                fs: FReg::new(1).unwrap(),
            },
            &mut regs,
            &mut mem,
        );
        assert_eq!(regs.get(Reg::A1), 2, "truncating conversion");
    }

    #[test]
    fn float_precision_loss_is_observable() {
        // The paper's floating-point bomb: 1024 + x == 1024 with x > 0 has
        // solutions over f64.
        let (mut regs, mut mem) = setup();
        regs.fpr[0] = 1024.0;
        regs.fpr[1] = 1e-14;
        run(
            Insn::FAlu3 {
                op: Opcode::FAdd,
                fd: FReg::new(2).unwrap(),
                fs: FReg::new(0).unwrap(),
                ft: FReg::new(1).unwrap(),
            },
            &mut regs,
            &mut mem,
        );
        assert_eq!(regs.fpr[2], 1024.0, "tiny addend is absorbed");
    }

    #[test]
    fn sys_and_halt_do_not_advance_pc() {
        let (mut regs, mut mem) = setup();
        let (out, _) = run(Insn::Sys, &mut regs, &mut mem);
        assert_eq!(out.effect, Effect::Sys);
        assert_eq!(regs.pc, 0x1000);
        let (out, _) = run(Insn::Halt, &mut regs, &mut mem);
        assert_eq!(out.effect, Effect::Halt);
    }

    #[test]
    fn step_fetches_and_decodes_from_memory() {
        let (mut regs, mut mem) = setup();
        let mut bytes = Vec::new();
        Insn::Li {
            rd: Reg::A0,
            imm: 7,
        }
        .encode(&mut bytes);
        mem.write_bytes(0x1000, &bytes).unwrap();
        let out = step(&mut regs, &mut mem, 0, 0, None);
        assert_eq!(out.effect, Effect::Continue);
        assert_eq!(regs.get(Reg::A0), 7);
        assert_eq!(regs.pc, 0x100a);
    }

    #[test]
    fn step_traps_on_unmapped_pc_and_bad_opcode() {
        let (mut regs, mut mem) = setup();
        regs.pc = 0x5000_0000;
        let out = step(&mut regs, &mut mem, 0, 0, None);
        assert!(matches!(
            out.effect,
            Effect::Trap(Fault {
                cause: trap::BAD_MEM,
                ..
            })
        ));
        regs.pc = 0x1000;
        mem.write_u8(0x1000, 0xEE).unwrap();
        let out = step(&mut regs, &mut mem, 0, 0, None);
        assert!(matches!(
            out.effect,
            Effect::Trap(Fault {
                cause: trap::BAD_INSN,
                ..
            })
        ));
    }

    #[test]
    fn trace_records_reads_and_writes() {
        let (mut regs, mut mem) = setup();
        regs.set(Reg::A0, 3);
        regs.set(Reg::A1, 4);
        let (_, t) = run(
            Insn::Alu3 {
                op: Opcode::Add,
                rd: Reg::A2,
                rs: Reg::A0,
                rt: Reg::A1,
            },
            &mut regs,
            &mut mem,
        );
        assert_eq!(t.reg_reads, vec![(Reg::A0, 3), (Reg::A1, 4)]);
        assert_eq!(t.reg_writes, vec![(Reg::A2, 7)]);
    }

    #[test]
    fn skeleton_capture_keeps_branch_direction_only() {
        let (mut regs, mut mem) = setup();
        regs.set(Reg::A0, 5);
        regs.set(Reg::A1, 5);
        let mut trace = Trace::new();
        let out = exec(
            Insn::Branch {
                op: Opcode::Beq,
                rs: Reg::A0,
                rt: Reg::A1,
                rel: 100,
            },
            &mut regs,
            &mut mem,
            0,
            0,
            Some((&mut trace, Capture::Skeleton)),
        );
        assert_eq!(regs.pc, 0x1000 + 100, "semantics identical to full");
        let v = trace.view(out.step.unwrap() as usize);
        assert!(v.elided);
        assert_eq!(v.taken, Some(true));
        assert!(v.reg_reads.is_empty(), "operands elided");
        assert_eq!(trace.elided_steps(), 1);
    }
}
