//! Simulated kernel state: filesystem, pipes, clock, and network.
//!
//! The state here is shared by all processes of a [`crate::machine::Machine`];
//! per-process state (descriptor tables, trap handlers) lives with the
//! process.

use std::collections::{BTreeMap, VecDeque};

/// A kernel pipe object.
#[derive(Debug, Clone, Default)]
pub struct Pipe {
    /// Buffered bytes.
    pub buf: VecDeque<u8>,
    /// Number of open read ends.
    pub readers: u32,
    /// Number of open write ends.
    pub writers: u32,
    /// Total bytes ever read (stream offset of the next read).
    pub read_off: u64,
    /// Total bytes ever written (stream offset of the next write).
    pub write_off: u64,
}

/// One entry in a process descriptor table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fd {
    /// Standard input (fd 0 by convention).
    Stdin,
    /// Standard output (fd 1).
    Stdout,
    /// An open file.
    File {
        /// Name in the simulated filesystem.
        name: String,
        /// Current offset.
        pos: u64,
        /// Opened for reading.
        readable: bool,
        /// Opened for writing.
        writable: bool,
    },
    /// Read end of a pipe.
    PipeRead(usize),
    /// Write end of a pipe.
    PipeWrite(usize),
}

/// `open` flag: read-only.
pub const O_RDONLY: u64 = 0;
/// `open` flag: write-only, create + truncate.
pub const O_WRONLY: u64 = 1;
/// `open` flag: read-write, create if missing.
pub const O_RDWR: u64 = 2;

/// Shared simulated-kernel state.
#[derive(Debug, Clone)]
pub struct Os {
    /// The in-memory filesystem: name → contents.
    pub fs: BTreeMap<String, Vec<u8>>,
    /// Kernel pipe table.
    pub pipes: Vec<Pipe>,
    /// Value returned by the `time` syscall.
    pub epoch: u64,
    /// Bytes served by the `net_get` syscall.
    pub net_response: Vec<u8>,
    /// Value returned by `getuid`.
    pub uid: u64,
}

impl Default for Os {
    fn default() -> Os {
        Os {
            fs: BTreeMap::new(),
            pipes: Vec::new(),
            epoch: 1_500_000_000,
            net_response: b"HELLO FROM BVM-NET\n".to_vec(),
            uid: 1000,
        }
    }
}

impl Os {
    /// Creates default kernel state.
    pub fn new() -> Os {
        Os::default()
    }

    /// Allocates a new pipe with one reader and one writer; returns its id.
    pub fn create_pipe(&mut self) -> usize {
        self.pipes.push(Pipe {
            buf: VecDeque::new(),
            readers: 1,
            writers: 1,
            read_off: 0,
            write_off: 0,
        });
        self.pipes.len() - 1
    }

    /// Contents of a file, if it exists.
    pub fn file(&self, name: &str) -> Option<&[u8]> {
        self.fs.get(name).map(Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipes_allocate_sequential_ids() {
        let mut os = Os::new();
        assert_eq!(os.create_pipe(), 0);
        assert_eq!(os.create_pipe(), 1);
        assert_eq!(os.pipes[0].readers, 1);
        assert_eq!(os.pipes[0].writers, 1);
    }

    #[test]
    fn default_state_is_deterministic() {
        let a = Os::new();
        let b = Os::new();
        assert_eq!(a.epoch, b.epoch);
        assert_eq!(a.net_response, b.net_response);
    }
}
