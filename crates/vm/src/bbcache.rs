//! Predecoded basic-block cache.
//!
//! The interpreter's hot loop used to re-fetch and re-decode every
//! instruction byte-by-byte on every step of every round of every study
//! cell. This module decodes straight-line instruction runs *once* into a
//! flat arena of pre-resolved micro-ops ([`MicroOp`]) and shares the result
//! read-only across all rounds and all profiles that execute the same
//! image: [`BlockCache::for_regions`] keys caches by the resolved text
//! bytes themselves, so four profiles × N rounds of a study cell hit one
//! cache.
//!
//! Soundness model: the cache decodes from its own pristine copy of the
//! text bytes, never from live guest memory. Each [`crate::Machine`] tracks
//! the code ranges *it* has overwritten (self-modifying code, syscalls
//! writing into text, injected decode faults) and falls back to
//! byte-decoding from its own memory for those ranges — the shared cache
//! itself is immutable and stays valid for every other machine.

use bomblab_isa::{Insn, Opcode, Reg};
use std::sync::{Arc, Mutex, OnceLock};

/// Precomputed effective-address recipe of a store-class instruction:
/// the write goes to `regs[base] + off` and covers `width` bytes.
///
/// Knowing this *before* executing a cached micro-op lets the machine
/// detect writes into cached code regions without re-inspecting the
/// instruction on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreClass {
    /// Base address register.
    pub base: Reg,
    /// Signed byte offset added to the base (−8 for `push`).
    pub off: i64,
    /// Bytes written.
    pub width: u8,
}

/// One predecoded instruction: the decoded [`Insn`] (kept whole so tracing
/// stays byte-identical with the decode-per-step path), its address and
/// encoded length, and its store recipe if it writes memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroOp {
    /// The decoded instruction.
    pub insn: Insn,
    /// Address of the instruction.
    pub pc: u64,
    /// Encoded length in bytes.
    pub len: u8,
    /// Store recipe, for code-write detection.
    pub store: Option<StoreClass>,
}

/// Cumulative dispatch counters of one [`crate::Machine`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BbStats {
    /// Steps served from the block cache.
    pub bb_hits: u64,
    /// Steps that consulted the cache but fell back to byte-decode
    /// (pc outside cached regions, undecodable entry, or dirty code).
    pub bb_misses: u64,
    /// Decoded blocks overwritten by guest stores, syscall writes into
    /// text, or injected decode faults.
    pub bb_invalidations: u64,
    /// Steps executed through the byte-decode path.
    pub steps_decoded: u64,
}

/// The store recipe of `insn`, if it is a store-class instruction.
///
/// Mirrors the effective-address computation in [`crate::cpu::exec`]:
/// `Store` writes `regs[base] + off` (width per opcode), `push` writes
/// `sp - 8` (8 bytes), `fst` writes `regs[base] + off` (8 bytes).
pub fn store_class(insn: &Insn) -> Option<StoreClass> {
    match *insn {
        Insn::Store { op, base, off, .. } => {
            let width = match op {
                Opcode::Sb => 1,
                Opcode::Sh => 2,
                Opcode::Sw => 4,
                _ => 8,
            };
            Some(StoreClass {
                base,
                off: off as i64,
                width,
            })
        }
        Insn::Push { .. } => Some(StoreClass {
            base: Reg::SP,
            off: -8,
            width: 8,
        }),
        Insn::FSt { base, off, .. } => Some(StoreClass {
            base,
            off: off as i64,
            width: 8,
        }),
        _ => None,
    }
}

/// Whether `insn` ends a straight-line decode run.
fn ends_block(insn: &Insn) -> bool {
    matches!(
        insn,
        Insn::Branch { .. }
            | Insn::FBranch { .. }
            | Insn::Jmp { .. }
            | Insn::Jr { .. }
            | Insn::Call { .. }
            | Insn::Callr { .. }
            | Insn::Ret
            | Insn::Sys
            | Insn::Halt
    )
}

/// One cached code region: a pristine copy of the bytes at load time.
#[derive(Debug)]
struct Region {
    base: u64,
    bytes: Vec<u8>,
}

/// Slot values below this are sentinels (0 = unknown, 1 = undecodable);
/// packed entries are `((block + 2) << 32) | op_index`.
const PACKED_BASE: u64 = 2 << 32;

/// Lazily grown decode state, guarded by one mutex. The lock is taken only
/// at block boundaries (roughly once per basic block, not per step).
#[derive(Debug, Default)]
struct Inner {
    /// Decoded blocks, append-only.
    blocks: Vec<Arc<[MicroOp]>>,
    /// Byte range `[start, end)` covered by each block, parallel to
    /// `blocks` (for invalidation accounting).
    ranges: Vec<(u64, u64)>,
    /// One packed slot per region byte: the compact pc → (block, op) index.
    slots: Vec<Vec<u64>>,
}

/// A shared, lazily populated cache of predecoded basic blocks over a set
/// of immutable code regions.
#[derive(Debug)]
pub struct BlockCache {
    regions: Vec<Region>,
    hash: u64,
    inner: Mutex<Inner>,
}

/// Process-wide registry deduplicating caches by image content, so every
/// round of every profile executing the same resolved image shares one
/// cache.
static REGISTRY: OnceLock<Mutex<Vec<Arc<BlockCache>>>> = OnceLock::new();

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x0100_0000_01b3);
    }
}

impl BlockCache {
    /// Returns the shared cache for `regions` (pairs of base address and
    /// code bytes), creating it on first sight. Two calls with identical
    /// content return the same `Arc`.
    pub fn for_regions(regions: &[(u64, &[u8])]) -> Arc<BlockCache> {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for (base, bytes) in regions {
            fnv1a(&mut hash, &base.to_le_bytes());
            fnv1a(&mut hash, &(bytes.len() as u64).to_le_bytes());
            fnv1a(&mut hash, bytes);
        }
        let registry = REGISTRY.get_or_init(|| Mutex::new(Vec::new()));
        let mut registry = registry
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for cached in registry.iter() {
            if cached.hash == hash
                && cached.regions.len() == regions.len()
                && cached
                    .regions
                    .iter()
                    .zip(regions)
                    .all(|(r, (base, bytes))| r.base == *base && r.bytes == *bytes)
            {
                return Arc::clone(cached);
            }
        }
        let cache = Arc::new(BlockCache {
            regions: regions
                .iter()
                .map(|(base, bytes)| Region {
                    base: *base,
                    bytes: bytes.to_vec(),
                })
                .collect(),
            hash,
            inner: Mutex::new(Inner {
                blocks: Vec::new(),
                ranges: Vec::new(),
                slots: regions.iter().map(|(_, b)| vec![0u64; b.len()]).collect(),
            }),
        });
        registry.push(Arc::clone(&cache));
        cache
    }

    /// The region index and byte offset containing `pc`, if any.
    fn region_of(&self, pc: u64) -> Option<(usize, usize)> {
        self.regions.iter().enumerate().find_map(|(i, r)| {
            if pc >= r.base && pc - r.base < r.bytes.len() as u64 {
                Some((i, (pc - r.base) as usize))
            } else {
                None
            }
        })
    }

    /// Whether `[addr, addr + len)` overlaps any cached code region.
    /// Cheap (a couple of range compares) — callable per store.
    pub fn overlaps_code(&self, addr: u64, len: u64) -> bool {
        if len == 0 {
            return false;
        }
        let end = addr.saturating_add(len);
        self.regions.iter().any(|r| {
            let rend = r.base + r.bytes.len() as u64;
            addr < rend && r.base < end
        })
    }

    /// How many decoded blocks overlap `[addr, addr + len)` — the precise
    /// invalidation count for a write into code.
    pub fn blocks_overlapping(&self, addr: u64, len: u64) -> u64 {
        if len == 0 {
            return 0;
        }
        let end = addr.saturating_add(len);
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner
            .ranges
            .iter()
            .filter(|&&(s, e)| addr < e && s < end)
            .count() as u64
    }

    /// Looks up the micro-op at `pc`, lazily decoding the straight-line run
    /// starting there on first sight. Returns the containing block and the
    /// op's index within it, or `None` when `pc` is outside every cached
    /// region or its bytes do not decode.
    pub fn lookup(&self, pc: u64) -> Option<(Arc<[MicroOp]>, usize)> {
        let (ri, off) = self.region_of(pc)?;
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let slot = inner.slots[ri][off];
        if slot >= PACKED_BASE {
            let block = ((slot >> 32) - 2) as usize;
            let op = (slot & 0xffff_ffff) as usize;
            return Some((Arc::clone(&inner.blocks[block]), op));
        }
        if slot == 1 {
            return None;
        }
        let ops = Self::decode_run(&self.regions[ri], off);
        let Some(last) = ops.last() else {
            inner.slots[ri][off] = 1;
            return None;
        };
        let range = (ops[0].pc, last.pc + last.len as u64);
        let block_idx = inner.blocks.len();
        let block: Arc<[MicroOp]> = ops.into();
        inner.blocks.push(Arc::clone(&block));
        inner.ranges.push(range);
        let base = self.regions[ri].base;
        for (i, op) in block.iter().enumerate() {
            let o = (op.pc - base) as usize;
            // Overlapping decode streams reach the same ops at the same
            // pcs (same pristine bytes), so the first writer wins.
            if inner.slots[ri][o] == 0 {
                inner.slots[ri][o] = ((block_idx as u64 + 2) << 32) | i as u64;
            }
        }
        Some((block, 0))
    }

    /// Decodes the straight-line run starting at `off` within `region`:
    /// stops after a control-transfer instruction, at the first
    /// undecodable byte, or at the region end (a terminal instruction
    /// truncated by the region boundary is simply not cached — the
    /// byte-decode fallback, reading live memory, is the authority there).
    fn decode_run(region: &Region, off: usize) -> Vec<MicroOp> {
        let mut ops = Vec::new();
        let mut at = off;
        while at < region.bytes.len() {
            let Ok((insn, len)) = Insn::decode(&region.bytes[at..]) else {
                break;
            };
            ops.push(MicroOp {
                insn,
                pc: region.base + at as u64,
                len: len as u8,
                store: store_class(&insn),
            });
            at += len;
            if ends_block(&insn) {
                break;
            }
        }
        ops
    }

    /// Number of blocks decoded so far (diagnostics).
    pub fn decoded_blocks(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .blocks
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode_all(insns: &[Insn]) -> Vec<u8> {
        let mut out = Vec::new();
        for i in insns {
            i.encode(&mut out);
        }
        out
    }

    fn r(i: u8) -> Reg {
        Reg::new(i).unwrap()
    }

    #[test]
    fn straight_line_run_decodes_once_and_ends_at_terminator() {
        let insns = [
            Insn::Li { rd: r(5), imm: 1 },
            Insn::AluI {
                op: Opcode::AddI,
                rd: r(5),
                rs: r(5),
                imm: 2,
            },
            Insn::Ret,
            Insn::Nop, // next block
            Insn::Halt,
        ];
        let bytes = encode_all(&insns);
        let cache = BlockCache::for_regions(&[(0x1000, &bytes)]);
        let (block, idx) = cache.lookup(0x1000).expect("decodes");
        assert_eq!(idx, 0);
        assert_eq!(block.len(), 3, "run stops after the terminator");
        assert_eq!(block[2].insn, Insn::Ret);
        assert_eq!(block[0].len, 10);
        // Mid-block lookup lands on the same block at the right index.
        let (block2, idx2) = cache.lookup(0x1000 + 10).expect("mid-block pc indexed");
        assert!(Arc::ptr_eq(&block, &block2));
        assert_eq!(idx2, 1);
        assert_eq!(cache.decoded_blocks(), 1);
        // The instruction after the terminator starts a fresh block.
        let after = 0x1000 + (10 + 7 + 1) as u64;
        let (block3, idx3) = cache.lookup(after).expect("second block");
        assert_eq!(idx3, 0);
        assert_eq!(block3[0].insn, Insn::Nop);
        assert_eq!(cache.decoded_blocks(), 2);
    }

    #[test]
    fn identical_regions_share_one_cache() {
        let bytes = encode_all(&[Insn::Nop, Insn::Halt]);
        let a = BlockCache::for_regions(&[(0x4000, &bytes)]);
        let b = BlockCache::for_regions(&[(0x4000, &bytes)]);
        assert!(Arc::ptr_eq(&a, &b), "same content must share one cache");
        let other = encode_all(&[Insn::Ret]);
        let c = BlockCache::for_regions(&[(0x4000, &other)]);
        assert!(!Arc::ptr_eq(&a, &c));
        // Same bytes at a different base is a different cache.
        let d = BlockCache::for_regions(&[(0x5000, &bytes)]);
        assert!(!Arc::ptr_eq(&a, &d));
    }

    #[test]
    fn undecodable_entry_is_remembered_as_a_miss() {
        let bytes = vec![0xFF, 0xFF, 0xFF];
        let cache = BlockCache::for_regions(&[(0x2000, &bytes)]);
        assert!(cache.lookup(0x2000).is_none());
        assert!(cache.lookup(0x2000).is_none(), "sticky negative slot");
        assert!(cache.lookup(0x9999).is_none(), "outside every region");
        assert_eq!(cache.decoded_blocks(), 0);
    }

    #[test]
    fn overlap_queries_see_regions_and_decoded_blocks() {
        let bytes = encode_all(&[Insn::Nop, Insn::Ret, Insn::Nop, Insn::Halt]);
        let cache = BlockCache::for_regions(&[(0x3000, &bytes)]);
        assert!(cache.overlaps_code(0x3000, 1));
        assert!(cache.overlaps_code(0x2fff, 2));
        assert!(!cache.overlaps_code(0x2fff, 1));
        assert!(!cache.overlaps_code(0x3000 + bytes.len() as u64, 8));
        assert_eq!(cache.blocks_overlapping(0x3000, 4), 0, "nothing decoded");
        cache.lookup(0x3000).expect("block 1"); // [nop, ret]
        cache.lookup(0x3002).expect("block 2"); // [nop, halt]
        assert_eq!(cache.blocks_overlapping(0x3000, 1), 1);
        assert_eq!(cache.blocks_overlapping(0x3000, 4), 2);
        assert_eq!(cache.blocks_overlapping(0x3003, 1), 1);
    }

    #[test]
    fn store_class_mirrors_exec_address_semantics() {
        assert_eq!(
            store_class(&Insn::Store {
                op: Opcode::Sh,
                src: r(3),
                base: r(4),
                off: -6,
            }),
            Some(StoreClass {
                base: r(4),
                off: -6,
                width: 2,
            })
        );
        assert_eq!(
            store_class(&Insn::Push { rs: r(3) }),
            Some(StoreClass {
                base: Reg::SP,
                off: -8,
                width: 8,
            })
        );
        assert_eq!(
            store_class(&Insn::FSt {
                fs: bomblab_isa::FReg::new(2).unwrap(),
                base: r(7),
                off: 16,
            }),
            Some(StoreClass {
                base: r(7),
                off: 16,
                width: 8,
            })
        );
        assert_eq!(store_class(&Insn::Nop), None);
        assert_eq!(
            store_class(&Insn::Load {
                op: Opcode::Ld,
                rd: r(1),
                base: r(2),
                off: 0,
            }),
            None,
            "loads never invalidate"
        );
    }
}
