//! The taint gate: online, over-approximate shadow state the VM consults
//! to decide how much of each step to record.
//!
//! The offline taint filter (`crates/taint`) and the symbolic replayer
//! (`crates/symex`) both skip steps that touch no symbolic data; the gate
//! reproduces a *superset* of their taint so the VM can elide operand
//! capture for such steps up front ([`Capture::Skeleton`]). Soundness
//! invariants (each keeps the gate's taint ⊇ any downstream engine's):
//!
//! * Memory-writing steps and `sys` steps are never elided — the symbolic
//!   replayer mirrors their concrete effects even when untainted.
//! * Register taint propagates per-instruction as `every write := OR of
//!   all inputs`, which subsumes every per-statement transfer function.
//! * A step is demoted after the fact only when all of its inputs *and*
//!   all of its written targets were untainted, so no taint kill is lost.
//! * Syscall returns (`a0`) are always tainted — a superset of the
//!   symbolic `lseek`/`time`/unconstrained-return environments.
//! * Fork duplicates the parent's shadow for the child pid; the child's
//!   register seed is applied at the child's first step, mirroring the
//!   offline engines (the child tid is unknown at fork time).

use crate::trace::{Capture, StepView, SysEffect, SyscallRecord};
use bomblab_isa::{Insn, Reg};
use std::collections::{HashMap, HashSet};

/// Per-thread register taint with a popcount for the O(1) all-clear test.
#[derive(Debug, Clone, Default)]
struct ThreadTaint {
    gpr: [bool; 32],
    fpr: [bool; 16],
    set: u32,
}

impl ThreadTaint {
    fn set_gpr(&mut self, i: usize, v: bool) {
        if i == 0 {
            return; // r0 is hardwired zero
        }
        if self.gpr[i] != v {
            self.gpr[i] = v;
            if v {
                self.set += 1;
            } else {
                self.set -= 1;
            }
        }
    }

    fn set_fpr(&mut self, i: usize, v: bool) {
        if self.fpr[i] != v {
            self.fpr[i] = v;
            if v {
                self.set += 1;
            } else {
                self.set -= 1;
            }
        }
    }
}

/// Online taint shadow consulted by the tracing fast path.
#[derive(Debug, Clone, Default)]
pub(crate) struct TaintGate {
    threads: HashMap<(u32, u32), ThreadTaint>,
    /// Tainted byte addresses per process.
    mem: HashMap<u32, HashSet<u64>>,
    /// Register shadows forked children inherit at their first step.
    fork_seeds: HashMap<u32, ThreadTaint>,
}

fn writes_mem(insn: &Insn) -> bool {
    matches!(
        insn,
        Insn::Store { .. } | Insn::Push { .. } | Insn::FSt { .. }
    )
}

fn reads_mem(insn: &Insn) -> bool {
    matches!(
        insn,
        Insn::Load { .. } | Insn::Pop { .. } | Insn::FLd { .. }
    )
}

impl TaintGate {
    /// Creates a gate with the given byte ranges pre-tainted in `root_pid`.
    pub(crate) fn new(root_pid: u32, ranges: &[(u64, u64)]) -> TaintGate {
        let mut mem = HashSet::new();
        for &(base, len) in ranges {
            for a in base..base.saturating_add(len) {
                mem.insert(a);
            }
        }
        TaintGate {
            threads: HashMap::new(),
            mem: HashMap::from([(root_pid, mem)]),
            fork_seeds: HashMap::new(),
        }
    }

    /// Pre-execution decision: can this step be recorded as a skeleton?
    ///
    /// Skeleton is safe only when the thread's registers are *entirely*
    /// clean (so no input can be tainted and no kill can be missed), the
    /// instruction performs no memory write and no syscall, and any memory
    /// read can only see clean bytes.
    pub(crate) fn capture(&mut self, pid: u32, tid: u32, insn: &Insn) -> Capture {
        if !self.threads.contains_key(&(pid, tid)) {
            if let Some(seed) = self.fork_seeds.remove(&pid) {
                self.threads.insert((pid, tid), seed);
            }
        }
        if matches!(insn, Insn::Sys) || writes_mem(insn) {
            return Capture::Full;
        }
        let clean_regs = self.threads.get(&(pid, tid)).is_none_or(|t| t.set == 0);
        if !clean_regs {
            return Capture::Full;
        }
        if reads_mem(insn) && !self.mem.get(&pid).is_none_or(HashSet::is_empty) {
            return Capture::Full;
        }
        Capture::Skeleton
    }

    /// Post-execution update for a fully captured non-`sys` step: advances
    /// the shadow and returns `true` when the step may still be demoted to
    /// a skeleton (nothing tainted flowed in, and nothing tainted was
    /// overwritten).
    pub(crate) fn observe(&mut self, step: StepView<'_>) -> bool {
        let key = (step.pid, step.tid);
        let mem = self.mem.entry(step.pid).or_default();
        let shadow = self.threads.entry(key).or_default();
        let mut input_tainted = step.reg_reads.iter().any(|&(r, _)| shadow.gpr[r.index()])
            || step.freg_reads.iter().any(|&(r, _)| shadow.fpr[r.index()]);
        if let Some(acc) = step.mem_read {
            input_tainted |= (0..acc.width as u64).any(|i| mem.contains(&(acc.addr + i)));
        }
        let mut clobbered_taint = false;
        for &(r, _) in step.reg_writes {
            clobbered_taint |= shadow.gpr[r.index()];
            shadow.set_gpr(r.index(), input_tainted);
        }
        for &(r, _) in step.freg_writes {
            clobbered_taint |= shadow.fpr[r.index()];
            shadow.set_fpr(r.index(), input_tainted);
        }
        if let Some(acc) = step.mem_write {
            for i in 0..acc.width as u64 {
                if input_tainted {
                    mem.insert(acc.addr + i);
                } else {
                    mem.remove(&(acc.addr + i));
                }
            }
        }
        !input_tainted && !clobbered_taint && step.mem_write.is_none() && step.trap.is_none()
    }

    /// Applies a completed syscall's data-flow effects, over-approximating
    /// every downstream propagation policy.
    pub(crate) fn observe_syscall(&mut self, pid: u32, tid: u32, record: &SyscallRecord) {
        match &record.effect {
            SysEffect::InputBytes { addr, bytes, .. } => {
                let mem = self.mem.entry(pid).or_default();
                for i in 0..bytes.len() as u64 {
                    mem.insert(addr + i);
                }
            }
            SysEffect::Forked { child } => {
                let parent_mem = self.mem.get(&pid).cloned().unwrap_or_default();
                self.mem.insert(*child, parent_mem);
                let mut seed = self.threads.get(&(pid, tid)).cloned().unwrap_or_default();
                seed.set_gpr(Reg::A0.index(), false); // a0 is concrete 0 in the child
                self.fork_seeds.insert(*child, seed);
            }
            SysEffect::SpawnedThread { tid: new_tid, .. } => {
                let arg_tainted = self
                    .threads
                    .get(&(pid, tid))
                    .is_some_and(|t| t.gpr[Reg::A1.index()]);
                if arg_tainted {
                    let mut seed = ThreadTaint::default();
                    seed.set_gpr(Reg::A0.index(), true);
                    self.threads.insert((pid, *new_tid), seed);
                }
            }
            // PipeCreated writes concrete fds; leaving stale taint on those
            // bytes is over-approximate and therefore safe.
            SysEffect::OutputBytes { .. }
            | SysEffect::OpenedFile { .. }
            | SysEffect::PipeCreated { .. }
            | SysEffect::None => {}
        }
        // The return value may be symbolized downstream (time, lseek,
        // unconstrained environment returns) — taint it unconditionally.
        self.threads
            .entry((pid, tid))
            .or_default()
            .set_gpr(Reg::A0.index(), true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{MemAccess, Trace, TraceStep};

    fn view_of(t: &Trace) -> StepView<'_> {
        t.view(t.len() - 1)
    }

    #[test]
    fn clean_thread_gets_skeleton_until_taint_flows_in() {
        let mut gate = TaintGate::new(1, &[(0x100, 4)]);
        let alu = Insn::Mov {
            rd: Reg::A1,
            rs: Reg::A0,
        };
        // Register-only step in a clean thread: skeleton.
        assert_eq!(gate.capture(1, 0, &alu), Capture::Skeleton);
        // A load might see the tainted range: full.
        let ld = Insn::Load {
            op: bomblab_isa::Opcode::Ld,
            rd: Reg::A0,
            base: Reg::A2,
            off: 0,
        };
        assert_eq!(gate.capture(1, 0, &ld), Capture::Full);
        // Observe the load pulling in a tainted byte.
        let mut trace = Trace::new();
        let mut s = TraceStep::new(1, 0, 0x10, ld);
        s.reg_reads = vec![(Reg::A2, 0x100)];
        s.reg_writes = vec![(Reg::A0, 7)];
        s.mem_read = Some(MemAccess {
            addr: 0x100,
            value: 7,
            width: 8,
        });
        trace.push_step(&s);
        assert!(
            !gate.observe(view_of(&trace)),
            "tainted load must stay full"
        );
        // Now the thread is dirty: even register moves record fully.
        assert_eq!(gate.capture(1, 0, &alu), Capture::Full);
        // An untainted overwrite of a0 kills the taint but is NOT
        // demotable (it clobbers a tainted register).
        let mut kill = TraceStep::new(1, 0, 0x14, alu);
        kill.reg_reads = vec![(Reg::A0, 7)];
        kill.reg_writes = vec![(Reg::A1, 7)];
        let mut trace2 = Trace::new();
        trace2.push_step(&kill);
        assert!(!gate.observe(view_of(&trace2)), "reads tainted a0");
    }

    #[test]
    fn stores_and_syscalls_never_elide() {
        let mut gate = TaintGate::new(1, &[]);
        let st = Insn::Store {
            op: bomblab_isa::Opcode::Sd,
            src: Reg::A0,
            base: Reg::SP,
            off: 0,
        };
        assert_eq!(gate.capture(1, 0, &st), Capture::Full);
        assert_eq!(gate.capture(1, 0, &Insn::Sys), Capture::Full);
    }

    #[test]
    fn syscall_return_taints_a0_and_inputs_taint_memory() {
        let mut gate = TaintGate::new(1, &[]);
        gate.observe_syscall(
            1,
            0,
            &SyscallRecord {
                num: 8, // time
                args: [0; 6],
                ret: 42,
                effect: SysEffect::None,
            },
        );
        let mov = Insn::Mov {
            rd: Reg::A1,
            rs: Reg::A0,
        };
        assert_eq!(gate.capture(1, 0, &mov), Capture::Full, "a0 is tainted");
        gate.observe_syscall(
            1,
            0,
            &SyscallRecord {
                num: 2,
                args: [0; 6],
                ret: 4,
                effect: SysEffect::InputBytes {
                    addr: 0x900,
                    bytes: vec![1, 2, 3, 4],
                    source: crate::trace::InputSource::Stdin,
                    offset: 0,
                },
            },
        );
        assert!(gate.mem[&1].contains(&0x903));
    }

    #[test]
    fn fork_seeds_the_child_at_first_sight() {
        let mut gate = TaintGate::new(1, &[]);
        // Taint a register in the parent thread via a syscall return.
        gate.observe_syscall(
            1,
            0,
            &SyscallRecord {
                num: 8,
                args: [0; 6],
                ret: 1,
                effect: SysEffect::Forked { child: 2 },
            },
        );
        // Child's first step: inherits the parent's shadow minus a0 —
        // which was the only set bit pre-fork, so the child starts clean.
        let mov = Insn::Mov {
            rd: Reg::A1,
            rs: Reg::A0,
        };
        assert_eq!(gate.capture(2, 5, &mov), Capture::Skeleton);
        // The parent keeps its tainted a0.
        assert_eq!(gate.capture(1, 0, &mov), Capture::Full);
    }
}
