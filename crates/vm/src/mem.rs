//! Sparse paged memory with explicit mapping.
//!
//! Accesses to unmapped addresses fault, which is how the VM models the
//! paper's "bad memory" hardware trap.

use std::collections::BTreeMap;
use std::fmt;

/// Page size in bytes.
pub const PAGE_SIZE: u64 = 4096;

/// A memory access fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// The faulting address.
    pub addr: u64,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "memory fault at {:#x}", self.addr)
    }
}

impl std::error::Error for MemFault {}

/// Sparse paged memory.
///
/// Pages must be [`map`](Memory::map)ped before use; reads and writes to
/// unmapped pages return [`MemFault`]. `Clone` performs a deep copy, which
/// is how `fork` duplicates an address space.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: BTreeMap<u64, Box<[u8; PAGE_SIZE as usize]>>,
}

impl Memory {
    /// Creates empty (fully unmapped) memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Maps (zero-fills) all pages covering `[base, base + len)`.
    ///
    /// Mapping an already-mapped page leaves its contents intact.
    pub fn map(&mut self, base: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first = base / PAGE_SIZE;
        let last = (base + len - 1) / PAGE_SIZE;
        for page in first..=last {
            self.pages
                .entry(page)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE as usize]));
        }
    }

    /// Whether every byte of `[addr, addr + len)` is mapped.
    pub fn is_mapped(&self, addr: u64, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        let first = addr / PAGE_SIZE;
        let Some(end) = addr.checked_add(len - 1) else {
            return false;
        };
        (first..=end / PAGE_SIZE).all(|p| self.pages.contains_key(&p))
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Faults if the address is unmapped.
    pub fn read_u8(&self, addr: u64) -> Result<u8, MemFault> {
        let page = self
            .pages
            .get(&(addr / PAGE_SIZE))
            .ok_or(MemFault { addr })?;
        Ok(page[(addr % PAGE_SIZE) as usize])
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// Faults if the address is unmapped.
    pub fn write_u8(&mut self, addr: u64, val: u8) -> Result<(), MemFault> {
        let page = self
            .pages
            .get_mut(&(addr / PAGE_SIZE))
            .ok_or(MemFault { addr })?;
        page[(addr % PAGE_SIZE) as usize] = val;
        Ok(())
    }

    /// Reads a little-endian unsigned value of `width` bytes (1, 2, 4 or 8).
    ///
    /// # Errors
    ///
    /// Faults if any byte is unmapped.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4 or 8.
    pub fn read_uint(&self, addr: u64, width: u8) -> Result<u64, MemFault> {
        assert!(matches!(width, 1 | 2 | 4 | 8), "bad access width {width}");
        let mut v = 0u64;
        for i in 0..width as u64 {
            v |= (self.read_u8(addr.wrapping_add(i))? as u64) << (8 * i);
        }
        Ok(v)
    }

    /// Writes the low `width` bytes of `val` little-endian.
    ///
    /// # Errors
    ///
    /// Faults if any byte is unmapped.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4 or 8.
    pub fn write_uint(&mut self, addr: u64, val: u64, width: u8) -> Result<(), MemFault> {
        assert!(matches!(width, 1 | 2 | 4 | 8), "bad access width {width}");
        for i in 0..width as u64 {
            self.write_u8(addr.wrapping_add(i), (val >> (8 * i)) as u8)?;
        }
        Ok(())
    }

    /// Reads `len` bytes.
    ///
    /// # Errors
    ///
    /// Faults if any byte is unmapped.
    pub fn read_bytes(&self, addr: u64, len: u64) -> Result<Vec<u8>, MemFault> {
        let mut out = Vec::with_capacity(len.min(1 << 20) as usize);
        for i in 0..len {
            out.push(self.read_u8(addr.wrapping_add(i))?);
        }
        Ok(out)
    }

    /// Writes all of `bytes` starting at `addr`.
    ///
    /// # Errors
    ///
    /// Faults if any byte is unmapped.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) -> Result<(), MemFault> {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), *b)?;
        }
        Ok(())
    }

    /// Reads a NUL-terminated string of at most `max` bytes (excluding NUL).
    ///
    /// # Errors
    ///
    /// Faults on unmapped bytes; returns the bytes read so far is *not*
    /// attempted — the whole read fails.
    pub fn read_cstr(&self, addr: u64, max: u64) -> Result<Vec<u8>, MemFault> {
        let mut out = Vec::new();
        for i in 0..max {
            let b = self.read_u8(addr.wrapping_add(i))?;
            if b == 0 {
                break;
            }
            out.push(b);
        }
        Ok(out)
    }

    /// Number of mapped pages (for tests and diagnostics).
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_access_faults() {
        let mut m = Memory::new();
        assert_eq!(m.read_u8(0x1000), Err(MemFault { addr: 0x1000 }));
        assert_eq!(m.write_u8(0x1000, 1), Err(MemFault { addr: 0x1000 }));
        m.map(0x1000, 1);
        assert_eq!(m.read_u8(0x1000), Ok(0));
        assert!(m.write_u8(0x1000, 7).is_ok());
        assert_eq!(m.read_u8(0x1000), Ok(7));
    }

    #[test]
    fn map_is_page_granular_and_idempotent() {
        let mut m = Memory::new();
        m.map(0x1ffe, 4); // spans two pages
        assert_eq!(m.mapped_pages(), 2);
        assert!(m.is_mapped(0x1000, PAGE_SIZE));
        assert!(m.is_mapped(0x2000, 1));
        assert!(!m.is_mapped(0x3000, 1));
        m.write_u8(0x1800, 9).unwrap();
        m.map(0x1000, 16); // re-map must not clear
        assert_eq!(m.read_u8(0x1800), Ok(9));
    }

    #[test]
    fn uint_round_trips_all_widths() {
        let mut m = Memory::new();
        m.map(0x0, 64);
        for &w in &[1u8, 2, 4, 8] {
            let val = 0x1122_3344_5566_7788u64;
            m.write_uint(8, val, w).unwrap();
            let mask = if w == 8 { u64::MAX } else { (1 << (8 * w)) - 1 };
            assert_eq!(m.read_uint(8, w).unwrap(), val & mask);
        }
    }

    #[test]
    fn values_are_little_endian() {
        let mut m = Memory::new();
        m.map(0, 16);
        m.write_uint(0, 0x0102_0304, 4).unwrap();
        assert_eq!(m.read_u8(0).unwrap(), 4);
        assert_eq!(m.read_u8(3).unwrap(), 1);
    }

    #[test]
    fn cross_page_access_works_when_both_mapped() {
        let mut m = Memory::new();
        m.map(0x1000, 2 * PAGE_SIZE);
        m.write_uint(0x1fff, 0xAABB, 2).unwrap();
        assert_eq!(m.read_uint(0x1fff, 2).unwrap(), 0xAABB);
    }

    #[test]
    fn cstr_stops_at_nul_or_max() {
        let mut m = Memory::new();
        m.map(0, 32);
        m.write_bytes(0, b"hello\0junk").unwrap();
        assert_eq!(m.read_cstr(0, 32).unwrap(), b"hello");
        assert_eq!(m.read_cstr(0, 3).unwrap(), b"hel");
    }

    #[test]
    fn clone_is_a_deep_copy() {
        let mut a = Memory::new();
        a.map(0, 8);
        a.write_u8(0, 1).unwrap();
        let mut b = a.clone();
        b.write_u8(0, 2).unwrap();
        assert_eq!(a.read_u8(0).unwrap(), 1);
        assert_eq!(b.read_u8(0).unwrap(), 2);
    }

    #[test]
    fn is_mapped_handles_overflowing_ranges() {
        let m = Memory::new();
        assert!(!m.is_mapped(u64::MAX, 2));
        assert!(m.is_mapped(123, 0));
    }
}
