//! # bomblab-rt — the BVM runtime library
//!
//! A small libc/libm/crypto subset written in BVM assembly, used by the
//! logic-bomb dataset and the Figure-3 experiment. The routines are *real
//! BVM code*: calling `printf` or `sha1` puts hundreds to thousands of
//! extra instructions (with real conditional branches) into a trace, which
//! is precisely the external-function-call and crypto-function scalability
//! behaviour studied in the paper.
//!
//! Provided routines:
//!
//! | Module | Functions |
//! |---|---|
//! | `string.s` | `strlen`, `strcmp`, `strcpy`, `memcpy`, `memset`, `atoi` |
//! | `stdio.s` | `putchar`, `puts`, `print_str`, `printf` (%d %u %x %s %c %%), `bomb_boom` |
//! | `math.s` | `sin`, `pow_int` |
//! | `rand.s` | `srand`, `rand` |
//! | `sha1.s` | `sha1` (single block, len ≤ 55) |
//! | `aes.s`  | `aes128_encrypt` |
//!
//! The `reference` module contains host-side Rust implementations of the
//! non-trivial routines; the test suite runs both and compares.
//!
//! ## Linking
//!
//! The library can be linked **statically** (routines copied into the
//! executable) or **dynamically** (executable keeps imports; the loader
//! resolves them against [`shared_library`]). The distinction matters to
//! the study: the Angr profile analyses library code when it is loaded and
//! replaces it with function summaries when it is not, mirroring the
//! paper's Angr vs Angr-NoLib configurations.
//!
//! ```
//! use bomblab_rt::link_program;
//!
//! let image = link_program(
//!     r#"
//!     .extern atoi, bomb_boom
//!     .global _start
//! _start:
//!     ld   a0, [a1+8]      # argv[1]
//!     call atoi
//!     li   t0, 7
//!     bne  a0, t0, no
//!     call bomb_boom       # detonates: prints BOOM, exits 42
//! no: li   a0, 0
//!     li   sv, 0
//!     sys
//!     "#,
//! )?;
//! assert!(image.symbol("atoi").is_some());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod reference;

use bomblab_isa::asm::{assemble, AsmError};
use bomblab_isa::image::Image;
use bomblab_isa::link::{LinkError, Linker};
use bomblab_isa::obj::Object;
use std::fmt;

/// Assembly source text of each runtime module.
pub mod src {
    /// String routines.
    pub const STRING: &str = include_str!("../asm/string.s");
    /// Formatted output and `bomb_boom`.
    pub const STDIO: &str = include_str!("../asm/stdio.s");
    /// `sin` and `pow_int`.
    pub const MATH: &str = include_str!("../asm/math.s");
    /// `srand` / `rand`.
    pub const RAND: &str = include_str!("../asm/rand.s");
    /// SHA-1.
    pub const SHA1: &str = include_str!("../asm/sha1.s");
    /// AES-128.
    pub const AES: &str = include_str!("../asm/aes.s");

    /// All module sources, in link order.
    pub fn all() -> [&'static str; 6] {
        [STRING, STDIO, MATH, RAND, SHA1, AES]
    }
}

/// Errors from building programs against the runtime library.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// User (or library) assembly failed.
    Asm(AsmError),
    /// Linking failed.
    Link(LinkError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Asm(e) => write!(f, "assembly error: {e}"),
            BuildError::Link(e) => write!(f, "link error: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<AsmError> for BuildError {
    fn from(e: AsmError) -> BuildError {
        BuildError::Asm(e)
    }
}

impl From<LinkError> for BuildError {
    fn from(e: LinkError) -> BuildError {
        BuildError::Link(e)
    }
}

/// Assembles every runtime module into relocatable objects.
///
/// # Panics
///
/// Panics if the built-in assembly fails to assemble — that is a bug in
/// this crate, covered by its test suite.
pub fn runtime_objects() -> Vec<Object> {
    src::all()
        .iter()
        .map(|s| assemble(s).expect("built-in runtime assembly is valid"))
        .collect()
}

/// Links the runtime as a shared library image (exports all routines).
///
/// # Panics
///
/// Panics if the built-in library fails to link — a bug in this crate.
pub fn shared_library() -> Image {
    let mut linker = Linker::new().shared();
    for obj in runtime_objects() {
        linker = linker.add_object(obj);
    }
    linker.link().expect("built-in runtime links")
}

/// Assembles `user_src` and statically links it with the whole runtime
/// library, producing a self-contained executable.
///
/// # Errors
///
/// Returns [`BuildError`] if the user source fails to assemble or link.
pub fn link_program(user_src: &str) -> Result<Image, BuildError> {
    let user = assemble(user_src)?;
    let mut linker = Linker::new().add_object(user);
    for obj in runtime_objects() {
        linker = linker.add_object(obj);
    }
    Ok(linker.link()?)
}

/// Assembles `user_src` into a *dynamically linked* executable: runtime
/// references stay as imports. Returns the executable and the shared
/// library image to load alongside it.
///
/// # Errors
///
/// Returns [`BuildError`] if the user source fails to assemble or link.
pub fn link_program_dynamic(user_src: &str) -> Result<(Image, Image), BuildError> {
    let user = assemble(user_src)?;
    let exe = Linker::new().add_object(user).link()?;
    Ok((exe, shared_library()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_assembles_and_links() {
        let lib = shared_library();
        for sym in [
            "strlen",
            "strcmp",
            "strcpy",
            "memcpy",
            "memset",
            "atoi",
            "putchar",
            "puts",
            "printf",
            "print_str",
            "bomb_boom",
            "sin",
            "pow_int",
            "srand",
            "rand",
            "sha1",
            "aes128_encrypt",
        ] {
            assert!(lib.symbol(sym).is_some(), "missing export `{sym}`");
        }
    }

    #[test]
    fn static_and_dynamic_linking_both_work() {
        let src = r#"
            .extern strlen
            .global _start
        _start:
            ld a0, [a1+8]
            call strlen
            li sv, 0
            sys
            "#;
        let static_img = link_program(src).unwrap();
        assert!(static_img.imports.is_empty());
        let (dyn_img, lib) = link_program_dynamic(src).unwrap();
        assert_eq!(dyn_img.imports.len(), 1);
        assert!(lib.symbol("strlen").is_some());
    }

    #[test]
    fn static_image_size_is_in_the_papers_ballpark_shape() {
        // The paper's bombs are 10-25 KB; our fully statically linked
        // images should be same order of magnitude (a few KB at least).
        let img = link_program(".global _start\n_start: halt\n").unwrap();
        assert!(
            img.loadable_size() > 2000,
            "runtime should dominate size, got {}",
            img.loadable_size()
        );
    }
}
