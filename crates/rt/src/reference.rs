//! Host-side reference implementations of the runtime-library routines.
//!
//! These exist to differential-test the BVM assembly in `asm/`: every
//! function here implements the same algorithm (for [`sin`], the *same
//! operation order*, so results match bit for bit).

/// Reference `sin`: range reduction + the exact Taylor/Horner evaluation
/// order used by `asm/math.s`.
pub fn sin(x: f64) -> f64 {
    let q = x * 0.159_154_943_091_895_35_f64;
    let q = if 0.0 <= q { q + 0.5 } else { q - 0.5 };
    let k = q as i64;
    let x = x - (k as f64) * std::f64::consts::TAU;
    let t = x * x;
    let mut u = 1.0 - t / 156.0;
    u = 1.0 - t / 110.0 * u;
    u = 1.0 - t / 72.0 * u;
    u = 1.0 - t / 42.0 * u;
    u = 1.0 - t / 20.0 * u;
    u = 1.0 - t / 6.0 * u;
    x * u
}

/// Reference `pow_int`: repeated multiplication, matching `asm/math.s`.
pub fn pow_int(base: f64, exp: u64) -> f64 {
    let mut acc = 1.0;
    for _ in 0..exp {
        acc *= base;
    }
    acc
}

/// The default `rand_state` seed baked into `asm/rand.s`.
pub const RAND_DEFAULT_SEED: u64 = 0x853c_49e6_748f_ea9b;

/// Reference LCG used by `srand`/`rand` in `asm/rand.s`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lcg {
    state: u64,
}

impl Default for Lcg {
    fn default() -> Lcg {
        Lcg {
            state: RAND_DEFAULT_SEED,
        }
    }
}

impl Lcg {
    /// Creates a generator with the library's default seed.
    pub fn new() -> Lcg {
        Lcg::default()
    }

    /// Equivalent of `srand(seed)`.
    pub fn seed(seed: u64) -> Lcg {
        Lcg { state: seed }
    }

    /// Equivalent of `rand()`: advances the state and returns a value in
    /// `[0, 2^31)`.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        (self.state >> 33) & 0x7fff_ffff
    }
}

/// Reference SHA-1 over arbitrary-length input (FIPS-180).
pub fn sha1(msg: &[u8]) -> [u8; 20] {
    let mut h: [u32; 5] = [
        0x6745_2301,
        0xEFCD_AB89,
        0x98BA_DCFE,
        0x1032_5476,
        0xC3D2_E1F0,
    ];
    let mut data = msg.to_vec();
    let bitlen = (msg.len() as u64).wrapping_mul(8);
    data.push(0x80);
    while data.len() % 64 != 56 {
        data.push(0);
    }
    data.extend_from_slice(&bitlen.to_be_bytes());
    for block in data.chunks_exact(64) {
        let mut w = [0u32; 80];
        for (i, word) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(word.try_into().expect("4-byte chunk"));
        }
        for t in 16..80 {
            w[t] = (w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (t, &wt) in w.iter().enumerate() {
            let (f, k) = match t {
                0..=19 => ((b & c) | (!b & d), 0x5A82_7999),
                20..=39 => (b ^ c ^ d, 0x6ED9_EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1B_BCDC),
                _ => (b ^ c ^ d, 0xCA62_C1D6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wt);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }
    let mut out = [0u8; 20];
    for (i, word) in h.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

fn xtime(x: u8) -> u8 {
    (x << 1) ^ (((x >> 7) & 1) * 0x1b)
}

/// Reference AES-128 single-block encryption (FIPS-197).
pub fn aes128_encrypt(key: &[u8; 16], block: &[u8; 16]) -> [u8; 16] {
    // Key expansion, byte-wise, matching asm/aes.s.
    let mut rk = [0u8; 176];
    rk[..16].copy_from_slice(key);
    for r in 1..=10usize {
        let (prev_part, cur_part) = rk.split_at_mut(16 * r);
        let prev = &prev_part[16 * (r - 1)..];
        let cur = &mut cur_part[..16];
        cur[0] = prev[0] ^ SBOX[prev[13] as usize] ^ RCON[r - 1];
        cur[1] = prev[1] ^ SBOX[prev[14] as usize];
        cur[2] = prev[2] ^ SBOX[prev[15] as usize];
        cur[3] = prev[3] ^ SBOX[prev[12] as usize];
        for i in 4..16 {
            cur[i] = cur[i - 4] ^ prev[i];
        }
    }

    let mut st = [0u8; 16];
    for i in 0..16 {
        st[i] = block[i] ^ rk[i];
    }
    for round in 1..=10usize {
        // SubBytes + ShiftRows.
        let mut tmp = [0u8; 16];
        for (i, t) in tmp.iter_mut().enumerate() {
            let row = i & 3;
            let col = i >> 2;
            let src = row + 4 * ((col + row) & 3);
            *t = SBOX[st[src] as usize];
        }
        if round < 10 {
            // MixColumns.
            for c in 0..4 {
                let a = &tmp[4 * c..4 * c + 4];
                let x: Vec<u8> = a.iter().map(|&v| xtime(v)).collect();
                st[4 * c] = x[0] ^ x[1] ^ a[1] ^ a[2] ^ a[3];
                st[4 * c + 1] = a[0] ^ x[1] ^ x[2] ^ a[2] ^ a[3];
                st[4 * c + 2] = a[0] ^ a[1] ^ x[2] ^ x[3] ^ a[3];
                st[4 * c + 3] = x[0] ^ a[0] ^ a[1] ^ a[2] ^ x[3];
            }
        } else {
            st = tmp;
        }
        for i in 0..16 {
            st[i] ^= rk[16 * round + i];
        }
    }
    st
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn sha1_known_vectors() {
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(
            hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            hex(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn aes_fips197_vector() {
        let key: [u8; 16] = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ];
        let pt: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        assert_eq!(
            hex(&aes128_encrypt(&key, &pt)),
            "69c4e0d86a7b0430d8cdb78070b4c55a"
        );
    }

    #[test]
    fn aes_rijndael_paper_vector() {
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt: [u8; 16] = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        assert_eq!(
            hex(&aes128_encrypt(&key, &pt)),
            "3925841d02dc09fbdc118597196a0b32"
        );
    }

    #[test]
    fn sin_tracks_std_sin_closely() {
        for i in -100..=100 {
            let x = i as f64 * 0.1;
            let err = (sin(x) - x.sin()).abs();
            // Truncation error of the 13th-order polynomial peaks near
            // |x| = pi (next omitted term is x^15/15! ~ 2e-5 there).
            assert!(err < 5e-5, "sin({x}) err {err}");
        }
    }

    #[test]
    fn pow_int_matches_powi() {
        assert_eq!(pow_int(2.0, 10), 1024.0);
        assert_eq!(pow_int(1.5, 0), 1.0);
        assert_eq!(pow_int(-3.0, 3), -27.0);
    }

    #[test]
    fn lcg_is_deterministic_and_in_range() {
        let mut a = Lcg::seed(7);
        let mut b = Lcg::seed(7);
        for _ in 0..100 {
            let v = a.next();
            assert_eq!(v, b.next());
            assert!(v < (1 << 31));
        }
        let mut c = Lcg::seed(8);
        assert_ne!(a.next(), c.next());
    }
}
