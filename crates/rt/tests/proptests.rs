//! Property tests for the runtime library: the BVM implementations agree
//! with the Rust references on randomized inputs.

use bomblab_rt::{link_program, reference};
use bomblab_vm::{Machine, MachineConfig, RunStatus};
use proptest::prelude::*;

/// Runs a harness that leaves its result bits on stdout as `%x` (prefixed
/// with a `1` sentinel nibble trick where byte-level zero padding matters).
fn run_stdout(src: &str) -> Vec<u8> {
    let image = link_program(src).expect("harness builds");
    let mut machine = Machine::load(&image, None, MachineConfig::default()).expect("loads");
    let status = machine.run().status;
    assert_eq!(status, RunStatus::Exited(0), "harness must exit cleanly");
    machine.stdout().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// atoi in BVM assembly equals Rust's parse for decimal strings.
    #[test]
    fn atoi_matches_rust_parse(value in -99_999_999i64..99_999_999) {
        let text = value.to_string();
        let src = format!(
            r#"
            .extern atoi, printf
            .data
        s:   .asciz "{text}"
        fmt: .asciz "%d"
            .text
            .global _start
        _start:
            li a0, s
            call atoi
            mov a1, a0
            li a0, fmt
            call printf
            li a0, 0
            li sv, 0
            sys
            "#
        );
        let out = run_stdout(&src);
        prop_assert_eq!(String::from_utf8_lossy(&out).into_owned(), text);
    }

    /// The in-VM LCG equals the reference for arbitrary seeds.
    #[test]
    fn rand_matches_reference(seed in any::<u64>()) {
        let src = format!(
            r#"
            .extern srand, rand, printf
            .data
        fmt: .asciz "%u "
            .text
            .global _start
        _start:
            li a0, {seed}
            call srand
            li s0, 3
        draws:
            call rand
            mov a1, a0
            li a0, fmt
            call printf
            addi s0, s0, -1
            bne s0, zero, draws
            li a0, 0
            li sv, 0
            sys
            "#
        );
        let out = run_stdout(&src);
        let text = String::from_utf8_lossy(&out).into_owned();
        let got: Vec<u64> = text
            .split_whitespace()
            .map(|w| w.parse().expect("decimal"))
            .collect();
        let mut lcg = reference::Lcg::seed(seed);
        let want: Vec<u64> = (0..3).map(|_| lcg.next()).collect();
        prop_assert_eq!(got, want);
    }

    /// SHA-1 in BVM assembly equals the reference on random short inputs.
    #[test]
    fn sha1_matches_reference_on_random_bytes(
        msg in proptest::collection::vec(0x20u8..0x7f, 0..32)
    ) {
        let text: String = msg.iter().map(|&b| b as char).collect();
        // Avoid characters that need escaping in .asciz.
        prop_assume!(!text.contains('"') && !text.contains('\\'));
        let src = format!(
            r#"
            .extern sha1, printf
            .data
        msg:    .asciz "{text}"
        digest: .space 20
        fmt:    .asciz "%x"
            .text
            .global _start
        _start:
            li a0, msg
            li a1, {len}
            li a2, digest
            call sha1
            li s0, 0
        hexloop:
            li t0, 20
            bge s0, t0, hexdone
            li t1, digest
            add t1, t1, s0
            lbu a1, [t1]
            ori a1, a1, 0x100
            li a0, fmt
            call printf
            addi s0, s0, 1
            jmp hexloop
        hexdone:
            li a0, 0
            li sv, 0
            sys
            "#,
            len = msg.len()
        );
        let out = run_stdout(&src);
        let text_out = String::from_utf8_lossy(&out).into_owned();
        let mut got = String::new();
        for chunk in text_out.as_bytes().chunks(3) {
            prop_assert_eq!(chunk[0], b'1', "zero-pad sentinel");
            got.push(chunk[1] as char);
            got.push(chunk[2] as char);
        }
        let want: String = reference::sha1(&msg)
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect();
        prop_assert_eq!(got, want);
    }

    /// AES-128 in BVM assembly equals the reference on random key/block
    /// pairs.
    #[test]
    fn aes_matches_reference_on_random_inputs(
        key in proptest::collection::vec(any::<u8>(), 16),
        block in proptest::collection::vec(any::<u8>(), 16),
    ) {
        let key: [u8; 16] = key.try_into().expect("16 bytes");
        let block: [u8; 16] = block.try_into().expect("16 bytes");
        let key_list: Vec<String> = key.iter().map(|b| format!("{b:#04x}")).collect();
        let blk_list: Vec<String> = block.iter().map(|b| format!("{b:#04x}")).collect();
        let src = format!(
            r#"
            .extern aes128_encrypt, printf
            .data
        key: .byte {key}
        pt:  .byte {pt}
        ct:  .space 16
        fmt: .asciz "%x"
            .text
            .global _start
        _start:
            li a0, key
            li a1, pt
            li a2, ct
            call aes128_encrypt
            li s0, 0
        hexloop:
            li t0, 16
            bge s0, t0, hexdone
            li t1, ct
            add t1, t1, s0
            lbu a1, [t1]
            ori a1, a1, 0x100
            li a0, fmt
            call printf
            addi s0, s0, 1
            jmp hexloop
        hexdone:
            li a0, 0
            li sv, 0
            sys
            "#,
            key = key_list.join(", "),
            pt = blk_list.join(", "),
        );
        let out = run_stdout(&src);
        let text_out = String::from_utf8_lossy(&out).into_owned();
        let mut got = String::new();
        for chunk in text_out.as_bytes().chunks(3) {
            got.push(chunk[1] as char);
            got.push(chunk[2] as char);
        }
        let want: String = reference::aes128_encrypt(&key, &block)
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect();
        prop_assert_eq!(got, want);
    }
}
