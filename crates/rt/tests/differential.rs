//! Differential tests: run runtime routines inside the BVM and compare with
//! the host-side reference implementations.

use bomblab_rt::{link_program, reference};
use bomblab_vm::{Machine, MachineConfig, RunStatus};

/// Builds a harness around `body`, runs it, and returns (exit code, stdout).
fn run_harness(body: &str, config: MachineConfig) -> (i64, Vec<u8>, Machine) {
    let src = format!(
        r#"
        .extern strlen, strcmp, strcpy, memcpy, memset, atoi
        .extern putchar, puts, printf, print_str, bomb_boom
        .extern sin, pow_int, srand, rand, sha1, aes128_encrypt
        .text
        .global _start
    _start:
{body}
        "#
    );
    let image = link_program(&src).expect("harness builds");
    let mut machine = Machine::load(&image, None, config).expect("loads");
    let result = machine.run();
    let code = match result.status {
        RunStatus::Exited(c) => c,
        other => panic!(
            "harness did not exit cleanly: {other} (stdout: {:?})",
            String::from_utf8_lossy(machine.stdout())
        ),
    };
    let out = machine.stdout().to_vec();
    (code, out, machine)
}

fn run_simple(body: &str) -> (i64, Vec<u8>) {
    let (code, out, _) = run_harness(body, MachineConfig::default());
    (code, out)
}

#[test]
fn strlen_counts_bytes() {
    let (code, _) = run_simple(
        r#"
        li a0, msg
        call strlen
        li sv, 0
        sys
        .data
    msg: .asciz "hello world"
        "#,
    );
    assert_eq!(code, 11);
}

#[test]
fn strcmp_orders_strings() {
    let (code, _) = run_simple(
        r#"
        li a0, s1
        li a1, s2
        call strcmp
        slt a0, a0, zero     # 1 if s1 < s2
        li sv, 0
        sys
        .data
    s1: .asciz "apple"
    s2: .asciz "apric"
        "#,
    );
    assert_eq!(code, 1, "apple < apric");
    let (eq, _) = run_simple(
        r#"
        li a0, s1
        li a1, s1
        call strcmp
        li sv, 0
        sys
        .data
    s1: .asciz "same"
        "#,
    );
    assert_eq!(eq, 0);
}

#[test]
fn atoi_parses_decimal_and_negative() {
    for (text, want) in [("1234", 1234i64), ("-77", -77), ("0", 0), ("42abc", 42)] {
        let (code, _) = run_simple(&format!(
            r#"
        li a0, s
        call atoi
        li sv, 0
        sys
        .data
    s: .asciz "{text}"
        "#
        ));
        assert_eq!(code, want, "atoi({text:?})");
    }
}

#[test]
fn atoi_of_argv_matches() {
    let (code, _, _) = run_harness(
        r#"
        ld a0, [a1+8]
        call atoi
        li sv, 0
        sys
        "#,
        MachineConfig::with_arg("123"),
    );
    assert_eq!(code, 123);
}

#[test]
fn memcpy_and_memset_move_bytes() {
    let (code, _) = run_simple(
        r#"
        li a0, dst
        li a1, 0xAB
        li a2, 8
        call memset
        li a0, dst
        li a1, src
        li a2, 3
        call memcpy
        li t0, dst
        lbu a0, [t0+2]      # 'C'
        lbu t1, [t0+3]      # still 0xAB
        add a0, a0, t1
        li sv, 0
        sys
        .data
    src: .asciz "ABCDEF"
    dst: .space 16
        "#,
    );
    assert_eq!(code, b'C' as i64 + 0xAB);
}

#[test]
fn printf_formats_all_directives() {
    let (_, out) = run_simple(
        r#"
        li a0, fmt
        li a1, -42
        li a2, msg
        li a3, 0x2a
        call printf
        li a0, 0
        li sv, 0
        sys
        .data
    fmt: .asciz "d=%d s=%s x=%x 100%%\n"
    msg: .asciz "hi"
        "#,
    );
    assert_eq!(String::from_utf8_lossy(&out), "d=-42 s=hi x=2a 100%\n");
}

#[test]
fn printf_unsigned_and_char() {
    let (_, out) = run_simple(
        r#"
        li a0, fmt
        li a1, 5000000000
        li a2, 'Z'
        call printf
        li a0, 0
        li sv, 0
        sys
        .data
    fmt: .asciz "u=%u c=%c"
        "#,
    );
    assert_eq!(String::from_utf8_lossy(&out), "u=5000000000 c=Z");
}

#[test]
fn puts_appends_newline() {
    let (_, out) = run_simple(
        r#"
        li a0, msg
        call puts
        li a0, 0
        li sv, 0
        sys
        .data
    msg: .asciz "line"
        "#,
    );
    assert_eq!(out, b"line\n");
}

#[test]
fn bomb_boom_prints_and_exits_42() {
    let (code, out) = run_simple("call bomb_boom\n");
    assert_eq!(code, 42);
    assert_eq!(out, b"BOOM\n");
}

#[test]
fn sin_matches_reference_bit_for_bit() {
    // Exit with 1 if sin(x) == reference bits, else 0. Bits passed via argv
    // would be clumsy; instead compute in-VM and print bits, compare here.
    for x in [0.0f64, 0.5, 1.0, -2.25, 3.0, 10.0, -7.5, 100.25] {
        let (_, out) = run_simple(&format!(
            r#"
        fli f0, {x}
        call sin
        fbits a1, f0
        li a0, fmt
        call printf
        li a0, 0
        li sv, 0
        sys
        .data
    fmt: .asciz "%x"
        "#
        ));
        let got = u64::from_str_radix(&String::from_utf8_lossy(&out), 16).unwrap();
        let want = reference::sin(x).to_bits();
        assert_eq!(got, want, "sin({x}): vm {got:#x} != ref {want:#x}");
    }
}

#[test]
fn pow_int_matches_reference() {
    for (base, exp) in [(2.0f64, 10u64), (1.5, 3), (0.5, 8)] {
        let (_, out) = run_simple(&format!(
            r#"
        fli f0, {base}
        li a0, {exp}
        call pow_int
        fbits a1, f0
        li a0, fmt
        call printf
        li a0, 0
        li sv, 0
        sys
        .data
    fmt: .asciz "%x"
        "#
        ));
        let got = u64::from_str_radix(&String::from_utf8_lossy(&out), 16).unwrap();
        assert_eq!(got, reference::pow_int(base, exp).to_bits());
    }
}

#[test]
fn rand_sequence_matches_reference_lcg() {
    let (_, out) = run_simple(
        r#"
        li a0, 12345
        call srand
        call rand
        mov s0, a0
        call rand
        mov s1, a0
        li a0, fmt
        mov a1, s0
        mov a2, s1
        call printf
        li a0, 0
        li sv, 0
        sys
        .data
    fmt: .asciz "%u %u"
        "#,
    );
    let text = String::from_utf8_lossy(&out).into_owned();
    let mut parts = text.split_whitespace();
    let v1: u64 = parts.next().unwrap().parse().unwrap();
    let v2: u64 = parts.next().unwrap().parse().unwrap();
    let mut lcg = reference::Lcg::seed(12345);
    assert_eq!(v1, lcg.next());
    assert_eq!(v2, lcg.next());
}

#[test]
fn sha1_matches_reference_for_short_messages() {
    for msg in [
        "",
        "a",
        "abc",
        "hello world",
        "0123456789012345678901234567890123456789012345678901234",
    ] {
        assert!(msg.len() <= 55);
        let (_, out) = run_simple(&format!(
            r#"
        li a0, msg
        call strlen
        mov a1, a0
        li a0, msg
        li a2, digest
        call sha1
        # print each byte as two hex chars (zero padding via 0x100 trick)
        li s0, 0
    hexloop:
        li t0, 20
        bge s0, t0, hexdone
        li t1, digest
        add t1, t1, s0
        lbu a1, [t1]
        ori a1, a1, 0x100   # ensures two hex digits, leading '1' skipped below
        li a0, fmt
        call printf
        addi s0, s0, 1
        jmp hexloop
    hexdone:
        li a0, 0
        li sv, 0
        sys
        .data
    msg: .asciz "{msg}"
    digest: .space 20
    fmt: .asciz "%x"
        "#
        ));
        // Each byte was printed as 3 hex chars "1xy"; strip the leading 1s.
        let text = String::from_utf8_lossy(&out).into_owned();
        assert_eq!(text.len(), 60);
        let mut got = String::new();
        for chunk in text.as_bytes().chunks(3) {
            assert_eq!(chunk[0], b'1');
            got.push(chunk[1] as char);
            got.push(chunk[2] as char);
        }
        let want: String = reference::sha1(msg.as_bytes())
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect();
        assert_eq!(got, want, "sha1({msg:?})");
    }
}

#[test]
fn aes_matches_fips_vector_in_vm() {
    let (_, out) = run_simple(
        r#"
        li a0, key
        li a1, pt
        li a2, ct
        call aes128_encrypt
        li s0, 0
    hexloop:
        li t0, 16
        bge s0, t0, hexdone
        li t1, ct
        add t1, t1, s0
        lbu a1, [t1]
        ori a1, a1, 0x100
        li a0, fmt
        call printf
        addi s0, s0, 1
        jmp hexloop
    hexdone:
        li a0, 0
        li sv, 0
        sys
        .data
    key: .byte 0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f
    pt:  .byte 0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff
    ct:  .space 16
    fmt: .asciz "%x"
        "#,
    );
    let text = String::from_utf8_lossy(&out).into_owned();
    let mut got = String::new();
    for chunk in text.as_bytes().chunks(3) {
        assert_eq!(chunk[0], b'1');
        got.push(chunk[1] as char);
        got.push(chunk[2] as char);
    }
    assert_eq!(got, "69c4e0d86a7b0430d8cdb78070b4c55a");
}

#[test]
fn aes_matches_reference_on_other_inputs() {
    let key = *b"0123456789abcdef";
    let pt = *b"BVM single block";
    let want: String = reference::aes128_encrypt(&key, &pt)
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect();
    let key_bytes: Vec<String> = key.iter().map(|b| format!("{b:#04x}")).collect();
    let pt_bytes: Vec<String> = pt.iter().map(|b| format!("{b:#04x}")).collect();
    let (_, out) = run_simple(&format!(
        r#"
        li a0, key
        li a1, pt
        li a2, ct
        call aes128_encrypt
        li s0, 0
    hexloop:
        li t0, 16
        bge s0, t0, hexdone
        li t1, ct
        add t1, t1, s0
        lbu a1, [t1]
        ori a1, a1, 0x100
        li a0, fmt
        call printf
        addi s0, s0, 1
        jmp hexloop
    hexdone:
        li a0, 0
        li sv, 0
        sys
        .data
    key: .byte {key}
    pt:  .byte {pt}
    ct:  .space 16
    fmt: .asciz "%x"
        "#,
        key = key_bytes.join(", "),
        pt = pt_bytes.join(", "),
    ));
    let text = String::from_utf8_lossy(&out).into_owned();
    let mut got = String::new();
    for chunk in text.as_bytes().chunks(3) {
        got.push(chunk[1] as char);
        got.push(chunk[2] as char);
    }
    assert_eq!(got, want);
}

#[test]
fn trace_shows_library_code_inflation() {
    // The Figure-3 mechanism: enabling printf adds many traced instructions.
    let without = r#"
        li a0, 5
        li sv, 0
        sys
        "#;
    let with = r#"
        li a0, fmt
        li a1, 5
        call printf
        li a0, 0
        li sv, 0
        sys
        .data
    fmt: .asciz "value=%d\n"
        "#;
    let config = MachineConfig {
        trace: true,
        ..MachineConfig::default()
    };
    let (_, _, m1) = run_harness(without, config.clone());
    let (_, _, m2) = run_harness(with, config);
    assert!(
        m2.trace().len() > m1.trace().len() + 50,
        "printf should add many instructions: {} vs {}",
        m2.trace().len(),
        m1.trace().len()
    );
}
