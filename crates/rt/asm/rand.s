# libbomb: pseudo-random numbers (PCG-style 64-bit LCG).

    .data
rand_state: .quad 0x853c49e6748fea9b

    .text
    .global srand, rand

srand:                       # a0 = seed
    li t0, rand_state
    sd [t0], a0
    li a0, 0
    ret

rand:                        # -> a0 in [0, 2^31)
    li t0, rand_state
    ld t1, [t0]
    li t2, 6364136223846793005
    mul t1, t1, t2
    li t2, 1442695040888963407
    add t1, t1, t2
    sd [t0], t1
    shrui t1, t1, 33
    li t2, 0x7fffffff
    and a0, t1, t2
    ret
