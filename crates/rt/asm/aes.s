# libbomb: AES-128 single-block encryption (FIPS-197).
#
# State is kept column-major (state[row + 4*col] like the standard byte
# order of the input block). Verified against the FIPS-197 and RFC test
# vectors by the differential test suite.

    .data
aes_sbox:
    .byte 0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76
    .byte 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0
    .byte 0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15
    .byte 0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75
    .byte 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84
    .byte 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf
    .byte 0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8
    .byte 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2
    .byte 0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73
    .byte 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb
    .byte 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79
    .byte 0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08
    .byte 0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a
    .byte 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e
    .byte 0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf
    .byte 0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16
aes_rcon:
    .byte 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36
aes_rk:  .space 176
aes_st:  .space 16
aes_tmp: .space 16

    .text
    .global aes128_encrypt
    .extern memcpy

aes128_encrypt:              # a0 = key (16), a1 = in (16), a2 = out (16)
    addi sp, sp, -64
    sd [sp+56], ra
    sd [sp+48], s0
    sd [sp+40], s1
    sd [sp+32], s2
    sd [sp+24], s3
    sd [sp+16], s4
    sd [sp+8],  s5
    mov s0, a0               # key
    mov s1, a1               # in
    mov s2, a2               # out

    # --- key expansion: rk[0..16] = key ---
    li a0, aes_rk
    mov a1, s0
    li a2, 16
    call memcpy
    li t0, 1                 # round index r = 1..10
aes_ke_loop:
    li t5, 11
    bge t0, t5, aes_ke_done
    li t1, aes_rk
    shli t2, t0, 4
    add t3, t1, t2           # cur = rk + 16r
    addi t4, t3, -16         # prev
    # cur[0] = prev[0] ^ sbox(prev[13]) ^ rcon[r-1]
    lbu t1, [t4+13]
    li t5, aes_sbox
    add t1, t5, t1
    lbu t1, [t1]
    li t5, aes_rcon
    addi t2, t0, -1
    add t5, t5, t2
    lbu t2, [t5]
    xor t1, t1, t2
    lbu t2, [t4]
    xor t1, t1, t2
    sb [t3], t1
    # cur[1] = prev[1] ^ sbox(prev[14])
    lbu t1, [t4+14]
    li t5, aes_sbox
    add t1, t5, t1
    lbu t1, [t1]
    lbu t2, [t4+1]
    xor t1, t1, t2
    sb [t3+1], t1
    # cur[2] = prev[2] ^ sbox(prev[15])
    lbu t1, [t4+15]
    li t5, aes_sbox
    add t1, t5, t1
    lbu t1, [t1]
    lbu t2, [t4+2]
    xor t1, t1, t2
    sb [t3+2], t1
    # cur[3] = prev[3] ^ sbox(prev[12])
    lbu t1, [t4+12]
    li t5, aes_sbox
    add t1, t5, t1
    lbu t1, [t1]
    lbu t2, [t4+3]
    xor t1, t1, t2
    sb [t3+3], t1
    # cur[i] = cur[i-4] ^ prev[i] for i in 4..16
    li t1, 4
aes_ke_word_loop:
    li t5, 16
    bge t1, t5, aes_ke_next
    add t2, t3, t1
    lbu t5, [t2-4]
    add t6, t4, t1
    lbu t6, [t6]
    xor t5, t5, t6
    sb [t2], t5
    addi t1, t1, 1
    jmp aes_ke_word_loop
aes_ke_next:
    addi t0, t0, 1
    jmp aes_ke_loop
aes_ke_done:

    # --- initial AddRoundKey: st = in ^ rk[0..16] ---
    li t0, 0
aes_ark0_loop:
    li t5, 16
    bge t0, t5, aes_rounds
    add t1, s1, t0
    lbu t1, [t1]
    li t2, aes_rk
    add t2, t2, t0
    lbu t2, [t2]
    xor t1, t1, t2
    li t2, aes_st
    add t2, t2, t0
    sb [t2], t1
    addi t0, t0, 1
    jmp aes_ark0_loop

aes_rounds:
    li s0, 1                 # round counter (key pointer no longer needed)
aes_round_loop:
    # SubBytes + ShiftRows: tmp[row + 4col] = sbox(st[row + 4((col+row)%4)])
    li t0, 0
aes_sr_loop:
    li t5, 16
    bge t0, t5, aes_sr_done
    andi t1, t0, 3           # row
    shrui t2, t0, 2          # col
    add t3, t2, t1
    andi t3, t3, 3
    shli t3, t3, 2
    add t3, t3, t1           # source index
    li t4, aes_st
    add t4, t4, t3
    lbu t4, [t4]
    li t3, aes_sbox
    add t3, t3, t4
    lbu t4, [t3]
    li t3, aes_tmp
    add t3, t3, t0
    sb [t3], t4
    addi t0, t0, 1
    jmp aes_sr_loop
aes_sr_done:
    li t5, 10
    beq s0, t5, aes_last

    # MixColumns from tmp into st.
    li t0, 0                 # byte offset of the column (0, 4, 8, 12)
aes_mc_loop:
    li t5, 16
    bge t0, t5, aes_ark
    li t6, aes_tmp
    add t6, t6, t0
    lbu t1, [t6]             # a0
    lbu t2, [t6+1]           # a1
    lbu t3, [t6+2]           # a2
    lbu t4, [t6+3]           # a3
    # xt(a_i): t7=xt0, s1=xt1, s3=xt2, s4=xt3
    shli t7, t1, 1
    shrui t5, t1, 7
    muli t5, t5, 27
    xor t7, t7, t5
    andi t7, t7, 255
    shli s1, t2, 1
    shrui t5, t2, 7
    muli t5, t5, 27
    xor s1, s1, t5
    andi s1, s1, 255
    shli s3, t3, 1
    shrui t5, t3, 7
    muli t5, t5, 27
    xor s3, s3, t5
    andi s3, s3, 255
    shli s4, t4, 1
    shrui t5, t4, 7
    muli t5, t5, 27
    xor s4, s4, t5
    andi s4, s4, 255
    li t5, aes_st
    add t5, t5, t0
    # n0 = xt0 ^ xt1 ^ a1 ^ a2 ^ a3
    xor s5, t7, s1
    xor s5, s5, t2
    xor s5, s5, t3
    xor s5, s5, t4
    sb [t5], s5
    # n1 = a0 ^ xt1 ^ xt2 ^ a2 ^ a3
    xor s5, t1, s1
    xor s5, s5, s3
    xor s5, s5, t3
    xor s5, s5, t4
    sb [t5+1], s5
    # n2 = a0 ^ a1 ^ xt2 ^ xt3 ^ a3
    xor s5, t1, t2
    xor s5, s5, s3
    xor s5, s5, s4
    xor s5, s5, t4
    sb [t5+2], s5
    # n3 = xt0 ^ a0 ^ a1 ^ a2 ^ xt3
    xor s5, t7, t1
    xor s5, s5, t2
    xor s5, s5, t3
    xor s5, s5, s4
    sb [t5+3], s5
    addi t0, t0, 4
    jmp aes_mc_loop

aes_last:                    # final round: st = tmp (no MixColumns)
    li t0, 0
aes_last_loop:
    li t5, 16
    bge t0, t5, aes_ark
    li t1, aes_tmp
    add t1, t1, t0
    lbu t1, [t1]
    li t2, aes_st
    add t2, t2, t0
    sb [t2], t1
    addi t0, t0, 1
    jmp aes_last_loop

aes_ark:                     # st ^= rk[16*round ..]
    li t0, 0
aes_ark_loop:
    li t5, 16
    bge t0, t5, aes_ark_done
    li t1, aes_st
    add t1, t1, t0
    lbu t2, [t1]
    li t3, aes_rk
    shli t4, s0, 4
    add t3, t3, t4
    add t3, t3, t0
    lbu t3, [t3]
    xor t2, t2, t3
    sb [t1], t2
    addi t0, t0, 1
    jmp aes_ark_loop
aes_ark_done:
    li t5, 10
    beq s0, t5, aes_out
    addi s0, s0, 1
    jmp aes_round_loop

aes_out:                     # out = st
    li t0, 0
aes_out_loop:
    li t5, 16
    bge t0, t5, aes_finish
    li t1, aes_st
    add t1, t1, t0
    lbu t1, [t1]
    add t2, s2, t0
    sb [t2], t1
    addi t0, t0, 1
    jmp aes_out_loop
aes_finish:
    ld ra, [sp+56]
    ld s0, [sp+48]
    ld s1, [sp+40]
    ld s2, [sp+32]
    ld s3, [sp+24]
    ld s4, [sp+16]
    ld s5, [sp+8]
    addi sp, sp, 64
    li a0, 0
    ret
