# libbomb: floating-point math.
#
# sin uses range reduction to [-pi, pi] followed by a 13th-order Taylor
# polynomial in Horner product form. The Rust reference implementation in
# bomblab-rt mirrors the exact operation order so results match bit for bit.

    .text
    .global sin, pow_int

sin:                          # f0 = x -> f0 = sin(x)
    # k = round(x / 2pi), computed as trunc(q +/- 0.5)
    fli f1, 0.15915494309189535
    fmul.d f2, f0, f1
    fli f3, 0.5
    fli f4, 0.0
    fble f4, f2, sin_qpos
    fsub.d f2, f2, f3
    jmp sin_round
sin_qpos:
    fadd.d f2, f2, f3
sin_round:
    cvt.d2si t0, f2
    cvt.si2d f2, t0
    fli f1, 6.283185307179586
    fmul.d f2, f2, f1
    fsub.d f0, f0, f2         # x reduced into [-pi, pi]
    # Taylor: sin x = x(1 - t/6(1 - t/20(1 - t/42(1 - t/72(1 - t/110(1 - t/156))))))
    fmul.d f1, f0, f0         # t = x^2
    fli f2, 1.0
    fli f3, 156.0
    fdiv.d f4, f1, f3
    fsub.d f5, f2, f4
    fli f3, 110.0
    fdiv.d f4, f1, f3
    fmul.d f4, f4, f5
    fsub.d f5, f2, f4
    fli f3, 72.0
    fdiv.d f4, f1, f3
    fmul.d f4, f4, f5
    fsub.d f5, f2, f4
    fli f3, 42.0
    fdiv.d f4, f1, f3
    fmul.d f4, f4, f5
    fsub.d f5, f2, f4
    fli f3, 20.0
    fdiv.d f4, f1, f3
    fmul.d f4, f4, f5
    fsub.d f5, f2, f4
    fli f3, 6.0
    fdiv.d f4, f1, f3
    fmul.d f4, f4, f5
    fsub.d f5, f2, f4
    fmul.d f0, f0, f5
    ret

pow_int:                      # f0 = base, a0 = exponent (unsigned) -> f0
    fli f1, 1.0
pow_int_loop:
    beq a0, zero, pow_int_done
    fmul.d f1, f1, f0
    addi a0, a0, -1
    jmp pow_int_loop
pow_int_done:
    fmov.d f0, f1
    ret
