# libbomb: SHA-1 (single-block variant, message length <= 55 bytes).
#
# The logic bombs hash short command-line strings, which always fit in one
# 512-bit block. The Rust reference implementation handles arbitrary
# lengths and is used to cross-check this code.

    .data
sha1_blk: .space 64
sha1_w:   .space 320

    .text
    .global sha1
    .extern memset, memcpy

sha1:                        # a0 = msg, a1 = len (<= 55), a2 = out (20 bytes)
    addi sp, sp, -64
    sd [sp+56], ra
    sd [sp+48], s0
    sd [sp+40], s1
    sd [sp+32], s2
    sd [sp+24], s3
    sd [sp+16], s4
    sd [sp+8],  s5
    mov s0, a0               # msg
    mov s1, a1               # len
    mov s2, a2               # out

    # Prepare the padded block.
    li a0, sha1_blk
    li a1, 0
    li a2, 64
    call memset
    li a0, sha1_blk
    mov a1, s0
    mov a2, s1
    call memcpy
    li t0, sha1_blk
    add t0, t0, s1
    li t1, 0x80
    sb [t0], t1
    # 64-bit big-endian bit length at offset 56.
    shli t1, s1, 3
    li t0, sha1_blk
    addi t0, t0, 56
    li t3, 56
sha1_len_loop:
    shru t4, t1, t3
    sb [t0], t4
    addi t0, t0, 1
    addi t3, t3, -8
    bge t3, zero, sha1_len_loop

    # W[0..16]: big-endian words from the block.
    li t0, 0
sha1_w16_loop:
    li t5, 16
    bge t0, t5, sha1_w16_done
    shli t1, t0, 2
    li t2, sha1_blk
    add t2, t2, t1
    lbu t3, [t2]
    shli t4, t3, 24
    lbu t3, [t2+1]
    shli t3, t3, 16
    or t4, t4, t3
    lbu t3, [t2+2]
    shli t3, t3, 8
    or t4, t4, t3
    lbu t3, [t2+3]
    or t4, t4, t3
    li t2, sha1_w
    add t2, t2, t1
    sw [t2], t4
    addi t0, t0, 1
    jmp sha1_w16_loop
sha1_w16_done:

    # W[16..80] = rotl1(W[t-3] ^ W[t-8] ^ W[t-14] ^ W[t-16])
    li t0, 16
sha1_wx_loop:
    li t5, 80
    bge t0, t5, sha1_wx_done
    li t2, sha1_w
    shli t1, t0, 2
    add t2, t2, t1
    lwu t3, [t2-12]
    lwu t4, [t2-32]
    xor t3, t3, t4
    lwu t4, [t2-56]
    xor t3, t3, t4
    lwu t4, [t2-64]
    xor t3, t3, t4
    shli t4, t3, 1
    shrui t3, t3, 31
    or t3, t3, t4
    li t4, 0xffffffff
    and t3, t3, t4
    sw [t2], t3
    addi t0, t0, 1
    jmp sha1_wx_loop
sha1_wx_done:

    # a..e in s0, s1, s3, s4, s5.
    li s0, 0x67452301
    li s1, 0xEFCDAB89
    li s3, 0x98BADCFE
    li s4, 0x10325476
    li s5, 0xC3D2E1F0

    li t0, 0
sha1_round_loop:
    li t5, 80
    bge t0, t5, sha1_round_done
    li t5, 20
    blt t0, t5, sha1_f0
    li t5, 40
    blt t0, t5, sha1_f1
    li t5, 60
    blt t0, t5, sha1_f2
    # t in [60, 80): parity
    xor t1, s1, s3
    xor t1, t1, s4
    li t2, 0xCA62C1D6
    jmp sha1_fdone
sha1_f0:                     # choose
    and t1, s1, s3
    not t2, s1
    and t2, t2, s4
    or t1, t1, t2
    li t2, 0x5A827999
    jmp sha1_fdone
sha1_f1:                     # parity
    xor t1, s1, s3
    xor t1, t1, s4
    li t2, 0x6ED9EBA1
    jmp sha1_fdone
sha1_f2:                     # majority
    and t1, s1, s3
    and t3, s1, s4
    or t1, t1, t3
    and t3, s3, s4
    or t1, t1, t3
    li t2, 0x8F1BBCDC
sha1_fdone:
    # temp = rotl5(a) + f + e + k + W[t]
    shli t3, s0, 5
    shrui t4, s0, 27
    or t3, t3, t4
    li t4, 0xffffffff
    and t3, t3, t4
    add t3, t3, t1
    add t3, t3, s5
    add t3, t3, t2
    li t2, sha1_w
    shli t4, t0, 2
    add t2, t2, t4
    lwu t4, [t2]
    add t3, t3, t4
    li t4, 0xffffffff
    and t3, t3, t4
    # rotate the working registers
    mov s5, s4
    mov s4, s3
    shli t1, s1, 30
    shrui t2, s1, 2
    or t1, t1, t2
    li t2, 0xffffffff
    and s3, t1, t2
    mov s1, s0
    mov s0, t3
    addi t0, t0, 1
    jmp sha1_round_loop
sha1_round_done:

    # h = init + working, masked to 32 bits.
    li t1, 0x67452301
    add s0, s0, t1
    li t1, 0xEFCDAB89
    add s1, s1, t1
    li t1, 0x98BADCFE
    add s3, s3, t1
    li t1, 0x10325476
    add s4, s4, t1
    li t1, 0xC3D2E1F0
    add s5, s5, t1
    li t1, 0xffffffff
    and s0, s0, t1
    and s1, s1, t1
    and s3, s3, t1
    and s4, s4, t1
    and s5, s5, t1

    # Store h0..h4 big-endian into out.
    mov t0, s2
    mov t1, s0
    call sha1_store_be
    mov t1, s1
    call sha1_store_be
    mov t1, s3
    call sha1_store_be
    mov t1, s4
    call sha1_store_be
    mov t1, s5
    call sha1_store_be

    ld ra, [sp+56]
    ld s0, [sp+48]
    ld s1, [sp+40]
    ld s2, [sp+32]
    ld s3, [sp+24]
    ld s4, [sp+16]
    ld s5, [sp+8]
    addi sp, sp, 64
    li a0, 0
    ret

sha1_store_be:               # t1 = word, t0 = dst; advances t0 by 4
    shrui t2, t1, 24
    sb [t0], t2
    shrui t2, t1, 16
    sb [t0+1], t2
    shrui t2, t1, 8
    sb [t0+2], t2
    sb [t0+3], t1
    addi t0, t0, 4
    ret
