# libbomb: string routines.
#
# Calling convention: args in a0..a5, result in a0; t* and a* are
# caller-saved, s* are callee-saved.

    .text
    .global strlen, strcmp, strcpy, memcpy, memset, atoi

strlen:                      # a0 = s -> a0 = length
    mov t0, a0
strlen_loop:
    lbu t1, [t0]
    beq t1, zero, strlen_done
    addi t0, t0, 1
    jmp strlen_loop
strlen_done:
    sub a0, t0, a0
    ret

strcmp:                      # a0 = a, a1 = b -> a0 = first difference (0 if equal)
strcmp_loop:
    lbu t0, [a0]
    lbu t1, [a1]
    bne t0, t1, strcmp_diff
    beq t0, zero, strcmp_eq
    addi a0, a0, 1
    addi a1, a1, 1
    jmp strcmp_loop
strcmp_diff:
    sub a0, t0, t1
    ret
strcmp_eq:
    li a0, 0
    ret

strcpy:                      # a0 = dst, a1 = src -> a0 = dst
    mov t2, a0
strcpy_loop:
    lbu t0, [a1]
    sb [t2], t0
    addi a1, a1, 1
    addi t2, t2, 1
    bne t0, zero, strcpy_loop
    ret

memcpy:                      # a0 = dst, a1 = src, a2 = n -> a0 = dst
    mov t2, a0
memcpy_loop:
    beq a2, zero, memcpy_done
    lbu t0, [a1]
    sb [t2], t0
    addi a1, a1, 1
    addi t2, t2, 1
    addi a2, a2, -1
    jmp memcpy_loop
memcpy_done:
    ret

memset:                      # a0 = dst, a1 = byte, a2 = n -> a0 = dst
    mov t2, a0
memset_loop:
    beq a2, zero, memset_done
    sb [t2], a1
    addi t2, t2, 1
    addi a2, a2, -1
    jmp memset_loop
memset_done:
    ret

atoi:                        # a0 = s -> a0 = parsed decimal (optional leading '-')
    li t0, 0                 # accumulator
    li t3, 0                 # negative flag
    lbu t1, [a0]
    li t2, '-'
    bne t1, t2, atoi_loop
    li t3, 1
    addi a0, a0, 1
atoi_loop:
    lbu t1, [a0]
    li t2, '0'
    blt t1, t2, atoi_done
    li t2, '9'
    blt t2, t1, atoi_done
    muli t0, t0, 10
    addi t1, t1, -48
    add t0, t0, t1
    addi a0, a0, 1
    jmp atoi_loop
atoi_done:
    beq t3, zero, atoi_pos
    neg t0, t0
atoi_pos:
    mov a0, t0
    ret
