# libbomb: formatted output and the bomb detonation helper.
#
# printf supports %d %u %x %s %c %% with up to three variadic arguments
# (a1..a3). Output goes through the write syscall on fd 1.

    .text
    .global putchar, puts, printf, print_str, bomb_boom
    .extern strlen

putchar:                     # a0 = char
    addi sp, sp, -16
    sd [sp+8], ra
    sb [sp], a0
    li a0, 1
    mov a1, sp
    li a2, 1
    li sv, 1                 # write
    sys
    ld ra, [sp+8]
    addi sp, sp, 16
    li a0, 0
    ret

print_str:                   # a0 = NUL-terminated string
    addi sp, sp, -16
    sd [sp+8], ra
    sd [sp], a0
    call strlen
    mov a2, a0
    ld a1, [sp]
    li a0, 1
    li sv, 1                 # write
    sys
    ld ra, [sp+8]
    addi sp, sp, 16
    li a0, 0
    ret

puts:                        # a0 = string (appends newline)
    addi sp, sp, -16
    sd [sp+8], ra
    call print_str
    li a0, 10
    call putchar
    ld ra, [sp+8]
    addi sp, sp, 16
    li a0, 0
    ret

print_u64:                   # a0 = value, printed in decimal
    addi sp, sp, -48
    sd [sp+40], ra
    addi t0, sp, 32          # digits grow downward from sp+32
    li t1, 10
print_u64_loop:
    remu t2, a0, t1
    divu a0, a0, t1
    addi t2, t2, 48
    addi t0, t0, -1
    sb [t0], t2
    bne a0, zero, print_u64_loop
    addi t2, sp, 32
    sub a2, t2, t0
    mov a1, t0
    li a0, 1
    li sv, 1                 # write
    sys
    ld ra, [sp+40]
    addi sp, sp, 48
    ret

print_i64:                   # a0 = value, printed in signed decimal
    addi sp, sp, -16
    sd [sp+8], ra
    bge a0, zero, print_i64_pos
    sd [sp], a0
    li a0, '-'
    call putchar
    ld a0, [sp]
    neg a0, a0
print_i64_pos:
    call print_u64
    ld ra, [sp+8]
    addi sp, sp, 16
    ret

print_hex:                   # a0 = value, printed in lowercase hex
    addi sp, sp, -48
    sd [sp+40], ra
    addi t0, sp, 32
    li t1, 16
print_hex_loop:
    remu t2, a0, t1
    divu a0, a0, t1
    li t3, 10
    blt t2, t3, print_hex_digit
    addi t2, t2, 87          # 'a' - 10
    jmp print_hex_store
print_hex_digit:
    addi t2, t2, 48
print_hex_store:
    addi t0, t0, -1
    sb [t0], t2
    bne a0, zero, print_hex_loop
    addi t2, sp, 32
    sub a2, t2, t0
    mov a1, t0
    li a0, 1
    li sv, 1                 # write
    sys
    ld ra, [sp+40]
    addi sp, sp, 48
    ret

printf:                      # a0 = fmt, a1..a3 = arguments
    addi sp, sp, -48
    sd [sp+40], ra
    sd [sp+32], s0           # format cursor
    sd [sp+24], s1           # argument index
    sd [sp], a1              # vararg spill area [sp+0 .. sp+24)
    sd [sp+8], a2
    sd [sp+16], a3
    mov s0, a0
    li s1, 0
printf_loop:
    lbu t0, [s0]
    beq t0, zero, printf_done
    li t1, '%'
    bne t0, t1, printf_putc
    addi s0, s0, 1
    lbu t0, [s0]
    beq t0, zero, printf_done
    li t1, '%'
    beq t0, t1, printf_putc
    li t1, 'd'
    beq t0, t1, printf_d
    li t1, 'u'
    beq t0, t1, printf_u
    li t1, 'x'
    beq t0, t1, printf_x
    li t1, 's'
    beq t0, t1, printf_s
    li t1, 'c'
    beq t0, t1, printf_c
    # unknown directive: print it literally
printf_putc:
    mov a0, t0
    call putchar
    addi s0, s0, 1
    jmp printf_loop
printf_d:
    shli t4, s1, 3
    add t4, t4, sp
    ld a0, [t4]              # fetch vararg s1
    addi s1, s1, 1
    call print_i64
    addi s0, s0, 1
    jmp printf_loop
printf_u:
    shli t4, s1, 3
    add t4, t4, sp
    ld a0, [t4]
    addi s1, s1, 1
    call print_u64
    addi s0, s0, 1
    jmp printf_loop
printf_x:
    shli t4, s1, 3
    add t4, t4, sp
    ld a0, [t4]
    addi s1, s1, 1
    call print_hex
    addi s0, s0, 1
    jmp printf_loop
printf_s:
    shli t4, s1, 3
    add t4, t4, sp
    ld a0, [t4]
    addi s1, s1, 1
    call print_str
    addi s0, s0, 1
    jmp printf_loop
printf_c:
    shli t4, s1, 3
    add t4, t4, sp
    ld a0, [t4]
    addi s1, s1, 1
    call putchar
    addi s0, s0, 1
    jmp printf_loop
printf_done:
    ld ra, [sp+40]
    ld s0, [sp+32]
    ld s1, [sp+24]
    addi sp, sp, 48
    li a0, 0
    ret

bomb_boom:                   # prints BOOM and exits 42; never returns
    li a0, 1
    li a1, bomb_boom_msg
    li a2, 5
    li sv, 1                 # write
    sys
    li a0, 42
    li sv, 0                 # exit
    sys

    .data
bomb_boom_msg: .asciz "BOOM\n"
