//! # quickprop — a dependency-free property-testing shim
//!
//! The workspace's property tests were written against the `proptest` crate.
//! This container builds fully offline, so instead of the registry crate we
//! ship this small shim exposing the *subset* of the proptest API the tests
//! actually use:
//!
//! - [`strategy::Strategy`] with `prop_map`, `prop_recursive`, `boxed`
//! - integer range strategies (`0u64..3000`), tuple strategies, [`strategy::Just`],
//!   [`strategy::any`]
//! - [`collection::vec`] with fixed or ranged sizes
//! - the [`proptest!`], [`prop_oneof!`], [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`] and [`prop_assume!`] macros
//! - [`test_runner::ProptestConfig`] (`with_cases`, `#![proptest_config(..)]`)
//!
//! Differences from real proptest: generation is plain pseudo-random (no
//! shrinking, no failure persistence), and the default case count is 64
//! (override per-block with `ProptestConfig::with_cases` or globally with the
//! `PROPTEST_CASES` environment variable). Failures print the case number and
//! the seed so a run can be reproduced with `PROPTEST_SEED`.

/// Deterministic RNG plus run configuration for property tests.
pub mod test_runner {
    /// Splitmix64-based RNG. Deterministic per test name so failures
    /// reproduce; perturb with the `PROPTEST_SEED` environment variable.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds an RNG from a raw 64-bit seed.
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Builds an RNG keyed on the test name (FNV-1a) so each test gets an
        /// independent deterministic stream.
        pub fn deterministic(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            if let Ok(s) = std::env::var("PROPTEST_SEED") {
                if let Ok(v) = s.parse::<u64>() {
                    h ^= v;
                }
            }
            Self::from_seed(h)
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..n` (`0` when `n == 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }

        /// Splits off an independent per-case RNG.
        pub fn fork(&mut self) -> TestRng {
            TestRng::from_seed(self.next_u64())
        }

        /// Exposes the current state (printed on failure for reproduction).
        pub fn state(&self) -> u64 {
            self.state
        }
    }

    /// Per-block configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` successful cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// Why a single generated case did not count as a success.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject,
        /// `prop_assert*!` failed; the whole property fails.
        Fail(String),
    }
}

/// Value-generation strategies (proptest-compatible subset).
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of type [`Strategy::Value`].
    ///
    /// Unlike real proptest there is no value tree / shrinking: a strategy
    /// simply draws a value from an RNG.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Type-erases the strategy (cheap `Rc` clone, like `BoxedStrategy`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Recursive strategy: `self` is the leaf case and `f` wraps a
        /// strategy for depth *d* into one for depth *d+1*. The `_desired` /
        /// `_branch` hints are accepted for API compatibility and ignored.
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired: u32,
            _branch: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let base = self.boxed();
            let mut cur = base.clone();
            for _ in 0..depth {
                let deeper = f(cur).boxed();
                // Bias toward the deeper arm so recursive structures actually
                // recurse; the base arm keeps expected size finite.
                cur = Union::new_weighted(vec![(1, base.clone()), (2, deeper)]).boxed();
            }
            cur
        }
    }

    /// Type-erased, cheaply cloneable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice between boxed strategies (what `prop_oneof!` builds).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Union<T> {
        /// Equal-weight union.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            Union {
                arms: arms.into_iter().map(|s| (1, s)).collect(),
            }
        }

        /// Weighted union; weight 0 arms are never picked.
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
            let mut pick = rng.below(total.max(1));
            for (w, s) in &self.arms {
                let w = *w as u64;
                if pick < w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            self.arms[self.arms.len() - 1].1.generate(rng)
        }
    }

    /// Types with a canonical "any value" strategy (see [`any`]).
    pub trait Arbitrary {
        /// Draws an arbitrary value of this type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy for the full value range of `T` (see [`any`]).
    pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

    /// `any::<T>()` — uniform over all values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($n:ident . $i:tt),+ ) ),+ $(,)?) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy!(
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5),
    );
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec`]: a fixed size or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_excl: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, size)` — mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_excl - self.size.min) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Glob-import surface matching `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines `#[test]` functions over generated inputs.
///
/// Supports an optional leading `#![proptest_config(expr)]` and one or more
/// `fn name(pat in strategy, ...) { body }` items, like real proptest.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__quickprop_fns! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__quickprop_fns! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __quickprop_fns {
    (config = $config:expr;
     $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            let cases = config.cases.max(1);
            let mut passed = 0u32;
            let mut attempts = 0u32;
            while passed < cases {
                attempts += 1;
                assert!(
                    attempts < cases.saturating_mul(20).max(100),
                    "proptest {}: too many rejected cases ({} rejects for {} passes)",
                    stringify!($name), attempts - passed, passed,
                );
                let mut case_rng = rng.fork();
                let seed = case_rng.state();
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut case_rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {} (seed {:#x}): {}",
                            stringify!($name), passed + 1, seed, msg,
                        );
                    }
                }
            }
        }
    )*};
}

/// Equal-weight choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// `assert!` that fails the current property case (usable inside `proptest!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l, r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            l, r, format!($($fmt)*),
        );
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r,
        );
    }};
}

/// Rejects the current case (retried with fresh inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
