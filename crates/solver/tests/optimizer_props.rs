//! Property tests for the word-level query optimizer: the optimized
//! pipeline (rewrite simplification, interval pruning, slicing) must agree
//! with the raw pipeline on sat/unsat, its models must satisfy the
//! *original* constraints, and interval-pruned unsat verdicts must be
//! confirmed by the raw bit-blasting path.

use bomblab_solver::expr::{eval, BvOp, CmpOp, Term, Value};
use bomblab_solver::simplify::{simplify, SimplifyStats};
use bomblab_solver::{interval, SolveOutcome, Solver};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

const OPS: [BvOp; 13] = [
    BvOp::Add,
    BvOp::Sub,
    BvOp::Mul,
    BvOp::UDiv,
    BvOp::SDiv,
    BvOp::URem,
    BvOp::SRem,
    BvOp::And,
    BvOp::Or,
    BvOp::Xor,
    BvOp::Shl,
    BvOp::LShr,
    BvOp::AShr,
];

const CMPS: [CmpOp; 5] = [CmpOp::Eq, CmpOp::Ult, CmpOp::Ule, CmpOp::Slt, CmpOp::Sle];

/// A small expression AST over three variables, so constraint sets can
/// share some variables and not others (exercising the slicer).
#[derive(Debug, Clone)]
enum Ast {
    X,
    Y,
    Z,
    Const(u64),
    Bin(BvOp, Box<Ast>, Box<Ast>),
    Not(Box<Ast>),
    Neg(Box<Ast>),
}

fn arb_ast() -> impl Strategy<Value = Ast> {
    let leaf = prop_oneof![
        Just(Ast::X),
        Just(Ast::Y),
        Just(Ast::Z),
        any::<u64>().prop_map(Ast::Const),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (0usize..OPS.len(), inner.clone(), inner.clone()).prop_map(|(i, a, b)| Ast::Bin(
                OPS[i],
                Box::new(a),
                Box::new(b)
            )),
            inner.clone().prop_map(|a| Ast::Not(Box::new(a))),
            inner.prop_map(|a| Ast::Neg(Box::new(a))),
        ]
    })
}

/// A random constraint: a comparison between an expression and a constant.
fn arb_constraint() -> impl Strategy<Value = (Ast, usize, u64)> {
    (arb_ast(), 0usize..CMPS.len(), any::<u64>())
}

const WIDTH: u8 = 8;

fn build(ast: &Ast) -> Term {
    match ast {
        Ast::X => Term::var("x", WIDTH),
        Ast::Y => Term::var("y", WIDTH),
        Ast::Z => Term::var("z", WIDTH),
        Ast::Const(v) => Term::bv(*v, WIDTH),
        Ast::Bin(op, a, b) => Term::bin(*op, &build(a), &build(b)),
        Ast::Not(a) => Term::bvnot(&build(a)),
        Ast::Neg(a) => Term::bvneg(&build(a)),
    }
}

fn constraints(specs: &[(Ast, usize, u64)]) -> Vec<Term> {
    specs
        .iter()
        .map(|(ast, cmp_i, k)| Term::cmp(CMPS[*cmp_i], &build(ast), &Term::bv(*k, WIDTH)))
        .collect()
}

fn full_env(model: &bomblab_solver::Model) -> HashMap<Arc<str>, u64> {
    let mut env = model.as_env();
    for name in ["x", "y", "z"] {
        env.entry(Arc::from(name)).or_insert(0);
    }
    env
}

fn satisfies(cs: &[Term], env: &HashMap<Arc<str>, u64>) -> bool {
    cs.iter()
        .all(|c| matches!(eval(c, env), Ok(Value::Bool(true))))
}

/// Exhaustively checks an up-to-three-variable 8-bit constraint set by
/// brute force would be 2^24 — instead sample a fixed grid, which is
/// enough to contradict a wrong unsat claim in practice.
fn any_grid_assignment_satisfies(cs: &[Term]) -> bool {
    const PROBES: [u64; 9] = [0, 1, 2, 3, 7, 8, 127, 128, 255];
    for &x in &PROBES {
        for &y in &PROBES {
            for &z in &PROBES {
                let env: HashMap<Arc<str>, u64> = [
                    (Arc::from("x"), x),
                    (Arc::from("y"), y),
                    (Arc::from("z"), z),
                ]
                .into_iter()
                .collect();
                if satisfies(cs, &env) {
                    return true;
                }
            }
        }
    }
    false
}

proptest! {
    /// The rewrite simplifier preserves evaluation on random inputs.
    #[test]
    fn simplify_preserves_evaluation(
        ast in arb_ast(),
        cmp_i in 0usize..CMPS.len(),
        k in any::<u64>(),
        x in any::<u64>(),
        y in any::<u64>(),
        z in any::<u64>(),
    ) {
        let c = Term::cmp(CMPS[cmp_i], &build(&ast), &Term::bv(k, WIDTH));
        let mut stats = SimplifyStats::default();
        let s = simplify(&c, &mut stats);
        let env: HashMap<Arc<str>, u64> =
            [(Arc::from("x"), x), (Arc::from("y"), y), (Arc::from("z"), z)]
                .into_iter()
                .collect();
        prop_assert_eq!(
            eval(&c, &env).expect("closed"),
            eval(&s, &env).expect("closed"),
            "rewrite changed semantics: {:?} vs {:?}", c, s
        );
    }

    /// Optimized and unoptimized pipelines agree on sat/unsat, and the
    /// optimized model satisfies the original constraints.
    #[test]
    fn optimizer_agrees_with_raw_pipeline(
        specs in proptest::collection::vec(arb_constraint(), 1..5),
    ) {
        let cs = constraints(&specs);
        let optimized = Solver::new().check(&cs);
        let raw = Solver::new()
            .with_simplify(false)
            .with_slicing(false)
            .check(&cs);
        match (&optimized, &raw) {
            (SolveOutcome::Sat(m), SolveOutcome::Sat(_)) => {
                prop_assert!(
                    satisfies(&cs, &full_env(m)),
                    "optimized model violates original constraints: {:?}", m
                );
            }
            (SolveOutcome::Unsat, SolveOutcome::Unsat) => {}
            (SolveOutcome::Unknown(_), _) | (_, SolveOutcome::Unknown(_)) => {
                // Budget exhaustion timing may differ between pipelines;
                // nothing to cross-check.
            }
            (a, b) => prop_assert!(false, "pipelines disagree: optimized {:?}, raw {:?}", a, b),
        }
    }

    /// An interval-pruned `False` verdict means the constraint really is
    /// unsatisfiable: the raw SAT path (no word-level stages) must agree,
    /// and no grid assignment may satisfy it.
    #[test]
    fn interval_unsat_confirmed_by_raw_sat_path(
        specs in proptest::collection::vec(arb_constraint(), 1..4),
    ) {
        let cs = constraints(&specs);
        for c in &cs {
            if interval::prune(c) == interval::Pruned::False {
                let raw = Solver::new()
                    .with_simplify(false)
                    .with_slicing(false)
                    .check(std::slice::from_ref(c));
                prop_assert_eq!(
                    raw,
                    SolveOutcome::Unsat,
                    "interval pruning claimed unsat but the SAT path disagrees: {:?}", c
                );
                prop_assert!(
                    !any_grid_assignment_satisfies(std::slice::from_ref(c)),
                    "interval-pruned constraint satisfied concretely: {:?}", c
                );
            }
        }
    }

    /// Tautology drops are real tautologies: a `True` verdict means every
    /// grid assignment satisfies the constraint.
    #[test]
    fn interval_tautologies_hold_on_grid(
        specs in proptest::collection::vec(arb_constraint(), 1..4),
    ) {
        let cs = constraints(&specs);
        const PROBES: [u64; 5] = [0, 1, 128, 254, 255];
        for c in &cs {
            if interval::prune(c) == interval::Pruned::True {
                for &x in &PROBES {
                    for &y in &PROBES {
                        for &z in &PROBES {
                            let env: HashMap<Arc<str>, u64> = [
                                (Arc::from("x"), x),
                                (Arc::from("y"), y),
                                (Arc::from("z"), z),
                            ]
                            .into_iter()
                            .collect();
                            prop_assert!(
                                satisfies(std::slice::from_ref(c), &env),
                                "claimed tautology fails at x={} y={} z={}: {:?}", x, y, z, c
                            );
                        }
                    }
                }
            }
        }
    }
}
