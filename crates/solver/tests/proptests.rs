//! Property tests for the solver stack: smart-constructor soundness,
//! bit-blast/eval agreement, and model validity.

use bomblab_solver::expr::{eval, BvOp, CmpOp, Term, Value};
use bomblab_solver::{SolveOutcome, Solver};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

const OPS: [BvOp; 13] = [
    BvOp::Add,
    BvOp::Sub,
    BvOp::Mul,
    BvOp::UDiv,
    BvOp::SDiv,
    BvOp::URem,
    BvOp::SRem,
    BvOp::And,
    BvOp::Or,
    BvOp::Xor,
    BvOp::Shl,
    BvOp::LShr,
    BvOp::AShr,
];

const CMPS: [CmpOp; 5] = [CmpOp::Eq, CmpOp::Ult, CmpOp::Ule, CmpOp::Slt, CmpOp::Sle];

/// A small expression AST we can both build as a `Term` and evaluate
/// naively, so the smart constructors' folding can be cross-checked.
#[derive(Debug, Clone)]
enum Ast {
    X,
    Y,
    Const(u64),
    Bin(BvOp, Box<Ast>, Box<Ast>),
    Not(Box<Ast>),
    Neg(Box<Ast>),
}

fn arb_ast() -> impl Strategy<Value = Ast> {
    let leaf = prop_oneof![
        Just(Ast::X),
        Just(Ast::Y),
        any::<u64>().prop_map(Ast::Const),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (0usize..OPS.len(), inner.clone(), inner.clone()).prop_map(|(i, a, b)| Ast::Bin(
                OPS[i],
                Box::new(a),
                Box::new(b)
            )),
            inner.clone().prop_map(|a| Ast::Not(Box::new(a))),
            inner.prop_map(|a| Ast::Neg(Box::new(a))),
        ]
    })
}

fn build(ast: &Ast, width: u8) -> Term {
    match ast {
        Ast::X => Term::var("x", width),
        Ast::Y => Term::var("y", width),
        Ast::Const(v) => Term::bv(*v, width),
        Ast::Bin(op, a, b) => Term::bin(*op, &build(a, width), &build(b, width)),
        Ast::Not(a) => Term::bvnot(&build(a, width)),
        Ast::Neg(a) => Term::bvneg(&build(a, width)),
    }
}

fn env(x: u64, y: u64) -> HashMap<Arc<str>, u64> {
    [(Arc::from("x"), x), (Arc::from("y"), y)]
        .into_iter()
        .collect()
}

proptest! {
    /// The folding smart constructors must preserve semantics: building a
    /// term (which may fold/simplify) and evaluating it equals evaluating
    /// an unsimplified equivalent (built fresh with leaf substitution).
    #[test]
    fn smart_constructors_preserve_evaluation(
        ast in arb_ast(),
        x in any::<u64>(),
        y in any::<u64>(),
    ) {
        let width = 16u8;
        let term = build(&ast, width);
        // Substitute the concrete values at the leaves: constant folding
        // computes the exact value.
        fn subst(ast: &Ast, x: u64, y: u64, width: u8) -> Term {
            match ast {
                Ast::X => Term::bv(x, width),
                Ast::Y => Term::bv(y, width),
                Ast::Const(v) => Term::bv(*v, width),
                Ast::Bin(op, a, b) => {
                    Term::bin(*op, &subst(a, x, y, width), &subst(b, x, y, width))
                }
                Ast::Not(a) => Term::bvnot(&subst(a, x, y, width)),
                Ast::Neg(a) => Term::bvneg(&subst(a, x, y, width)),
            }
        }
        let folded = subst(&ast, x, y, width).as_const().expect("fully folded");
        let evaluated = eval(&term, &env(x, y)).expect("closed").bits();
        prop_assert_eq!(folded, evaluated);
    }

    /// For any expression and any concrete (x, y), constraining the
    /// variables and the expression's value must be satisfiable, and the
    /// solver's model must satisfy the constraint per the evaluator.
    #[test]
    fn bitblast_agrees_with_eval(
        ast in arb_ast(),
        x in any::<u64>(),
        y in any::<u64>(),
    ) {
        let width = 8u8;
        let term = build(&ast, width);
        let want = eval(&term, &env(x, y)).expect("closed").bits();
        let xv = Term::var("x", width);
        let yv = Term::var("y", width);
        let c = Term::and(
            &Term::and(
                &Term::cmp(CmpOp::Eq, &xv, &Term::bv(x, width)),
                &Term::cmp(CmpOp::Eq, &yv, &Term::bv(y, width)),
            ),
            &Term::cmp(CmpOp::Eq, &term, &Term::bv(want, width)),
        );
        match Solver::new().check(&[c]) {
            SolveOutcome::Sat(_) => {}
            other => prop_assert!(false, "expected sat, got {:?}", other),
        }
    }

    /// Solver models satisfy the constraints they were produced for.
    #[test]
    fn models_satisfy_their_constraints(
        ast in arb_ast(),
        cmp_i in 0usize..CMPS.len(),
        k in any::<u64>(),
    ) {
        let width = 8u8;
        let term = build(&ast, width);
        let c = Term::cmp(CMPS[cmp_i], &term, &Term::bv(k, width));
        match Solver::new().check(std::slice::from_ref(&c)) {
            SolveOutcome::Sat(model) => {
                let mut env = model.as_env();
                // Unmentioned variables default to zero.
                env.entry(Arc::from("x")).or_insert(0);
                env.entry(Arc::from("y")).or_insert(0);
                prop_assert_eq!(
                    eval(&c, &env).expect("closed"),
                    Value::Bool(true),
                    "model must satisfy the constraint"
                );
            }
            SolveOutcome::Unsat => {
                // Spot-check: a handful of assignments must all violate c.
                for (x, y) in [(0u64, 0u64), (1, 1), (k, k), (255, 0), (0, 255)] {
                    prop_assert_eq!(
                        eval(&c, &env(x, y)).expect("closed"),
                        Value::Bool(false),
                        "unsat claim contradicted by x={} y={}", x, y
                    );
                }
            }
            SolveOutcome::Unknown(r) => {
                prop_assert!(false, "tiny formulas should never exhaust budgets: {}", r);
            }
        }
    }

    /// Hash-consing is canonical: building the same structure twice must
    /// intern to the *same* node (equal ids, `==` in O(1)), and the
    /// interned construction + smart-constructor folding must agree with
    /// a naive evaluator that never allocates a term at all.
    #[test]
    fn interning_is_canonical_and_semantics_preserving(
        ast in arb_ast(),
        x in any::<u64>(),
        y in any::<u64>(),
    ) {
        /// Reference semantics, written independently of `expr.rs`:
        /// wrap-around arithmetic at `width`, SMT-LIB division
        /// conventions (x/0 = all-ones, x%0 = x), shifts >= width clear
        /// (arithmetic shift saturates at width-1).
        fn naive(ast: &Ast, x: u64, y: u64, w: u8) -> u64 {
            let m = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
            let sign = |v: u64| -> i64 {
                let shift = 64 - w as u32;
                ((v << shift) as i64) >> shift
            };
            let v = match ast {
                Ast::X => x,
                Ast::Y => y,
                Ast::Const(c) => *c,
                Ast::Not(a) => !naive(a, x, y, w),
                Ast::Neg(a) => naive(a, x, y, w).wrapping_neg(),
                Ast::Bin(op, a, b) => {
                    let (a, b) = (naive(a, x, y, w) & m, naive(b, x, y, w) & m);
                    match op {
                        BvOp::Add => a.wrapping_add(b),
                        BvOp::Sub => a.wrapping_sub(b),
                        BvOp::Mul => a.wrapping_mul(b),
                        BvOp::UDiv if b == 0 => m,
                        BvOp::UDiv => a / b,
                        BvOp::SDiv if sign(b) == 0 => m,
                        BvOp::SDiv => sign(a).wrapping_div(sign(b)) as u64,
                        BvOp::URem if b == 0 => a,
                        BvOp::URem => a % b,
                        BvOp::SRem if sign(b) == 0 => a,
                        BvOp::SRem => sign(a).wrapping_rem(sign(b)) as u64,
                        BvOp::And => a & b,
                        BvOp::Or => a | b,
                        BvOp::Xor => a ^ b,
                        BvOp::Shl if b >= w as u64 => 0,
                        BvOp::Shl => a << b,
                        BvOp::LShr if b >= w as u64 => 0,
                        BvOp::LShr => a >> b,
                        BvOp::AShr => (sign(a) >> (b.min(w as u64 - 1))) as u64,
                    }
                }
            };
            v & m
        }

        let width = 16u8;
        let first = build(&ast, width);
        let second = build(&ast, width);
        prop_assert_eq!(first.id(), second.id(), "identical builds must intern to one node");
        prop_assert!(first == second, "interned equality must hold");
        let got = eval(&first, &env(x, y)).expect("closed").bits();
        let want = naive(&ast, x & 0xffff, y & 0xffff, width);
        prop_assert_eq!(got, want, "interned term diverged from reference semantics");
    }

    /// `extract`/`concat`/extensions respect the evaluator on random data.
    #[test]
    fn structure_ops_agree_with_eval(v in any::<u64>(), hi in 0u8..32, lo in 0u8..32) {
        prop_assume!(hi >= lo);
        let x = Term::bv(v, 32);
        let ex = Term::extract(&x, hi, lo);
        let expected = (v >> lo) & if hi - lo + 1 >= 64 { u64::MAX } else { (1u64 << (hi - lo + 1)) - 1 };
        prop_assert_eq!(ex.as_const(), Some(expected & 0xffff_ffff));
        let z = Term::zext(&ex, 64);
        prop_assert_eq!(eval(&z, &HashMap::new()).expect("closed").bits(), expected & 0xffff_ffff);
    }
}
