//! Identity-friendly hashing for term-id keyed tables.
//!
//! The solver's hot paths (DAG walks, blasting caches, interval and
//! simplification memos) all key maps and sets by [`Term::id`] — a pointer
//! cast to `usize`. SipHash, the std default, burns most of the lookup cost
//! hashing eight bytes that are already well-distributed after one cheap
//! mix. This module provides a Fibonacci-multiply hasher specialized for
//! those keys: one `wrapping_mul` plus one xor-shift, which benchmarks
//! several times faster than SipHash on id-dense walks while still
//! spreading the (aligned, heap-clustered) pointer values across both the
//! high bits (hashbrown's control bytes) and the low bits (bucket index).
//!
//! [`Term::id`]: crate::expr::Term::id

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher for integer keys (term ids, SAT variable indices).
///
/// Not DoS-resistant — do not use for attacker-controlled keys. Term ids
/// are allocator-assigned pointers, so the distribution is benign.
#[derive(Default)]
pub struct IdHasher(u64);

/// 2^64 / φ, the classic Fibonacci-hashing multiplier.
const PHI: u64 = 0x9E37_79B9_7F4A_7C15;

impl Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (struct keys that embed more than one integer):
        // FNV-style byte fold, still cheap for the short keys we see.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
    }

    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }

    fn write_u64(&mut self, i: u64) {
        let mut h = (self.0 ^ i).wrapping_mul(PHI);
        h ^= h >> 32;
        self.0 = h;
    }

    fn write_u32(&mut self, i: u32) {
        self.write_u64(u64::from(i));
    }

    fn write_u8(&mut self, i: u8) {
        self.write_u64(u64::from(i));
    }
}

/// `BuildHasher` for [`IdHasher`].
pub type BuildIdHasher = BuildHasherDefault<IdHasher>;

/// A `HashMap` keyed by term ids (or other benign integers).
pub type IdMap<K, V> = HashMap<K, V, BuildIdHasher>;

/// A `HashSet` of term ids (or other benign integers).
pub type IdSet<K> = HashSet<K, BuildIdHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_spread_across_buckets() {
        // Aligned pointer-like keys must not collide into a few buckets.
        let mut set = IdSet::default();
        for i in 0..10_000usize {
            set.insert(0x5600_0000_0000 + i * 64);
        }
        assert_eq!(set.len(), 10_000);
    }

    #[test]
    fn map_roundtrip() {
        let mut m: IdMap<usize, u32> = IdMap::default();
        for i in 0..1000 {
            m.insert(i * 8, i as u32);
        }
        for i in 0..1000 {
            assert_eq!(m.get(&(i * 8)), Some(&(i as u32)));
        }
    }
}
