//! The term language: bitvectors, booleans, and IEEE doubles.
//!
//! Terms are immutable reference-counted DAG nodes built through smart
//! constructors that fold constants and apply cheap algebraic identities on
//! the fly. All bitvector widths are between 1 and 64 bits; values are kept
//! in the low bits of a `u64`.

use crate::idhash::IdSet;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::{Rc, Weak};
use std::sync::Arc;

/// The sort of a term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sort {
    /// A boolean.
    Bool,
    /// A bitvector of the given width (1..=64).
    Bv(u8),
    /// An IEEE-754 double.
    F64,
}

/// A free bitvector variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var {
    /// Variable name; identity is by name.
    pub name: Arc<str>,
    /// Width in bits.
    pub width: u8,
}

/// Binary bitvector operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BvOp {
    Add,
    Sub,
    Mul,
    UDiv,
    SDiv,
    URem,
    SRem,
    And,
    Or,
    Xor,
    Shl,
    LShr,
    AShr,
}

/// Bitvector comparison operators (producing booleans).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum CmpOp {
    Eq,
    Ult,
    Ule,
    Slt,
    Sle,
}

/// Binary floating-point operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// Floating-point comparisons (producing booleans).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum FCmpOp {
    Eq,
    Lt,
    Le,
}

/// A term node. Use the smart constructors on [`Term`] instead of building
/// nodes directly.
#[derive(Debug, PartialEq)]
pub enum Node {
    /// Bitvector constant (value stored in the low `width` bits).
    BvConst {
        /// The value.
        value: u64,
        /// The width.
        width: u8,
    },
    /// Free bitvector variable.
    BvVar(Var),
    /// Binary bitvector operation.
    BvBin {
        /// Operator.
        op: BvOp,
        /// Left operand.
        a: Term,
        /// Right operand.
        b: Term,
    },
    /// Bitwise negation.
    BvNot(Term),
    /// Two's-complement negation.
    BvNeg(Term),
    /// Bit extraction `[hi:lo]` (inclusive).
    Extract {
        /// High bit.
        hi: u8,
        /// Low bit.
        lo: u8,
        /// Operand.
        a: Term,
    },
    /// Zero extension to `width`.
    ZExt {
        /// Target width.
        width: u8,
        /// Operand.
        a: Term,
    },
    /// Sign extension to `width`.
    SExt {
        /// Target width.
        width: u8,
        /// Operand.
        a: Term,
    },
    /// Concatenation (`a` becomes the high bits).
    Concat {
        /// High part.
        a: Term,
        /// Low part.
        b: Term,
    },
    /// Bitvector comparison.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        a: Term,
        /// Right operand.
        b: Term,
    },
    /// Boolean constant.
    BoolConst(bool),
    /// Boolean negation.
    BNot(Term),
    /// Boolean conjunction.
    BAnd(Term, Term),
    /// Boolean disjunction.
    BOr(Term, Term),
    /// If-then-else over bitvectors (cond is boolean).
    Ite {
        /// Condition.
        cond: Term,
        /// Then-value.
        then: Term,
        /// Else-value.
        els: Term,
    },
    /// Floating-point constant.
    FConst(f64),
    /// Binary floating-point operation.
    FBin {
        /// Operator.
        op: FOp,
        /// Left operand.
        a: Term,
        /// Right operand.
        b: Term,
    },
    /// Floating-point negation.
    FNeg(Term),
    /// Floating-point square root.
    FSqrt(Term),
    /// Floating-point comparison.
    FCmp {
        /// Operator.
        op: FCmpOp,
        /// Left operand.
        a: Term,
        /// Right operand.
        b: Term,
    },
    /// Signed 64-bit integer to double (the `cvt.si2d` instruction).
    CvtSiToF(Term),
    /// Double to signed 64-bit integer, truncating (`cvt.d2si`).
    CvtFToSi(Term),
    /// Reinterpret a 64-bit vector as a double.
    FFromBits(Term),
    /// Reinterpret a double as a 64-bit vector.
    FBits(Term),
}

/// A reference-counted, hash-consed term.
///
/// All construction funnels through a thread-local interner, so within one
/// thread two structurally equal terms always share the same allocation:
/// equality and hashing are O(1) pointer operations, and DAG-shaped formulas
/// (crypto traces especially) are stored once instead of re-allocated per
/// rewrite. `Term` is intentionally `!Send`; terms never cross threads.
#[derive(Clone)]
pub struct Term(Rc<Node>);

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl PartialEq for Term {
    fn eq(&self, other: &Term) -> bool {
        // Sound because of hash-consing: structurally equal terms built on
        // this thread share one allocation (see `Term::raw`).
        Rc::ptr_eq(&self.0, &other.0)
    }
}

impl Eq for Term {}

impl std::hash::Hash for Term {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id().hash(state);
    }
}

/// Shallow interner key: node discriminant + immediates + child identities.
/// A live entry's children are pinned by the entry's own node, so child ids
/// cannot be reused while the entry is upgradeable.
#[derive(PartialEq, Eq, Hash)]
enum InternKey {
    BvConst(u64, u8),
    BvVar(Arc<str>, u8),
    BvBin(BvOp, usize, usize),
    BvNot(usize),
    BvNeg(usize),
    Extract(u8, u8, usize),
    ZExt(u8, usize),
    SExt(u8, usize),
    Concat(usize, usize),
    Cmp(CmpOp, usize, usize),
    BoolConst(bool),
    BNot(usize),
    BAnd(usize, usize),
    BOr(usize, usize),
    Ite(usize, usize, usize),
    // Keyed by bit pattern so NaNs and signed zeros intern consistently.
    FConst(u64),
    FBin(FOp, usize, usize),
    FNeg(usize),
    FSqrt(usize),
    FCmp(FCmpOp, usize, usize),
    CvtSiToF(usize),
    CvtFToSi(usize),
    FFromBits(usize),
    FBits(usize),
}

fn intern_key(node: &Node) -> InternKey {
    match node {
        Node::BvConst { value, width } => InternKey::BvConst(*value, *width),
        Node::BvVar(v) => InternKey::BvVar(Arc::clone(&v.name), v.width),
        Node::BvBin { op, a, b } => InternKey::BvBin(*op, a.id(), b.id()),
        Node::BvNot(a) => InternKey::BvNot(a.id()),
        Node::BvNeg(a) => InternKey::BvNeg(a.id()),
        Node::Extract { hi, lo, a } => InternKey::Extract(*hi, *lo, a.id()),
        Node::ZExt { width, a } => InternKey::ZExt(*width, a.id()),
        Node::SExt { width, a } => InternKey::SExt(*width, a.id()),
        Node::Concat { a, b } => InternKey::Concat(a.id(), b.id()),
        Node::Cmp { op, a, b } => InternKey::Cmp(*op, a.id(), b.id()),
        Node::BoolConst(b) => InternKey::BoolConst(*b),
        Node::BNot(a) => InternKey::BNot(a.id()),
        Node::BAnd(a, b) => InternKey::BAnd(a.id(), b.id()),
        Node::BOr(a, b) => InternKey::BOr(a.id(), b.id()),
        Node::Ite { cond, then, els } => InternKey::Ite(cond.id(), then.id(), els.id()),
        Node::FConst(v) => InternKey::FConst(v.to_bits()),
        Node::FBin { op, a, b } => InternKey::FBin(*op, a.id(), b.id()),
        Node::FNeg(a) => InternKey::FNeg(a.id()),
        Node::FSqrt(a) => InternKey::FSqrt(a.id()),
        Node::FCmp { op, a, b } => InternKey::FCmp(*op, a.id(), b.id()),
        Node::CvtSiToF(a) => InternKey::CvtSiToF(a.id()),
        Node::CvtFToSi(a) => InternKey::CvtFToSi(a.id()),
        Node::FFromBits(a) => InternKey::FFromBits(a.id()),
        Node::FBits(a) => InternKey::FBits(a.id()),
    }
}

/// Counters describing this thread's term interner.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InternStats {
    /// Constructions that reused an existing allocation.
    pub hits: u64,
    /// Constructions that allocated a new node.
    pub misses: u64,
    /// Entries currently in the intern table (live + not-yet-swept dead).
    pub table_len: usize,
}

struct Interner {
    map: HashMap<InternKey, Weak<Node>>,
    hits: u64,
    misses: u64,
    sweep_at: usize,
}

impl Interner {
    fn intern(&mut self, node: Node) -> Rc<Node> {
        let key = intern_key(&node);
        if let Some(weak) = self.map.get(&key) {
            if let Some(rc) = weak.upgrade() {
                self.hits += 1;
                return rc;
            }
        }
        self.misses += 1;
        let rc = Rc::new(node);
        self.map.insert(key, Rc::downgrade(&rc));
        if self.map.len() > self.sweep_at {
            self.map.retain(|_, w| w.strong_count() > 0);
            self.sweep_at = (self.map.len() * 2).max(4096);
        }
        rc
    }
}

thread_local! {
    static INTERNER: RefCell<Interner> = RefCell::new(Interner {
        map: HashMap::new(),
        hits: 0,
        misses: 0,
        sweep_at: 4096,
    });
}

/// Snapshot of the current thread's interner counters.
pub fn intern_stats() -> InternStats {
    INTERNER.with(|i| {
        let i = i.borrow();
        InternStats {
            hits: i.hits,
            misses: i.misses,
            table_len: i.map.len(),
        }
    })
}

fn mask(width: u8) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Sign-extends the low `width` bits of `v` into an `i64`.
pub fn to_signed(v: u64, width: u8) -> i64 {
    let shift = 64 - width as u32;
    ((v << shift) as i64) >> shift
}

impl Term {
    /// The underlying node.
    pub fn node(&self) -> &Node {
        &self.0
    }

    /// A stable pointer identity for caches.
    pub fn id(&self) -> usize {
        Rc::as_ptr(&self.0) as usize
    }

    /// The sort of this term.
    pub fn sort(&self) -> Sort {
        match self.node() {
            Node::BvConst { width, .. } => Sort::Bv(*width),
            Node::BvVar(v) => Sort::Bv(v.width),
            Node::BvBin { a, .. } => a.sort(),
            Node::BvNot(a) | Node::BvNeg(a) => a.sort(),
            Node::Extract { hi, lo, .. } => Sort::Bv(hi - lo + 1),
            Node::ZExt { width, .. } | Node::SExt { width, .. } => Sort::Bv(*width),
            Node::Concat { a, b } => {
                let (Sort::Bv(wa), Sort::Bv(wb)) = (a.sort(), b.sort()) else {
                    unreachable!("concat of non-bitvectors")
                };
                Sort::Bv(wa + wb)
            }
            Node::Cmp { .. }
            | Node::BoolConst(_)
            | Node::BNot(_)
            | Node::BAnd(..)
            | Node::BOr(..)
            | Node::FCmp { .. } => Sort::Bool,
            Node::Ite { then, .. } => then.sort(),
            Node::FConst(_)
            | Node::FBin { .. }
            | Node::FNeg(_)
            | Node::FSqrt(_)
            | Node::CvtSiToF(_)
            | Node::FFromBits(_) => Sort::F64,
            Node::CvtFToSi(_) | Node::FBits(_) => Sort::Bv(64),
        }
    }

    /// Bitvector width.
    ///
    /// # Panics
    ///
    /// Panics if the term is not a bitvector.
    pub fn width(&self) -> u8 {
        match self.sort() {
            Sort::Bv(w) => w,
            other => panic!("width() on {other:?} term"),
        }
    }

    /// The constant value if this is a bitvector constant.
    pub fn as_const(&self) -> Option<u64> {
        match self.node() {
            Node::BvConst { value, .. } => Some(*value),
            _ => None,
        }
    }

    /// The constant value if this is a boolean constant.
    pub fn as_bool_const(&self) -> Option<bool> {
        match self.node() {
            Node::BoolConst(b) => Some(*b),
            _ => None,
        }
    }

    fn raw(node: Node) -> Term {
        Term(INTERNER.with(|i| i.borrow_mut().intern(node)))
    }

    // ---- constructors: bitvectors ----

    /// Bitvector constant, truncated to `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn bv(value: u64, width: u8) -> Term {
        assert!((1..=64).contains(&width), "bad width {width}");
        Term::raw(Node::BvConst {
            value: value & mask(width),
            width,
        })
    }

    /// Free bitvector variable.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn var(name: impl Into<Arc<str>>, width: u8) -> Term {
        assert!((1..=64).contains(&width), "bad width {width}");
        Term::raw(Node::BvVar(Var {
            name: name.into(),
            width,
        }))
    }

    /// Binary bitvector operation with constant folding.
    ///
    /// # Panics
    ///
    /// Panics on operand width mismatch.
    pub fn bin(op: BvOp, a: &Term, b: &Term) -> Term {
        let w = a.width();
        assert_eq!(w, b.width(), "width mismatch in {op:?}");
        if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
            return Term::bv(fold_bin(op, x, y, w), w);
        }
        // Cheap identities.
        match op {
            BvOp::Add => {
                if a.as_const() == Some(0) {
                    return b.clone();
                }
                if b.as_const() == Some(0) {
                    return a.clone();
                }
            }
            BvOp::Sub => {
                if b.as_const() == Some(0) {
                    return a.clone();
                }
                if a == b {
                    return Term::bv(0, w);
                }
            }
            BvOp::Mul => {
                if a.as_const() == Some(1) {
                    return b.clone();
                }
                if b.as_const() == Some(1) {
                    return a.clone();
                }
                if a.as_const() == Some(0) || b.as_const() == Some(0) {
                    return Term::bv(0, w);
                }
            }
            BvOp::And => {
                if a.as_const() == Some(0) || b.as_const() == Some(0) {
                    return Term::bv(0, w);
                }
                if a.as_const() == Some(mask(w)) {
                    return b.clone();
                }
                if b.as_const() == Some(mask(w)) {
                    return a.clone();
                }
                if a == b {
                    return a.clone();
                }
            }
            BvOp::Or => {
                if a.as_const() == Some(0) {
                    return b.clone();
                }
                if b.as_const() == Some(0) {
                    return a.clone();
                }
                if a == b {
                    return a.clone();
                }
            }
            BvOp::Xor => {
                if a.as_const() == Some(0) {
                    return b.clone();
                }
                if b.as_const() == Some(0) {
                    return a.clone();
                }
                if a == b {
                    return Term::bv(0, w);
                }
            }
            BvOp::Shl | BvOp::LShr | BvOp::AShr if b.as_const() == Some(0) => {
                return a.clone();
            }
            _ => {}
        }
        Term::raw(Node::BvBin {
            op,
            a: a.clone(),
            b: b.clone(),
        })
    }

    /// Bitwise negation.
    pub fn bvnot(a: &Term) -> Term {
        match a.node() {
            Node::BvConst { value, width } => Term::bv(!value, *width),
            Node::BvNot(inner) => inner.clone(),
            _ => Term::raw(Node::BvNot(a.clone())),
        }
    }

    /// Two's-complement negation.
    pub fn bvneg(a: &Term) -> Term {
        match a.node() {
            Node::BvConst { value, width } => Term::bv(value.wrapping_neg(), *width),
            Node::BvNeg(inner) => inner.clone(),
            _ => Term::raw(Node::BvNeg(a.clone())),
        }
    }

    /// Bit extraction `[hi:lo]`, inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi` is out of range.
    pub fn extract(a: &Term, hi: u8, lo: u8) -> Term {
        let w = a.width();
        assert!(
            hi >= lo && hi < w,
            "bad extract [{hi}:{lo}] of {w}-bit term"
        );
        if hi == w - 1 && lo == 0 {
            return a.clone();
        }
        if let Some(v) = a.as_const() {
            return Term::bv(v >> lo, hi - lo + 1);
        }
        Term::raw(Node::Extract {
            hi,
            lo,
            a: a.clone(),
        })
    }

    /// Zero extension.
    ///
    /// # Panics
    ///
    /// Panics if `width` is smaller than the operand's width or over 64.
    pub fn zext(a: &Term, width: u8) -> Term {
        let w = a.width();
        assert!(width >= w && width <= 64);
        if width == w {
            return a.clone();
        }
        if let Some(v) = a.as_const() {
            return Term::bv(v, width);
        }
        Term::raw(Node::ZExt {
            width,
            a: a.clone(),
        })
    }

    /// Sign extension.
    ///
    /// # Panics
    ///
    /// Panics if `width` is smaller than the operand's width or over 64.
    pub fn sext(a: &Term, width: u8) -> Term {
        let w = a.width();
        assert!(width >= w && width <= 64);
        if width == w {
            return a.clone();
        }
        if let Some(v) = a.as_const() {
            return Term::bv(to_signed(v, w) as u64, width);
        }
        Term::raw(Node::SExt {
            width,
            a: a.clone(),
        })
    }

    /// Concatenation; `a` supplies the high bits.
    ///
    /// # Panics
    ///
    /// Panics if the combined width exceeds 64.
    pub fn concat(a: &Term, b: &Term) -> Term {
        let (wa, wb) = (a.width(), b.width());
        assert!(wa + wb <= 64, "concat width {} too large", wa + wb);
        if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
            return Term::bv((x << wb) | y, wa + wb);
        }
        Term::raw(Node::Concat {
            a: a.clone(),
            b: b.clone(),
        })
    }

    /// Bitvector comparison.
    ///
    /// # Panics
    ///
    /// Panics on operand width mismatch.
    pub fn cmp(op: CmpOp, a: &Term, b: &Term) -> Term {
        let w = a.width();
        assert_eq!(w, b.width(), "width mismatch in {op:?}");
        if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
            let r = match op {
                CmpOp::Eq => x == y,
                CmpOp::Ult => x < y,
                CmpOp::Ule => x <= y,
                CmpOp::Slt => to_signed(x, w) < to_signed(y, w),
                CmpOp::Sle => to_signed(x, w) <= to_signed(y, w),
            };
            return Term::bool(r);
        }
        if a == b {
            return Term::bool(matches!(op, CmpOp::Eq | CmpOp::Ule | CmpOp::Sle));
        }
        Term::raw(Node::Cmp {
            op,
            a: a.clone(),
            b: b.clone(),
        })
    }

    // ---- constructors: booleans ----

    /// Boolean constant.
    pub fn bool(b: bool) -> Term {
        Term::raw(Node::BoolConst(b))
    }

    /// Boolean negation.
    pub fn not(a: &Term) -> Term {
        match a.node() {
            Node::BoolConst(b) => Term::bool(!b),
            Node::BNot(inner) => inner.clone(),
            _ => Term::raw(Node::BNot(a.clone())),
        }
    }

    /// Boolean conjunction.
    pub fn and(a: &Term, b: &Term) -> Term {
        match (a.as_bool_const(), b.as_bool_const()) {
            (Some(false), _) | (_, Some(false)) => Term::bool(false),
            (Some(true), _) => b.clone(),
            (_, Some(true)) => a.clone(),
            _ if a == b => a.clone(),
            _ => Term::raw(Node::BAnd(a.clone(), b.clone())),
        }
    }

    /// Boolean disjunction.
    pub fn or(a: &Term, b: &Term) -> Term {
        match (a.as_bool_const(), b.as_bool_const()) {
            (Some(true), _) | (_, Some(true)) => Term::bool(true),
            (Some(false), _) => b.clone(),
            (_, Some(false)) => a.clone(),
            _ if a == b => a.clone(),
            _ => Term::raw(Node::BOr(a.clone(), b.clone())),
        }
    }

    /// If-then-else over same-sorted branches.
    ///
    /// # Panics
    ///
    /// Panics if the branch sorts differ.
    pub fn ite(cond: &Term, then: &Term, els: &Term) -> Term {
        assert_eq!(then.sort(), els.sort(), "ite branch sorts differ");
        match cond.as_bool_const() {
            Some(true) => then.clone(),
            Some(false) => els.clone(),
            None if then == els => then.clone(),
            None => Term::raw(Node::Ite {
                cond: cond.clone(),
                then: then.clone(),
                els: els.clone(),
            }),
        }
    }

    // ---- constructors: floating point ----

    /// Floating-point constant.
    pub fn f64(v: f64) -> Term {
        Term::raw(Node::FConst(v))
    }

    /// Binary floating-point operation.
    pub fn fbin(op: FOp, a: &Term, b: &Term) -> Term {
        if let (Node::FConst(x), Node::FConst(y)) = (a.node(), b.node()) {
            let r = match op {
                FOp::Add => x + y,
                FOp::Sub => x - y,
                FOp::Mul => x * y,
                FOp::Div => x / y,
            };
            return Term::f64(r);
        }
        Term::raw(Node::FBin {
            op,
            a: a.clone(),
            b: b.clone(),
        })
    }

    /// Floating-point negation.
    pub fn fneg(a: &Term) -> Term {
        match a.node() {
            Node::FConst(v) => Term::f64(-v),
            _ => Term::raw(Node::FNeg(a.clone())),
        }
    }

    /// Floating-point square root.
    pub fn fsqrt(a: &Term) -> Term {
        match a.node() {
            Node::FConst(v) => Term::f64(v.sqrt()),
            _ => Term::raw(Node::FSqrt(a.clone())),
        }
    }

    /// Floating-point comparison.
    pub fn fcmp(op: FCmpOp, a: &Term, b: &Term) -> Term {
        if let (Node::FConst(x), Node::FConst(y)) = (a.node(), b.node()) {
            let r = match op {
                FCmpOp::Eq => x == y,
                FCmpOp::Lt => x < y,
                FCmpOp::Le => x <= y,
            };
            return Term::bool(r);
        }
        Term::raw(Node::FCmp {
            op,
            a: a.clone(),
            b: b.clone(),
        })
    }

    /// `cvt.si2d`: signed 64-bit integer to double.
    ///
    /// # Panics
    ///
    /// Panics unless the operand is a 64-bit vector.
    pub fn cvt_si_to_f(a: &Term) -> Term {
        assert_eq!(a.width(), 64);
        if let Some(v) = a.as_const() {
            return Term::f64(v as i64 as f64);
        }
        Term::raw(Node::CvtSiToF(a.clone()))
    }

    /// `cvt.d2si`: double to signed 64-bit integer (truncating).
    pub fn cvt_f_to_si(a: &Term) -> Term {
        if let Node::FConst(v) = a.node() {
            return Term::bv(*v as i64 as u64, 64);
        }
        Term::raw(Node::CvtFToSi(a.clone()))
    }

    /// Reinterpret 64 bits as a double.
    ///
    /// # Panics
    ///
    /// Panics unless the operand is a 64-bit vector.
    pub fn f_from_bits(a: &Term) -> Term {
        assert_eq!(a.width(), 64);
        if let Some(v) = a.as_const() {
            return Term::f64(f64::from_bits(v));
        }
        Term::raw(Node::FFromBits(a.clone()))
    }

    /// Reinterpret a double as 64 bits.
    pub fn f_bits(a: &Term) -> Term {
        if let Node::FConst(v) = a.node() {
            return Term::bv(v.to_bits(), 64);
        }
        Term::raw(Node::FBits(a.clone()))
    }

    // ---- traversal ----

    /// Collects the free variables of the term into `out` (deduplicated).
    pub fn collect_vars(&self, out: &mut Vec<Var>) {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![self.clone()];
        let mut visited = IdSet::default();
        while let Some(t) = stack.pop() {
            if !visited.insert(t.id()) {
                continue;
            }
            match t.node() {
                Node::BvVar(v) => {
                    if seen.insert(v.clone()) && !out.contains(v) {
                        out.push(v.clone());
                    }
                }
                Node::BvBin { a, b, .. }
                | Node::Concat { a, b }
                | Node::Cmp { a, b, .. }
                | Node::FBin { a, b, .. }
                | Node::FCmp { a, b, .. }
                | Node::BAnd(a, b)
                | Node::BOr(a, b) => {
                    stack.push(a.clone());
                    stack.push(b.clone());
                }
                Node::BvNot(a)
                | Node::BvNeg(a)
                | Node::Extract { a, .. }
                | Node::ZExt { a, .. }
                | Node::SExt { a, .. }
                | Node::BNot(a)
                | Node::FNeg(a)
                | Node::FSqrt(a)
                | Node::CvtSiToF(a)
                | Node::CvtFToSi(a)
                | Node::FFromBits(a)
                | Node::FBits(a) => stack.push(a.clone()),
                Node::Ite { cond, then, els } => {
                    stack.push(cond.clone());
                    stack.push(then.clone());
                    stack.push(els.clone());
                }
                Node::BvConst { .. } | Node::BoolConst(_) | Node::FConst(_) => {}
            }
        }
        // dedupe preserving order (cheap; var counts are small)
        let mut dedup = Vec::new();
        for v in out.drain(..) {
            if !dedup.contains(&v) {
                dedup.push(v);
            }
        }
        *out = dedup;
    }

    /// Whether the term contains any floating-point node.
    pub fn has_float(&self) -> bool {
        let mut stack = vec![self.clone()];
        let mut visited = IdSet::default();
        while let Some(t) = stack.pop() {
            if !visited.insert(t.id()) {
                continue;
            }
            match t.node() {
                Node::FConst(_)
                | Node::FBin { .. }
                | Node::FNeg(_)
                | Node::FSqrt(_)
                | Node::FCmp { .. }
                | Node::CvtSiToF(_)
                | Node::CvtFToSi(_)
                | Node::FFromBits(_)
                | Node::FBits(_) => return true,
                Node::BvBin { a, b, .. }
                | Node::Concat { a, b }
                | Node::Cmp { a, b, .. }
                | Node::BAnd(a, b)
                | Node::BOr(a, b) => {
                    stack.push(a.clone());
                    stack.push(b.clone());
                }
                Node::BvNot(a)
                | Node::BvNeg(a)
                | Node::Extract { a, .. }
                | Node::ZExt { a, .. }
                | Node::SExt { a, .. }
                | Node::BNot(a) => stack.push(a.clone()),
                Node::Ite { cond, then, els } => {
                    stack.push(cond.clone());
                    stack.push(then.clone());
                    stack.push(els.clone());
                }
                Node::BvConst { .. } | Node::BvVar(_) | Node::BoolConst(_) => {}
            }
        }
        false
    }

    /// Children-before-parents ordering of the term DAG, computed
    /// iteratively. Pre-processing nodes in this order keeps recursive
    /// consumers (evaluation, bit-blasting, interval analysis) at depth
    /// one even on crypto-sized expressions.
    pub fn topo_order(&self) -> Vec<Term> {
        let mut order = Vec::new();
        let mut visited = IdSet::default();
        // (term, children_expanded)
        let mut stack: Vec<(Term, bool)> = vec![(self.clone(), false)];
        while let Some((t, expanded)) = stack.pop() {
            if expanded {
                order.push(t);
                continue;
            }
            if !visited.insert(t.id()) {
                continue;
            }
            let mut kids: Vec<Term> = Vec::new();
            match t.node() {
                Node::BvBin { a, b, .. }
                | Node::Concat { a, b }
                | Node::Cmp { a, b, .. }
                | Node::FBin { a, b, .. }
                | Node::FCmp { a, b, .. }
                | Node::BAnd(a, b)
                | Node::BOr(a, b) => {
                    kids.push(a.clone());
                    kids.push(b.clone());
                }
                Node::BvNot(a)
                | Node::BvNeg(a)
                | Node::Extract { a, .. }
                | Node::ZExt { a, .. }
                | Node::SExt { a, .. }
                | Node::BNot(a)
                | Node::FNeg(a)
                | Node::FSqrt(a)
                | Node::CvtSiToF(a)
                | Node::CvtFToSi(a)
                | Node::FFromBits(a)
                | Node::FBits(a) => kids.push(a.clone()),
                Node::Ite { cond, then, els } => {
                    kids.push(cond.clone());
                    kids.push(then.clone());
                    kids.push(els.clone());
                }
                Node::BvConst { .. } | Node::BvVar(_) | Node::BoolConst(_) | Node::FConst(_) => {}
            }
            stack.push((t, true));
            for k in kids {
                if !visited.contains(&k.id()) {
                    stack.push((k, false));
                }
            }
        }
        order
    }

    /// Approximate node count (shared nodes counted once).
    pub fn size(&self) -> usize {
        self.size_capped(usize::MAX)
    }

    /// Like [`size`](Term::size), but stops walking once more than `cap`
    /// distinct nodes have been seen, returning `cap + 1`. Budget checks
    /// only need to know *whether* a formula exceeds the node cap; on
    /// crypto-sized DAGs (hundreds of thousands of shared nodes against a
    /// paper-profile cap of 2 000) the early exit turns the dominant cost
    /// of a `FormulaTooLarge` query into a bounded walk.
    pub fn size_capped(&self, cap: usize) -> usize {
        let mut visited = IdSet::default();
        let mut stack = vec![self.clone()];
        while let Some(t) = stack.pop() {
            if !visited.insert(t.id()) {
                continue;
            }
            if visited.len() > cap {
                return visited.len();
            }
            match t.node() {
                Node::BvBin { a, b, .. }
                | Node::Concat { a, b }
                | Node::Cmp { a, b, .. }
                | Node::FBin { a, b, .. }
                | Node::FCmp { a, b, .. }
                | Node::BAnd(a, b)
                | Node::BOr(a, b) => {
                    stack.push(a.clone());
                    stack.push(b.clone());
                }
                Node::BvNot(a)
                | Node::BvNeg(a)
                | Node::Extract { a, .. }
                | Node::ZExt { a, .. }
                | Node::SExt { a, .. }
                | Node::BNot(a)
                | Node::FNeg(a)
                | Node::FSqrt(a)
                | Node::CvtSiToF(a)
                | Node::CvtFToSi(a)
                | Node::FFromBits(a)
                | Node::FBits(a) => stack.push(a.clone()),
                Node::Ite { cond, then, els } => {
                    stack.push(cond.clone());
                    stack.push(then.clone());
                    stack.push(els.clone());
                }
                _ => {}
            }
        }
        visited.len()
    }

    /// Rebuilds this single node through the smart constructors with every
    /// direct child replaced by `child(c)`. Returns `self` unchanged (same
    /// allocation) when no child mapping changed, so callers walking a DAG
    /// bottom-up only allocate along actually-rewritten paths.
    pub(crate) fn rebuild_shallow(&self, mut child: impl FnMut(&Term) -> Term) -> Term {
        match self.node() {
            Node::BvConst { .. } | Node::BvVar(_) | Node::BoolConst(_) | Node::FConst(_) => {
                self.clone()
            }
            Node::BvBin { op, a, b } => {
                let (na, nb) = (child(a), child(b));
                if na == *a && nb == *b {
                    self.clone()
                } else {
                    Term::bin(*op, &na, &nb)
                }
            }
            Node::BvNot(a) => {
                let na = child(a);
                if na == *a {
                    self.clone()
                } else {
                    Term::bvnot(&na)
                }
            }
            Node::BvNeg(a) => {
                let na = child(a);
                if na == *a {
                    self.clone()
                } else {
                    Term::bvneg(&na)
                }
            }
            Node::Extract { hi, lo, a } => {
                let na = child(a);
                if na == *a {
                    self.clone()
                } else {
                    Term::extract(&na, *hi, *lo)
                }
            }
            Node::ZExt { width, a } => {
                let na = child(a);
                if na == *a {
                    self.clone()
                } else {
                    Term::zext(&na, *width)
                }
            }
            Node::SExt { width, a } => {
                let na = child(a);
                if na == *a {
                    self.clone()
                } else {
                    Term::sext(&na, *width)
                }
            }
            Node::Concat { a, b } => {
                let (na, nb) = (child(a), child(b));
                if na == *a && nb == *b {
                    self.clone()
                } else {
                    Term::concat(&na, &nb)
                }
            }
            Node::Cmp { op, a, b } => {
                let (na, nb) = (child(a), child(b));
                if na == *a && nb == *b {
                    self.clone()
                } else {
                    Term::cmp(*op, &na, &nb)
                }
            }
            Node::BNot(a) => {
                let na = child(a);
                if na == *a {
                    self.clone()
                } else {
                    Term::not(&na)
                }
            }
            Node::BAnd(a, b) => {
                let (na, nb) = (child(a), child(b));
                if na == *a && nb == *b {
                    self.clone()
                } else {
                    Term::and(&na, &nb)
                }
            }
            Node::BOr(a, b) => {
                let (na, nb) = (child(a), child(b));
                if na == *a && nb == *b {
                    self.clone()
                } else {
                    Term::or(&na, &nb)
                }
            }
            Node::Ite { cond, then, els } => {
                let (nc, nt, ne) = (child(cond), child(then), child(els));
                if nc == *cond && nt == *then && ne == *els {
                    self.clone()
                } else {
                    Term::ite(&nc, &nt, &ne)
                }
            }
            Node::FBin { op, a, b } => {
                let (na, nb) = (child(a), child(b));
                if na == *a && nb == *b {
                    self.clone()
                } else {
                    Term::fbin(*op, &na, &nb)
                }
            }
            Node::FNeg(a) => {
                let na = child(a);
                if na == *a {
                    self.clone()
                } else {
                    Term::fneg(&na)
                }
            }
            Node::FSqrt(a) => {
                let na = child(a);
                if na == *a {
                    self.clone()
                } else {
                    Term::fsqrt(&na)
                }
            }
            Node::FCmp { op, a, b } => {
                let (na, nb) = (child(a), child(b));
                if na == *a && nb == *b {
                    self.clone()
                } else {
                    Term::fcmp(*op, &na, &nb)
                }
            }
            Node::CvtSiToF(a) => {
                let na = child(a);
                if na == *a {
                    self.clone()
                } else {
                    Term::cvt_si_to_f(&na)
                }
            }
            Node::CvtFToSi(a) => {
                let na = child(a);
                if na == *a {
                    self.clone()
                } else {
                    Term::cvt_f_to_si(&na)
                }
            }
            Node::FFromBits(a) => {
                let na = child(a);
                if na == *a {
                    self.clone()
                } else {
                    Term::f_from_bits(&na)
                }
            }
            Node::FBits(a) => {
                let na = child(a);
                if na == *a {
                    self.clone()
                } else {
                    Term::f_bits(&na)
                }
            }
        }
    }
}

fn fold_bin(op: BvOp, x: u64, y: u64, w: u8) -> u64 {
    let m = mask(w);
    let (x, y) = (x & m, y & m);
    match op {
        BvOp::Add => x.wrapping_add(y),
        BvOp::Sub => x.wrapping_sub(y),
        BvOp::Mul => x.wrapping_mul(y),
        // SMT-LIB convention: x/0 = all-ones.
        BvOp::UDiv => x.checked_div(y).unwrap_or(m),
        BvOp::SDiv => {
            let (sx, sy) = (to_signed(x, w), to_signed(y, w));
            if sy == 0 {
                m
            } else {
                sx.wrapping_div(sy) as u64
            }
        }
        BvOp::URem => {
            if y == 0 {
                x
            } else {
                x % y
            }
        }
        BvOp::SRem => {
            let (sx, sy) = (to_signed(x, w), to_signed(y, w));
            if sy == 0 {
                x
            } else {
                sx.wrapping_rem(sy) as u64
            }
        }
        BvOp::And => x & y,
        BvOp::Or => x | y,
        BvOp::Xor => x ^ y,
        BvOp::Shl => {
            if y >= w as u64 {
                0
            } else {
                x.wrapping_shl(y as u32)
            }
        }
        BvOp::LShr => {
            if y >= w as u64 {
                0
            } else {
                x.wrapping_shr(y as u32)
            }
        }
        BvOp::AShr => {
            let sx = to_signed(x, w);
            let sh = (y as u32).min(w as u32 - 1);
            (sx >> sh) as u64
        }
    }
}

/// A concrete value during evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Bitvector value (low `width` bits).
    Bits {
        /// The value.
        value: u64,
        /// The width.
        width: u8,
    },
    /// Boolean.
    Bool(bool),
    /// Double.
    F64(f64),
}

impl Value {
    /// The bitvector payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a bitvector.
    pub fn bits(&self) -> u64 {
        match self {
            Value::Bits { value, .. } => *value,
            other => panic!("bits() on {other:?}"),
        }
    }

    /// The boolean payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a boolean.
    pub fn truth(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            other => panic!("truth() on {other:?}"),
        }
    }
}

/// Errors from concrete evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A variable had no binding in the environment.
    UnboundVar(Arc<str>),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVar(name) => write!(f, "unbound variable `{name}`"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluates a term under a variable assignment.
///
/// # Errors
///
/// Returns [`EvalError::UnboundVar`] for variables missing from `env`.
pub fn eval(term: &Term, env: &HashMap<Arc<str>, u64>) -> Result<Value, EvalError> {
    let mut cache = HashMap::new();
    // Seed the cache children-first so the recursive worker never descends
    // more than one level (deep DAGs would otherwise overflow the stack).
    for node in term.topo_order() {
        let _ = eval_memo(&node, env, &mut cache);
    }
    eval_memo(term, env, &mut cache)
}

/// Memoized worker: terms are DAGs with heavy sharing, so naive recursion
/// is exponential on crypto-sized expressions.
fn eval_memo(
    term: &Term,
    env: &HashMap<Arc<str>, u64>,
    cache: &mut HashMap<usize, Value>,
) -> Result<Value, EvalError> {
    if let Some(&v) = cache.get(&term.id()) {
        return Ok(v);
    }
    let v = eval_inner(term, env, cache)?;
    cache.insert(term.id(), v);
    Ok(v)
}

fn eval_inner(
    term: &Term,
    env: &HashMap<Arc<str>, u64>,
    cache: &mut HashMap<usize, Value>,
) -> Result<Value, EvalError> {
    let bits = |v: Value| v.bits();
    Ok(match term.node() {
        Node::BvConst { value, width } => Value::Bits {
            value: *value,
            width: *width,
        },
        Node::BvVar(v) => {
            let raw = *env
                .get(&v.name)
                .ok_or_else(|| EvalError::UnboundVar(v.name.clone()))?;
            Value::Bits {
                value: raw & mask(v.width),
                width: v.width,
            }
        }
        Node::BvBin { op, a, b } => {
            let w = a.width();
            Value::Bits {
                value: fold_bin(
                    *op,
                    bits(eval_memo(a, env, cache)?),
                    bits(eval_memo(b, env, cache)?),
                    w,
                ) & mask(w),
                width: w,
            }
        }
        Node::BvNot(a) => {
            let w = a.width();
            Value::Bits {
                value: !bits(eval_memo(a, env, cache)?) & mask(w),
                width: w,
            }
        }
        Node::BvNeg(a) => {
            let w = a.width();
            Value::Bits {
                value: bits(eval_memo(a, env, cache)?).wrapping_neg() & mask(w),
                width: w,
            }
        }
        Node::Extract { hi, lo, a } => Value::Bits {
            value: (bits(eval_memo(a, env, cache)?) >> lo) & mask(hi - lo + 1),
            width: hi - lo + 1,
        },
        Node::ZExt { width, a } => Value::Bits {
            value: bits(eval_memo(a, env, cache)?),
            width: *width,
        },
        Node::SExt { width, a } => {
            let w = a.width();
            Value::Bits {
                value: (to_signed(bits(eval_memo(a, env, cache)?), w) as u64) & mask(*width),
                width: *width,
            }
        }
        Node::Concat { a, b } => {
            let wb = b.width();
            Value::Bits {
                value: (bits(eval_memo(a, env, cache)?) << wb) | bits(eval_memo(b, env, cache)?),
                width: a.width() + wb,
            }
        }
        Node::Cmp { op, a, b } => {
            let w = a.width();
            let (x, y) = (
                bits(eval_memo(a, env, cache)?),
                bits(eval_memo(b, env, cache)?),
            );
            Value::Bool(match op {
                CmpOp::Eq => x == y,
                CmpOp::Ult => x < y,
                CmpOp::Ule => x <= y,
                CmpOp::Slt => to_signed(x, w) < to_signed(y, w),
                CmpOp::Sle => to_signed(x, w) <= to_signed(y, w),
            })
        }
        Node::BoolConst(b) => Value::Bool(*b),
        Node::BNot(a) => Value::Bool(!eval_memo(a, env, cache)?.truth()),
        Node::BAnd(a, b) => {
            Value::Bool(eval_memo(a, env, cache)?.truth() && eval_memo(b, env, cache)?.truth())
        }
        Node::BOr(a, b) => {
            Value::Bool(eval_memo(a, env, cache)?.truth() || eval_memo(b, env, cache)?.truth())
        }
        Node::Ite { cond, then, els } => {
            if eval_memo(cond, env, cache)?.truth() {
                eval_memo(then, env, cache)?
            } else {
                eval_memo(els, env, cache)?
            }
        }
        Node::FConst(v) => Value::F64(*v),
        Node::FBin { op, a, b } => {
            let (Value::F64(x), Value::F64(y)) =
                (eval_memo(a, env, cache)?, eval_memo(b, env, cache)?)
            else {
                unreachable!("float op on non-floats")
            };
            Value::F64(match op {
                FOp::Add => x + y,
                FOp::Sub => x - y,
                FOp::Mul => x * y,
                FOp::Div => x / y,
            })
        }
        Node::FNeg(a) => {
            let Value::F64(x) = eval_memo(a, env, cache)? else {
                unreachable!()
            };
            Value::F64(-x)
        }
        Node::FSqrt(a) => {
            let Value::F64(x) = eval_memo(a, env, cache)? else {
                unreachable!()
            };
            Value::F64(x.sqrt())
        }
        Node::FCmp { op, a, b } => {
            let (Value::F64(x), Value::F64(y)) =
                (eval_memo(a, env, cache)?, eval_memo(b, env, cache)?)
            else {
                unreachable!()
            };
            Value::Bool(match op {
                FCmpOp::Eq => x == y,
                FCmpOp::Lt => x < y,
                FCmpOp::Le => x <= y,
            })
        }
        Node::CvtSiToF(a) => Value::F64(bits(eval_memo(a, env, cache)?) as i64 as f64),
        Node::CvtFToSi(a) => {
            let Value::F64(x) = eval_memo(a, env, cache)? else {
                unreachable!()
            };
            Value::Bits {
                value: x as i64 as u64,
                width: 64,
            }
        }
        Node::FFromBits(a) => Value::F64(f64::from_bits(bits(eval_memo(a, env, cache)?))),
        Node::FBits(a) => {
            let Value::F64(x) = eval_memo(a, env, cache)? else {
                unreachable!()
            };
            Value::Bits {
                value: x.to_bits(),
                width: 64,
            }
        }
    })
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node() {
            Node::BvConst { value, width } => write!(f, "{value:#x}[{width}]"),
            Node::BvVar(v) => write!(f, "{}", v.name),
            Node::BvBin { op, a, b } => write!(f, "({op:?} {a} {b})"),
            Node::BvNot(a) => write!(f, "(not {a})"),
            Node::BvNeg(a) => write!(f, "(neg {a})"),
            Node::Extract { hi, lo, a } => write!(f, "{a}[{hi}:{lo}]"),
            Node::ZExt { width, a } => write!(f, "(zext{width} {a})"),
            Node::SExt { width, a } => write!(f, "(sext{width} {a})"),
            Node::Concat { a, b } => write!(f, "({a} ++ {b})"),
            Node::Cmp { op, a, b } => write!(f, "({op:?} {a} {b})"),
            Node::BoolConst(b) => write!(f, "{b}"),
            Node::BNot(a) => write!(f, "(! {a})"),
            Node::BAnd(a, b) => write!(f, "({a} && {b})"),
            Node::BOr(a, b) => write!(f, "({a} || {b})"),
            Node::Ite { cond, then, els } => write!(f, "(ite {cond} {then} {els})"),
            Node::FConst(v) => write!(f, "{v}f"),
            Node::FBin { op, a, b } => write!(f, "(f{op:?} {a} {b})"),
            Node::FNeg(a) => write!(f, "(fneg {a})"),
            Node::FSqrt(a) => write!(f, "(fsqrt {a})"),
            Node::FCmp { op, a, b } => write!(f, "(f{op:?} {a} {b})"),
            Node::CvtSiToF(a) => write!(f, "(si2d {a})"),
            Node::CvtFToSi(a) => write!(f, "(d2si {a})"),
            Node::FFromBits(a) => write!(f, "(fbits<- {a})"),
            Node::FBits(a) => write!(f, "(->fbits {a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding_covers_every_op() {
        let a = Term::bv(12, 8);
        let b = Term::bv(5, 8);
        let cases = [
            (BvOp::Add, 17u64),
            (BvOp::Sub, 7),
            (BvOp::Mul, 60),
            (BvOp::UDiv, 2),
            (BvOp::URem, 2),
            (BvOp::And, 4),
            (BvOp::Or, 13),
            (BvOp::Xor, 9),
            (BvOp::Shl, 12 << 5 & 0xff),
            (BvOp::LShr, 0),
        ];
        for (op, want) in cases {
            assert_eq!(Term::bin(op, &a, &b).as_const(), Some(want), "{op:?}");
        }
    }

    #[test]
    fn signed_ops_respect_width() {
        let a = Term::bv(0xF0, 8); // -16 as i8
        let b = Term::bv(3, 8);
        assert_eq!(
            Term::bin(BvOp::SDiv, &a, &b).as_const(),
            Some((-5i64 as u64) & 0xff)
        );
        assert_eq!(
            Term::bin(BvOp::AShr, &a, &Term::bv(2, 8)).as_const(),
            Some(0xFC)
        );
        assert_eq!(
            Term::cmp(CmpOp::Slt, &a, &b).as_bool_const(),
            Some(true),
            "-16 < 3 signed"
        );
        assert_eq!(Term::cmp(CmpOp::Ult, &a, &b).as_bool_const(), Some(false));
    }

    #[test]
    fn division_by_zero_follows_smtlib() {
        let a = Term::bv(9, 8);
        let z = Term::bv(0, 8);
        assert_eq!(Term::bin(BvOp::UDiv, &a, &z).as_const(), Some(0xff));
        assert_eq!(Term::bin(BvOp::URem, &a, &z).as_const(), Some(9));
    }

    #[test]
    fn identities_simplify() {
        let x = Term::var("x", 32);
        let zero = Term::bv(0, 32);
        let one = Term::bv(1, 32);
        assert_eq!(Term::bin(BvOp::Add, &x, &zero), x);
        assert_eq!(Term::bin(BvOp::Mul, &x, &one), x);
        assert_eq!(Term::bin(BvOp::Mul, &x, &zero).as_const(), Some(0));
        assert_eq!(Term::bin(BvOp::Xor, &x, &x).as_const(), Some(0));
        assert_eq!(Term::bin(BvOp::Sub, &x, &x).as_const(), Some(0));
        assert_eq!(Term::cmp(CmpOp::Eq, &x, &x).as_bool_const(), Some(true));
        assert_eq!(Term::bvnot(&Term::bvnot(&x)), x);
    }

    #[test]
    fn extract_zext_sext_fold() {
        let c = Term::bv(0xABCD, 16);
        assert_eq!(Term::extract(&c, 15, 8).as_const(), Some(0xAB));
        assert_eq!(Term::zext(&c, 32).as_const(), Some(0xABCD));
        assert_eq!(Term::sext(&Term::bv(0x80, 8), 16).as_const(), Some(0xFF80));
        assert_eq!(
            Term::concat(&Term::bv(0xAB, 8), &Term::bv(0xCD, 8)).as_const(),
            Some(0xABCD)
        );
    }

    #[test]
    fn bool_connectives_simplify() {
        let p = Term::cmp(CmpOp::Eq, &Term::var("x", 8), &Term::bv(1, 8));
        assert_eq!(Term::and(&Term::bool(true), &p), p);
        assert_eq!(
            Term::and(&Term::bool(false), &p).as_bool_const(),
            Some(false)
        );
        assert_eq!(Term::or(&Term::bool(false), &p), p);
        assert_eq!(Term::or(&Term::bool(true), &p).as_bool_const(), Some(true));
        assert_eq!(Term::not(&Term::not(&p)), p);
    }

    #[test]
    fn ite_folds_on_constant_condition() {
        let x = Term::var("x", 8);
        let y = Term::var("y", 8);
        assert_eq!(Term::ite(&Term::bool(true), &x, &y), x);
        assert_eq!(Term::ite(&Term::bool(false), &x, &y), y);
        assert_eq!(Term::ite(&Term::cmp(CmpOp::Eq, &x, &y), &x, &x), x);
    }

    #[test]
    fn eval_matches_smart_constructor_folding() {
        let env: HashMap<Arc<str>, u64> = [(Arc::from("x"), 7u64), (Arc::from("y"), 3u64)]
            .into_iter()
            .collect();
        let x = Term::var("x", 16);
        let y = Term::var("y", 16);
        let e = Term::bin(BvOp::Add, &Term::bin(BvOp::Mul, &x, &y), &Term::bv(100, 16));
        assert_eq!(eval(&e, &env).unwrap().bits(), 121);
        let c = Term::cmp(CmpOp::Ult, &x, &y);
        assert!(!eval(&c, &env).unwrap().truth());
    }

    #[test]
    fn eval_reports_unbound_vars() {
        let e = Term::var("missing", 8);
        assert_eq!(
            eval(&e, &HashMap::new()).unwrap_err(),
            EvalError::UnboundVar(Arc::from("missing"))
        );
    }

    #[test]
    fn float_terms_fold_and_evaluate() {
        let x = Term::f64(1024.0);
        let tiny = Term::f64(1e-14);
        let sum = Term::fbin(FOp::Add, &x, &tiny);
        // Absorption: the paper's float-precision example.
        assert_eq!(Term::fcmp(FCmpOp::Eq, &sum, &x).as_bool_const(), Some(true));
        let n = Term::var("n", 64);
        let f = Term::cvt_si_to_f(&n);
        assert!(f.has_float());
        let env: HashMap<Arc<str>, u64> = [(Arc::from("n"), 3u64)].into_iter().collect();
        assert_eq!(eval(&f, &env).unwrap(), Value::F64(3.0));
    }

    #[test]
    fn collect_vars_finds_each_once() {
        let x = Term::var("x", 8);
        let y = Term::var("y", 8);
        let e = Term::bin(BvOp::Add, &Term::bin(BvOp::Xor, &x, &y), &x);
        let mut vars = Vec::new();
        e.collect_vars(&mut vars);
        assert_eq!(vars.len(), 2);
    }

    #[test]
    fn size_counts_shared_nodes_once() {
        let x = Term::var("x", 8);
        let sum = Term::bin(BvOp::Add, &x, &x);
        let double = Term::bin(BvOp::Mul, &sum, &sum);
        assert_eq!(double.size(), 3); // x, sum, double
    }

    #[test]
    fn display_is_nonempty() {
        let x = Term::var("x", 8);
        let e = Term::ite(
            &Term::cmp(CmpOp::Ult, &x, &Term::bv(3, 8)),
            &Term::bvneg(&x),
            &Term::bvnot(&x),
        );
        assert!(!format!("{e}").is_empty());
    }
}
