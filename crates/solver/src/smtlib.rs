//! SMT-LIB 2 rendering of constraint models.
//!
//! The paper's tools describe their constraint models in SMT-LIB (Triton,
//! Angr) or CVC (BAP). This module renders a conjunction of terms as an
//! SMT-LIB 2 script, so extracted path conditions can be inspected or fed
//! to an external solver for cross-checking.

use crate::expr::{BvOp, CmpOp, FCmpOp, FOp, Node, Term, Var};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Renders `constraints` as a complete SMT-LIB 2 script (`QF_BV` when no
/// floating-point terms appear, `QF_BVFP`-flavoured otherwise).
///
/// Shared subterms are bound with `let` so the output stays linear in the
/// DAG size.
pub fn to_smtlib(constraints: &[Term]) -> String {
    let mut out = String::new();
    let has_float = constraints.iter().any(Term::has_float);
    let _ = writeln!(
        out,
        "(set-logic {})",
        if has_float { "QF_BVFP" } else { "QF_BV" }
    );

    let mut vars: Vec<Var> = Vec::new();
    for c in constraints {
        c.collect_vars(&mut vars);
    }
    for v in &vars {
        let _ = writeln!(out, "(declare-const {} (_ BitVec {}))", v.name, v.width);
    }
    let mut printer = Printer {
        memo: HashMap::new(),
    };
    for c in constraints {
        let rendered = printer.print(c);
        let _ = writeln!(out, "(assert {rendered})");
    }
    let _ = writeln!(out, "(check-sat)");
    let _ = writeln!(out, "(get-model)");
    out
}

struct Printer {
    /// Term id → rendered string (memoized; DAG-safe).
    memo: HashMap<usize, String>,
}

impl Printer {
    fn print(&mut self, t: &Term) -> String {
        if let Some(s) = self.memo.get(&t.id()) {
            return s.clone();
        }
        let s = self.print_inner(t);
        self.memo.insert(t.id(), s.clone());
        s
    }

    fn print_inner(&mut self, t: &Term) -> String {
        match t.node() {
            Node::BvConst { value, width } => format!("(_ bv{value} {width})"),
            Node::BvVar(v) => v.name.to_string(),
            Node::BvBin { op, a, b } => {
                let name = match op {
                    BvOp::Add => "bvadd",
                    BvOp::Sub => "bvsub",
                    BvOp::Mul => "bvmul",
                    BvOp::UDiv => "bvudiv",
                    BvOp::SDiv => "bvsdiv",
                    BvOp::URem => "bvurem",
                    BvOp::SRem => "bvsrem",
                    BvOp::And => "bvand",
                    BvOp::Or => "bvor",
                    BvOp::Xor => "bvxor",
                    BvOp::Shl => "bvshl",
                    BvOp::LShr => "bvlshr",
                    BvOp::AShr => "bvashr",
                };
                format!("({name} {} {})", self.print(a), self.print(b))
            }
            Node::BvNot(a) => format!("(bvnot {})", self.print(a)),
            Node::BvNeg(a) => format!("(bvneg {})", self.print(a)),
            Node::Extract { hi, lo, a } => {
                format!("((_ extract {hi} {lo}) {})", self.print(a))
            }
            Node::ZExt { width, a } => {
                let ext = width - a.width();
                format!("((_ zero_extend {ext}) {})", self.print(a))
            }
            Node::SExt { width, a } => {
                let ext = width - a.width();
                format!("((_ sign_extend {ext}) {})", self.print(a))
            }
            Node::Concat { a, b } => {
                format!("(concat {} {})", self.print(a), self.print(b))
            }
            Node::Cmp { op, a, b } => {
                let name = match op {
                    CmpOp::Eq => "=",
                    CmpOp::Ult => "bvult",
                    CmpOp::Ule => "bvule",
                    CmpOp::Slt => "bvslt",
                    CmpOp::Sle => "bvsle",
                };
                format!("({name} {} {})", self.print(a), self.print(b))
            }
            Node::BoolConst(b) => b.to_string(),
            Node::BNot(a) => format!("(not {})", self.print(a)),
            Node::BAnd(a, b) => format!("(and {} {})", self.print(a), self.print(b)),
            Node::BOr(a, b) => format!("(or {} {})", self.print(a), self.print(b)),
            Node::Ite { cond, then, els } => format!(
                "(ite {} {} {})",
                self.print(cond),
                self.print(then),
                self.print(els)
            ),
            Node::FConst(v) => format!("((_ to_fp 11 53) roundNearestTiesToEven {v})"),
            Node::FBin { op, a, b } => {
                let name = match op {
                    FOp::Add => "fp.add",
                    FOp::Sub => "fp.sub",
                    FOp::Mul => "fp.mul",
                    FOp::Div => "fp.div",
                };
                format!(
                    "({name} roundNearestTiesToEven {} {})",
                    self.print(a),
                    self.print(b)
                )
            }
            Node::FNeg(a) => format!("(fp.neg {})", self.print(a)),
            Node::FSqrt(a) => {
                format!("(fp.sqrt roundNearestTiesToEven {})", self.print(a))
            }
            Node::FCmp { op, a, b } => {
                let name = match op {
                    FCmpOp::Eq => "fp.eq",
                    FCmpOp::Lt => "fp.lt",
                    FCmpOp::Le => "fp.leq",
                };
                format!("({name} {} {})", self.print(a), self.print(b))
            }
            Node::CvtSiToF(a) => {
                format!("((_ to_fp 11 53) roundNearestTiesToEven {})", self.print(a))
            }
            Node::CvtFToSi(a) => format!("((_ fp.to_sbv 64) roundTowardZero {})", self.print(a)),
            Node::FFromBits(a) => format!("((_ to_fp 11 53) {})", self.print(a)),
            Node::FBits(a) => format!("(fp.to_ieee_bv {})", self.print(a)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_a_bitvector_script() {
        let x = Term::var("x", 8);
        let c = Term::cmp(
            CmpOp::Eq,
            &Term::bin(BvOp::Add, &x, &Term::bv(5, 8)),
            &Term::bv(12, 8),
        );
        let script = to_smtlib(&[c]);
        assert!(script.contains("(set-logic QF_BV)"));
        assert!(script.contains("(declare-const x (_ BitVec 8))"));
        assert!(script.contains("(assert (= (bvadd x (_ bv5 8)) (_ bv12 8)))"));
        assert!(script.contains("(check-sat)"));
    }

    #[test]
    fn renders_comparisons_extensions_and_ite() {
        let x = Term::var("x", 16);
        let narrowed = Term::extract(&x, 7, 0);
        let widened = Term::sext(&narrowed, 16);
        let c = Term::cmp(
            CmpOp::Slt,
            &Term::ite(&Term::cmp(CmpOp::Ult, &x, &Term::bv(10, 16)), &widened, &x),
            &Term::bv(3, 16),
        );
        let script = to_smtlib(&[c]);
        assert!(script.contains("(_ extract 7 0)"));
        assert!(script.contains("(_ sign_extend 8)"));
        assert!(script.contains("bvslt"));
        assert!(script.contains("ite"));
    }

    #[test]
    fn float_scripts_use_the_fp_theory() {
        let n = Term::var("n", 64);
        let c = Term::fcmp(FCmpOp::Lt, &Term::f64(0.0), &Term::cvt_si_to_f(&n));
        let script = to_smtlib(&[c]);
        assert!(script.contains("QF_BVFP"));
        assert!(script.contains("fp.lt"));
        assert!(script.contains("to_fp"));
    }

    #[test]
    fn variables_are_declared_once() {
        let x = Term::var("x", 8);
        let c1 = Term::cmp(CmpOp::Ult, &x, &Term::bv(9, 8));
        let c2 = Term::cmp(CmpOp::Ult, &Term::bv(1, 8), &x);
        let script = to_smtlib(&[c1, c2]);
        assert_eq!(script.matches("declare-const x").count(), 1);
        assert_eq!(script.matches("(assert").count(), 2);
    }
}
