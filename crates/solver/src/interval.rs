//! Unsigned interval analysis used as a cheap pre-solver.
//!
//! Each bitvector term gets a conservative unsigned range `[lo, hi]`. When
//! a constraint's ranges are incompatible (e.g. `Eq` of disjoint ranges),
//! the whole query is unsatisfiable without touching the SAT solver.
//!
//! Stage 2 of the word-level query optimizer builds on the same ranges
//! through [`prune`]: constraints that hold for *every* assignment
//! (tautologies) are dropped, constraints that hold for none short-circuit
//! the query to unsat, and subterms whose range collapses to a single
//! point are substituted by that constant before bit-blasting.

use crate::expr::{BvOp, CmpOp, Node, Term};
use crate::idhash::IdMap;
use std::cell::RefCell;
use std::collections::HashMap;

// The interval arithmetic itself is shared with the static analyzer
// (`bomblab-sa`); this module keeps the term-DAG traversal and re-exports
// the domain so `bomblab_solver::interval::Range` stays a stable path.
pub use bomblab_interval::Range;

/// Computes a conservative unsigned range for a bitvector term.
pub fn range_of(t: &Term) -> Range {
    let mut cache = HashMap::new();
    seed_ranges(t, &mut cache);
    range_of_memo(t, &mut cache)
}

/// Fills the cache children-first (iteratively) so the recursive worker
/// stays shallow on deep DAGs.
fn seed_ranges(t: &Term, cache: &mut HashMap<usize, Range>) {
    for node in t.topo_order() {
        if matches!(node.sort(), crate::expr::Sort::Bv(_)) {
            let _ = range_of_memo(&node, cache);
        }
    }
}

/// Memoized worker — terms are DAGs with heavy sharing (crypto constraints
/// reuse subterms thousands of times), so naive recursion is exponential.
fn range_of_memo(t: &Term, cache: &mut HashMap<usize, Range>) -> Range {
    if let Some(&r) = cache.get(&t.id()) {
        return r;
    }
    let r = range_of_inner(t, cache);
    cache.insert(t.id(), r);
    r
}

fn range_of_inner(t: &Term, cache: &mut HashMap<usize, Range>) -> Range {
    let width = t.width();
    let full = Range::full(width);
    match t.node() {
        Node::BvConst { value, .. } => Range::point(*value),
        Node::BvBin { op, a, b } => {
            let ra = range_of_memo(a, cache);
            let rb = range_of_memo(b, cache);
            match op {
                BvOp::Add => match (ra.hi.checked_add(rb.hi), ra.lo.checked_add(rb.lo)) {
                    (Some(hi), Some(lo)) if hi <= full.hi => Range { lo, hi },
                    _ => full,
                },
                BvOp::Sub => {
                    if ra.lo >= rb.hi {
                        Range {
                            lo: ra.lo - rb.hi,
                            hi: ra.hi - rb.lo,
                        }
                    } else {
                        full
                    }
                }
                BvOp::Mul => match (ra.hi.checked_mul(rb.hi), ra.lo.checked_mul(rb.lo)) {
                    (Some(hi), Some(lo)) if hi <= full.hi => Range { lo, hi },
                    _ => full,
                },
                BvOp::And => Range {
                    lo: 0,
                    hi: ra.hi.min(rb.hi),
                },
                BvOp::Or => Range {
                    lo: ra.lo.max(rb.lo),
                    hi: full.hi,
                },
                BvOp::UDiv => match ra.hi.checked_div(rb.lo) {
                    // rb.hi >= rb.lo > 0, so the inner division is safe.
                    Some(hi) => Range {
                        lo: ra.lo / rb.hi,
                        hi,
                    },
                    None => full,
                },
                BvOp::URem => {
                    // a % b <= a always, and < b when b != 0. With the
                    // URem(a, 0) = a convention the divisor bound only
                    // applies when the divisor range excludes zero.
                    let hi = if rb.lo > 0 {
                        (rb.hi - 1).min(ra.hi)
                    } else {
                        ra.hi
                    };
                    Range { lo: 0, hi }
                }
                BvOp::LShr => Range {
                    lo: 0,
                    hi: ra.hi >> rb.lo.min(63),
                },
                _ => full,
            }
        }
        Node::ZExt { a, .. } => range_of_memo(a, cache),
        Node::Extract { hi, lo, a } => {
            let inner = range_of_memo(a, cache);
            let w = hi - lo + 1;
            if *lo == 0 && inner.hi <= Range::full(w).hi {
                inner
            } else {
                Range::full(w)
            }
        }
        Node::Ite { then, els, .. } => {
            let rt = range_of_memo(then, cache);
            let re = range_of_memo(els, cache);
            Range {
                lo: rt.lo.min(re.lo),
                hi: rt.hi.max(re.hi),
            }
        }
        _ => full,
    }
}

/// Fast check: is the boolean constraint definitely unsatisfiable by
/// interval reasoning alone?
pub fn definitely_false(t: &Term) -> bool {
    let mut cache = HashMap::new();
    seed_ranges(t, &mut cache);
    false_with(t, &mut cache)
}

fn false_with(t: &Term, cache: &mut HashMap<usize, Range>) -> bool {
    match t.node() {
        Node::BoolConst(b) => !b,
        Node::Cmp { op, a, b } => {
            let ra = range_of_memo(a, cache);
            let rb = range_of_memo(b, cache);
            match op {
                CmpOp::Eq => ra.disjoint(&rb),
                CmpOp::Ult => ra.lo >= rb.hi, // a >= b everywhere
                CmpOp::Ule => ra.lo > rb.hi,
                // Signed comparisons are left to the SAT solver.
                CmpOp::Slt | CmpOp::Sle => false,
            }
        }
        Node::BAnd(a, b) => false_with(a, cache) || false_with(b, cache),
        Node::BOr(a, b) => false_with(a, cache) && false_with(b, cache),
        _ => false,
    }
}

/// Fast check: does the boolean constraint hold for *every* assignment,
/// by interval reasoning alone? Such tautologies can be dropped from a
/// query without changing its models.
pub fn definitely_true(t: &Term) -> bool {
    let mut cache = HashMap::new();
    seed_ranges(t, &mut cache);
    true_with(t, &mut cache)
}

fn true_with(t: &Term, cache: &mut HashMap<usize, Range>) -> bool {
    match t.node() {
        Node::BoolConst(b) => *b,
        Node::Cmp { op, a, b } => {
            let ra = range_of_memo(a, cache);
            let rb = range_of_memo(b, cache);
            match op {
                // Equal only when both sides are the same single point.
                CmpOp::Eq => ra.lo == ra.hi && rb.lo == rb.hi && ra.lo == rb.lo,
                CmpOp::Ult => ra.hi < rb.lo,
                CmpOp::Ule => ra.hi <= rb.lo,
                CmpOp::Slt | CmpOp::Sle => false,
            }
        }
        Node::BAnd(a, b) => true_with(a, cache) && true_with(b, cache),
        Node::BOr(a, b) => true_with(a, cache) || true_with(b, cache),
        Node::BNot(a) => false_with(a, cache),
        _ => false,
    }
}

/// Extracts a shallow range fact `x ∈ [lo, hi]` from one constraint, if
/// the constraint is a single-variable comparison against a constant
/// (possibly negated). The returned range is always a *superset* of the
/// constraint's solution set, so an empty meet across several facts about
/// the same variable is a sound word-level unsatisfiability proof. Most
/// shapes are exact; `x != k` is only representable when `k` sits at an
/// end of the domain, and signed comparisons are left alone (stage-1
/// narrowing rewrites the interesting ones to unsigned forms first).
pub fn guard_range(c: &Term) -> Option<(crate::expr::Var, Range)> {
    let (inner, neg) = match c.node() {
        Node::BNot(a) => (a, true),
        _ => (c, false),
    };
    let Node::Cmp { op, a, b } = inner.node() else {
        return None;
    };
    let (var_term, k, var_left) = match (a.node(), b.as_const()) {
        (Node::BvVar(_), Some(k)) => (a, k, true),
        _ => match (a.as_const(), b.node()) {
            (Some(k), Node::BvVar(_)) => (b, k, false),
            _ => return None,
        },
    };
    let Node::BvVar(v) = var_term.node() else {
        return None;
    };
    let max = Range::full(var_term.width()).hi;
    let r = match (op, var_left, neg) {
        (CmpOp::Eq, _, false) => Range::point(k),
        (CmpOp::Eq, _, true) if k == 0 => Range { lo: 1, hi: max },
        (CmpOp::Eq, _, true) if k == max => Range { lo: 0, hi: max - 1 },
        // x < k  /  !(x < k)
        (CmpOp::Ult, true, false) if k > 0 => Range { lo: 0, hi: k - 1 },
        (CmpOp::Ult, true, true) => Range { lo: k, hi: max },
        // k < x  /  !(k < x)
        (CmpOp::Ult, false, false) if k < max => Range { lo: k + 1, hi: max },
        (CmpOp::Ult, false, true) => Range { lo: 0, hi: k },
        // x <= k  /  !(x <= k)
        (CmpOp::Ule, true, false) => Range { lo: 0, hi: k },
        (CmpOp::Ule, true, true) if k < max => Range { lo: k + 1, hi: max },
        // k <= x  /  !(k <= x)
        (CmpOp::Ule, false, false) => Range { lo: k, hi: max },
        (CmpOp::Ule, false, true) if k > 0 => Range { lo: 0, hi: k - 1 },
        _ => return None,
    };
    Some((v.clone(), r))
}

/// Verdict of stage-2 interval pruning for one constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pruned {
    /// Holds for every assignment — drop the constraint.
    True,
    /// Holds for no assignment — the whole query is unsat.
    False,
    /// Kept, possibly with singleton-range subterms replaced by their
    /// constant value (pointer-equal to the input when nothing changed).
    Kept(Term),
}

/// Entries above this cap trigger a memo reset (each entry pins a DAG).
const PRUNE_MEMO_CAP: usize = 1 << 16;

thread_local! {
    /// constraint id → (constraint (pins the id), verdict). A constraint's
    /// verdict is a pure function of the term, so the memo survives across
    /// queries and across the throwaway solvers of the paper profiles.
    static PRUNE_MEMO: RefCell<IdMap<usize, (Term, Pruned)>> =
        RefCell::new(IdMap::default());
}

/// Interval-prunes one constraint: tautology / contradiction detection
/// plus singleton substitution, sharing a single range computation and
/// memoized per thread.
pub fn prune(c: &Term) -> Pruned {
    if let Some(hit) = PRUNE_MEMO.with(|m| m.borrow().get(&c.id()).map(|(_, v)| v.clone())) {
        return hit;
    }
    let mut cache = HashMap::new();
    seed_ranges(c, &mut cache);
    let verdict = if true_with(c, &mut cache) {
        Pruned::True
    } else if false_with(c, &mut cache) {
        Pruned::False
    } else {
        Pruned::Kept(substitute_singletons(c, &mut cache))
    };
    PRUNE_MEMO.with(|m| {
        let mut m = m.borrow_mut();
        if m.len() > PRUNE_MEMO_CAP {
            m.clear();
        }
        m.insert(c.id(), (c.clone(), verdict.clone()));
    });
    verdict
}

/// Replaces every bitvector subterm whose range is a single point with
/// that constant, rebuilding parents through the smart constructors (which
/// fold any comparisons or arithmetic the substitution exposes). Sound
/// because the transfer functions are over-approximations: a point range
/// means the subterm evaluates to that value under *every* assignment.
fn substitute_singletons(c: &Term, cache: &mut HashMap<usize, Range>) -> Term {
    let mut rebuilt: IdMap<usize, Term> = IdMap::default();
    for node in c.topo_order() {
        let mapped = node.rebuild_shallow(|child| match rebuilt.get(&child.id()) {
            Some(t) => t.clone(),
            None => child.clone(),
        });
        let mapped =
            if matches!(mapped.sort(), crate::expr::Sort::Bv(_)) && mapped.as_const().is_none() {
                // Ranges were computed on the *original* DAG; look up by the
                // original node's id, which is sound because rebuilds preserve
                // semantics (same value ⇒ same point).
                match cache.get(&node.id()) {
                    Some(r) if r.lo == r.hi => Term::bv(r.lo, mapped.width()),
                    _ => mapped,
                }
            } else {
                mapped
            };
        rebuilt.insert(node.id(), mapped);
    }
    match rebuilt.remove(&c.id()) {
        Some(t) => t,
        None => c.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_of_basic_shapes() {
        let x = Term::var("x", 8);
        assert_eq!(range_of(&x), Range { lo: 0, hi: 255 });
        assert_eq!(range_of(&Term::bv(42, 8)), Range::point(42));
        let sum = Term::bin(BvOp::Add, &Term::bv(10, 8), &Term::bv(20, 8));
        assert_eq!(range_of(&sum), Range::point(30));
        let masked = Term::bin(BvOp::And, &x, &Term::bv(0x0F, 8));
        assert_eq!(range_of(&masked).hi, 0x0F);
        let rem = Term::bin(BvOp::URem, &x, &Term::bv(10, 8));
        assert_eq!(range_of(&rem), Range { lo: 0, hi: 9 });
    }

    #[test]
    fn overflowing_add_widens_to_full() {
        let x = Term::var("x", 8);
        let sum = Term::bin(BvOp::Add, &x, &Term::bv(200, 8));
        assert_eq!(range_of(&sum), Range::full(8));
    }

    #[test]
    fn detects_impossible_equalities() {
        let x = Term::var("x", 8);
        let masked = Term::bin(BvOp::And, &x, &Term::bv(0x0F, 8));
        let c = Term::cmp(CmpOp::Eq, &masked, &Term::bv(100, 8));
        assert!(definitely_false(&c));
        let ok = Term::cmp(CmpOp::Eq, &masked, &Term::bv(7, 8));
        assert!(!definitely_false(&ok));
    }

    #[test]
    fn detects_impossible_orderings() {
        let x = Term::var("x", 8);
        let rem = Term::bin(BvOp::URem, &x, &Term::bv(4, 8));
        // rem < 4, so 10 < rem is impossible; encoded as Ult(10, rem) -> a.lo(10) >= b.hi(3)
        let c = Term::cmp(CmpOp::Ult, &Term::bv(10, 8), &rem);
        assert!(definitely_false(&c));
    }

    #[test]
    fn guard_ranges_from_shallow_shapes() {
        let x = Term::var("x", 8);
        let g = |t: &Term| guard_range(t).map(|(v, r)| (v.name.to_string(), r.lo, r.hi));
        assert_eq!(
            g(&Term::cmp(CmpOp::Eq, &x, &Term::bv(45, 8))),
            Some(("x".into(), 45, 45))
        );
        assert_eq!(
            g(&Term::not(&Term::cmp(CmpOp::Ult, &x, &Term::bv(48, 8)))),
            Some(("x".into(), 48, 255))
        );
        assert_eq!(
            g(&Term::cmp(CmpOp::Ult, &x, &Term::bv(58, 8))),
            Some(("x".into(), 0, 57))
        );
        assert_eq!(
            g(&Term::cmp(CmpOp::Ult, &Term::bv(57, 8), &x)),
            Some(("x".into(), 58, 255))
        );
        assert_eq!(
            g(&Term::not(&Term::cmp(CmpOp::Eq, &x, &Term::bv(0, 8)))),
            Some(("x".into(), 1, 255))
        );
        // x != k for interior k is not an interval: no fact.
        assert_eq!(
            g(&Term::not(&Term::cmp(CmpOp::Eq, &x, &Term::bv(7, 8)))),
            None
        );
        // Non-variable left sides contribute nothing.
        let masked = Term::bin(BvOp::And, &x, &Term::bv(0x0F, 8));
        assert_eq!(g(&Term::cmp(CmpOp::Ult, &masked, &Term::bv(5, 8))), None);
    }

    #[test]
    fn and_or_combine() {
        let f = Term::bool(false);
        let t = Term::cmp(CmpOp::Eq, &Term::var("x", 8), &Term::bv(1, 8));
        assert!(definitely_false(&Term::raw_test_and(&f, &t)));
    }

    impl Term {
        /// Builds an unsimplified BAnd for testing `definitely_false`.
        fn raw_test_and(a: &Term, b: &Term) -> Term {
            // The smart constructor would fold this; go through Or of two
            // Ands to keep a composite node.
            Term::or(&Term::and(a, b), &Term::and(a, b))
        }
    }
}
