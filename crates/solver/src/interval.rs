//! Unsigned interval analysis used as a cheap pre-solver.
//!
//! Each bitvector term gets a conservative unsigned range `[lo, hi]`. When
//! a constraint's ranges are incompatible (e.g. `Eq` of disjoint ranges),
//! the whole query is unsatisfiable without touching the SAT solver.

use crate::expr::{BvOp, CmpOp, Node, Term};
use std::collections::HashMap;

// The interval arithmetic itself is shared with the static analyzer
// (`bomblab-sa`); this module keeps the term-DAG traversal and re-exports
// the domain so `bomblab_solver::interval::Range` stays a stable path.
pub use bomblab_interval::Range;

/// Computes a conservative unsigned range for a bitvector term.
pub fn range_of(t: &Term) -> Range {
    let mut cache = HashMap::new();
    seed_ranges(t, &mut cache);
    range_of_memo(t, &mut cache)
}

/// Fills the cache children-first (iteratively) so the recursive worker
/// stays shallow on deep DAGs.
fn seed_ranges(t: &Term, cache: &mut HashMap<usize, Range>) {
    for node in t.topo_order() {
        if matches!(node.sort(), crate::expr::Sort::Bv(_)) {
            let _ = range_of_memo(&node, cache);
        }
    }
}

/// Memoized worker — terms are DAGs with heavy sharing (crypto constraints
/// reuse subterms thousands of times), so naive recursion is exponential.
fn range_of_memo(t: &Term, cache: &mut HashMap<usize, Range>) -> Range {
    if let Some(&r) = cache.get(&t.id()) {
        return r;
    }
    let r = range_of_inner(t, cache);
    cache.insert(t.id(), r);
    r
}

fn range_of_inner(t: &Term, cache: &mut HashMap<usize, Range>) -> Range {
    let width = t.width();
    let full = Range::full(width);
    match t.node() {
        Node::BvConst { value, .. } => Range::point(*value),
        Node::BvBin { op, a, b } => {
            let ra = range_of_memo(a, cache);
            let rb = range_of_memo(b, cache);
            match op {
                BvOp::Add => match (ra.hi.checked_add(rb.hi), ra.lo.checked_add(rb.lo)) {
                    (Some(hi), Some(lo)) if hi <= full.hi => Range { lo, hi },
                    _ => full,
                },
                BvOp::Sub => {
                    if ra.lo >= rb.hi {
                        Range {
                            lo: ra.lo - rb.hi,
                            hi: ra.hi - rb.lo,
                        }
                    } else {
                        full
                    }
                }
                BvOp::Mul => match (ra.hi.checked_mul(rb.hi), ra.lo.checked_mul(rb.lo)) {
                    (Some(hi), Some(lo)) if hi <= full.hi => Range { lo, hi },
                    _ => full,
                },
                BvOp::And => Range {
                    lo: 0,
                    hi: ra.hi.min(rb.hi),
                },
                BvOp::Or => Range {
                    lo: ra.lo.max(rb.lo),
                    hi: full.hi,
                },
                BvOp::UDiv => match ra.hi.checked_div(rb.lo) {
                    // rb.hi >= rb.lo > 0, so the inner division is safe.
                    Some(hi) => Range {
                        lo: ra.lo / rb.hi,
                        hi,
                    },
                    None => full,
                },
                BvOp::URem => {
                    // a % b <= a always, and < b when b != 0. With the
                    // URem(a, 0) = a convention the divisor bound only
                    // applies when the divisor range excludes zero.
                    let hi = if rb.lo > 0 {
                        (rb.hi - 1).min(ra.hi)
                    } else {
                        ra.hi
                    };
                    Range { lo: 0, hi }
                }
                BvOp::LShr => Range {
                    lo: 0,
                    hi: ra.hi >> rb.lo.min(63),
                },
                _ => full,
            }
        }
        Node::ZExt { a, .. } => range_of_memo(a, cache),
        Node::Extract { hi, lo, a } => {
            let inner = range_of_memo(a, cache);
            let w = hi - lo + 1;
            if *lo == 0 && inner.hi <= Range::full(w).hi {
                inner
            } else {
                Range::full(w)
            }
        }
        Node::Ite { then, els, .. } => {
            let rt = range_of_memo(then, cache);
            let re = range_of_memo(els, cache);
            Range {
                lo: rt.lo.min(re.lo),
                hi: rt.hi.max(re.hi),
            }
        }
        _ => full,
    }
}

/// Fast check: is the boolean constraint definitely unsatisfiable by
/// interval reasoning alone?
pub fn definitely_false(t: &Term) -> bool {
    match t.node() {
        Node::BoolConst(b) => !b,
        Node::Cmp { op, a, b } => {
            let ra = range_of(a);
            let rb = range_of(b);
            match op {
                CmpOp::Eq => ra.disjoint(&rb),
                CmpOp::Ult => ra.lo >= rb.hi, // a >= b everywhere
                CmpOp::Ule => ra.lo > rb.hi,
                // Signed comparisons are left to the SAT solver.
                CmpOp::Slt | CmpOp::Sle => false,
            }
        }
        Node::BAnd(a, b) => definitely_false(a) || definitely_false(b),
        Node::BOr(a, b) => definitely_false(a) && definitely_false(b),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_of_basic_shapes() {
        let x = Term::var("x", 8);
        assert_eq!(range_of(&x), Range { lo: 0, hi: 255 });
        assert_eq!(range_of(&Term::bv(42, 8)), Range::point(42));
        let sum = Term::bin(BvOp::Add, &Term::bv(10, 8), &Term::bv(20, 8));
        assert_eq!(range_of(&sum), Range::point(30));
        let masked = Term::bin(BvOp::And, &x, &Term::bv(0x0F, 8));
        assert_eq!(range_of(&masked).hi, 0x0F);
        let rem = Term::bin(BvOp::URem, &x, &Term::bv(10, 8));
        assert_eq!(range_of(&rem), Range { lo: 0, hi: 9 });
    }

    #[test]
    fn overflowing_add_widens_to_full() {
        let x = Term::var("x", 8);
        let sum = Term::bin(BvOp::Add, &x, &Term::bv(200, 8));
        assert_eq!(range_of(&sum), Range::full(8));
    }

    #[test]
    fn detects_impossible_equalities() {
        let x = Term::var("x", 8);
        let masked = Term::bin(BvOp::And, &x, &Term::bv(0x0F, 8));
        let c = Term::cmp(CmpOp::Eq, &masked, &Term::bv(100, 8));
        assert!(definitely_false(&c));
        let ok = Term::cmp(CmpOp::Eq, &masked, &Term::bv(7, 8));
        assert!(!definitely_false(&ok));
    }

    #[test]
    fn detects_impossible_orderings() {
        let x = Term::var("x", 8);
        let rem = Term::bin(BvOp::URem, &x, &Term::bv(4, 8));
        // rem < 4, so 10 < rem is impossible; encoded as Ult(10, rem) -> a.lo(10) >= b.hi(3)
        let c = Term::cmp(CmpOp::Ult, &Term::bv(10, 8), &rem);
        assert!(definitely_false(&c));
    }

    #[test]
    fn and_or_combine() {
        let f = Term::bool(false);
        let t = Term::cmp(CmpOp::Eq, &Term::var("x", 8), &Term::bv(1, 8));
        assert!(definitely_false(&Term::raw_test_and(&f, &t)));
    }

    impl Term {
        /// Builds an unsimplified BAnd for testing `definitely_false`.
        fn raw_test_and(a: &Term, b: &Term) -> Term {
            // The smart constructor would fold this; go through Or of two
            // Ands to keep a composite node.
            Term::or(&Term::and(a, b), &Term::and(a, b))
        }
    }
}
