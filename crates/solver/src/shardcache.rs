//! Sharded in-memory global solver cache: cross-cell model reuse.
//!
//! The study runner solves 22 bombs × 4 profiles, and the bombs are not
//! strangers to each other — argv-digit guards, length checks, and table
//! bounds recur across the dataset, so the cone-of-influence slices the
//! optimizer carves out (`slice::partition`) repeat *across cells*, not
//! just across rounds. The per-attempt query cache cannot see that, and
//! the [`DiskCache`](crate::diskcache::DiskCache) only helps across
//! *processes*. This cache sits between them: one `Arc<ShardCache>` per
//! study, shared by every worker thread, keyed by the same process-stable
//! slice hashes as the disk store ([`crate::diskcache::disk_key`] — FNV-1a
//! over the SMT-LIB rendering, so keys agree across threads even though
//! hash-consed term ids do not).
//!
//! Concurrency: N-way sharding with one `RwLock` per shard. Lookups take
//! a read lock on a single shard; stores take a write lock on a single
//! shard; no global lock exists, so worker threads contend only on true
//! key-space collisions.
//!
//! Soundness discipline (identical to the disk cache):
//!
//! * **Read-through hits are re-verified.** A stored model is untrusted
//!   input; it answers a slice only after concrete evaluation confirms it
//!   satisfies every slice constraint. A failed verification counts as a
//!   rejection and the pipeline proceeds as a miss — a poisoned entry can
//!   cost time, never correctness.
//! * **Stateless profiles attach write-only.** Paper-tool profiles
//!   (`incremental_solver: false`) warm the cache but never read it, so
//!   their per-query cost model — and with it Table II — is byte-identical
//!   with the cache armed or not.
//!
//! The `BOMBLAB_SHARDCACHE_POISON` environment variable corrupts every
//! stored binding (CI's poisoning smoke): with it set, every read-through
//! lookup must be rejected by verification and the report must not move.

use crate::Model;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

/// Number of independently locked shards. Eight is comfortably above any
/// realistic `--jobs` on the study's dataset sizes while keeping the
/// idle-memory cost of the empty cache trivial.
pub const NUM_SHARDS: usize = 8;

/// One stored model: the slice's variable bindings in sorted order.
type Bindings = Vec<(Arc<str>, u64)>;

/// A sharded, thread-safe model store shared by every solver of a study.
#[derive(Debug, Default)]
pub struct ShardCache {
    shards: [RwLock<HashMap<u64, Bindings>>; NUM_SHARDS],
    hits: AtomicU64,
    stores: AtomicU64,
    rejected: AtomicU64,
    /// Corrupt every stored binding (fault hook for the verification
    /// path; armed by `BOMBLAB_SHARDCACHE_POISON`).
    poison: bool,
}

impl ShardCache {
    /// Creates an empty cache, arming the poison hook iff the
    /// `BOMBLAB_SHARDCACHE_POISON` environment variable is set.
    #[must_use]
    pub fn new() -> ShardCache {
        ShardCache {
            poison: std::env::var_os("BOMBLAB_SHARDCACHE_POISON").is_some(),
            ..ShardCache::default()
        }
    }

    /// An empty cache that corrupts everything it stores, regardless of
    /// the environment (tests of the verification path).
    #[must_use]
    pub fn poisoned() -> ShardCache {
        ShardCache {
            poison: true,
            ..ShardCache::default()
        }
    }

    /// `new()`, boxed into the `Arc` every consumer wants anyway.
    #[must_use]
    pub fn shared() -> Arc<ShardCache> {
        Arc::new(ShardCache::new())
    }

    fn shard(&self, key: u64) -> &RwLock<HashMap<u64, Bindings>> {
        // Spread FNV keys across shards by their high bits (the low bits
        // already picked the disk segment, keeping the two stripings
        // independent).
        &self.shards[(key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 61) as usize % NUM_SHARDS]
    }

    /// Returns the stored bindings for `key`, if any. The caller owns
    /// verification — this is raw, untrusted data.
    #[must_use]
    pub fn lookup(&self, key: u64) -> Option<Bindings> {
        self.shard(key)
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
            .cloned()
    }

    /// Stores a satisfying slice model under `key`. First writer wins —
    /// verification on the read path is the soundness authority, so
    /// which thread's (equally valid) model survives does not matter.
    /// Returns whether this call inserted the entry.
    pub fn record(&self, key: u64, model: &Model) -> bool {
        let mut bindings: Bindings = model.iter().map(|(n, v)| (n.clone(), *v)).collect();
        if self.poison {
            for (_, v) in &mut bindings {
                *v ^= 0x5A5A_5A5A_5A5A_5A5A;
            }
        }
        let mut shard = self
            .shard(key)
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        if shard.contains_key(&key) {
            return false;
        }
        shard.insert(key, bindings);
        self.stores.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Counts one verified read-through hit.
    pub fn note_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one model rejected by read-through verification.
    pub fn note_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Verified read-through hits across the cache's lifetime.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Models stored across the cache's lifetime.
    #[must_use]
    pub fn stores(&self) -> u64 {
        self.stores.load(Ordering::Relaxed)
    }

    /// Models rejected by read-through verification across the cache's
    /// lifetime.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Number of stored entries, over all shards.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(pairs: &[(&str, u64)]) -> Model {
        let mut m = Model::default();
        for &(n, v) in pairs {
            m.insert(n, v);
        }
        m
    }

    #[test]
    fn record_then_lookup_round_trips() {
        let cache = ShardCache::default();
        assert!(cache.lookup(42).is_none());
        assert!(cache.record(42, &model(&[("x", 7), ("y", 9)])));
        let got = cache.lookup(42).expect("stored entry");
        assert_eq!(
            got.iter()
                .map(|(n, v)| (n.as_ref(), *v))
                .collect::<Vec<_>>(),
            vec![("x", 7), ("y", 9)]
        );
        assert_eq!(cache.stores(), 1);
        assert_eq!(cache.entries(), 1);
    }

    #[test]
    fn first_writer_wins() {
        let cache = ShardCache::default();
        assert!(cache.record(1, &model(&[("x", 1)])));
        assert!(!cache.record(1, &model(&[("x", 2)])));
        assert_eq!(cache.lookup(1).expect("entry")[0].1, 1);
        assert_eq!(cache.stores(), 1);
    }

    #[test]
    fn keys_spread_over_multiple_shards() {
        let cache = ShardCache::default();
        for key in 0..256u64 {
            cache.record(key, &model(&[("x", key)]));
        }
        let populated = cache
            .shards
            .iter()
            .filter(|s| !s.read().unwrap().is_empty())
            .count();
        assert!(populated > 1, "all 256 keys landed in one shard");
        assert_eq!(cache.entries(), 256);
    }

    #[test]
    fn poisoned_store_corrupts_bindings() {
        let cache = ShardCache::poisoned();
        cache.record(9, &model(&[("x", 7)]));
        let got = cache.lookup(9).expect("entry");
        assert_ne!(got[0].1, 7, "poison must corrupt the stored value");
    }

    #[test]
    fn concurrent_writers_and_readers_agree() {
        let cache = Arc::new(ShardCache::default());
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for key in 0..64 {
                        cache.record(key, &model(&[("x", key)]));
                        assert!(cache.lookup(key).is_some());
                    }
                    let _ = t;
                });
            }
        });
        assert_eq!(cache.entries(), 64);
        assert_eq!(cache.stores(), 64, "exactly one writer won each key");
    }
}
