//! Tseitin bit-blasting of bitvector terms into CNF.
//!
//! Every bitvector term becomes a vector of SAT literals (LSB first);
//! boolean terms become single literals. Floating-point nodes cannot be
//! blasted — they are handled by the float fallback in [`crate::Solver::check`].

use crate::expr::{BvOp, CmpOp, Node, Term, Var};
use crate::sat::{Lit, SatResult, SatSolver};
use std::collections::HashMap;
use std::fmt;

/// Errors during bit-blasting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlastError {
    /// The formula contains floating-point terms.
    Float,
}

impl fmt::Display for BlastError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlastError::Float => write!(f, "formula contains floating-point terms"),
        }
    }
}

impl std::error::Error for BlastError {}

/// Result of blasting a conjunction of boolean terms.
#[derive(Debug)]
pub struct Blasted {
    /// The CNF, ready to solve.
    pub solver: SatSolver,
    /// Free variable → SAT variable per bit (LSB first).
    pub vars: HashMap<Var, Vec<u32>>,
}

impl Blasted {
    /// Reconstructs the value of `var` from a SAT model.
    pub fn extract(&self, var: &Var, model: &[bool]) -> u64 {
        let mut v = 0u64;
        if let Some(bits) = self.vars.get(var) {
            for (i, &b) in bits.iter().enumerate() {
                if model[b as usize] {
                    v |= 1 << i;
                }
            }
        }
        v
    }
}

/// Blasts `constraints` (all boolean-sorted) into CNF.
///
/// # Errors
///
/// Returns [`BlastError::Float`] if any constraint contains floating-point
/// nodes.
///
/// # Panics
///
/// Panics if a constraint is not boolean-sorted.
pub fn blast(constraints: &[Term]) -> Result<Blasted, BlastError> {
    let mut b = Blaster::new();
    for c in constraints {
        assert_eq!(
            c.sort(),
            crate::expr::Sort::Bool,
            "constraints must be boolean"
        );
        // Populate the caches children-first so the recursive workers
        // never descend more than one level on deep DAGs.
        for node in c.topo_order() {
            match node.sort() {
                crate::expr::Sort::Bv(_) => {
                    b.blast_bv(&node)?;
                }
                crate::expr::Sort::Bool => {
                    b.blast_bool(&node)?;
                }
                crate::expr::Sort::F64 => return Err(BlastError::Float),
            }
        }
        let l = b.blast_bool(c)?;
        b.sat.add_clause(&[l]);
    }
    Ok(Blasted {
        solver: b.sat,
        vars: b.var_bits,
    })
}

/// Incremental blasting session: keeps the SAT solver, the term → literal
/// caches, and learnt clauses alive across queries. Each distinct constraint
/// is Tseitin-encoded **once** into an indicator literal; a query for a
/// constraint set is then a [`SatSolver::solve_with_assumptions`] call over
/// the corresponding literals. Consecutive concolic rounds share long
/// constraint prefixes, so with hash-consed terms the prefix's CNF is reused
/// instead of re-emitted each round.
///
/// Sound because every gate emitted by the blaster is a full (two-sided)
/// Tseitin definition: the indicator literal is *equivalent* to its
/// constraint under the definitional clauses, so assuming it constrains
/// exactly that constraint and nothing else.
#[derive(Debug, Default)]
pub struct Session {
    b: Blaster,
    /// Constraint term id → indicator literal.
    roots: HashMap<usize, Lit>,
    /// Pins every blasted root (and thereby its subterms) so the pointer
    /// ids keying the caches can never be reused by later allocations.
    retained: Vec<Term>,
    roots_blasted: u64,
    roots_reused: u64,
}

impl Session {
    /// Creates an empty session.
    pub fn new() -> Session {
        Session::default()
    }

    /// Returns the indicator literal for boolean constraint `c`, emitting
    /// its CNF if this session has not blasted it before.
    ///
    /// # Errors
    ///
    /// Returns [`BlastError::Float`] if `c` contains floating-point nodes.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not boolean-sorted.
    pub fn root_lit(&mut self, c: &Term) -> Result<Lit, BlastError> {
        if let Some(&l) = self.roots.get(&c.id()) {
            self.roots_reused += 1;
            return Ok(l);
        }
        assert_eq!(
            c.sort(),
            crate::expr::Sort::Bool,
            "constraints must be boolean"
        );
        // Populate the caches children-first so the recursive workers never
        // descend more than one level on deep DAGs.
        for node in c.topo_order() {
            match node.sort() {
                crate::expr::Sort::Bv(_) => {
                    self.b.blast_bv(&node)?;
                }
                crate::expr::Sort::Bool => {
                    self.b.blast_bool(&node)?;
                }
                crate::expr::Sort::F64 => return Err(BlastError::Float),
            }
        }
        let l = self.b.blast_bool(c)?;
        self.roots.insert(c.id(), l);
        self.retained.push(c.clone());
        self.roots_blasted += 1;
        Ok(l)
    }

    /// Solves the conjunction of the constraints behind `roots` (literals
    /// from [`Session::root_lit`]) under a conflict budget.
    pub fn solve(&mut self, roots: &[Lit], max_conflicts: u64) -> SatResult {
        self.b.sat.solve_with_assumptions(roots, max_conflicts)
    }

    /// SAT variables backing `var`'s bits (LSB first), if it was blasted.
    pub fn var_bits(&self, var: &Var) -> Option<&[u32]> {
        self.b.var_bits.get(var).map(Vec::as_slice)
    }

    /// Number of SAT variables allocated so far.
    pub fn num_vars(&self) -> u32 {
        self.b.sat.num_vars()
    }

    /// Number of SAT clauses emitted so far.
    pub fn num_clauses(&self) -> usize {
        self.b.sat.num_clauses()
    }

    /// Cumulative CDCL conflicts across all queries.
    pub fn conflicts(&self) -> u64 {
        self.b.sat.conflicts()
    }

    /// Cumulative CDCL propagations across all queries.
    pub fn propagations(&self) -> u64 {
        self.b.sat.propagations()
    }

    /// Cumulative watch-list entries dismissed by a true blocker literal
    /// (propagation fast path; see [`SatSolver::blocker_skips`]).
    pub fn blocker_skips(&self) -> u64 {
        self.b.sat.blocker_skips()
    }

    /// Cumulative learnt clauses evicted by LBD-scored reduction.
    pub fn lbd_evictions(&self) -> u64 {
        self.b.sat.lbd_evictions()
    }

    /// Constraints Tseitin-encoded by this session.
    pub fn roots_blasted(&self) -> u64 {
        self.roots_blasted
    }

    /// Constraint lookups answered from the root cache (CNF prefix reuse).
    pub fn roots_reused(&self) -> u64 {
        self.roots_reused
    }
}

#[derive(Debug)]
struct Blaster {
    sat: SatSolver,
    true_lit: Lit,
    bv_cache: HashMap<usize, Vec<Lit>>,
    bool_cache: HashMap<usize, Lit>,
    var_bits: HashMap<Var, Vec<u32>>,
}

impl Default for Blaster {
    fn default() -> Blaster {
        Blaster::new()
    }
}

impl Blaster {
    fn new() -> Blaster {
        let mut sat = SatSolver::new();
        let t = sat.new_var();
        let true_lit = Lit::pos(t);
        sat.add_clause(&[true_lit]);
        Blaster {
            sat,
            true_lit,
            bv_cache: HashMap::new(),
            bool_cache: HashMap::new(),
            var_bits: HashMap::new(),
        }
    }

    fn false_lit(&self) -> Lit {
        self.true_lit.flip()
    }

    fn const_lit(&self, b: bool) -> Lit {
        if b {
            self.true_lit
        } else {
            self.false_lit()
        }
    }

    fn is_true(&self, l: Lit) -> bool {
        l == self.true_lit
    }

    fn is_false(&self, l: Lit) -> bool {
        l == self.false_lit()
    }

    fn fresh(&mut self) -> Lit {
        Lit::pos(self.sat.new_var())
    }

    // ---- gates ----

    fn g_and(&mut self, a: Lit, b: Lit) -> Lit {
        if self.is_false(a) || self.is_false(b) {
            return self.false_lit();
        }
        if self.is_true(a) {
            return b;
        }
        if self.is_true(b) {
            return a;
        }
        if a == b {
            return a;
        }
        if a == b.flip() {
            return self.false_lit();
        }
        let o = self.fresh();
        self.sat.add_clause(&[a.flip(), b.flip(), o]);
        self.sat.add_clause(&[a, o.flip()]);
        self.sat.add_clause(&[b, o.flip()]);
        o
    }

    fn g_or(&mut self, a: Lit, b: Lit) -> Lit {
        self.g_and(a.flip(), b.flip()).flip()
    }

    fn g_xor(&mut self, a: Lit, b: Lit) -> Lit {
        if self.is_false(a) {
            return b;
        }
        if self.is_false(b) {
            return a;
        }
        if self.is_true(a) {
            return b.flip();
        }
        if self.is_true(b) {
            return a.flip();
        }
        if a == b {
            return self.false_lit();
        }
        if a == b.flip() {
            return self.true_lit;
        }
        let o = self.fresh();
        self.sat.add_clause(&[a.flip(), b.flip(), o.flip()]);
        self.sat.add_clause(&[a, b, o.flip()]);
        self.sat.add_clause(&[a.flip(), b, o]);
        self.sat.add_clause(&[a, b.flip(), o]);
        o
    }

    /// `s ? a : b`.
    fn g_mux(&mut self, s: Lit, a: Lit, b: Lit) -> Lit {
        if self.is_true(s) {
            return a;
        }
        if self.is_false(s) {
            return b;
        }
        if a == b {
            return a;
        }
        let sa = self.g_and(s, a);
        let nsb = self.g_and(s.flip(), b);
        self.g_or(sa, nsb)
    }

    /// Full adder; returns (sum, carry).
    fn g_fa(&mut self, a: Lit, b: Lit, c: Lit) -> (Lit, Lit) {
        let axb = self.g_xor(a, b);
        let sum = self.g_xor(axb, c);
        let ab = self.g_and(a, b);
        let axbc = self.g_and(axb, c);
        let carry = self.g_or(ab, axbc);
        (sum, carry)
    }

    // ---- word-level circuits ----

    fn w_const(&self, v: u64, w: u8) -> Vec<Lit> {
        // Internal circuits (division headroom) use up to 65-bit vectors;
        // constant bits beyond a u64 are zero.
        (0..w)
            .map(|i| self.const_lit(i < 64 && (v >> i) & 1 == 1))
            .collect()
    }

    fn w_add(&mut self, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let mut carry = self.false_lit();
        let mut out = Vec::with_capacity(a.len());
        for i in 0..a.len() {
            let (s, c) = self.g_fa(a[i], b[i], carry);
            out.push(s);
            carry = c;
        }
        out
    }

    fn w_neg(&mut self, a: &[Lit]) -> Vec<Lit> {
        let inv: Vec<Lit> = a.iter().map(|l| l.flip()).collect();
        let one = self.w_const(1, a.len() as u8);
        self.w_add(&inv, &one)
    }

    fn w_sub(&mut self, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let nb = self.w_neg(b);
        self.w_add(a, &nb)
    }

    fn w_mul(&mut self, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        // Multiplication is commutative; use the more-constant operand as
        // the row selector so every constant selector bit either skips its
        // addend row outright (bit 0, the row folds away in `w_add`) or
        // drops the row's AND gates (bit 1). A constant multiplier like
        // atoi's `acc * 10` then costs popcount(10) = 2 real adds instead
        // of one per bit width.
        let const_bits = |s: &Blaster, ls: &[Lit]| {
            ls.iter()
                .filter(|&&l| s.is_true(l) || s.is_false(l))
                .count()
        };
        let (a, b) = if const_bits(self, b) > const_bits(self, a) {
            (b, a)
        } else {
            (a, b)
        };
        let w = a.len();
        let mut acc = self.w_const(0, w as u8);
        for i in 0..w {
            // addend = (b << i) AND a[i]
            let mut addend = vec![self.false_lit(); w];
            for j in i..w {
                addend[j] = self.g_and(b[j - i], a[i]);
            }
            acc = self.w_add(&acc, &addend);
        }
        acc
    }

    /// Unsigned `a < b` as a literal.
    fn w_ult(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        // Borrow chain of a - b.
        let mut borrow = self.false_lit();
        for i in 0..a.len() {
            // borrow' = (!a & b) | (!a & borrow) | (b & borrow)
            let na = a[i].flip();
            let t1 = self.g_and(na, b[i]);
            let t2 = self.g_and(na, borrow);
            let t3 = self.g_and(b[i], borrow);
            let t12 = self.g_or(t1, t2);
            borrow = self.g_or(t12, t3);
        }
        borrow
    }

    fn w_eq(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        let mut acc = self.true_lit;
        for i in 0..a.len() {
            let x = self.g_xor(a[i], b[i]);
            acc = self.g_and(acc, x.flip());
        }
        acc
    }

    fn w_mux(&mut self, s: Lit, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        (0..a.len()).map(|i| self.g_mux(s, a[i], b[i])).collect()
    }

    /// Variable left shift (fill with zero).
    fn w_shl(&mut self, a: &[Lit], sh: &[Lit]) -> Vec<Lit> {
        let w = a.len();
        let stages = 64 - (w as u64 - 1).leading_zeros() as usize; // ceil(log2 w)
        let mut cur = a.to_vec();
        for (s, &shbit) in sh.iter().enumerate().take(stages) {
            let k = 1usize << s;
            let mut next = Vec::with_capacity(w);
            for i in 0..w {
                let shifted = if i >= k { cur[i - k] } else { self.false_lit() };
                next.push(self.g_mux(shbit, shifted, cur[i]));
            }
            cur = next;
        }
        // If any shift bit beyond the stages is set, the result is 0.
        let mut overflow = self.false_lit();
        for &l in sh.iter().skip(stages) {
            overflow = self.g_or(overflow, l);
        }
        let zero = self.w_const(0, w as u8);
        self.w_mux(overflow, &zero, &cur)
    }

    fn w_lshr(&mut self, a: &[Lit], sh: &[Lit]) -> Vec<Lit> {
        let rev: Vec<Lit> = a.iter().rev().copied().collect();
        let shifted = self.w_shl(&rev, sh);
        shifted.into_iter().rev().collect()
    }

    fn w_ashr(&mut self, a: &[Lit], sh: &[Lit]) -> Vec<Lit> {
        let w = a.len();
        let sign = a[w - 1];
        let stages = 64 - (w as u64 - 1).leading_zeros() as usize;
        let mut cur = a.to_vec();
        for (s, &shbit) in sh.iter().enumerate().take(stages) {
            let k = 1usize << s;
            let mut next = Vec::with_capacity(w);
            for i in 0..w {
                let shifted = if i + k < w { cur[i + k] } else { sign };
                next.push(self.g_mux(shbit, shifted, cur[i]));
            }
            cur = next;
        }
        let mut overflow = self.false_lit();
        for &l in sh.iter().skip(stages) {
            overflow = self.g_or(overflow, l);
        }
        let fill = vec![sign; w];
        self.w_mux(overflow, &fill, &cur)
    }

    /// Restoring division: returns (quotient, remainder); caller fixes the
    /// divide-by-zero case.
    fn w_udivrem(&mut self, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Vec<Lit>) {
        let w = a.len();
        // When the divisor is entirely constant, the restoring invariant
        // `rem < b` bounds the remainder to the divisor's bit width after
        // every step: bits at or above bits(b) are provably zero, so
        // pinning them to constant false lets the per-iteration compare,
        // subtract, and select fold down to the divisor's width instead of
        // running over the full word (`urem x, 991` builds ~10-bit stages,
        // not 65-bit ones).
        let mut const_divisor: Option<u64> = Some(0);
        for (i, &l) in b.iter().enumerate() {
            match const_divisor {
                Some(v) if self.is_true(l) && i < 64 => const_divisor = Some(v | 1u64 << i),
                Some(_) if self.is_false(l) => {}
                _ => {
                    const_divisor = None;
                    break;
                }
            }
        }
        let const_divisor = const_divisor.filter(|&c| c > 0);
        let keep = match const_divisor {
            Some(c) => (64 - c.leading_zeros()) as usize,
            None => w + 1,
        }
        .min(w + 1);
        // rem has w+1 bits of headroom.
        let mut rem = vec![self.false_lit(); w + 1];
        let mut bx = b.to_vec();
        bx.push(self.false_lit());
        let mut q = vec![self.false_lit(); w];
        for i in (0..w).rev() {
            // rem = (rem << 1) | a[i]
            rem.rotate_right(1);
            rem[0] = a[i];
            // It is an invariant that the rotated-out top bit was 0.
            let lt = self.w_ult(&rem, &bx); // rem < b ?
            let diff = self.w_sub(&rem, &bx);
            q[i] = lt.flip();
            // Select only the live low bits; the rest stay constant zero
            // (both branches are provably below the constant divisor).
            let mut next = self.w_mux(lt, &rem[..keep], &diff[..keep]);
            next.resize(w + 1, self.false_lit());
            rem = next;
        }
        rem.truncate(w);
        (q, rem)
    }

    // ---- term traversal ----

    fn blast_bv(&mut self, t: &Term) -> Result<Vec<Lit>, BlastError> {
        if let Some(bits) = self.bv_cache.get(&t.id()) {
            return Ok(bits.clone());
        }
        let bits = match t.node() {
            Node::BvConst { value, width } => self.w_const(*value, *width),
            Node::BvVar(v) => {
                if let Some(sat_vars) = self.var_bits.get(v) {
                    sat_vars.iter().map(|&x| Lit::pos(x)).collect()
                } else {
                    let sat_vars: Vec<u32> = (0..v.width).map(|_| self.sat.new_var()).collect();
                    let lits = sat_vars.iter().map(|&x| Lit::pos(x)).collect();
                    self.var_bits.insert(v.clone(), sat_vars);
                    lits
                }
            }
            Node::BvBin { op, a, b } => {
                let x = self.blast_bv(a)?;
                let y = self.blast_bv(b)?;
                match op {
                    BvOp::Add => self.w_add(&x, &y),
                    BvOp::Sub => self.w_sub(&x, &y),
                    BvOp::Mul => self.w_mul(&x, &y),
                    BvOp::And => (0..x.len()).map(|i| self.g_and(x[i], y[i])).collect(),
                    BvOp::Or => (0..x.len()).map(|i| self.g_or(x[i], y[i])).collect(),
                    BvOp::Xor => (0..x.len()).map(|i| self.g_xor(x[i], y[i])).collect(),
                    BvOp::Shl => self.w_shl(&x, &y),
                    BvOp::LShr => self.w_lshr(&x, &y),
                    BvOp::AShr => self.w_ashr(&x, &y),
                    BvOp::UDiv | BvOp::URem => {
                        let (q, r) = self.w_udivrem(&x, &y);
                        let zero = self.w_const(0, y.len() as u8);
                        let bz = self.w_eq(&y, &zero);
                        let ones = self.w_const(u64::MAX, x.len() as u8);
                        match op {
                            BvOp::UDiv => self.w_mux(bz, &ones, &q),
                            _ => self.w_mux(bz, &x, &r),
                        }
                    }
                    BvOp::SDiv | BvOp::SRem => {
                        let w = x.len();
                        let sa = x[w - 1];
                        let sb = y[w - 1];
                        let negx = self.w_neg(&x);
                        let absa = self.w_mux(sa, &negx, &x);
                        let negy = self.w_neg(&y);
                        let absb = self.w_mux(sb, &negy, &y);
                        let (q, r) = self.w_udivrem(&absa, &absb);
                        let qsign = self.g_xor(sa, sb);
                        let negq = self.w_neg(&q);
                        let qq = self.w_mux(qsign, &negq, &q);
                        let negr = self.w_neg(&r);
                        let rr = self.w_mux(sa, &negr, &r);
                        let zero = self.w_const(0, w as u8);
                        let bz = self.w_eq(&y, &zero);
                        let ones = self.w_const(u64::MAX, w as u8);
                        match op {
                            BvOp::SDiv => self.w_mux(bz, &ones, &qq),
                            _ => self.w_mux(bz, &x, &rr),
                        }
                    }
                }
            }
            Node::BvNot(a) => self.blast_bv(a)?.iter().map(|l| l.flip()).collect(),
            Node::BvNeg(a) => {
                let x = self.blast_bv(a)?;
                self.w_neg(&x)
            }
            Node::Extract { hi, lo, a } => {
                let x = self.blast_bv(a)?;
                x[*lo as usize..=*hi as usize].to_vec()
            }
            Node::ZExt { width, a } => {
                let mut x = self.blast_bv(a)?;
                while x.len() < *width as usize {
                    x.push(self.false_lit());
                }
                x
            }
            Node::SExt { width, a } => {
                let mut x = self.blast_bv(a)?;
                let sign = *x.last().expect("non-empty vector");
                while x.len() < *width as usize {
                    x.push(sign);
                }
                x
            }
            Node::Concat { a, b } => {
                let hi = self.blast_bv(a)?;
                let mut x = self.blast_bv(b)?;
                x.extend(hi);
                x
            }
            Node::Ite { cond, then, els } => {
                let c = self.blast_bool(cond)?;
                let x = self.blast_bv(then)?;
                let y = self.blast_bv(els)?;
                self.w_mux(c, &x, &y)
            }
            Node::CvtFToSi(_) | Node::FBits(_) => return Err(BlastError::Float),
            other => unreachable!("blast_bv on non-bitvector node {other:?}"),
        };
        self.bv_cache.insert(t.id(), bits.clone());
        Ok(bits)
    }

    fn blast_bool(&mut self, t: &Term) -> Result<Lit, BlastError> {
        if let Some(&l) = self.bool_cache.get(&t.id()) {
            return Ok(l);
        }
        let l = match t.node() {
            Node::BoolConst(b) => self.const_lit(*b),
            Node::BNot(a) => self.blast_bool(a)?.flip(),
            Node::BAnd(a, b) => {
                let x = self.blast_bool(a)?;
                let y = self.blast_bool(b)?;
                self.g_and(x, y)
            }
            Node::BOr(a, b) => {
                let x = self.blast_bool(a)?;
                let y = self.blast_bool(b)?;
                self.g_or(x, y)
            }
            Node::Cmp { op, a, b } => {
                let x = self.blast_bv(a)?;
                let y = self.blast_bv(b)?;
                match op {
                    CmpOp::Eq => self.w_eq(&x, &y),
                    CmpOp::Ult => self.w_ult(&x, &y),
                    CmpOp::Ule => self.w_ult(&y, &x).flip(),
                    CmpOp::Slt => {
                        let w = x.len();
                        let mut xs = x.clone();
                        let mut ys = y.clone();
                        xs[w - 1] = xs[w - 1].flip();
                        ys[w - 1] = ys[w - 1].flip();
                        self.w_ult(&xs, &ys)
                    }
                    CmpOp::Sle => {
                        let w = x.len();
                        let mut xs = x.clone();
                        let mut ys = y.clone();
                        xs[w - 1] = xs[w - 1].flip();
                        ys[w - 1] = ys[w - 1].flip();
                        self.w_ult(&ys, &xs).flip()
                    }
                }
            }
            Node::Ite { cond, then, els } if then.sort() == crate::expr::Sort::Bool => {
                let c = self.blast_bool(cond)?;
                let x = self.blast_bool(then)?;
                let y = self.blast_bool(els)?;
                self.g_mux(c, x, y)
            }
            Node::FCmp { .. } => return Err(BlastError::Float),
            other => unreachable!("blast_bool on non-boolean node {other:?}"),
        };
        self.bool_cache.insert(t.id(), l);
        Ok(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{eval, Value};
    use crate::sat::SatResult;
    use std::collections::HashMap;
    use std::sync::Arc;

    /// Blast `constraint`, solve, and check the model satisfies it.
    fn solve_and_check(constraint: &Term) -> Option<HashMap<Arc<str>, u64>> {
        let Blasted { solver, vars } = blast(std::slice::from_ref(constraint)).expect("no floats");
        let mut solver = solver;
        match solver.solve(1_000_000) {
            SatResult::Sat(m) => {
                let mut env = HashMap::new();
                for (var, bits) in vars.iter() {
                    let mut v = 0u64;
                    for (i, &b) in bits.iter().enumerate() {
                        if m[b as usize] {
                            v |= 1 << i;
                        }
                    }
                    env.insert(var.name.clone(), v);
                }
                assert_eq!(
                    eval(constraint, &env).expect("closed term"),
                    Value::Bool(true),
                    "model does not satisfy constraint"
                );
                Some(env)
            }
            SatResult::Unsat => None,
            SatResult::Unknown => panic!("budget exceeded on small test"),
        }
    }

    #[test]
    fn simple_equation_is_solved() {
        // x + 5 == 12 (8-bit)
        let x = Term::var("x", 8);
        let c = Term::cmp(
            CmpOp::Eq,
            &Term::bin(BvOp::Add, &x, &Term::bv(5, 8)),
            &Term::bv(12, 8),
        );
        let env = solve_and_check(&c).expect("satisfiable");
        assert_eq!(env["x"], 7);
    }

    #[test]
    fn multiplication_inverts() {
        // x * 3 == 21 (8-bit)
        let x = Term::var("x", 8);
        let c = Term::cmp(
            CmpOp::Eq,
            &Term::bin(BvOp::Mul, &x, &Term::bv(3, 8)),
            &Term::bv(21, 8),
        );
        let env = solve_and_check(&c).expect("satisfiable");
        assert_eq!(env["x"] * 3 % 256, 21);
    }

    #[test]
    fn unsat_is_detected() {
        // x < 5 && x > 10 (unsigned, 8-bit)
        let x = Term::var("x", 8);
        let c = Term::and(
            &Term::cmp(CmpOp::Ult, &x, &Term::bv(5, 8)),
            &Term::cmp(CmpOp::Ult, &Term::bv(10, 8), &x),
        );
        assert!(solve_and_check(&c).is_none());
    }

    #[test]
    fn signed_comparison_blasts_correctly() {
        // x < 0 && x > -5 (signed, 8-bit): solutions -4..-1
        let x = Term::var("x", 8);
        let c = Term::and(
            &Term::cmp(CmpOp::Slt, &x, &Term::bv(0, 8)),
            &Term::cmp(CmpOp::Slt, &Term::bv(0xFB, 8), &x),
        );
        let env = solve_and_check(&c).expect("satisfiable");
        let sx = crate::expr::to_signed(env["x"], 8);
        assert!((-4..=-1).contains(&sx), "got {sx}");
    }

    #[test]
    fn division_and_remainder_circuits() {
        // x / 7 == 5 && x % 7 == 3 => x == 38
        let x = Term::var("x", 8);
        let c = Term::and(
            &Term::cmp(
                CmpOp::Eq,
                &Term::bin(BvOp::UDiv, &x, &Term::bv(7, 8)),
                &Term::bv(5, 8),
            ),
            &Term::cmp(
                CmpOp::Eq,
                &Term::bin(BvOp::URem, &x, &Term::bv(7, 8)),
                &Term::bv(3, 8),
            ),
        );
        let env = solve_and_check(&c).expect("satisfiable");
        assert_eq!(env["x"], 38);
    }

    #[test]
    fn shifts_by_variable_amounts() {
        // 1 << x == 32
        let x = Term::var("x", 8);
        let c = Term::cmp(
            CmpOp::Eq,
            &Term::bin(BvOp::Shl, &Term::bv(1, 8), &x),
            &Term::bv(32, 8),
        );
        let env = solve_and_check(&c).expect("satisfiable");
        assert_eq!(env["x"], 5);
    }

    #[test]
    fn random_differential_vs_eval() {
        // Random expressions over two 8-bit vars: blasted semantics must
        // agree with the evaluator.
        let mut state = 0xDEAD_BEEFu64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let ops = [
            BvOp::Add,
            BvOp::Sub,
            BvOp::Mul,
            BvOp::And,
            BvOp::Or,
            BvOp::Xor,
            BvOp::Shl,
            BvOp::LShr,
            BvOp::AShr,
            BvOp::UDiv,
            BvOp::URem,
            BvOp::SDiv,
            BvOp::SRem,
        ];
        for round in 0..40 {
            let x = Term::var("x", 8);
            let y = Term::var("y", 8);
            let op1 = ops[(rnd() % ops.len() as u64) as usize];
            let op2 = ops[(rnd() % ops.len() as u64) as usize];
            let e = Term::bin(op1, &Term::bin(op2, &x, &y), &x);
            let xv = rnd() & 0xff;
            let yv = rnd() & 0xff;
            let env: HashMap<Arc<str>, u64> = [(Arc::from("x"), xv), (Arc::from("y"), yv)]
                .into_iter()
                .collect();
            let want = eval(&e, &env).unwrap().bits();
            // Constrain x/y to the sampled values and e to its evaluated
            // value; must be SAT.
            let c = Term::and(
                &Term::and(
                    &Term::cmp(CmpOp::Eq, &x, &Term::bv(xv, 8)),
                    &Term::cmp(CmpOp::Eq, &y, &Term::bv(yv, 8)),
                ),
                &Term::cmp(CmpOp::Eq, &e, &Term::bv(want, 8)),
            );
            assert!(
                solve_and_check(&c).is_some(),
                "round {round}: {op1:?}/{op2:?} x={xv} y={yv} want={want}"
            );
            // And constraining e to a different value must be UNSAT.
            let c_bad = Term::and(
                &Term::and(
                    &Term::cmp(CmpOp::Eq, &x, &Term::bv(xv, 8)),
                    &Term::cmp(CmpOp::Eq, &y, &Term::bv(yv, 8)),
                ),
                &Term::cmp(CmpOp::Eq, &e, &Term::bv(want ^ 1, 8)),
            );
            assert!(
                solve_and_check(&c_bad).is_none(),
                "round {round}: wrong value accepted for {op1:?}/{op2:?}"
            );
        }
    }

    #[test]
    fn extract_concat_extensions() {
        // Build y = concat(x[7:4], x[3:0]) == x.
        let x = Term::var("x", 8);
        let y = Term::concat(&Term::extract(&x, 7, 4), &Term::extract(&x, 3, 0));
        let ne = Term::not(&Term::cmp(CmpOp::Eq, &x, &y));
        assert!(solve_and_check(&ne).is_none(), "x != reassembled x unsat");

        // sext(x[3:0], 8) == 0xF8 has solution lower nibble 8.
        let c = Term::cmp(
            CmpOp::Eq,
            &Term::sext(&Term::extract(&x, 3, 0), 8),
            &Term::bv(0xF8, 8),
        );
        let env = solve_and_check(&c).expect("satisfiable");
        assert_eq!(env["x"] & 0xF, 8);
    }

    #[test]
    fn ite_blasts_both_sorts() {
        let x = Term::var("x", 8);
        let sel = Term::cmp(CmpOp::Ult, &x, &Term::bv(10, 8));
        let v = Term::ite(&sel, &Term::bv(1, 8), &Term::bv(2, 8));
        let c = Term::and(
            &Term::cmp(CmpOp::Eq, &v, &Term::bv(2, 8)),
            &Term::cmp(CmpOp::Ult, &x, &Term::bv(20, 8)),
        );
        let env = solve_and_check(&c).expect("satisfiable");
        assert!((10..20).contains(&env["x"]));
    }

    #[test]
    fn float_terms_are_rejected() {
        let x = Term::var("x", 64);
        let f = Term::cvt_si_to_f(&x);
        let c = Term::fcmp(crate::expr::FCmpOp::Lt, &Term::f64(0.0), &f);
        assert_eq!(blast(&[c]).unwrap_err(), BlastError::Float);
    }

    #[test]
    fn sixty_four_bit_division_is_correct() {
        // Regression: the division circuit uses 65-bit internal vectors;
        // constants must not wrap their bit extraction (silent wrong
        // answers in release builds).
        let x = Term::var("x", 64);
        let c = Term::and(
            &Term::cmp(
                CmpOp::Eq,
                &Term::bin(BvOp::URem, &x, &Term::bv(991, 64)),
                &Term::bv(17, 64),
            ),
            &Term::cmp(CmpOp::Ult, &x, &Term::bv(2000, 64)),
        );
        let env = solve_and_check(&c).expect("satisfiable");
        assert_eq!(env["x"] % 991, 17);

        let c2 = Term::cmp(
            CmpOp::Eq,
            &Term::bin(BvOp::UDiv, &Term::bv(1_000_000, 64), &x),
            &Term::bv(200, 64),
        );
        let env2 = solve_and_check(&c2).expect("satisfiable");
        assert_eq!(1_000_000 / env2["x"], 200);
    }

    #[test]
    fn sixty_four_bit_terms_blast() {
        let x = Term::var("x", 64);
        let c = Term::cmp(
            CmpOp::Eq,
            &Term::bin(BvOp::Mul, &x, &Term::bv(3, 64)),
            &Term::bv(0x123456789, 64),
        );
        // 0x123456789 = 3 * 0x61172283
        let env = solve_and_check(&c).expect("satisfiable");
        assert_eq!(env["x"].wrapping_mul(3), 0x123456789);
    }
}
