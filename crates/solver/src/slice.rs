//! Stage 3 of the word-level query optimizer: cone-of-influence slicing.
//!
//! A query is a conjunction of constraints. Two constraints interact only
//! if they (transitively) share a variable; constraints in different
//! variable-connected components are independent, so the conjunction is
//! satisfiable iff every component is satisfiable, and the models merge
//! without conflict. Solving components separately keeps CNF small and —
//! more importantly for the study loop — shrinks per-attempt cache keys:
//! a slice that reappears across rounds hits the cache even when the rest
//! of the query changed.
//!
//! Partitioning is a union-find over variable names. Per-constraint
//! variable lists are memoized per thread (keyed by [`Term::id`], pinning
//! the term so the id stays valid), because the engine re-submits the same
//! hash-consed path constraints round after round.

use crate::expr::{Term, Var};
use crate::idhash::IdMap;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

/// Entries above this cap trigger a memo reset (each entry pins a DAG).
const VARS_MEMO_CAP: usize = 1 << 16;

thread_local! {
    /// constraint id → (constraint (pins the id), its free variables).
    static VARS_MEMO: RefCell<IdMap<usize, (Term, Vec<Var>)>> =
        RefCell::new(IdMap::default());
}

/// The free variables of a constraint, memoized per thread.
fn vars_of(c: &Term) -> Vec<Var> {
    if let Some(v) = VARS_MEMO.with(|m| m.borrow().get(&c.id()).map(|(_, v)| v.clone())) {
        return v;
    }
    let mut vars = Vec::new();
    c.collect_vars(&mut vars);
    VARS_MEMO.with(|m| {
        let mut m = m.borrow_mut();
        if m.len() > VARS_MEMO_CAP {
            m.clear();
        }
        m.insert(c.id(), (c.clone(), vars.clone()));
    });
    vars
}

fn find(parent: &mut [usize], i: usize) -> usize {
    let mut root = i;
    while parent[root] != root {
        root = parent[root];
    }
    // Path compression.
    let mut cur = i;
    while parent[cur] != root {
        let next = parent[cur];
        parent[cur] = root;
        cur = next;
    }
    root
}

fn union(parent: &mut [usize], a: usize, b: usize) {
    let ra = find(parent, a);
    let rb = find(parent, b);
    // Always hang the larger-indexed root under the smaller one so a
    // component's root is its first constraint — this keeps the output
    // ordering independent of union order.
    if ra < rb {
        parent[rb] = ra;
    } else {
        parent[ra] = rb;
    }
}

/// Partitions constraints into variable-connected components.
///
/// Slices are ordered by the index of their first constraint in the input,
/// and constraints within a slice keep their input order, so the result is
/// deterministic. Ground constraints (no free variables) each form their
/// own singleton slice. The input conjunction is satisfiable iff every
/// returned slice is satisfiable.
pub fn partition(constraints: &[Term]) -> Vec<Vec<Term>> {
    let n = constraints.len();
    if n <= 1 {
        return if n == 0 {
            Vec::new()
        } else {
            vec![constraints.to_vec()]
        };
    }
    let mut parent: Vec<usize> = (0..n).collect();
    let mut owner: HashMap<Arc<str>, usize> = HashMap::new();
    for (i, c) in constraints.iter().enumerate() {
        for v in vars_of(c) {
            match owner.entry(v.name) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    union(&mut parent, i, *e.get());
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(i);
                }
            }
        }
    }
    let mut groups: Vec<Vec<Term>> = Vec::new();
    let mut root_to_group: HashMap<usize, usize> = HashMap::new();
    for (i, c) in constraints.iter().enumerate() {
        let root = find(&mut parent, i);
        let g = *root_to_group.entry(root).or_insert_with(|| {
            groups.push(Vec::new());
            groups.len() - 1
        });
        groups[g].push(c.clone());
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BvOp, CmpOp};

    fn eq_const(name: &str, k: u64) -> Term {
        Term::cmp(CmpOp::Eq, &Term::var(name, 8), &Term::bv(k, 8))
    }

    #[test]
    fn disjoint_vars_split() {
        let a = eq_const("x", 1);
        let b = eq_const("y", 2);
        let slices = partition(&[a.clone(), b.clone()]);
        assert_eq!(slices, vec![vec![a], vec![b]]);
    }

    #[test]
    fn shared_var_joins_transitively() {
        // x~y via c1, y~z via c2: all three in one slice, w separate.
        let c1 = Term::cmp(
            CmpOp::Eq,
            &Term::var("x", 8),
            &Term::bin(BvOp::Add, &Term::var("y", 8), &Term::bv(1, 8)),
        );
        let c2 = Term::cmp(CmpOp::Ult, &Term::var("y", 8), &Term::var("z", 8));
        let c3 = eq_const("w", 3);
        let c4 = eq_const("z", 9);
        let slices = partition(&[c1.clone(), c2.clone(), c3.clone(), c4.clone()]);
        assert_eq!(slices, vec![vec![c1, c2, c4], vec![c3]]);
    }

    #[test]
    fn ground_constraints_are_singletons() {
        let g = Term::cmp(CmpOp::Eq, &Term::bv(1, 8), &Term::bv(1, 8));
        // Constant-folds to bool const; still var-free either way.
        let x = eq_const("x", 1);
        let slices = partition(&[g.clone(), x.clone(), g.clone()]);
        assert_eq!(slices.len(), 3);
        assert_eq!(slices[1], vec![x]);
    }

    #[test]
    fn empty_and_single() {
        assert!(partition(&[]).is_empty());
        let c = eq_const("x", 1);
        assert_eq!(partition(std::slice::from_ref(&c)), vec![vec![c]]);
    }

    #[test]
    fn ordering_is_by_first_index() {
        // y appears first, then x, then a joiner that links x back to y:
        // everything collapses into one slice rooted at index 0.
        let a = eq_const("y", 1);
        let b = eq_const("x", 2);
        let j = Term::cmp(CmpOp::Ule, &Term::var("x", 8), &Term::var("y", 8));
        let slices = partition(&[a.clone(), b.clone(), j.clone()]);
        assert_eq!(slices, vec![vec![a, b, j]]);
    }
}
