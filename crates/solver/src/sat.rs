//! A CDCL SAT solver: two-watched literals, VSIDS decisions, 1-UIP clause
//! learning, phase saving, Luby restarts, and conflict budgets.
//!
//! This is the backend the bit-blaster targets. Budgets model the paper's
//! experimental timeouts: a run that exceeds its conflict budget reports
//! [`SatResult::Unknown`], which the study maps to the `E` outcome.
//!
//! ## Hot-loop layout
//!
//! The propagation inner loop dominates solver time, so its data layout is
//! tuned for cache behaviour:
//!
//! * **Flattened watch lists.** Instead of `Vec<Vec<_>>` (one heap
//!   allocation per literal, plus a `mem::take`/re-push cycle on every
//!   propagation), all watch lists live in one contiguous arena indexed by
//!   `(start, len, cap)` triples. Lists that outgrow their slot relocate to
//!   the arena tail with doubled capacity; dead slots are compacted away at
//!   the next `propagate` entry, never mid-scan.
//! * **Blocker literals.** Each watcher caches one other literal of its
//!   clause. If the blocker is already true the clause is satisfied and the
//!   clause body is never dereferenced — the common case touches only the
//!   watch arena and the assignment array.
//! * **Contiguous clause storage.** Clause literals live in a single
//!   arena (`ClauseDb`), with per-clause headers carrying activity and the
//!   LBD score used by learnt-clause reduction.

/// A literal: variable index shifted left once, low bit = negated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Positive literal of `var`.
    pub fn pos(var: u32) -> Lit {
        Lit(var << 1)
    }

    /// Negative literal of `var`.
    pub fn neg(var: u32) -> Lit {
        Lit((var << 1) | 1)
    }

    /// The underlying variable.
    pub fn var(self) -> u32 {
        self.0 >> 1
    }

    /// Whether this literal is negated.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complementary literal.
    pub fn flip(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Result of a SAT query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable; the vector maps variable index → value.
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
    /// The conflict budget ran out.
    Unknown,
}

impl SatResult {
    /// The model if satisfiable.
    pub fn model(&self) -> Option<&[bool]> {
        match self {
            SatResult::Sat(m) => Some(m),
            _ => None,
        }
    }
}

/// One entry in a watch list: the clause index plus a cached "blocker"
/// literal from the same clause. If the blocker is true the clause is
/// satisfied without touching its literals.
#[derive(Debug, Clone, Copy)]
struct Watcher {
    clause: u32,
    blocker: Lit,
}

/// A watch list's slice of the arena: `data[start..start+len]` holds live
/// watchers, `cap` is the reserved slot size (relocate on overflow).
#[derive(Debug, Clone, Copy, Default)]
struct WatchList {
    start: u32,
    len: u32,
    cap: u32,
}

/// All watch lists in one flat arena. Replaces `Vec<Vec<u32>>`: no per-list
/// heap allocation, no `mem::take`/re-push per propagation — `propagate`
/// scans lists in place with read/write cursors.
#[derive(Debug, Default)]
struct WatchArena {
    data: Vec<Watcher>,
    lists: Vec<WatchList>,
    /// Arena slots orphaned by list relocation; reclaimed by `maybe_compact`.
    holes: usize,
}

impl WatchArena {
    fn add_list(&mut self) {
        self.lists.push(WatchList::default());
    }

    /// Appends a watcher, relocating the list to the arena tail with doubled
    /// capacity when full. Relocation never moves any *other* list, which is
    /// what makes mid-propagation pushes safe: the list being scanned stays
    /// put (new watches always target a different literal's list).
    fn push(&mut self, lit_index: usize, w: Watcher) {
        let list = self.lists[lit_index];
        if list.len < list.cap {
            self.data[(list.start + list.len) as usize] = w;
            self.lists[lit_index].len += 1;
            return;
        }
        let new_cap = (list.cap * 2).max(4);
        let new_start = self.data.len() as u32;
        self.data.reserve(new_cap as usize);
        for i in 0..list.len {
            let moved = self.data[(list.start + i) as usize];
            self.data.push(moved);
        }
        self.data.push(w);
        let pad = Watcher {
            clause: u32::MAX,
            blocker: Lit(u32::MAX),
        };
        self.data.resize(new_start as usize + new_cap as usize, pad);
        self.holes += list.cap as usize;
        self.lists[lit_index] = WatchList {
            start: new_start,
            len: list.len + 1,
            cap: new_cap,
        };
    }

    /// Drops every watcher whose clause has been tombstoned, compacting
    /// each list in place. Called right after clause-database reduction.
    /// Without the eager detach, watchers of evicted clauses linger until
    /// propagation happens to reach them — and a lingering watcher whose
    /// cached blocker is true takes the blocker fast path *before* the
    /// tombstone check, so it is retained (and counted as a skip) on every
    /// future walk of that list instead of removed. On learnt-heavy
    /// instances those dead entries were re-walked forever, padding
    /// `blocker_skips` and costing ~8% of budget-exhaustion solve time.
    fn detach_deleted(&mut self, db: &ClauseDb) {
        for list in &mut self.lists {
            let start = list.start as usize;
            let mut write = 0usize;
            for read in 0..list.len as usize {
                let w = self.data[start + read];
                if !db.headers[w.clause as usize].deleted {
                    self.data[start + write] = w;
                    write += 1;
                }
            }
            list.len = write as u32;
        }
    }

    /// Rebuilds the arena without holes once more than half of it is dead.
    /// Only called at `propagate` entry — never while a list is being
    /// scanned.
    fn maybe_compact(&mut self) {
        if self.data.len() < 1024 || self.holes * 2 < self.data.len() {
            return;
        }
        let mut new_data = Vec::with_capacity(self.data.len() - self.holes);
        for list in &mut self.lists {
            let new_start = new_data.len() as u32;
            for i in 0..list.len {
                new_data.push(self.data[(list.start + i) as usize]);
            }
            list.start = new_start;
            list.cap = list.len;
        }
        self.data = new_data;
        self.holes = 0;
    }
}

/// Per-clause metadata; the literals live contiguously in [`ClauseDb::lits`].
#[derive(Debug, Clone, Copy)]
struct ClauseHdr {
    start: u32,
    len: u32,
    learnt: bool,
    /// Tombstoned by clause-database reduction; skipped and lazily removed
    /// from watch lists.
    deleted: bool,
    activity: f64,
    /// Literal block distance: distinct decision levels in the clause at
    /// learn time. Low-LBD ("glue") clauses are never evicted.
    lbd: u32,
}

/// Clause storage: one contiguous literal arena plus fixed-size headers.
#[derive(Debug, Default)]
struct ClauseDb {
    lits: Vec<Lit>,
    headers: Vec<ClauseHdr>,
}

impl ClauseDb {
    fn add(&mut self, lits: &[Lit], learnt: bool, lbd: u32) -> u32 {
        let idx = self.headers.len() as u32;
        let start = self.lits.len() as u32;
        self.lits.extend_from_slice(lits);
        self.headers.push(ClauseHdr {
            start,
            len: lits.len() as u32,
            learnt,
            deleted: false,
            activity: 0.0,
            lbd,
        });
        idx
    }
}

/// CDCL SAT solver.
///
/// # Example
///
/// ```
/// use bomblab_solver::sat::{Lit, SatSolver, SatResult};
///
/// let mut s = SatSolver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
/// s.add_clause(&[Lit::neg(a)]);
/// match s.solve(10_000) {
///     SatResult::Sat(m) => assert!(m[b as usize]),
///     other => panic!("expected sat, got {other:?}"),
/// }
/// ```
#[derive(Debug, Default)]
pub struct SatSolver {
    db: ClauseDb,
    watches: WatchArena,
    assign: Vec<Option<bool>>,
    phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<Option<u32>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    queue_head: usize,
    conflicts: u64,
    propagations: u64,
    blocker_skips: u64,
    lbd_evictions: u64,
    /// Learnt clauses added since the last database reduction.
    learnt_since_reduce: usize,
    /// Learnt-clause count that triggers a reduction (doubles each time).
    reduce_threshold: usize,
    unsat: bool,
}

impl SatSolver {
    /// Creates an empty solver.
    pub fn new() -> SatSolver {
        SatSolver {
            var_inc: 1.0,
            cla_inc: 1.0,
            reduce_threshold: 4_000,
            ..SatSolver::default()
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> u32 {
        self.assign.len() as u32
    }

    /// Number of clauses (original + learnt, including tombstones).
    pub fn num_clauses(&self) -> usize {
        self.db.headers.len()
    }

    /// Total conflicts so far.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Total propagations so far.
    pub fn propagations(&self) -> u64 {
        self.propagations
    }

    /// Watch-list entries dismissed by a true blocker literal without
    /// dereferencing the clause (propagation fast path).
    pub fn blocker_skips(&self) -> u64 {
        self.blocker_skips
    }

    /// Learnt clauses evicted by LBD-scored database reduction.
    pub fn lbd_evictions(&self) -> u64 {
        self.lbd_evictions
    }

    /// Overrides the learnt-clause count that triggers database reduction
    /// (mainly for tests and tuning).
    pub fn set_reduce_threshold(&mut self, threshold: usize) {
        self.reduce_threshold = threshold.max(1);
    }

    /// Allocates a fresh variable and returns its index.
    pub fn new_var(&mut self) -> u32 {
        let v = self.assign.len() as u32;
        self.assign.push(None);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.watches.add_list();
        self.watches.add_list();
        v
    }

    /// Adds a clause. Empty clauses make the instance trivially unsat;
    /// unit clauses are enqueued immediately.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        if self.unsat {
            return;
        }
        // Deduplicate and check for tautology.
        let mut lits: Vec<Lit> = lits.to_vec();
        lits.sort();
        lits.dedup();
        for w in lits.windows(2) {
            if w[0].var() == w[1].var() {
                return; // contains both polarities: tautology
            }
        }
        // Remove literals already false at level 0; drop clause if any true.
        if self.trail_lim.is_empty() {
            lits.retain(|&l| self.value(l) != Some(false));
            if lits.iter().any(|&l| self.value(l) == Some(true)) {
                return;
            }
        }
        match lits.len() {
            0 => self.unsat = true,
            1 => {
                if !self.enqueue(lits[0], None) {
                    self.unsat = true;
                }
            }
            _ => {
                let idx = self.db.add(&lits, false, 0);
                self.watches.push(
                    lits[0].flip().index(),
                    Watcher {
                        clause: idx,
                        blocker: lits[1],
                    },
                );
                self.watches.push(
                    lits[1].flip().index(),
                    Watcher {
                        clause: idx,
                        blocker: lits[0],
                    },
                );
            }
        }
    }

    fn value(&self, l: Lit) -> Option<bool> {
        self.assign[l.var() as usize].map(|b| b ^ l.is_neg())
    }

    fn enqueue(&mut self, l: Lit, reason: Option<u32>) -> bool {
        match self.value(l) {
            Some(true) => true,
            Some(false) => false,
            None => {
                let v = l.var() as usize;
                self.assign[v] = Some(!l.is_neg());
                self.phase[v] = !l.is_neg();
                self.level[v] = self.trail_lim.len() as u32;
                self.reason[v] = reason;
                self.trail.push(l);
                true
            }
        }
    }

    /// Unit propagation; returns a conflicting clause index if any.
    ///
    /// Scans each watch list in place with read/write cursors — no
    /// `mem::take`, no temporary `kept` vector. Mid-scan pushes only ever
    /// target *other* lists (a new watch is never false, while the scanned
    /// literal's complement is), so the region under the cursors is stable.
    fn propagate(&mut self) -> Option<u32> {
        self.watches.maybe_compact();
        while self.queue_head < self.trail.len() {
            let p = self.trail[self.queue_head];
            self.queue_head += 1;
            self.propagations += 1;
            let false_lit = p.flip();
            let list = self.watches.lists[p.index()];
            let start = list.start as usize;
            let n = list.len as usize;
            let mut read = 0usize;
            let mut write = 0usize;
            let mut conflict = None;
            while read < n {
                let w = self.watches.data[start + read];
                read += 1;
                // Fast path: a true blocker means the clause is satisfied;
                // keep the watcher without touching the clause at all.
                if self.value(w.blocker) == Some(true) {
                    self.blocker_skips += 1;
                    self.watches.data[start + write] = w;
                    write += 1;
                    continue;
                }
                let ci = w.clause as usize;
                let hdr = self.db.headers[ci];
                if hdr.deleted {
                    // Backstop only: `reduce_db` detaches eagerly, so no
                    // tombstoned watcher should survive to this point.
                    continue;
                }
                let cs = hdr.start as usize;
                // Normalize: watched lit 1 is the false one.
                if self.db.lits[cs] == false_lit {
                    self.db.lits.swap(cs, cs + 1);
                }
                let first = self.db.lits[cs];
                if self.value(first) == Some(true) {
                    self.watches.data[start + write] = Watcher {
                        clause: w.clause,
                        blocker: first,
                    };
                    write += 1;
                    continue;
                }
                // Look for a new watch.
                let mut found = None;
                for k in 2..hdr.len as usize {
                    if self.value(self.db.lits[cs + k]) != Some(false) {
                        found = Some(k);
                        break;
                    }
                }
                match found {
                    Some(k) => {
                        self.db.lits.swap(cs + 1, cs + k);
                        let new_watch = self.db.lits[cs + 1];
                        self.watches.push(
                            new_watch.flip().index(),
                            Watcher {
                                clause: w.clause,
                                blocker: first,
                            },
                        );
                    }
                    None => {
                        self.watches.data[start + write] = Watcher {
                            clause: w.clause,
                            blocker: first,
                        };
                        write += 1;
                        if !self.enqueue(first, Some(w.clause)) {
                            // Conflict: keep remaining watchers and bail.
                            conflict = Some(w.clause);
                            while read < n {
                                self.watches.data[start + write] = self.watches.data[start + read];
                                read += 1;
                                write += 1;
                            }
                            break;
                        }
                    }
                }
            }
            self.watches.lists[p.index()].len = write as u32;
            if conflict.is_some() {
                self.queue_head = self.trail.len();
                return conflict;
            }
        }
        None
    }

    fn bump_var(&mut self, v: u32) {
        self.activity[v as usize] += self.var_inc;
        if self.activity[v as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    fn bump_clause(&mut self, ci: u32) {
        let h = &mut self.db.headers[ci as usize];
        h.activity += self.cla_inc;
        if h.activity > 1e20 {
            for h in &mut self.db.headers {
                h.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis. Returns (learnt clause, backjump level,
    /// LBD of the learnt clause). Iterates clause literals by arena index —
    /// no per-resolution clone of the clause body.
    fn analyze(&mut self, conflict: u32) -> (Vec<Lit>, u32, u32) {
        let mut learnt = vec![Lit::pos(0)]; // slot 0 reserved for the UIP
        let mut seen = vec![false; self.assign.len()];
        let mut counter = 0u32;
        let mut p: Option<Lit> = None;
        let mut clause = conflict;
        let mut index = self.trail.len();
        let cur_level = self.trail_lim.len() as u32;

        loop {
            self.bump_clause(clause);
            let hdr = self.db.headers[clause as usize];
            let start = hdr.start as usize;
            let skip = usize::from(p.is_some());
            for j in skip..hdr.len as usize {
                let q = self.db.lits[start + j];
                let v = q.var() as usize;
                if !seen[v] && self.level[v] > 0 {
                    seen[v] = true;
                    self.bump_var(q.var());
                    if self.level[v] == cur_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next literal on the trail to resolve.
            loop {
                index -= 1;
                if seen[self.trail[index].var() as usize] {
                    break;
                }
            }
            let lit = self.trail[index];
            p = Some(lit);
            seen[lit.var() as usize] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = lit.flip();
                break;
            }
            clause = self.reason[lit.var() as usize].expect("non-decision has a reason");
        }

        // Backjump level = max level among the non-UIP literals.
        let bj = learnt
            .iter()
            .skip(1)
            .map(|l| self.level[l.var() as usize])
            .max()
            .unwrap_or(0);
        // Put a literal of the backjump level in slot 1 (watch invariant).
        if learnt.len() > 1 {
            let (mi, _) = learnt
                .iter()
                .enumerate()
                .skip(1)
                .max_by_key(|(_, l)| self.level[l.var() as usize])
                .expect("non-empty tail");
            learnt.swap(1, mi);
        }
        // LBD: distinct decision levels across the learnt literals.
        let mut levels: Vec<u32> = learnt
            .iter()
            .map(|l| self.level[l.var() as usize])
            .collect();
        levels.sort_unstable();
        levels.dedup();
        (learnt, bj, levels.len() as u32)
    }

    fn cancel_until(&mut self, level: u32) {
        while self.trail_lim.len() as u32 > level {
            let lim = self.trail_lim.pop().expect("non-root level");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("trail entry");
                let v = l.var() as usize;
                self.assign[v] = None;
                self.reason[v] = None;
            }
        }
        self.queue_head = self.trail.len();
    }

    fn decide(&mut self) -> Option<Lit> {
        // Pick the unassigned variable with the highest activity.
        let mut best: Option<(u32, f64)> = None;
        for (v, a) in self.activity.iter().enumerate() {
            if self.assign[v].is_none() {
                match best {
                    Some((_, ba)) if ba >= *a => {}
                    _ => best = Some((v as u32, *a)),
                }
            }
        }
        let (v, _) = best?;
        Some(if self.phase[v as usize] {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        })
    }

    /// Solves with a conflict budget.
    pub fn solve(&mut self, max_conflicts: u64) -> SatResult {
        self.solve_with_assumptions(&[], max_conflicts)
    }

    /// Solves under `assumptions`: each assumption literal is placed as a
    /// decision before any free decision, so an `Unsat` answer means the
    /// clause database is unsatisfiable *together with the assumptions*
    /// (the database itself stays intact, including clauses learnt during
    /// the search — they are derived by resolution from real clauses only,
    /// never from the assumptions, so they remain sound for later calls).
    /// This is the incremental interface used by the bit-blaster: blast
    /// each constraint once to an indicator literal, then solve different
    /// constraint subsets by assumption.
    ///
    /// # Example
    ///
    /// ```
    /// use bomblab_solver::sat::{Lit, SatSolver, SatResult};
    ///
    /// let mut s = SatSolver::new();
    /// let a = s.new_var();
    /// let b = s.new_var();
    /// s.add_clause(&[Lit::neg(a), Lit::pos(b)]); // a -> b
    /// assert!(matches!(
    ///     s.solve_with_assumptions(&[Lit::pos(a), Lit::neg(b)], 1000),
    ///     SatResult::Unsat
    /// ));
    /// // The same database is still satisfiable under other assumptions.
    /// assert!(matches!(
    ///     s.solve_with_assumptions(&[Lit::pos(a)], 1000),
    ///     SatResult::Sat(_)
    /// ));
    /// ```
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit], max_conflicts: u64) -> SatResult {
        if self.unsat {
            return SatResult::Unsat;
        }
        let mut restart_unit = 64u64;
        let mut restart_left = restart_unit;
        let start_conflicts = self.conflicts;
        loop {
            if let Some(conflict) = self.propagate() {
                self.conflicts += 1;
                restart_left = restart_left.saturating_sub(1);
                if self.trail_lim.is_empty() {
                    // Conflict at the root: unsatisfiable regardless of any
                    // assumptions; remember it for incremental reuse.
                    self.unsat = true;
                    return SatResult::Unsat;
                }
                if self.conflicts - start_conflicts >= max_conflicts {
                    self.cancel_until(0);
                    return SatResult::Unknown;
                }
                let (learnt, bj, lbd) = self.analyze(conflict);
                self.cancel_until(bj);
                if learnt.len() == 1 {
                    if !self.enqueue(learnt[0], None) {
                        // Unit learnt clause contradicted at the root.
                        self.unsat = true;
                        return SatResult::Unsat;
                    }
                } else {
                    let idx = self.db.add(&learnt, true, lbd);
                    self.watches.push(
                        learnt[0].flip().index(),
                        Watcher {
                            clause: idx,
                            blocker: learnt[1],
                        },
                    );
                    self.watches.push(
                        learnt[1].flip().index(),
                        Watcher {
                            clause: idx,
                            blocker: learnt[0],
                        },
                    );
                    let first = learnt[0];
                    self.bump_clause(idx);
                    self.learnt_since_reduce += 1;
                    if !self.enqueue(first, Some(idx)) {
                        return SatResult::Unsat;
                    }
                }
                self.var_inc /= 0.95;
                self.cla_inc /= 0.999;
            } else {
                if restart_left == 0 && !self.trail_lim.is_empty() {
                    restart_unit = restart_unit.saturating_mul(2);
                    restart_left = restart_unit;
                    self.cancel_until(0);
                    if self.learnt_since_reduce >= self.reduce_threshold {
                        self.reduce_db();
                    }
                    continue;
                }
                // Re-place any pending assumptions, one pseudo-decision level
                // each, before making free decisions (restarts and backjumps
                // may have cancelled them).
                if self.trail_lim.len() < assumptions.len() {
                    let p = assumptions[self.trail_lim.len()];
                    match self.value(p) {
                        Some(false) => {
                            // The database forces the negation: unsat under
                            // these assumptions (but not globally).
                            self.cancel_until(0);
                            return SatResult::Unsat;
                        }
                        Some(true) => {
                            // Already implied; open an empty level so the
                            // position in `assumptions` stays in sync.
                            self.trail_lim.push(self.trail.len());
                        }
                        None => {
                            self.trail_lim.push(self.trail.len());
                            let ok = self.enqueue(p, None);
                            debug_assert!(ok, "assumption literal was assigned");
                        }
                    }
                    continue;
                }
                match self.decide() {
                    Some(l) => {
                        self.trail_lim.push(self.trail.len());
                        let ok = self.enqueue(l, None);
                        debug_assert!(ok, "decision literal was assigned");
                    }
                    None => {
                        let model: Vec<bool> =
                            self.assign.iter().map(|a| a.unwrap_or(false)).collect();
                        self.cancel_until(0);
                        return SatResult::Sat(model);
                    }
                }
            }
        }
    }

    /// Live (non-deleted) learnt clauses (diagnostics).
    pub fn learnt_clauses(&self) -> usize {
        self.db
            .headers
            .iter()
            .filter(|h| h.learnt && !h.deleted)
            .count()
    }

    /// Evicts the worst half of the eligible learnt clauses, scored by LBD
    /// (higher is worse) with activity as the tie-breaker. Must be called at
    /// decision level 0. Kept unconditionally: binary clauses, "glue"
    /// clauses (LBD ≤ 2), and clauses that are reasons for current
    /// (level-0) assignments.
    fn reduce_db(&mut self) {
        debug_assert!(self.trail_lim.is_empty(), "reduce at the root only");
        self.learnt_since_reduce = 0;
        self.reduce_threshold = self.reduce_threshold.saturating_mul(2);
        let protected: std::collections::HashSet<u32> =
            self.reason.iter().flatten().copied().collect();
        let mut candidates: Vec<u32> = (0..self.db.headers.len() as u32)
            .filter(|&i| {
                let h = self.db.headers[i as usize];
                h.learnt && !h.deleted && h.len > 2 && h.lbd > 2 && !protected.contains(&i)
            })
            .collect();
        candidates.sort_by(|&a, &b| {
            let ha = self.db.headers[a as usize];
            let hb = self.db.headers[b as usize];
            hb.lbd.cmp(&ha.lbd).then(
                ha.activity
                    .partial_cmp(&hb.activity)
                    .expect("activities are finite"),
            )
        });
        let evict = candidates.len() / 2;
        for &ci in candidates.iter().take(evict) {
            self.db.headers[ci as usize].deleted = true;
        }
        self.lbd_evictions += evict as u64;
        if evict > 0 {
            self.watches.detach_deleted(&self.db);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: u32, pos: bool) -> Lit {
        if pos {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// Pigeonhole "no two pigeons share a hole" clauses; `extra` literals
    /// are appended to each clause (used to gate an instance behind an
    /// indicator variable).
    fn no_shared_holes(s: &mut SatSolver, p: &[impl AsRef<[u32]>], extra: &[Lit]) {
        for (i1, row1) in p.iter().enumerate() {
            for row2 in &p[i1 + 1..] {
                for (&a, &b) in row1.as_ref().iter().zip(row2.as_ref()) {
                    let mut lits = vec![Lit::neg(a), Lit::neg(b)];
                    lits.extend_from_slice(extra);
                    s.add_clause(&lits);
                }
            }
        }
    }

    /// A full pigeonhole instance: `n` pigeons into `n - 1` holes.
    fn pigeonhole(s: &mut SatSolver, n: usize) {
        let mut p = vec![vec![0u32; n - 1]; n];
        for row in p.iter_mut() {
            for v in row.iter_mut() {
                *v = s.new_var();
            }
        }
        for row in &p {
            let lits: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
            s.add_clause(&lits);
        }
        no_shared_holes(s, &p, &[]);
    }

    #[test]
    fn lit_encoding_round_trips() {
        let l = Lit::neg(5);
        assert_eq!(l.var(), 5);
        assert!(l.is_neg());
        assert_eq!(l.flip(), Lit::pos(5));
        assert_eq!(l.flip().flip(), l);
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        s.add_clause(&[Lit::pos(a)]);
        assert!(matches!(s.solve(1000), SatResult::Sat(_)));

        let mut s = SatSolver::new();
        let a = s.new_var();
        s.add_clause(&[Lit::pos(a)]);
        s.add_clause(&[Lit::neg(a)]);
        assert_eq!(s.solve(1000), SatResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = SatSolver::new();
        s.new_var();
        s.add_clause(&[]);
        assert_eq!(s.solve(1000), SatResult::Unsat);
    }

    #[test]
    fn model_satisfies_all_clauses() {
        // (a | b) & (!a | c) & (!b | !c) & (a | c)
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        let clauses: Vec<Vec<Lit>> = vec![
            vec![lit(a, true), lit(b, true)],
            vec![lit(a, false), lit(c, true)],
            vec![lit(b, false), lit(c, false)],
            vec![lit(a, true), lit(c, true)],
        ];
        for cl in &clauses {
            s.add_clause(cl);
        }
        let SatResult::Sat(m) = s.solve(10_000) else {
            panic!("expected sat");
        };
        for cl in &clauses {
            assert!(
                cl.iter().any(|l| m[l.var() as usize] != l.is_neg()),
                "clause {cl:?} unsatisfied by {m:?}"
            );
        }
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p[i][j]: pigeon i in hole j. 3 pigeons, 2 holes.
        let mut s = SatSolver::new();
        let mut p = [[0u32; 2]; 3];
        for row in p.iter_mut() {
            for v in row.iter_mut() {
                *v = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(&[Lit::pos(row[0]), Lit::pos(row[1])]);
        }
        no_shared_holes(&mut s, &p, &[]);
        assert_eq!(s.solve(100_000), SatResult::Unsat);
    }

    #[test]
    fn assumptions_reuse_learnt_clauses_across_queries() {
        // Pigeonhole 5->4 gated behind an indicator g: every clause is
        // weakened to (not-g or clause), so the instance is Unsat only
        // under the assumption [g]. The first refutation is expensive;
        // its learnt clauses (all containing not-g) persist, so repeating
        // the query must cost strictly fewer conflicts, and the solver
        // must stay usable for unrelated queries afterwards.
        let n = 5usize;
        let mut s = SatSolver::new();
        let g = s.new_var();
        let mut p = vec![vec![0u32; n - 1]; n];
        for row in p.iter_mut() {
            for v in row.iter_mut() {
                *v = s.new_var();
            }
        }
        for row in &p {
            let mut lits: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
            lits.push(Lit::neg(g));
            s.add_clause(&lits);
        }
        no_shared_holes(&mut s, &p, &[Lit::neg(g)]);
        let c0 = s.conflicts();
        assert_eq!(
            s.solve_with_assumptions(&[Lit::pos(g)], 1_000_000),
            SatResult::Unsat
        );
        let first = s.conflicts() - c0;
        assert!(first > 0, "the gated pigeonhole must require real search");

        assert_eq!(
            s.solve_with_assumptions(&[Lit::pos(g)], 1_000_000),
            SatResult::Unsat
        );
        let second = s.conflicts() - c0 - first;
        assert!(
            second < first,
            "learnt clauses must make the repeat query cheaper ({second} vs {first})"
        );

        // Unsat-under-assumptions is not sticky: dropping g satisfies.
        match s.solve(1_000_000) {
            SatResult::Sat(model) => assert!(!model[g as usize], "g must fall false"),
            other => panic!("expected Sat without the assumption, got {other:?}"),
        }
    }

    #[test]
    fn pigeonhole_5_into_4_is_unsat_with_learning() {
        let mut s = SatSolver::new();
        pigeonhole(&mut s, 5);
        assert_eq!(s.solve(1_000_000), SatResult::Unsat);
        assert!(s.conflicts() > 0);
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        // A hard-ish pigeonhole with a tiny budget.
        let mut s = SatSolver::new();
        pigeonhole(&mut s, 8);
        assert_eq!(s.solve(10), SatResult::Unknown);
    }

    #[test]
    fn clause_reduction_preserves_correctness() {
        // A pigeonhole instance generates plenty of learnt clauses; an
        // aggressive reduction threshold forces several reductions, and
        // the verdict must still be UNSAT.
        let mut s = SatSolver::new();
        s.set_reduce_threshold(64);
        pigeonhole(&mut s, 7);
        assert_eq!(s.solve(5_000_000), SatResult::Unsat);
        assert!(s.conflicts() > 64, "reductions must actually have fired");
    }

    #[test]
    fn random_3sat_agrees_with_brute_force() {
        // Deterministic xorshift for reproducibility.
        let mut state = 0x1234_5678u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let nvars = 6u32;
            let nclauses = 18;
            let mut clauses = Vec::new();
            for _ in 0..nclauses {
                let mut cl = Vec::new();
                for _ in 0..3 {
                    let v = (rnd() % nvars as u64) as u32;
                    cl.push(lit(v, rnd() % 2 == 0));
                }
                clauses.push(cl);
            }
            // Brute force.
            let mut brute_sat = false;
            'outer: for m in 0..(1u32 << nvars) {
                for cl in &clauses {
                    if !cl.iter().any(|l| ((m >> l.var()) & 1 == 1) != l.is_neg()) {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            // CDCL.
            let mut s = SatSolver::new();
            for _ in 0..nvars {
                s.new_var();
            }
            for cl in &clauses {
                s.add_clause(cl);
            }
            match s.solve(100_000) {
                SatResult::Sat(m) => {
                    assert!(brute_sat, "solver found model for unsat instance");
                    for cl in &clauses {
                        assert!(cl.iter().any(|l| m[l.var() as usize] != l.is_neg()));
                    }
                }
                SatResult::Unsat => assert!(!brute_sat, "solver claims unsat for sat instance"),
                SatResult::Unknown => panic!("budget should not be hit on tiny instances"),
            }
        }
    }

    #[test]
    fn random_mixed_width_cnf_agrees_with_brute_force() {
        // Propagation equivalence on wider clauses: widths 1..=4 exercise
        // the blocker fast path, the new-watch scan, and in-place
        // watch-list truncation together.
        let mut state = 0x9e37_79b9u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..40 {
            let nvars = 7u32;
            let nclauses = 22;
            let mut clauses = Vec::new();
            for _ in 0..nclauses {
                let width = 1 + (rnd() % 4) as usize;
                let mut cl = Vec::new();
                for _ in 0..width {
                    let v = (rnd() % nvars as u64) as u32;
                    cl.push(lit(v, rnd() % 2 == 0));
                }
                clauses.push(cl);
            }
            let mut brute_sat = false;
            'outer: for m in 0..(1u32 << nvars) {
                for cl in &clauses {
                    if !cl.iter().any(|l| ((m >> l.var()) & 1 == 1) != l.is_neg()) {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            let mut s = SatSolver::new();
            for _ in 0..nvars {
                s.new_var();
            }
            for cl in &clauses {
                s.add_clause(cl);
            }
            match s.solve(100_000) {
                SatResult::Sat(m) => {
                    assert!(brute_sat, "solver found model for unsat instance");
                    for cl in &clauses {
                        assert!(cl.iter().any(|l| m[l.var() as usize] != l.is_neg()));
                    }
                }
                SatResult::Unsat => assert!(!brute_sat, "solver claims unsat for sat instance"),
                SatResult::Unknown => panic!("budget should not be hit on tiny instances"),
            }
        }
    }

    #[test]
    fn blocker_literals_skip_satisfied_clauses() {
        // Any non-trivial search revisits satisfied clauses; the blocker
        // fast path must fire and the verdict must be unaffected.
        let mut s = SatSolver::new();
        pigeonhole(&mut s, 6);
        assert_eq!(s.solve(1_000_000), SatResult::Unsat);
        assert!(
            s.blocker_skips() > 0,
            "blocker fast path never fired during a real search"
        );
    }

    #[test]
    fn watch_arena_relocation_keeps_lists_intact() {
        // Many clauses watch the same two literals, forcing repeated list
        // relocations (and holes, hence compaction) in the flat arena.
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        let others: Vec<u32> = (0..200).map(|_| s.new_var()).collect();
        for &o in &others {
            s.add_clause(&[Lit::pos(a), Lit::pos(b), Lit::pos(o)]);
        }
        // Force a and b false: every clause must propagate its third lit.
        s.add_clause(&[Lit::neg(a)]);
        s.add_clause(&[Lit::neg(b)]);
        match s.solve(10_000) {
            SatResult::Sat(m) => {
                assert!(!m[a as usize] && !m[b as usize]);
                for &o in &others {
                    assert!(m[o as usize], "var {o} must be propagated true");
                }
            }
            other => panic!("expected sat, got {other:?}"),
        }
        // The same lists, now relocated and truncated in place, must still
        // refute a direct contradiction.
        s.add_clause(&[Lit::neg(others[0])]);
        assert_eq!(s.solve(10_000), SatResult::Unsat);
    }

    #[test]
    fn lbd_reduction_evicts_and_stays_sound() {
        let mut s = SatSolver::new();
        s.set_reduce_threshold(32);
        pigeonhole(&mut s, 7);
        assert_eq!(s.solve(5_000_000), SatResult::Unsat);
        assert!(
            s.lbd_evictions() > 0,
            "aggressive threshold must actually evict learnt clauses"
        );
    }

    #[test]
    fn reduction_detaches_watchers_of_evicted_clauses() {
        // Every clause-database reduction must scrub the evicted clauses'
        // watchers from the watch lists. A lingering watcher whose cached
        // blocker is true survives the blocker fast path forever, so dead
        // entries would be re-walked (and counted as blocker skips) on
        // every later propagation over that literal.
        let mut s = SatSolver::new();
        s.set_reduce_threshold(16);
        pigeonhole(&mut s, 7);
        assert_eq!(s.solve(5_000_000), SatResult::Unsat);
        assert!(s.lbd_evictions() > 0, "reductions must actually evict");
        for (li, list) in s.watches.lists.iter().enumerate() {
            for i in 0..list.len as usize {
                let w = s.watches.data[list.start as usize + i];
                assert!(
                    !s.db.headers[w.clause as usize].deleted,
                    "watch list {li} still references evicted clause {}",
                    w.clause
                );
            }
        }
    }

    #[test]
    fn reduction_never_evicts_reason_clauses_of_the_trail() {
        // After a reduce-heavy search, every assignment on the trail whose
        // reason is a clause must still point at a live (non-deleted)
        // clause — evicting a reason clause would corrupt later conflict
        // analysis.
        let mut s = SatSolver::new();
        s.set_reduce_threshold(16);
        pigeonhole(&mut s, 6);
        // Stop mid-search (Unknown) so the root trail retains implied
        // literals with clause reasons.
        let _ = s.solve(200);
        for &l in &s.trail {
            if let Some(ci) = s.reason[l.var() as usize] {
                assert!(
                    !s.db.headers[ci as usize].deleted,
                    "reason clause {ci} of {l:?} was evicted"
                );
            }
        }
        // And the instance still refutes correctly afterwards.
        assert_eq!(s.solve(5_000_000), SatResult::Unsat);
    }
}
