//! A CDCL SAT solver: two-watched literals, VSIDS decisions, 1-UIP clause
//! learning, phase saving, Luby restarts, and conflict budgets.
//!
//! This is the backend the bit-blaster targets. Budgets model the paper's
//! experimental timeouts: a run that exceeds its conflict budget reports
//! [`SatResult::Unknown`], which the study maps to the `E` outcome.

/// A literal: variable index shifted left once, low bit = negated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Positive literal of `var`.
    pub fn pos(var: u32) -> Lit {
        Lit(var << 1)
    }

    /// Negative literal of `var`.
    pub fn neg(var: u32) -> Lit {
        Lit((var << 1) | 1)
    }

    /// The underlying variable.
    pub fn var(self) -> u32 {
        self.0 >> 1
    }

    /// Whether this literal is negated.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complementary literal.
    pub fn flip(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Result of a SAT query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable; the vector maps variable index → value.
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
    /// The conflict budget ran out.
    Unknown,
}

impl SatResult {
    /// The model if satisfiable.
    pub fn model(&self) -> Option<&[bool]> {
        match self {
            SatResult::Sat(m) => Some(m),
            _ => None,
        }
    }
}

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    /// Tombstoned by clause-database reduction; skipped and lazily removed
    /// from watch lists.
    deleted: bool,
    activity: f64,
}

/// CDCL SAT solver.
///
/// # Example
///
/// ```
/// use bomblab_solver::sat::{Lit, SatSolver, SatResult};
///
/// let mut s = SatSolver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
/// s.add_clause(&[Lit::neg(a)]);
/// match s.solve(10_000) {
///     SatResult::Sat(m) => assert!(m[b as usize]),
///     other => panic!("expected sat, got {other:?}"),
/// }
/// ```
#[derive(Debug, Default)]
pub struct SatSolver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<u32>>, // lit index -> clause indices
    assign: Vec<Option<bool>>,
    phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<Option<u32>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    queue_head: usize,
    conflicts: u64,
    propagations: u64,
    /// Learnt clauses added since the last database reduction.
    learnt_since_reduce: usize,
    /// Learnt-clause count that triggers a reduction (doubles each time).
    reduce_threshold: usize,
    unsat: bool,
}

impl SatSolver {
    /// Creates an empty solver.
    pub fn new() -> SatSolver {
        SatSolver {
            var_inc: 1.0,
            cla_inc: 1.0,
            reduce_threshold: 4_000,
            ..SatSolver::default()
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> u32 {
        self.assign.len() as u32
    }

    /// Number of clauses (original + learnt).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Total conflicts so far.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Total propagations so far.
    pub fn propagations(&self) -> u64 {
        self.propagations
    }

    /// Overrides the learnt-clause count that triggers database reduction
    /// (mainly for tests and tuning).
    pub fn set_reduce_threshold(&mut self, threshold: usize) {
        self.reduce_threshold = threshold.max(1);
    }

    /// Allocates a fresh variable and returns its index.
    pub fn new_var(&mut self) -> u32 {
        let v = self.assign.len() as u32;
        self.assign.push(None);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// Adds a clause. Empty clauses make the instance trivially unsat;
    /// unit clauses are enqueued immediately.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        if self.unsat {
            return;
        }
        // Deduplicate and check for tautology.
        let mut lits: Vec<Lit> = lits.to_vec();
        lits.sort();
        lits.dedup();
        for w in lits.windows(2) {
            if w[0].var() == w[1].var() {
                return; // contains both polarities: tautology
            }
        }
        // Remove literals already false at level 0; drop clause if any true.
        if self.trail_lim.is_empty() {
            lits.retain(|&l| self.value(l) != Some(false));
            if lits.iter().any(|&l| self.value(l) == Some(true)) {
                return;
            }
        }
        match lits.len() {
            0 => self.unsat = true,
            1 => {
                if !self.enqueue(lits[0], None) {
                    self.unsat = true;
                }
            }
            _ => {
                let idx = self.clauses.len() as u32;
                self.watches[lits[0].flip().index()].push(idx);
                self.watches[lits[1].flip().index()].push(idx);
                self.clauses.push(Clause {
                    lits,
                    learnt: false,
                    deleted: false,
                    activity: 0.0,
                });
            }
        }
    }

    fn value(&self, l: Lit) -> Option<bool> {
        self.assign[l.var() as usize].map(|b| b ^ l.is_neg())
    }

    fn enqueue(&mut self, l: Lit, reason: Option<u32>) -> bool {
        match self.value(l) {
            Some(true) => true,
            Some(false) => false,
            None => {
                let v = l.var() as usize;
                self.assign[v] = Some(!l.is_neg());
                self.phase[v] = !l.is_neg();
                self.level[v] = self.trail_lim.len() as u32;
                self.reason[v] = reason;
                self.trail.push(l);
                true
            }
        }
    }

    /// Unit propagation; returns a conflicting clause index if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.queue_head < self.trail.len() {
            let p = self.trail[self.queue_head];
            self.queue_head += 1;
            self.propagations += 1;
            let watch_list = std::mem::take(&mut self.watches[p.index()]);
            let mut kept = Vec::with_capacity(watch_list.len());
            let mut conflict = None;
            let mut i = 0;
            while i < watch_list.len() {
                let ci = watch_list[i];
                i += 1;
                if self.clauses[ci as usize].deleted {
                    continue; // lazily dropped from this watch list
                }
                let false_lit = p.flip();
                // Normalize: watched lit 1 is the false one.
                {
                    let c = &mut self.clauses[ci as usize];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                }
                let first = self.clauses[ci as usize].lits[0];
                if self.value(first) == Some(true) {
                    kept.push(ci);
                    continue;
                }
                // Look for a new watch.
                let mut found = None;
                {
                    let c = &self.clauses[ci as usize];
                    for (k, &l) in c.lits.iter().enumerate().skip(2) {
                        if self.value(l) != Some(false) {
                            found = Some(k);
                            break;
                        }
                    }
                }
                match found {
                    Some(k) => {
                        let c = &mut self.clauses[ci as usize];
                        c.lits.swap(1, k);
                        let new_watch = c.lits[1];
                        self.watches[new_watch.flip().index()].push(ci);
                    }
                    None => {
                        kept.push(ci);
                        if !self.enqueue(first, Some(ci)) {
                            // Conflict: keep remaining watches and bail.
                            conflict = Some(ci);
                            kept.extend_from_slice(&watch_list[i..]);
                            break;
                        }
                    }
                }
            }
            self.watches[p.index()] = kept;
            if conflict.is_some() {
                self.queue_head = self.trail.len();
                return conflict;
            }
        }
        None
    }

    fn bump_var(&mut self, v: u32) {
        self.activity[v as usize] += self.var_inc;
        if self.activity[v as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    fn bump_clause(&mut self, ci: u32) {
        let c = &mut self.clauses[ci as usize];
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for c in &mut self.clauses {
                c.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis. Returns (learnt clause, backjump level).
    fn analyze(&mut self, conflict: u32) -> (Vec<Lit>, u32) {
        let mut learnt = vec![Lit::pos(0)]; // slot 0 reserved for the UIP
        let mut seen = vec![false; self.assign.len()];
        let mut counter = 0u32;
        let mut p: Option<Lit> = None;
        let mut clause = conflict;
        let mut index = self.trail.len();
        let cur_level = self.trail_lim.len() as u32;

        loop {
            self.bump_clause(clause);
            let lits: Vec<Lit> = self.clauses[clause as usize].lits.clone();
            let skip = usize::from(p.is_some());
            for &q in lits.iter().skip(skip) {
                let v = q.var() as usize;
                if !seen[v] && self.level[v] > 0 {
                    seen[v] = true;
                    self.bump_var(q.var());
                    if self.level[v] == cur_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next literal on the trail to resolve.
            loop {
                index -= 1;
                if seen[self.trail[index].var() as usize] {
                    break;
                }
            }
            let lit = self.trail[index];
            p = Some(lit);
            seen[lit.var() as usize] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = lit.flip();
                break;
            }
            clause = self.reason[lit.var() as usize].expect("non-decision has a reason");
        }

        // Backjump level = max level among the non-UIP literals.
        let bj = learnt
            .iter()
            .skip(1)
            .map(|l| self.level[l.var() as usize])
            .max()
            .unwrap_or(0);
        // Put a literal of the backjump level in slot 1 (watch invariant).
        if learnt.len() > 1 {
            let (mi, _) = learnt
                .iter()
                .enumerate()
                .skip(1)
                .max_by_key(|(_, l)| self.level[l.var() as usize])
                .expect("non-empty tail");
            learnt.swap(1, mi);
        }
        (learnt, bj)
    }

    fn cancel_until(&mut self, level: u32) {
        while self.trail_lim.len() as u32 > level {
            let lim = self.trail_lim.pop().expect("non-root level");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("trail entry");
                let v = l.var() as usize;
                self.assign[v] = None;
                self.reason[v] = None;
            }
        }
        self.queue_head = self.trail.len();
    }

    fn decide(&mut self) -> Option<Lit> {
        // Pick the unassigned variable with the highest activity.
        let mut best: Option<(u32, f64)> = None;
        for (v, a) in self.activity.iter().enumerate() {
            if self.assign[v].is_none() {
                match best {
                    Some((_, ba)) if ba >= *a => {}
                    _ => best = Some((v as u32, *a)),
                }
            }
        }
        let (v, _) = best?;
        Some(if self.phase[v as usize] {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        })
    }

    /// Solves with a conflict budget.
    pub fn solve(&mut self, max_conflicts: u64) -> SatResult {
        self.solve_with_assumptions(&[], max_conflicts)
    }

    /// Solves under `assumptions`: each assumption literal is placed as a
    /// decision before any free decision, so an `Unsat` answer means the
    /// clause database is unsatisfiable *together with the assumptions*
    /// (the database itself stays intact, including clauses learnt during
    /// the search — they are derived by resolution from real clauses only,
    /// never from the assumptions, so they remain sound for later calls).
    /// This is the incremental interface used by the bit-blaster: blast
    /// each constraint once to an indicator literal, then solve different
    /// constraint subsets by assumption.
    ///
    /// # Example
    ///
    /// ```
    /// use bomblab_solver::sat::{Lit, SatSolver, SatResult};
    ///
    /// let mut s = SatSolver::new();
    /// let a = s.new_var();
    /// let b = s.new_var();
    /// s.add_clause(&[Lit::neg(a), Lit::pos(b)]); // a -> b
    /// assert!(matches!(
    ///     s.solve_with_assumptions(&[Lit::pos(a), Lit::neg(b)], 1000),
    ///     SatResult::Unsat
    /// ));
    /// // The same database is still satisfiable under other assumptions.
    /// assert!(matches!(
    ///     s.solve_with_assumptions(&[Lit::pos(a)], 1000),
    ///     SatResult::Sat(_)
    /// ));
    /// ```
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit], max_conflicts: u64) -> SatResult {
        if self.unsat {
            return SatResult::Unsat;
        }
        let mut restart_unit = 64u64;
        let mut restart_left = restart_unit;
        let start_conflicts = self.conflicts;
        loop {
            if let Some(conflict) = self.propagate() {
                self.conflicts += 1;
                restart_left = restart_left.saturating_sub(1);
                if self.trail_lim.is_empty() {
                    // Conflict at the root: unsatisfiable regardless of any
                    // assumptions; remember it for incremental reuse.
                    self.unsat = true;
                    return SatResult::Unsat;
                }
                if self.conflicts - start_conflicts >= max_conflicts {
                    self.cancel_until(0);
                    return SatResult::Unknown;
                }
                let (learnt, bj) = self.analyze(conflict);
                self.cancel_until(bj);
                if learnt.len() == 1 {
                    if !self.enqueue(learnt[0], None) {
                        // Unit learnt clause contradicted at the root.
                        self.unsat = true;
                        return SatResult::Unsat;
                    }
                } else {
                    let idx = self.clauses.len() as u32;
                    self.watches[learnt[0].flip().index()].push(idx);
                    self.watches[learnt[1].flip().index()].push(idx);
                    let first = learnt[0];
                    self.clauses.push(Clause {
                        lits: learnt,
                        learnt: true,
                        deleted: false,
                        activity: 0.0,
                    });
                    self.bump_clause(idx);
                    self.learnt_since_reduce += 1;
                    if !self.enqueue(first, Some(idx)) {
                        return SatResult::Unsat;
                    }
                }
                self.var_inc /= 0.95;
                self.cla_inc /= 0.999;
            } else {
                if restart_left == 0 && !self.trail_lim.is_empty() {
                    restart_unit = restart_unit.saturating_mul(2);
                    restart_left = restart_unit;
                    self.cancel_until(0);
                    if self.learnt_since_reduce >= self.reduce_threshold {
                        self.reduce_db();
                    }
                    continue;
                }
                // Re-place any pending assumptions, one pseudo-decision level
                // each, before making free decisions (restarts and backjumps
                // may have cancelled them).
                if self.trail_lim.len() < assumptions.len() {
                    let p = assumptions[self.trail_lim.len()];
                    match self.value(p) {
                        Some(false) => {
                            // The database forces the negation: unsat under
                            // these assumptions (but not globally).
                            self.cancel_until(0);
                            return SatResult::Unsat;
                        }
                        Some(true) => {
                            // Already implied; open an empty level so the
                            // position in `assumptions` stays in sync.
                            self.trail_lim.push(self.trail.len());
                        }
                        None => {
                            self.trail_lim.push(self.trail.len());
                            let ok = self.enqueue(p, None);
                            debug_assert!(ok, "assumption literal was assigned");
                        }
                    }
                    continue;
                }
                match self.decide() {
                    Some(l) => {
                        self.trail_lim.push(self.trail.len());
                        let ok = self.enqueue(l, None);
                        debug_assert!(ok, "decision literal was assigned");
                    }
                    None => {
                        let model: Vec<bool> =
                            self.assign.iter().map(|a| a.unwrap_or(false)).collect();
                        self.cancel_until(0);
                        return SatResult::Sat(model);
                    }
                }
            }
        }
    }

    /// Live (non-deleted) learnt clauses (diagnostics).
    pub fn learnt_clauses(&self) -> usize {
        self.clauses
            .iter()
            .filter(|c| c.learnt && !c.deleted)
            .count()
    }

    /// Deletes the lower-activity half of the learnt clauses. Must be
    /// called at decision level 0; clauses that are reasons for current
    /// (level-0) assignments and binary clauses are kept.
    fn reduce_db(&mut self) {
        debug_assert!(self.trail_lim.is_empty(), "reduce at the root only");
        self.learnt_since_reduce = 0;
        self.reduce_threshold = self.reduce_threshold.saturating_mul(2);
        let protected: std::collections::HashSet<u32> =
            self.reason.iter().flatten().copied().collect();
        let mut candidates: Vec<(u32, f64)> = self
            .clauses
            .iter()
            .enumerate()
            .filter(|(i, c)| {
                c.learnt && !c.deleted && c.lits.len() > 2 && !protected.contains(&(*i as u32))
            })
            .map(|(i, c)| (i as u32, c.activity))
            .collect();
        candidates.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("activities are finite"));
        for &(ci, _) in candidates.iter().take(candidates.len() / 2) {
            self.clauses[ci as usize].deleted = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: u32, pos: bool) -> Lit {
        if pos {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// Pigeonhole "no two pigeons share a hole" clauses; `extra` literals
    /// are appended to each clause (used to gate an instance behind an
    /// indicator variable).
    fn no_shared_holes(s: &mut SatSolver, p: &[impl AsRef<[u32]>], extra: &[Lit]) {
        for (i1, row1) in p.iter().enumerate() {
            for row2 in &p[i1 + 1..] {
                for (&a, &b) in row1.as_ref().iter().zip(row2.as_ref()) {
                    let mut lits = vec![Lit::neg(a), Lit::neg(b)];
                    lits.extend_from_slice(extra);
                    s.add_clause(&lits);
                }
            }
        }
    }

    #[test]
    fn lit_encoding_round_trips() {
        let l = Lit::neg(5);
        assert_eq!(l.var(), 5);
        assert!(l.is_neg());
        assert_eq!(l.flip(), Lit::pos(5));
        assert_eq!(l.flip().flip(), l);
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        s.add_clause(&[Lit::pos(a)]);
        assert!(matches!(s.solve(1000), SatResult::Sat(_)));

        let mut s = SatSolver::new();
        let a = s.new_var();
        s.add_clause(&[Lit::pos(a)]);
        s.add_clause(&[Lit::neg(a)]);
        assert_eq!(s.solve(1000), SatResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = SatSolver::new();
        s.new_var();
        s.add_clause(&[]);
        assert_eq!(s.solve(1000), SatResult::Unsat);
    }

    #[test]
    fn model_satisfies_all_clauses() {
        // (a | b) & (!a | c) & (!b | !c) & (a | c)
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        let clauses: Vec<Vec<Lit>> = vec![
            vec![lit(a, true), lit(b, true)],
            vec![lit(a, false), lit(c, true)],
            vec![lit(b, false), lit(c, false)],
            vec![lit(a, true), lit(c, true)],
        ];
        for cl in &clauses {
            s.add_clause(cl);
        }
        let SatResult::Sat(m) = s.solve(10_000) else {
            panic!("expected sat");
        };
        for cl in &clauses {
            assert!(
                cl.iter().any(|l| m[l.var() as usize] != l.is_neg()),
                "clause {cl:?} unsatisfied by {m:?}"
            );
        }
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p[i][j]: pigeon i in hole j. 3 pigeons, 2 holes.
        let mut s = SatSolver::new();
        let mut p = [[0u32; 2]; 3];
        for row in p.iter_mut() {
            for v in row.iter_mut() {
                *v = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(&[Lit::pos(row[0]), Lit::pos(row[1])]);
        }
        no_shared_holes(&mut s, &p, &[]);
        assert_eq!(s.solve(100_000), SatResult::Unsat);
    }

    #[test]
    fn assumptions_reuse_learnt_clauses_across_queries() {
        // Pigeonhole 5->4 gated behind an indicator g: every clause is
        // weakened to (not-g or clause), so the instance is Unsat only
        // under the assumption [g]. The first refutation is expensive;
        // its learnt clauses (all containing not-g) persist, so repeating
        // the query must cost strictly fewer conflicts, and the solver
        // must stay usable for unrelated queries afterwards.
        let n = 5usize;
        let mut s = SatSolver::new();
        let g = s.new_var();
        let mut p = vec![vec![0u32; n - 1]; n];
        for row in p.iter_mut() {
            for v in row.iter_mut() {
                *v = s.new_var();
            }
        }
        for row in &p {
            let mut lits: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
            lits.push(Lit::neg(g));
            s.add_clause(&lits);
        }
        no_shared_holes(&mut s, &p, &[Lit::neg(g)]);
        let c0 = s.conflicts();
        assert_eq!(
            s.solve_with_assumptions(&[Lit::pos(g)], 1_000_000),
            SatResult::Unsat
        );
        let first = s.conflicts() - c0;
        assert!(first > 0, "the gated pigeonhole must require real search");

        assert_eq!(
            s.solve_with_assumptions(&[Lit::pos(g)], 1_000_000),
            SatResult::Unsat
        );
        let second = s.conflicts() - c0 - first;
        assert!(
            second < first,
            "learnt clauses must make the repeat query cheaper ({second} vs {first})"
        );

        // Unsat-under-assumptions is not sticky: dropping g satisfies.
        match s.solve(1_000_000) {
            SatResult::Sat(model) => assert!(!model[g as usize], "g must fall false"),
            other => panic!("expected Sat without the assumption, got {other:?}"),
        }
    }

    #[test]
    fn pigeonhole_5_into_4_is_unsat_with_learning() {
        let n = 5usize;
        let mut s = SatSolver::new();
        let mut p = vec![vec![0u32; n - 1]; n];
        for row in p.iter_mut() {
            for v in row.iter_mut() {
                *v = s.new_var();
            }
        }
        for row in &p {
            let lits: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
            s.add_clause(&lits);
        }
        no_shared_holes(&mut s, &p, &[]);
        assert_eq!(s.solve(1_000_000), SatResult::Unsat);
        assert!(s.conflicts() > 0);
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        // A hard-ish pigeonhole with a tiny budget.
        let n = 8usize;
        let mut s = SatSolver::new();
        let mut p = vec![vec![0u32; n - 1]; n];
        for row in p.iter_mut() {
            for v in row.iter_mut() {
                *v = s.new_var();
            }
        }
        for row in &p {
            let lits: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
            s.add_clause(&lits);
        }
        no_shared_holes(&mut s, &p, &[]);
        assert_eq!(s.solve(10), SatResult::Unknown);
    }

    #[test]
    fn clause_reduction_preserves_correctness() {
        // A pigeonhole instance generates plenty of learnt clauses; an
        // aggressive reduction threshold forces several reductions, and
        // the verdict must still be UNSAT.
        let n = 7usize;
        let mut s = SatSolver::new();
        s.set_reduce_threshold(64);
        let mut p = vec![vec![0u32; n - 1]; n];
        for row in p.iter_mut() {
            for v in row.iter_mut() {
                *v = s.new_var();
            }
        }
        for row in &p {
            let lits: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
            s.add_clause(&lits);
        }
        no_shared_holes(&mut s, &p, &[]);
        assert_eq!(s.solve(5_000_000), SatResult::Unsat);
        assert!(s.conflicts() > 64, "reductions must actually have fired");
    }

    #[test]
    fn random_3sat_agrees_with_brute_force() {
        // Deterministic xorshift for reproducibility.
        let mut state = 0x1234_5678u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let nvars = 6u32;
            let nclauses = 18;
            let mut clauses = Vec::new();
            for _ in 0..nclauses {
                let mut cl = Vec::new();
                for _ in 0..3 {
                    let v = (rnd() % nvars as u64) as u32;
                    cl.push(lit(v, rnd() % 2 == 0));
                }
                clauses.push(cl);
            }
            // Brute force.
            let mut brute_sat = false;
            'outer: for m in 0..(1u32 << nvars) {
                for cl in &clauses {
                    if !cl.iter().any(|l| ((m >> l.var()) & 1 == 1) != l.is_neg()) {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            // CDCL.
            let mut s = SatSolver::new();
            for _ in 0..nvars {
                s.new_var();
            }
            for cl in &clauses {
                s.add_clause(cl);
            }
            match s.solve(100_000) {
                SatResult::Sat(m) => {
                    assert!(brute_sat, "solver found model for unsat instance");
                    for cl in &clauses {
                        assert!(cl.iter().any(|l| m[l.var() as usize] != l.is_neg()));
                    }
                }
                SatResult::Unsat => assert!(!brute_sat, "solver claims unsat for sat instance"),
                SatResult::Unknown => panic!("budget should not be hit on tiny instances"),
            }
        }
    }
}
