//! # bomblab-solver — an SMT-lite bitvector solver
//!
//! The constraint-solving backend of the bomblab concolic engine, playing
//! the role STP/Z3 play for the tools studied in the DSN'17 paper:
//!
//! * [`expr`] — a term language of bitvectors, booleans and doubles with
//!   folding smart constructors and a concrete evaluator,
//! * [`interval`] — unsigned range analysis used as a cheap pre-solver,
//! * [`bitblast`] — Tseitin conversion of bitvector terms to CNF,
//! * [`sat`] — a CDCL SAT core with conflict budgets,
//! * [`Solver`] — the front-end combining all of the above, plus a
//!   local-search fallback for floating-point constraints.
//!
//! Budgets are central: the paper's experiments cap each tool at ten
//! minutes, and crypto-function constraints are *designed* to blow any
//! budget. [`SolveOutcome::Unknown`] carries the reason, which the study
//! maps onto the paper's `E` label.
//!
//! ## Example
//!
//! ```
//! use bomblab_solver::{Solver, SolveOutcome};
//! use bomblab_solver::expr::{Term, BvOp, CmpOp};
//!
//! // x * 3 + 1 == 22  =>  x == 7
//! let x = Term::var("x", 32);
//! let lhs = Term::bin(BvOp::Add, &Term::bin(BvOp::Mul, &x, &Term::bv(3, 32)), &Term::bv(1, 32));
//! let c = Term::cmp(CmpOp::Eq, &lhs, &Term::bv(22, 32));
//! match Solver::new().check(&[c]) {
//!     SolveOutcome::Sat(model) => assert_eq!(model.get("x"), Some(7)),
//!     other => panic!("expected sat, got {other:?}"),
//! }
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod bitblast;
pub mod expr;
pub mod interval;
pub mod sat;
pub mod smtlib;

use expr::{eval, Term, Value, Var};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

/// Resource limits for a single `check` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverBudget {
    /// Maximum CDCL conflicts before giving up.
    pub max_conflicts: u64,
    /// Maximum total term nodes before refusing to blast.
    pub max_formula_nodes: usize,
}

impl Default for SolverBudget {
    fn default() -> SolverBudget {
        SolverBudget {
            max_conflicts: 200_000,
            max_formula_nodes: 2_000_000,
        }
    }
}

/// How floating-point constraints are handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FloatMode {
    /// Report [`UnknownReason::FloatUnsupported`] — models a tool without a
    /// floating-point theory (the common case in the paper).
    #[default]
    Reject,
    /// Try a bounded local search over candidate integer inputs. Sound for
    /// SAT answers (models are verified by evaluation); never reports
    /// UNSAT for open formulas.
    LocalSearch,
}

/// Why the solver could not decide a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnknownReason {
    /// The CDCL conflict budget ran out.
    ConflictBudget,
    /// The formula exceeded the node budget before blasting.
    FormulaTooLarge,
    /// Floating-point constraints and [`FloatMode::Reject`].
    FloatUnsupported,
    /// Floating-point local search found no satisfying input.
    FloatSearchFailed,
    /// A chaos-harness fault plan forced this query to give up
    /// (models solver resource exhaustion; never occurs unarmed).
    FaultInjected,
    /// An internal solver invariant broke ([`SolverError`] surfaced via the
    /// infallible [`check`](Solver::check) wrapper).
    Internal,
}

impl fmt::Display for UnknownReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnknownReason::ConflictBudget => write!(f, "conflict budget exhausted"),
            UnknownReason::FormulaTooLarge => write!(f, "formula exceeds node budget"),
            UnknownReason::FloatUnsupported => write!(f, "floating-point theory unsupported"),
            UnknownReason::FloatSearchFailed => write!(f, "floating-point search failed"),
            UnknownReason::FaultInjected => write!(f, "fault injected by chaos plan"),
            UnknownReason::Internal => write!(f, "internal solver error"),
        }
    }
}

/// An internal solver failure surfaced as a typed error instead of a panic.
///
/// [`Solver::try_check`] returns these; the infallible [`Solver::check`]
/// maps them onto [`UnknownReason::Internal`] so legacy callers keep their
/// signature while the engine can diagnose the stage precisely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolverError {
    /// Model extraction found a variable the blasting session never
    /// encoded — an invariant break that used to `panic!` mid-study.
    UnblastedVariable(Arc<str>),
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::UnblastedVariable(name) => {
                write!(f, "query variable `{name}` was never blasted")
            }
        }
    }
}

impl std::error::Error for SolverError {}

/// A satisfying assignment.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Model {
    values: BTreeMap<Arc<str>, u64>,
}

impl Model {
    /// Value of a variable (variables absent from the formula default to
    /// `None`).
    pub fn get(&self, name: &str) -> Option<u64> {
        self.values.get(name).copied()
    }

    /// Iterates over `(name, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Arc<str>, &u64)> {
        self.values.iter()
    }

    /// The assignment as an evaluation environment.
    pub fn as_env(&self) -> std::collections::HashMap<Arc<str>, u64> {
        self.values.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// Inserts a binding (used by engines to pre-seed inputs).
    pub fn insert(&mut self, name: impl Into<Arc<str>>, value: u64) {
        self.values.insert(name.into(), value);
    }
}

/// Outcome of a `check` call.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveOutcome {
    /// Satisfiable with the given model.
    Sat(Model),
    /// Definitely unsatisfiable.
    Unsat,
    /// Could not decide.
    Unknown(UnknownReason),
}

/// Statistics from the last `check` call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Term nodes in the (simplified) formula.
    pub formula_nodes: usize,
    /// SAT variables created by blasting (cumulative across the session).
    pub sat_vars: u32,
    /// SAT clauses created by blasting (cumulative across the session).
    pub sat_clauses: usize,
    /// CDCL conflicts spent on this query.
    pub conflicts: u64,
    /// CDCL propagations spent on this query.
    pub propagations: u64,
    /// Whether the query was answered from the cross-round cache.
    pub cache_hit: bool,
}

/// Cumulative cross-round cache counters for one [`Solver`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries whose exact constraint set was seen before (outcome replayed).
    pub exact_hits: u64,
    /// Queries answered by re-validating a previously found model.
    pub model_hits: u64,
    /// Queries subsumed by a cached unsat core (a known-unsat subset).
    pub unsat_subset_hits: u64,
    /// Queries that had to run the solving pipeline.
    pub misses: u64,
    /// Constraints Tseitin-encoded by the incremental session.
    pub roots_blasted: u64,
    /// Constraint CNF lookups served from the session cache (prefix reuse).
    pub roots_reused: u64,
}

impl CacheStats {
    /// Total queries answered without running the solving pipeline.
    pub fn hits(&self) -> u64 {
        self.exact_hits + self.model_hits + self.unsat_subset_hits
    }
}

/// How many cached models a query tries to re-validate before solving.
const MODEL_REUSE_TRIES: usize = 32;
/// How many recent models the cache retains.
const MODEL_CACHE_CAP: usize = 64;
/// How many unsat cores the cache retains for subset checks.
const UNSAT_CORE_CAP: usize = 256;

/// Mutable cross-query state behind the immutable `check(&self)` interface.
#[derive(Debug, Default)]
struct SolverState {
    /// Incremental blasting session shared by all bitvector queries.
    session: Option<bitblast::Session>,
    /// Canonical constraint-set fingerprint (sorted, deduped hash-consed
    /// term ids) → outcome of a previous identical query.
    exact: HashMap<Vec<usize>, SolveOutcome>,
    /// Recent satisfying models, newest last, for cross-query model reuse.
    models: Vec<Model>,
    /// Constraint-id sets proven unsatisfiable (sorted); any superset query
    /// is unsat too.
    unsat_cores: Vec<Vec<usize>>,
    /// Pins terms whose ids appear in cache keys but which the blasting
    /// session does not retain (float-path queries), so those ids can never
    /// be reused by later allocations.
    pinned: Vec<Term>,
}

/// The solver front-end.
///
/// A `Solver` is cheap to create but *profits from living long*: it keeps an
/// incremental bit-blasting session (CNF and learnt clauses persist across
/// queries, constraint prefixes are blasted once) and a cross-round query
/// cache (exact outcome replay, model reuse, and unsat-core subsumption).
/// The concolic engine therefore creates one solver per exploration, not one
/// per round. Disable the cache layer with
/// [`with_query_cache(false)`](Solver::with_query_cache).
#[derive(Debug, Default)]
pub struct Solver {
    budget: SolverBudget,
    float_mode: FloatMode,
    no_query_cache: bool,
    stats: std::cell::Cell<SolveStats>,
    cache_stats: std::cell::Cell<CacheStats>,
    state: std::cell::RefCell<SolverState>,
}

impl Solver {
    /// Creates a solver with default budgets and [`FloatMode::Reject`].
    pub fn new() -> Solver {
        Solver::default()
    }

    /// Overrides the budget.
    pub fn with_budget(mut self, budget: SolverBudget) -> Solver {
        self.budget = budget;
        self
    }

    /// Overrides floating-point handling.
    pub fn with_float_mode(mut self, mode: FloatMode) -> Solver {
        self.float_mode = mode;
        self
    }

    /// Enables or disables the cross-round query cache (default: enabled).
    /// The incremental blasting session stays on either way.
    pub fn with_query_cache(mut self, enabled: bool) -> Solver {
        self.no_query_cache = !enabled;
        self
    }

    /// Statistics from the most recent [`check`](Solver::check).
    pub fn stats(&self) -> SolveStats {
        self.stats.get()
    }

    /// Cumulative cache counters across every `check` on this solver.
    pub fn cache_stats(&self) -> CacheStats {
        let mut cs = self.cache_stats.get();
        if let Some(session) = self.state.borrow().session.as_ref() {
            cs.roots_blasted = session.roots_blasted();
            cs.roots_reused = session.roots_reused();
        }
        cs
    }

    /// Decides the conjunction of `constraints`, mapping internal solver
    /// errors onto [`UnknownReason::Internal`]. Prefer
    /// [`try_check`](Solver::try_check) when the caller can report errors.
    pub fn check(&self, constraints: &[Term]) -> SolveOutcome {
        match self.try_check(constraints) {
            Ok(out) => out,
            Err(_) => SolveOutcome::Unknown(UnknownReason::Internal),
        }
    }

    /// Decides the conjunction of `constraints`.
    ///
    /// # Errors
    ///
    /// Returns a [`SolverError`] when an internal invariant breaks (e.g.
    /// model extraction meets a variable the session never blasted) —
    /// conditions that formerly panicked mid-study.
    pub fn try_check(&self, constraints: &[Term]) -> Result<SolveOutcome, SolverError> {
        let timer = bomblab_obs::start();
        let out = self.check_impl(constraints);
        if let Some(t0) = timer {
            self.record_query(&out, t0.elapsed().as_nanos() as u64);
        }
        out
    }

    /// Trace-sink bookkeeping for one finished query. Only runs when an
    /// observation sink is armed on this thread.
    #[cold]
    fn record_query(&self, out: &Result<SolveOutcome, SolverError>, ns: u64) {
        use bomblab_obs::Field;
        let stats = self.stats.get();
        bomblab_obs::span_ns("solver.check", ns);
        bomblab_obs::counter("solver.queries", 1);
        bomblab_obs::hist("solver.query_ns", ns);
        bomblab_obs::hist("solver.conflicts", stats.conflicts);
        if stats.cache_hit {
            bomblab_obs::counter("solver.cache_hits", 1);
        } else {
            bomblab_obs::counter("solver.cache_misses", 1);
        }
        let outcome = match out {
            Ok(SolveOutcome::Sat(_)) => "sat",
            Ok(SolveOutcome::Unsat) => "unsat",
            Ok(SolveOutcome::Unknown(_)) => "unknown",
            Err(_) => "error",
        };
        bomblab_obs::event("solver.query", || {
            vec![
                ("outcome", Field::Str(outcome.to_string())),
                ("cache_hit", Field::Bool(stats.cache_hit)),
                ("conflicts", Field::U64(stats.conflicts)),
                ("formula_nodes", Field::U64(stats.formula_nodes as u64)),
                ("ns", Field::U64(ns)),
            ]
        });
    }

    fn check_impl(&self, constraints: &[Term]) -> Result<SolveOutcome, SolverError> {
        // Fault-injection point: one hit per query. Inert (one relaxed
        // atomic load) unless a chaos plan is armed on this thread.
        if let Some(action) = bomblab_fault::fault_point(bomblab_fault::FaultSite::SolverQuery) {
            match action {
                bomblab_fault::FaultAction::Panic => {
                    panic!("injected panic in the solver")
                }
                bomblab_fault::FaultAction::Stall => bomblab_fault::trip_stall(),
                _ => return Ok(SolveOutcome::Unknown(UnknownReason::FaultInjected)),
            }
        }
        let mut stats = SolveStats::default();
        // Constant and interval pre-solving.
        let mut live = Vec::new();
        for c in constraints {
            match c.as_bool_const() {
                Some(true) => continue,
                Some(false) => {
                    self.stats.set(stats);
                    return Ok(SolveOutcome::Unsat);
                }
                None => {}
            }
            if interval::definitely_false(c) {
                self.stats.set(stats);
                return Ok(SolveOutcome::Unsat);
            }
            live.push(c.clone());
        }
        if live.is_empty() {
            self.stats.set(stats);
            return Ok(SolveOutcome::Sat(Model::default()));
        }

        stats.formula_nodes = live.iter().map(Term::size).sum();
        if stats.formula_nodes > self.budget.max_formula_nodes {
            self.stats.set(stats);
            return Ok(SolveOutcome::Unknown(UnknownReason::FormulaTooLarge));
        }

        // Canonical fingerprint: hash-consing makes term ids stable within
        // the thread, so the sorted deduped id vector identifies the
        // constraint set exactly.
        let mut key: Vec<usize> = live.iter().map(Term::id).collect();
        key.sort_unstable();
        key.dedup();

        if !self.no_query_cache {
            if let Some(out) = self.cache_lookup(&key, &live, &mut stats) {
                self.stats.set(stats);
                return Ok(out);
            }
        }
        self.bump_cache(|cs| cs.misses += 1);

        if live.iter().any(Term::has_float) {
            let out = match self.float_mode {
                FloatMode::Reject => {
                    // Even float-less solvers handle one degenerate case the
                    // way claripy does: a comparison against a *completely
                    // unconstrained* reinterpreted variable is trivially
                    // satisfiable by picking its bits. This is the mechanism
                    // behind the paper's pow-function false positive.
                    match unconstrained_float_shortcut(&live) {
                        Some(m) => SolveOutcome::Sat(m),
                        None => SolveOutcome::Unknown(UnknownReason::FloatUnsupported),
                    }
                }
                FloatMode::LocalSearch => match unconstrained_float_shortcut(&live) {
                    Some(m) => SolveOutcome::Sat(m),
                    None => float_local_search(&live),
                },
            };
            self.stats.set(stats);
            if !self.no_query_cache {
                // The session never saw these terms; pin them so the cache
                // key ids stay unique.
                let mut st = self.state.borrow_mut();
                st.pinned.extend(live.iter().cloned());
                Self::cache_store(&mut st, key, &out);
            }
            return Ok(out);
        }

        let out = {
            let mut st = self.state.borrow_mut();
            let session = st.session.get_or_insert_with(bitblast::Session::new);
            let mut roots = Vec::with_capacity(live.len());
            let mut float_err = false;
            for c in &live {
                match session.root_lit(c) {
                    Ok(l) => roots.push(l),
                    Err(bitblast::BlastError::Float) => {
                        float_err = true;
                        break;
                    }
                }
            }
            if float_err {
                self.stats.set(stats);
                return Ok(SolveOutcome::Unknown(UnknownReason::FloatUnsupported));
            }
            let conflicts_before = session.conflicts();
            let props_before = session.propagations();
            let result = session.solve(&roots, self.budget.max_conflicts);
            stats.sat_vars = session.num_vars();
            stats.sat_clauses = session.num_clauses();
            stats.conflicts = session.conflicts() - conflicts_before;
            stats.propagations = session.propagations() - props_before;
            match result {
                sat::SatResult::Sat(m) => {
                    let mut vars = Vec::new();
                    for c in &live {
                        c.collect_vars(&mut vars);
                    }
                    vars.sort();
                    vars.dedup();
                    let mut model = Model::default();
                    for var in &vars {
                        let Some(bits) = session.var_bits(var) else {
                            self.stats.set(stats);
                            return Err(SolverError::UnblastedVariable(var.name.clone()));
                        };
                        let mut v = 0u64;
                        for (i, &b) in bits.iter().enumerate() {
                            if m[b as usize] {
                                v |= 1 << i;
                            }
                        }
                        model.values.insert(var.name.clone(), v);
                    }
                    // Sanity: the model must satisfy every constraint.
                    debug_assert!(
                        live.iter()
                            .all(|c| eval(c, &model.as_env()).is_ok_and(|v| v.truth())),
                        "bit-blasting produced an invalid model"
                    );
                    SolveOutcome::Sat(model)
                }
                sat::SatResult::Unsat => SolveOutcome::Unsat,
                sat::SatResult::Unknown => SolveOutcome::Unknown(UnknownReason::ConflictBudget),
            }
        };
        self.stats.set(stats);
        if !self.no_query_cache {
            // The session retains the blasted roots, so the key ids are
            // already pinned.
            let mut st = self.state.borrow_mut();
            Self::cache_store(&mut st, key, &out);
        }
        Ok(out)
    }

    fn bump_cache(&self, f: impl FnOnce(&mut CacheStats)) {
        let mut cs = self.cache_stats.get();
        f(&mut cs);
        self.cache_stats.set(cs);
    }

    /// The three cache layers, cheapest first: exact outcome replay, unsat
    /// core subsumption, and model re-validation.
    fn cache_lookup(
        &self,
        key: &[usize],
        live: &[Term],
        stats: &mut SolveStats,
    ) -> Option<SolveOutcome> {
        let st = self.state.borrow();
        if let Some(out) = st.exact.get(key) {
            stats.cache_hit = true;
            self.bump_cache(|cs| cs.exact_hits += 1);
            return Some(out.clone());
        }
        if st
            .unsat_cores
            .iter()
            .any(|core| is_sorted_subset(core, key))
        {
            stats.cache_hit = true;
            self.bump_cache(|cs| cs.unsat_subset_hits += 1);
            return Some(SolveOutcome::Unsat);
        }
        // Model reuse: a recent model that happens to satisfy this query
        // answers it without touching the SAT solver (variables the model
        // does not bind default to zero and are validated like the rest).
        let mut vars = Vec::new();
        for c in live {
            c.collect_vars(&mut vars);
        }
        vars.sort();
        vars.dedup();
        for cached in st.models.iter().rev().take(MODEL_REUSE_TRIES) {
            let env: std::collections::HashMap<Arc<str>, u64> = vars
                .iter()
                .map(|v| (v.name.clone(), cached.get(&v.name).unwrap_or(0)))
                .collect();
            if live
                .iter()
                .all(|c| matches!(eval(c, &env), Ok(Value::Bool(true))))
            {
                let mut model = Model::default();
                for (name, value) in env {
                    model.values.insert(name, value);
                }
                stats.cache_hit = true;
                self.bump_cache(|cs| cs.model_hits += 1);
                return Some(SolveOutcome::Sat(model));
            }
        }
        None
    }

    fn cache_store(st: &mut SolverState, key: Vec<usize>, out: &SolveOutcome) {
        match out {
            SolveOutcome::Sat(model) => {
                if st.models.len() >= MODEL_CACHE_CAP {
                    st.models.remove(0);
                }
                st.models.push(model.clone());
            }
            SolveOutcome::Unsat => {
                if st.unsat_cores.len() < UNSAT_CORE_CAP {
                    st.unsat_cores.push(key.clone());
                }
            }
            SolveOutcome::Unknown(_) => {}
        }
        st.exact.insert(key, out.clone());
    }
}

/// Is sorted `needle` a subset of sorted `haystack`?
fn is_sorted_subset(needle: &[usize], haystack: &[usize]) -> bool {
    let mut it = haystack.iter();
    'outer: for n in needle {
        for h in it.by_ref() {
            match h.cmp(n) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// Solves the degenerate "unconstrained reinterpreted float" pattern:
/// float constraints of the shape `FCmp(op, f_from_bits(var), const)` (or
/// mirrored) have their variable's bits chosen directly, then the whole
/// conjunction is validated by evaluation (remaining variables default to
/// zero). Returns `None` when the pattern does not apply or validation
/// fails.
fn unconstrained_float_shortcut(constraints: &[Term]) -> Option<Model> {
    use expr::{FCmpOp, Node};

    /// Matches `f_from_bits(var)` and returns the variable.
    fn as_reinterpreted_var(t: &Term) -> Option<Var> {
        match t.node() {
            Node::FFromBits(inner) => match inner.node() {
                Node::BvVar(v) => Some(v.clone()),
                _ => None,
            },
            _ => None,
        }
    }

    let mut proposal: std::collections::HashMap<Arc<str>, u64> = std::collections::HashMap::new();
    let mut matched_any = false;
    for c in constraints {
        let Node::FCmp { op, a, b } = c.node() else {
            continue;
        };
        let (var, constant, var_on_left) = match (as_reinterpreted_var(a), b.node()) {
            (Some(v), Node::FConst(k)) => (v, *k, true),
            _ => match (a.node(), as_reinterpreted_var(b)) {
                (Node::FConst(k), Some(v)) => (v, *k, false),
                _ => continue,
            },
        };
        let value = match (op, var_on_left) {
            (FCmpOp::Eq, _) => constant,
            (FCmpOp::Lt, true) | (FCmpOp::Le, true) => constant - constant.abs().max(1.0),
            (FCmpOp::Lt, false) | (FCmpOp::Le, false) => constant + constant.abs().max(1.0),
        };
        proposal.insert(var.name.clone(), value.to_bits());
        matched_any = true;
    }
    if !matched_any {
        return None;
    }
    // Bind the remaining variables to zero and validate everything.
    let mut vars = Vec::new();
    for c in constraints {
        c.collect_vars(&mut vars);
    }
    let mut env = std::collections::HashMap::new();
    for v in &vars {
        let val = proposal.get(&v.name).copied().unwrap_or(0);
        env.insert(v.name.clone(), val);
    }
    if constraints
        .iter()
        .all(|c| matches!(eval(c, &env), Ok(Value::Bool(true))))
    {
        let mut model = Model::default();
        for (name, value) in env {
            model.values.insert(name, value);
        }
        Some(model)
    } else {
        None
    }
}

/// Bounded local search for formulas with floating-point terms: tries a
/// curated candidate set (and pairwise combinations for two variables),
/// validating each by concrete evaluation. Sound for SAT; incomplete.
fn float_local_search(constraints: &[Term]) -> SolveOutcome {
    let mut vars: Vec<Var> = Vec::new();
    for c in constraints {
        c.collect_vars(&mut vars);
    }
    let check = |env: &std::collections::HashMap<Arc<str>, u64>| -> bool {
        constraints
            .iter()
            .all(|c| matches!(eval(c, env), Ok(Value::Bool(true))))
    };
    let candidates: Vec<u64> = {
        let mut v: Vec<u64> = (0..=16).collect();
        v.extend([
            42,
            100,
            1000,
            1_000_000,
            u64::MAX,      // -1
            u64::MAX - 1,  // -2
            u64::MAX >> 1, // i64::MAX
            1 << 31,
            1 << 32,
            1 << 62,
        ]);
        v.extend((0..16).map(|i| 1u64 << i));
        // Printable ASCII, for byte-level inputs (argv digits/letters).
        v.extend(32..=127);
        v.sort_unstable();
        v.dedup();
        v
    };

    match vars.len() {
        0 => {
            let env = std::collections::HashMap::new();
            if check(&env) {
                SolveOutcome::Sat(Model::default())
            } else {
                SolveOutcome::Unsat // closed formula evaluated false
            }
        }
        1 => {
            for &cand in &candidates {
                let env: std::collections::HashMap<Arc<str>, u64> =
                    [(vars[0].name.clone(), cand)].into_iter().collect();
                if check(&env) {
                    let mut model = Model::default();
                    model.values.insert(vars[0].name.clone(), cand);
                    return SolveOutcome::Sat(model);
                }
            }
            SolveOutcome::Unknown(UnknownReason::FloatSearchFailed)
        }
        2 => {
            for &c0 in &candidates {
                for &c1 in &candidates {
                    let env: std::collections::HashMap<Arc<str>, u64> =
                        [(vars[0].name.clone(), c0), (vars[1].name.clone(), c1)]
                            .into_iter()
                            .collect();
                    if check(&env) {
                        let mut model = Model::default();
                        model.values.insert(vars[0].name.clone(), c0);
                        model.values.insert(vars[1].name.clone(), c1);
                        return SolveOutcome::Sat(model);
                    }
                }
            }
            SolveOutcome::Unknown(UnknownReason::FloatSearchFailed)
        }
        _ => {
            // Vary one variable at a time with the rest at zero.
            for (i, _) in vars.iter().enumerate() {
                for &cand in &candidates {
                    let mut env = std::collections::HashMap::new();
                    for (j, other) in vars.iter().enumerate() {
                        env.insert(other.name.clone(), if i == j { cand } else { 0 });
                    }
                    if check(&env) {
                        let mut model = Model::default();
                        for (name, value) in env {
                            model.values.insert(name, value);
                        }
                        return SolveOutcome::Sat(model);
                    }
                }
            }
            SolveOutcome::Unknown(UnknownReason::FloatSearchFailed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expr::{BvOp, CmpOp, FCmpOp, FOp};

    #[test]
    fn presolve_catches_constant_and_interval_unsat() {
        let s = Solver::new();
        assert_eq!(s.check(&[Term::bool(false)]), SolveOutcome::Unsat);
        let x = Term::var("x", 8);
        let masked = Term::bin(BvOp::And, &x, &Term::bv(3, 8));
        let c = Term::cmp(CmpOp::Eq, &masked, &Term::bv(200, 8));
        assert_eq!(s.check(&[c]), SolveOutcome::Unsat);
        assert_eq!(s.stats().sat_vars, 0, "presolved without blasting");
    }

    #[test]
    fn trivially_true_is_sat_with_empty_model() {
        let s = Solver::new();
        assert!(matches!(s.check(&[Term::bool(true)]), SolveOutcome::Sat(_)));
        assert!(matches!(s.check(&[]), SolveOutcome::Sat(_)));
    }

    #[test]
    fn end_to_end_bitvector_solving() {
        // Classic crackme: (x ^ 0x5A) + 1 == 0x70  =>  x = 0x35
        let x = Term::var("x", 8);
        let c = Term::cmp(
            CmpOp::Eq,
            &Term::bin(
                BvOp::Add,
                &Term::bin(BvOp::Xor, &x, &Term::bv(0x5A, 8)),
                &Term::bv(1, 8),
            ),
            &Term::bv(0x70, 8),
        );
        let SolveOutcome::Sat(m) = Solver::new().check(&[c]) else {
            panic!("expected sat");
        };
        assert_eq!(m.get("x"), Some(0x35));
    }

    #[test]
    fn formula_node_budget_reports_unknown() {
        let tiny = Solver::new().with_budget(SolverBudget {
            max_conflicts: 100,
            max_formula_nodes: 3,
        });
        let x = Term::var("x", 32);
        let c = Term::cmp(
            CmpOp::Eq,
            &Term::bin(BvOp::Mul, &x, &Term::var("y", 32)),
            &Term::bv(77, 32),
        );
        assert_eq!(
            tiny.check(&[c]),
            SolveOutcome::Unknown(UnknownReason::FormulaTooLarge)
        );
    }

    #[test]
    fn float_reject_mode_reports_unsupported() {
        let x = Term::var("x", 64);
        let c = Term::fcmp(FCmpOp::Lt, &Term::f64(0.0), &Term::cvt_si_to_f(&x));
        assert_eq!(
            Solver::new().check(&[c]),
            SolveOutcome::Unknown(UnknownReason::FloatUnsupported)
        );
    }

    #[test]
    fn float_local_search_solves_the_papers_precision_bomb() {
        // 1024 + x == 1024 && x > 0 where x = n / 1e18 (n integer input).
        let n = Term::var("n", 64);
        let x = Term::fbin(FOp::Div, &Term::cvt_si_to_f(&n), &Term::f64(1e18));
        let sum = Term::fbin(FOp::Add, &Term::f64(1024.0), &x);
        let c1 = Term::fcmp(FCmpOp::Eq, &sum, &Term::f64(1024.0));
        let c2 = Term::fcmp(FCmpOp::Lt, &Term::f64(0.0), &x);
        let outcome = Solver::new()
            .with_float_mode(FloatMode::LocalSearch)
            .check(&[c1, c2]);
        let SolveOutcome::Sat(m) = outcome else {
            panic!("local search should find the paper's solution, got {outcome:?}");
        };
        let nv = m.get("n").expect("n bound");
        let xv = (nv as i64 as f64) / 1e18;
        assert!(1024.0 + xv == 1024.0 && xv > 0.0, "n = {nv}");
    }

    #[test]
    fn float_search_failure_is_unknown_not_unsat() {
        // No integer converts to 0.5.
        let n = Term::var("n", 64);
        let c = Term::fcmp(FCmpOp::Eq, &Term::cvt_si_to_f(&n), &Term::f64(0.5));
        assert_eq!(
            Solver::new()
                .with_float_mode(FloatMode::LocalSearch)
                .check(&[c]),
            SolveOutcome::Unknown(UnknownReason::FloatSearchFailed)
        );
    }

    #[test]
    fn conflict_budget_reports_unknown_on_hard_instances() {
        // Inverting a wide multiplication is hard for tiny budgets.
        let x = Term::var("x", 64);
        let y = Term::var("y", 64);
        let c = Term::and(
            &Term::cmp(
                CmpOp::Eq,
                &Term::bin(BvOp::Mul, &x, &y),
                &Term::bv(0xDEAD_BEEF_1234_5677, 64),
            ),
            &Term::and(
                &Term::cmp(CmpOp::Ult, &Term::bv(1, 64), &x),
                &Term::cmp(CmpOp::Ult, &Term::bv(1, 64), &y),
            ),
        );
        let s = Solver::new().with_budget(SolverBudget {
            max_conflicts: 50,
            max_formula_nodes: 2_000_000,
        });
        match s.check(&[c]) {
            SolveOutcome::Unknown(UnknownReason::ConflictBudget) | SolveOutcome::Sat(_) => {}
            other => panic!("expected budget exhaustion or lucky sat, got {other:?}"),
        }
    }

    #[test]
    fn models_cover_all_variables_in_formula() {
        let x = Term::var("x", 8);
        let y = Term::var("y", 8);
        let c = Term::cmp(CmpOp::Eq, &Term::bin(BvOp::Add, &x, &y), &Term::bv(10, 8));
        let SolveOutcome::Sat(m) = Solver::new().check(&[c]) else {
            panic!("sat expected");
        };
        let (xv, yv) = (m.get("x").unwrap(), m.get("y").unwrap());
        assert_eq!((xv + yv) & 0xff, 10);
    }
}
