//! # bomblab-solver — an SMT-lite bitvector solver
//!
//! The constraint-solving backend of the bomblab concolic engine, playing
//! the role STP/Z3 play for the tools studied in the DSN'17 paper:
//!
//! * [`expr`] — a term language of bitvectors, booleans and doubles with
//!   folding smart constructors and a concrete evaluator,
//! * [`interval`] — unsigned range analysis used as a cheap pre-solver,
//! * [`bitblast`] — Tseitin conversion of bitvector terms to CNF,
//! * [`sat`] — a CDCL SAT core with conflict budgets,
//! * [`Solver`] — the front-end combining all of the above, plus a
//!   local-search fallback for floating-point constraints.
//!
//! Budgets are central: the paper's experiments cap each tool at ten
//! minutes, and crypto-function constraints are *designed* to blow any
//! budget. [`SolveOutcome::Unknown`] carries the reason, which the study
//! maps onto the paper's `E` label.
//!
//! ## Example
//!
//! ```
//! use bomblab_solver::{Solver, SolveOutcome};
//! use bomblab_solver::expr::{Term, BvOp, CmpOp};
//!
//! // x * 3 + 1 == 22  =>  x == 7
//! let x = Term::var("x", 32);
//! let lhs = Term::bin(BvOp::Add, &Term::bin(BvOp::Mul, &x, &Term::bv(3, 32)), &Term::bv(1, 32));
//! let c = Term::cmp(CmpOp::Eq, &lhs, &Term::bv(22, 32));
//! match Solver::new().check(&[c]) {
//!     SolveOutcome::Sat(model) => assert_eq!(model.get("x"), Some(7)),
//!     other => panic!("expected sat, got {other:?}"),
//! }
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod bitblast;
pub mod diskcache;
pub mod expr;
pub mod idhash;
pub mod interval;
pub mod sat;
pub mod shardcache;
pub mod simplify;
pub mod slice;
pub mod smtlib;

pub use diskcache::DiskCache;
pub use shardcache::ShardCache;

use expr::{eval, Term, Value, Var};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

/// Resource limits for a single `check` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverBudget {
    /// Maximum CDCL conflicts before giving up.
    pub max_conflicts: u64,
    /// Maximum total term nodes before refusing to blast.
    pub max_formula_nodes: usize,
}

impl Default for SolverBudget {
    fn default() -> SolverBudget {
        SolverBudget {
            max_conflicts: 200_000,
            max_formula_nodes: 2_000_000,
        }
    }
}

/// How floating-point constraints are handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FloatMode {
    /// Report [`UnknownReason::FloatUnsupported`] — models a tool without a
    /// floating-point theory (the common case in the paper).
    #[default]
    Reject,
    /// Try a bounded local search over candidate integer inputs. Sound for
    /// SAT answers (models are verified by evaluation); never reports
    /// UNSAT for open formulas.
    LocalSearch,
}

/// Why the solver could not decide a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnknownReason {
    /// The CDCL conflict budget ran out.
    ConflictBudget,
    /// The formula exceeded the node budget before blasting.
    FormulaTooLarge,
    /// Floating-point constraints and [`FloatMode::Reject`].
    FloatUnsupported,
    /// Floating-point local search found no satisfying input.
    FloatSearchFailed,
    /// A chaos-harness fault plan forced this query to give up
    /// (models solver resource exhaustion; never occurs unarmed).
    FaultInjected,
    /// An internal solver invariant broke ([`SolverError`] surfaced via the
    /// infallible [`check`](Solver::check) wrapper).
    Internal,
}

impl fmt::Display for UnknownReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnknownReason::ConflictBudget => write!(f, "conflict budget exhausted"),
            UnknownReason::FormulaTooLarge => write!(f, "formula exceeds node budget"),
            UnknownReason::FloatUnsupported => write!(f, "floating-point theory unsupported"),
            UnknownReason::FloatSearchFailed => write!(f, "floating-point search failed"),
            UnknownReason::FaultInjected => write!(f, "fault injected by chaos plan"),
            UnknownReason::Internal => write!(f, "internal solver error"),
        }
    }
}

/// An internal solver failure surfaced as a typed error instead of a panic.
///
/// [`Solver::try_check`] returns these; the infallible [`Solver::check`]
/// maps them onto [`UnknownReason::Internal`] so legacy callers keep their
/// signature while the engine can diagnose the stage precisely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolverError {
    /// Model extraction found a variable the blasting session never
    /// encoded — an invariant break that used to `panic!` mid-study.
    UnblastedVariable(Arc<str>),
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::UnblastedVariable(name) => {
                write!(f, "query variable `{name}` was never blasted")
            }
        }
    }
}

impl std::error::Error for SolverError {}

/// A satisfying assignment.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Model {
    values: BTreeMap<Arc<str>, u64>,
}

impl Model {
    /// Value of a variable (variables absent from the formula default to
    /// `None`).
    pub fn get(&self, name: &str) -> Option<u64> {
        self.values.get(name).copied()
    }

    /// Iterates over `(name, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Arc<str>, &u64)> {
        self.values.iter()
    }

    /// The assignment as an evaluation environment.
    pub fn as_env(&self) -> std::collections::HashMap<Arc<str>, u64> {
        self.values.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// Inserts a binding (used by engines to pre-seed inputs).
    pub fn insert(&mut self, name: impl Into<Arc<str>>, value: u64) {
        self.values.insert(name.into(), value);
    }
}

/// Outcome of a `check` call.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveOutcome {
    /// Satisfiable with the given model.
    Sat(Model),
    /// Definitely unsatisfiable.
    Unsat,
    /// Could not decide.
    Unknown(UnknownReason),
}

/// Statistics from the last `check` call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Term nodes in the (simplified) formula.
    pub formula_nodes: usize,
    /// SAT variables created by blasting (cumulative across the session).
    pub sat_vars: u32,
    /// SAT clauses created by blasting (cumulative across the session).
    pub sat_clauses: usize,
    /// CDCL conflicts spent on this query.
    pub conflicts: u64,
    /// CDCL propagations spent on this query.
    pub propagations: u64,
    /// Watch-list entries dismissed by a true blocker literal on this query
    /// (propagation fast path).
    pub blocker_skips: u64,
    /// Learnt clauses evicted by LBD-scored database reduction on this query.
    pub lbd_evictions: u64,
    /// Whether the query was answered from the cross-round cache (with
    /// slicing: every slice answered from cache).
    pub cache_hit: bool,
    /// Rewrite-simplifier memo hits on this query (stage 1).
    pub simplify_hits: u64,
    /// Constraints dropped as tautologies or folded to `true` by the
    /// optimizer (stages 1 and 2).
    pub terms_pruned: u64,
    /// Variable-connected slices the query was split into (stage 3);
    /// `1` when slicing is off or the query is a single component.
    pub slices: u64,
    /// Cache-missed slices answered by interval-witness synthesis instead
    /// of the CDCL solver (stage 3½): a model guessed from the per-variable
    /// range meet and confirmed by concrete evaluation, or an unsat proof
    /// from an empty meet.
    pub witness_hits: u64,
    /// Nanoseconds spent in the rewrite simplifier (stage 1).
    pub simplify_ns: u64,
    /// Nanoseconds spent in interval pruning (stage 2).
    pub interval_ns: u64,
    /// Nanoseconds spent partitioning into slices (stage 3).
    pub slice_ns: u64,
    /// Cache-missed slices answered by the shared in-process store
    /// ([`ShardCache`]) on this query, each verified by concrete evaluation.
    pub shared_cache_hits: u64,
    /// Slice models this query stored into the shared in-process store.
    pub shared_cache_stores: u64,
    /// Shared-store models rejected by read-through verification on this
    /// query (stale or corrupt entries; never answered from).
    pub shared_cache_rejected: u64,
}

/// Cumulative cross-round cache counters for one [`Solver`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries whose exact constraint set was seen before (outcome replayed).
    pub exact_hits: u64,
    /// Queries answered by re-validating a previously found model.
    pub model_hits: u64,
    /// Queries subsumed by a cached unsat core (a known-unsat subset).
    pub unsat_subset_hits: u64,
    /// Queries that had to run the solving pipeline.
    pub misses: u64,
    /// Constraints Tseitin-encoded by the incremental session.
    pub roots_blasted: u64,
    /// Constraint CNF lookups served from the session cache (prefix reuse).
    pub roots_reused: u64,
}

impl CacheStats {
    /// Total queries answered without running the solving pipeline.
    pub fn hits(&self) -> u64 {
        self.exact_hits + self.model_hits + self.unsat_subset_hits
    }
}

/// How many cached models a query tries to re-validate before solving.
const MODEL_REUSE_TRIES: usize = 32;
/// How many recent models the cache retains.
const MODEL_CACHE_CAP: usize = 64;
/// How many unsat cores the cache retains for subset checks.
const UNSAT_CORE_CAP: usize = 256;

/// Mutable cross-query state behind the immutable `check(&self)` interface.
#[derive(Debug, Default)]
struct SolverState {
    /// Incremental blasting session shared by all bitvector queries.
    session: Option<bitblast::Session>,
    /// Canonical constraint-set fingerprint (sorted, deduped hash-consed
    /// term ids) → outcome of a previous identical query.
    exact: HashMap<Vec<usize>, SolveOutcome>,
    /// Recent satisfying models, newest last, for cross-query model reuse.
    models: Vec<Model>,
    /// Constraint-id sets proven unsatisfiable (sorted); any superset query
    /// is unsat too.
    unsat_cores: Vec<Vec<usize>>,
    /// Pins terms whose ids appear in cache keys but which the blasting
    /// session does not retain (float-path queries), so those ids can never
    /// be reused by later allocations.
    pinned: Vec<Term>,
}

/// The solver front-end.
///
/// A `Solver` is cheap to create but *profits from living long*: it keeps an
/// incremental bit-blasting session (CNF and learnt clauses persist across
/// queries, constraint prefixes are blasted once) and a cross-round query
/// cache (exact outcome replay, model reuse, and unsat-core subsumption).
/// The concolic engine therefore creates one solver per exploration, not one
/// per round. Disable the cache layer with
/// [`with_query_cache(false)`](Solver::with_query_cache).
#[derive(Debug, Default)]
pub struct Solver {
    budget: SolverBudget,
    float_mode: FloatMode,
    no_query_cache: bool,
    no_simplify: bool,
    no_slice: bool,
    /// Shared persistent model store ([`DiskCache`]), when attached.
    disk: Option<Rc<RefCell<DiskCache>>>,
    /// Whether cache-missed slices may be *answered* from the disk store
    /// (hits are always re-verified by concrete evaluation). With this off
    /// the solver only records models — the write-only mode stateless
    /// paper-tool profiles use to warm the cache without changing answers.
    disk_read: bool,
    /// Shared in-process model store ([`ShardCache`]), when attached:
    /// cross-cell reuse between the study's worker threads.
    shared: Option<Arc<shardcache::ShardCache>>,
    /// Read-through gate for the shared store, same discipline as
    /// `disk_read`: stateless paper-tool profiles attach write-only.
    shared_read: bool,
    stats: std::cell::Cell<SolveStats>,
    cache_stats: std::cell::Cell<CacheStats>,
    state: std::cell::RefCell<SolverState>,
}

impl Solver {
    /// Creates a solver with default budgets and [`FloatMode::Reject`].
    pub fn new() -> Solver {
        Solver::default()
    }

    /// Overrides the budget.
    pub fn with_budget(mut self, budget: SolverBudget) -> Solver {
        self.budget = budget;
        self
    }

    /// Overrides floating-point handling.
    pub fn with_float_mode(mut self, mode: FloatMode) -> Solver {
        self.float_mode = mode;
        self
    }

    /// Enables or disables the cross-round query cache (default: enabled).
    /// The incremental blasting session stays on either way.
    pub fn with_query_cache(mut self, enabled: bool) -> Solver {
        self.no_query_cache = !enabled;
        self
    }

    /// Enables or disables the word-level optimizer's rewrite and interval
    /// stages (default: enabled). Ablation hook for the optimizer bench.
    pub fn with_simplify(mut self, enabled: bool) -> Solver {
        self.no_simplify = !enabled;
        self
    }

    /// Enables or disables cone-of-influence slicing (default: enabled).
    /// Ablation hook for the optimizer bench.
    pub fn with_slicing(mut self, enabled: bool) -> Solver {
        self.no_slice = !enabled;
        self
    }

    /// Attaches a shared persistent model store. Satisfying slice models
    /// are recorded into it; with `read_through` they also *answer*
    /// cache-missed slices — after mandatory re-verification by concrete
    /// evaluation, so a stale or corrupt store can never produce a wrong
    /// model. Stateless paper-tool profiles attach write-only
    /// (`read_through = false`): their per-query throwaway solvers warm the
    /// store without observable effect on any verdict.
    pub fn with_disk_cache(mut self, cache: Rc<RefCell<DiskCache>>, read_through: bool) -> Solver {
        self.disk = Some(cache);
        self.disk_read = read_through;
        self
    }

    /// Attaches a shared in-process model store ([`ShardCache`]) — the
    /// study-wide cross-cell cache. Gating mirrors
    /// [`with_disk_cache`](Solver::with_disk_cache): satisfying slice
    /// models are always recorded; with `read_through` they may also
    /// *answer* cache-missed slices, after mandatory re-verification by
    /// concrete evaluation. Stateless paper-tool profiles attach
    /// write-only (`read_through = false`), so Table II stays
    /// byte-identical with the cache armed or not.
    pub fn with_shared_cache(mut self, cache: Arc<ShardCache>, read_through: bool) -> Solver {
        self.shared = Some(cache);
        self.shared_read = read_through;
        self
    }

    /// Statistics from the most recent [`check`](Solver::check).
    pub fn stats(&self) -> SolveStats {
        self.stats.get()
    }

    /// Cumulative cache counters across every `check` on this solver.
    pub fn cache_stats(&self) -> CacheStats {
        let mut cs = self.cache_stats.get();
        if let Some(session) = self.state.borrow().session.as_ref() {
            cs.roots_blasted = session.roots_blasted();
            cs.roots_reused = session.roots_reused();
        }
        cs
    }

    /// Decides the conjunction of `constraints`, mapping internal solver
    /// errors onto [`UnknownReason::Internal`]. Prefer
    /// [`try_check`](Solver::try_check) when the caller can report errors.
    pub fn check(&self, constraints: &[Term]) -> SolveOutcome {
        match self.try_check(constraints) {
            Ok(out) => out,
            Err(_) => SolveOutcome::Unknown(UnknownReason::Internal),
        }
    }

    /// Decides the conjunction of `constraints`.
    ///
    /// # Errors
    ///
    /// Returns a [`SolverError`] when an internal invariant breaks (e.g.
    /// model extraction meets a variable the session never blasted) —
    /// conditions that formerly panicked mid-study.
    pub fn try_check(&self, constraints: &[Term]) -> Result<SolveOutcome, SolverError> {
        let timer = bomblab_obs::start();
        let out = self.check_impl(constraints);
        if let Some(t0) = timer {
            self.record_query(&out, t0.elapsed().as_nanos() as u64);
        }
        out
    }

    /// Trace-sink bookkeeping for one finished query. Only runs when an
    /// observation sink is armed on this thread.
    #[cold]
    fn record_query(&self, out: &Result<SolveOutcome, SolverError>, ns: u64) {
        use bomblab_obs::Field;
        let stats = self.stats.get();
        bomblab_obs::span_ns("solver.check", ns);
        bomblab_obs::counter("solver.queries", 1);
        bomblab_obs::hist("solver.query_ns", ns);
        bomblab_obs::hist("solver.conflicts", stats.conflicts);
        if stats.cache_hit {
            bomblab_obs::counter("solver.cache_hits", 1);
        } else {
            bomblab_obs::counter("solver.cache_misses", 1);
        }
        if stats.simplify_hits > 0 {
            bomblab_obs::counter("solver.simplify_hits", stats.simplify_hits);
        }
        if stats.terms_pruned > 0 {
            bomblab_obs::counter("solver.terms_pruned", stats.terms_pruned);
        }
        if stats.slices > 1 {
            bomblab_obs::counter("solver.slices", stats.slices);
        }
        if stats.witness_hits > 0 {
            bomblab_obs::counter("solver.witness_hits", stats.witness_hits);
        }
        if stats.blocker_skips > 0 {
            bomblab_obs::counter("solver.blocker_skips", stats.blocker_skips);
        }
        if stats.lbd_evictions > 0 {
            bomblab_obs::counter("solver.lbd_evictions", stats.lbd_evictions);
        }
        if stats.simplify_ns > 0 {
            bomblab_obs::span_ns("solver.simplify", stats.simplify_ns);
        }
        if stats.interval_ns > 0 {
            bomblab_obs::span_ns("solver.interval", stats.interval_ns);
        }
        if stats.slice_ns > 0 {
            bomblab_obs::span_ns("solver.slice", stats.slice_ns);
        }
        let outcome = match out {
            Ok(SolveOutcome::Sat(_)) => "sat",
            Ok(SolveOutcome::Unsat) => "unsat",
            Ok(SolveOutcome::Unknown(_)) => "unknown",
            Err(_) => "error",
        };
        bomblab_obs::event("solver.query", || {
            vec![
                ("outcome", Field::Str(outcome.to_string())),
                ("cache_hit", Field::Bool(stats.cache_hit)),
                ("conflicts", Field::U64(stats.conflicts)),
                ("formula_nodes", Field::U64(stats.formula_nodes as u64)),
                ("ns", Field::U64(ns)),
            ]
        });
    }

    fn check_impl(&self, constraints: &[Term]) -> Result<SolveOutcome, SolverError> {
        // Fault-injection point: one hit per query. Inert (one relaxed
        // atomic load) unless a chaos plan is armed on this thread.
        if let Some(action) = bomblab_fault::fault_point(bomblab_fault::FaultSite::SolverQuery) {
            match action {
                bomblab_fault::FaultAction::Panic => {
                    panic!("injected panic in the solver")
                }
                bomblab_fault::FaultAction::Stall => bomblab_fault::trip_stall(),
                _ => return Ok(SolveOutcome::Unknown(UnknownReason::FaultInjected)),
            }
        }
        let mut stats = SolveStats::default();
        // Constant pre-solving. The interval pre-solve over the *original*
        // constraints only runs on the raw (`no_simplify`) path: with the
        // optimizer on, the memoized stage-2 prune below performs the same
        // range refutation after the budget check, so within-budget queries
        // pay the analysis once per term instead of once per query and
        // over-budget queries (crypto-sized DAGs) never pay it at all.
        let mut live = Vec::new();
        for c in constraints {
            match c.as_bool_const() {
                Some(true) => continue,
                Some(false) => {
                    self.stats.set(stats);
                    return Ok(SolveOutcome::Unsat);
                }
                None => {}
            }
            if self.no_simplify && interval::definitely_false(c) {
                self.stats.set(stats);
                return Ok(SolveOutcome::Unsat);
            }
            live.push(c.clone());
        }
        if live.is_empty() {
            self.stats.set(stats);
            return Ok(SolveOutcome::Sat(Model::default()));
        }

        // Node budget on the *original* constraints, so a budget-determined
        // verdict can never be flipped by the optimizer stages below. The
        // walk aborts as soon as the running total exceeds the budget
        // (`formula_nodes` is then a lower bound, which is all the verdict
        // needs — crypto DAGs are ~100k nodes against a 2k budget).
        let node_budget = self.budget.max_formula_nodes;
        let mut total_nodes = 0usize;
        for c in &live {
            total_nodes = total_nodes.saturating_add(c.size_capped(node_budget - total_nodes));
            if total_nodes > node_budget {
                break;
            }
        }
        stats.formula_nodes = total_nodes;
        if total_nodes > node_budget {
            self.stats.set(stats);
            return Ok(SolveOutcome::Unknown(UnknownReason::FormulaTooLarge));
        }

        // The original constraint set: model zero-fill and the final sanity
        // check run against it, never against the optimizer's rewrite.
        let original = live.clone();

        if !self.no_simplify {
            // Stage 1: memoized rewrite simplification.
            let t0 = std::time::Instant::now();
            let mut sstats = simplify::SimplifyStats::default();
            let mut simplified = Vec::with_capacity(live.len());
            let mut decided_unsat = false;
            for c in &live {
                let s = simplify::simplify(c, &mut sstats);
                match s.as_bool_const() {
                    Some(true) => stats.terms_pruned += 1,
                    Some(false) => {
                        decided_unsat = true;
                        break;
                    }
                    None => simplified.push(s),
                }
            }
            stats.simplify_hits = sstats.memo_hits;
            stats.simplify_ns = t0.elapsed().as_nanos() as u64;
            if decided_unsat {
                self.stats.set(stats);
                return Ok(SolveOutcome::Unsat);
            }
            live = simplified;

            // Stage 2: interval pruning over the simplified constraints.
            let t1 = std::time::Instant::now();
            let mut kept = Vec::with_capacity(live.len());
            for c in &live {
                match interval::prune(c) {
                    interval::Pruned::True => stats.terms_pruned += 1,
                    interval::Pruned::False => {
                        stats.interval_ns = t1.elapsed().as_nanos() as u64;
                        self.stats.set(stats);
                        return Ok(SolveOutcome::Unsat);
                    }
                    interval::Pruned::Kept(k) => match k.as_bool_const() {
                        Some(true) => stats.terms_pruned += 1,
                        Some(false) => {
                            stats.interval_ns = t1.elapsed().as_nanos() as u64;
                            self.stats.set(stats);
                            return Ok(SolveOutcome::Unsat);
                        }
                        None => kept.push(k),
                    },
                }
            }
            stats.interval_ns = t1.elapsed().as_nanos() as u64;
            live = kept;
            if live.is_empty() {
                // Every constraint was a tautology: any assignment works.
                self.stats.set(stats);
                return Ok(SolveOutcome::Sat(zero_model(&original)));
            }
        }

        if live.iter().any(Term::has_float) {
            // Floating-point queries take the whole-conjunction fallback
            // paths (shortcut / local search) and are never sliced: the
            // shortcut's validity depends on validating *all* constraints
            // together under one proposal.
            let key = query_key(&live);
            if !self.no_query_cache {
                if let Some(out) = self.cache_lookup(&key, &live, &mut stats) {
                    self.stats.set(stats);
                    return Ok(out);
                }
            }
            self.bump_cache(|cs| cs.misses += 1);
            let out = match self.float_mode {
                FloatMode::Reject => {
                    // Even float-less solvers handle one degenerate case the
                    // way claripy does: a comparison against a *completely
                    // unconstrained* reinterpreted variable is trivially
                    // satisfiable by picking its bits. This is the mechanism
                    // behind the paper's pow-function false positive.
                    match unconstrained_float_shortcut(&live) {
                        Some(m) => SolveOutcome::Sat(m),
                        None => SolveOutcome::Unknown(UnknownReason::FloatUnsupported),
                    }
                }
                FloatMode::LocalSearch => match unconstrained_float_shortcut(&live) {
                    Some(m) => SolveOutcome::Sat(m),
                    None => float_local_search(&live),
                },
            };
            self.stats.set(stats);
            if !self.no_query_cache {
                // The session never saw these terms; pin them so the cache
                // key ids stay unique.
                let mut st = self.state.borrow_mut();
                st.pinned.extend(live.iter().cloned());
                Self::cache_store(&mut st, key, &out);
            }
            return Ok(out);
        }

        // Stage 3: cone-of-influence slicing. Each variable-connected
        // component is cached and solved on its own — the conjunction is
        // sat iff every slice is sat, any unsat slice decides unsat, and
        // per-slice models merge without conflict.
        let slices: Vec<Vec<Term>> = if self.no_slice || live.len() <= 1 {
            vec![live.clone()]
        } else {
            let t2 = std::time::Instant::now();
            let parts = slice::partition(&live);
            stats.slice_ns = t2.elapsed().as_nanos() as u64;
            parts
        };
        stats.slices = slices.len() as u64;

        let mut merged = Model::default();
        let mut every_slice_hit = true;
        let mut first_unknown: Option<UnknownReason> = None;
        let mut missed: Vec<&Vec<Term>> = Vec::new();
        for slice_terms in &slices {
            stats.cache_hit = false;
            let out = if self.no_query_cache {
                None
            } else {
                let key = query_key(slice_terms);
                self.cache_lookup(&key, slice_terms, &mut stats)
            };
            every_slice_hit &= stats.cache_hit;
            match out {
                Some(SolveOutcome::Unsat) => {
                    // Unsat wins over any Unknown from an earlier slice.
                    stats.cache_hit = every_slice_hit;
                    self.stats.set(stats);
                    return Ok(SolveOutcome::Unsat);
                }
                Some(SolveOutcome::Unknown(r)) => {
                    if first_unknown.is_none() {
                        first_unknown = Some(r);
                    }
                }
                Some(SolveOutcome::Sat(m)) => {
                    for (name, value) in m.iter() {
                        merged.values.insert(name.clone(), *value);
                    }
                }
                None => {
                    if let Some(m) = self
                        .shared_lookup(slice_terms, &mut stats)
                        .or_else(|| self.disk_lookup(slice_terms))
                    {
                        // Warm start: answered from the shared in-process
                        // store or the persistent store (verified inside
                        // the lookup). Feed the in-memory layers so later
                        // rounds hit without touching either again.
                        if !self.no_query_cache {
                            let mut st = self.state.borrow_mut();
                            st.pinned.extend(slice_terms.iter().cloned());
                            Self::cache_store(
                                &mut st,
                                query_key(slice_terms),
                                &SolveOutcome::Sat(m.clone()),
                            );
                        }
                        for (name, value) in m.iter() {
                            merged.values.insert(name.clone(), *value);
                        }
                    } else {
                        self.bump_cache(|cs| cs.misses += 1);
                        missed.push(slice_terms);
                    }
                }
            }
        }
        if !missed.is_empty() && !self.no_simplify {
            // Stage 3½: interval-witness synthesis. Slices whose range
            // facts pin a satisfying point never reach the bit-blaster;
            // an empty meet short-circuits the whole query to unsat.
            let t3 = std::time::Instant::now();
            let mut still_missed = Vec::with_capacity(missed.len());
            for slice_terms in missed {
                match interval_witness(slice_terms) {
                    WitnessVerdict::Sat(m) => {
                        stats.witness_hits += 1;
                        if !self.no_query_cache {
                            // The session never blasts these terms; pin
                            // them so the cache-key ids stay unique.
                            let mut st = self.state.borrow_mut();
                            st.pinned.extend(slice_terms.iter().cloned());
                            Self::cache_store(
                                &mut st,
                                query_key(slice_terms),
                                &SolveOutcome::Sat(m.clone()),
                            );
                        }
                        self.disk_record(slice_terms, &m);
                        self.shared_record(slice_terms, &m, &mut stats);
                        for (name, value) in m.iter() {
                            merged.values.insert(name.clone(), *value);
                        }
                    }
                    WitnessVerdict::Unsat => {
                        stats.witness_hits += 1;
                        if !self.no_query_cache {
                            let mut st = self.state.borrow_mut();
                            st.pinned.extend(slice_terms.iter().cloned());
                            Self::cache_store(
                                &mut st,
                                query_key(slice_terms),
                                &SolveOutcome::Unsat,
                            );
                        }
                        stats.interval_ns += t3.elapsed().as_nanos() as u64;
                        stats.cache_hit = every_slice_hit;
                        self.stats.set(stats);
                        return Ok(SolveOutcome::Unsat);
                    }
                    WitnessVerdict::Miss => still_missed.push(slice_terms),
                }
            }
            stats.interval_ns += t3.elapsed().as_nanos() as u64;
            missed = still_missed;
        }
        if !missed.is_empty() {
            // Every cache-missed slice is solved in ONE SAT call over their
            // union: slices are variable-disjoint, so the union is sat iff
            // each missed slice is sat and a single model covers them all.
            // Slicing exists for cache-key granularity, not extra CDCL runs —
            // batching keeps the solve count (and the conflict budget's
            // meaning) identical to the unsliced pipeline.
            let union: Vec<Term> = missed.iter().flat_map(|s| s.iter().cloned()).collect();
            match self.solve_slice(&union, &mut stats)? {
                SolveOutcome::Unsat => {
                    if !self.no_query_cache {
                        // The union is a genuine unsat core (which member
                        // slice caused it is unattributed); feed it to the
                        // subsumption layer under its own key.
                        let mut st = self.state.borrow_mut();
                        Self::cache_store(&mut st, query_key(&union), &SolveOutcome::Unsat);
                    }
                    stats.cache_hit = every_slice_hit;
                    self.stats.set(stats);
                    return Ok(SolveOutcome::Unsat);
                }
                SolveOutcome::Unknown(r) => {
                    if first_unknown.is_none() {
                        first_unknown = Some(r);
                    }
                }
                SolveOutcome::Sat(m) => {
                    if !self.no_query_cache {
                        // Store each slice's restriction of the model under
                        // its own key, so later queries sharing only a path
                        // prefix still hit slice-by-slice. The session
                        // retains the blasted roots, so key ids stay pinned.
                        let mut st = self.state.borrow_mut();
                        for slice_terms in &missed {
                            let mut vars = Vec::new();
                            for c in slice_terms.iter() {
                                c.collect_vars(&mut vars);
                            }
                            vars.sort();
                            vars.dedup();
                            let mut sub = Model::default();
                            for var in &vars {
                                if let Some(v) = m.values.get(&var.name) {
                                    sub.values.insert(var.name.clone(), *v);
                                }
                            }
                            self.disk_record(slice_terms, &sub);
                            self.shared_record(slice_terms, &sub, &mut stats);
                            let key = query_key(slice_terms);
                            Self::cache_store(&mut st, key, &SolveOutcome::Sat(sub));
                        }
                    }
                    for (name, value) in m.iter() {
                        merged.values.insert(name.clone(), *value);
                    }
                }
            }
        }
        stats.cache_hit = every_slice_hit;
        self.stats.set(stats);
        if let Some(r) = first_unknown {
            return Ok(SolveOutcome::Unknown(r));
        }
        // Variables the optimizer rewrote away are unconstrained; bind them
        // to zero so the model still covers the original formula.
        for (name, value) in zero_model(&original).values {
            merged.values.entry(name).or_insert(value);
        }
        // Sanity: the merged model must satisfy the *original* constraints.
        debug_assert!(
            original
                .iter()
                .all(|c| eval(c, &merged.as_env()).is_ok_and(|v| v.truth())),
            "query optimizer produced an invalid model"
        );
        Ok(SolveOutcome::Sat(merged))
    }

    /// Blasts and solves one slice through the shared incremental session,
    /// accumulating SAT statistics into `stats`.
    fn solve_slice(
        &self,
        slice_terms: &[Term],
        stats: &mut SolveStats,
    ) -> Result<SolveOutcome, SolverError> {
        let mut st = self.state.borrow_mut();
        let session = st.session.get_or_insert_with(bitblast::Session::new);
        let mut roots = Vec::with_capacity(slice_terms.len());
        for c in slice_terms {
            match session.root_lit(c) {
                Ok(l) => roots.push(l),
                Err(bitblast::BlastError::Float) => {
                    return Ok(SolveOutcome::Unknown(UnknownReason::FloatUnsupported));
                }
            }
        }
        let conflicts_before = session.conflicts();
        let props_before = session.propagations();
        let blockers_before = session.blocker_skips();
        let evictions_before = session.lbd_evictions();
        let result = session.solve(&roots, self.budget.max_conflicts);
        stats.sat_vars = session.num_vars();
        stats.sat_clauses = session.num_clauses();
        stats.conflicts += session.conflicts() - conflicts_before;
        stats.propagations += session.propagations() - props_before;
        stats.blocker_skips += session.blocker_skips() - blockers_before;
        stats.lbd_evictions += session.lbd_evictions() - evictions_before;
        Ok(match result {
            sat::SatResult::Sat(m) => {
                let mut vars = Vec::new();
                for c in slice_terms {
                    c.collect_vars(&mut vars);
                }
                vars.sort();
                vars.dedup();
                let mut model = Model::default();
                for var in &vars {
                    let Some(bits) = session.var_bits(var) else {
                        return Err(SolverError::UnblastedVariable(var.name.clone()));
                    };
                    let mut v = 0u64;
                    for (i, &b) in bits.iter().enumerate() {
                        if m[b as usize] {
                            v |= 1 << i;
                        }
                    }
                    model.values.insert(var.name.clone(), v);
                }
                // Sanity: the model must satisfy every slice constraint.
                debug_assert!(
                    slice_terms
                        .iter()
                        .all(|c| eval(c, &model.as_env()).is_ok_and(|v| v.truth())),
                    "bit-blasting produced an invalid model"
                );
                SolveOutcome::Sat(model)
            }
            sat::SatResult::Unsat => SolveOutcome::Unsat,
            sat::SatResult::Unknown => SolveOutcome::Unknown(UnknownReason::ConflictBudget),
        })
    }

    /// Read-through lookup of one slice in the persistent store. Returns a
    /// model only after concrete evaluation confirms it satisfies every
    /// slice constraint — the disk is untrusted input, so verification is
    /// the soundness authority, exactly as for the interval witnesses.
    fn disk_lookup(&self, slice_terms: &[Term]) -> Option<Model> {
        if !self.disk_read {
            return None;
        }
        let handle = self.disk.as_ref()?;
        let stored = handle.borrow().lookup(diskcache::disk_key(slice_terms))?;
        let mut vars = Vec::new();
        for c in slice_terms {
            c.collect_vars(&mut vars);
        }
        vars.sort();
        vars.dedup();
        let mut model = Model::default();
        for var in &vars {
            model.insert(var.name.clone(), stored.get(&var.name).unwrap_or(0));
        }
        let env = model.as_env();
        if slice_terms
            .iter()
            .all(|c| eval(c, &env).is_ok_and(|v| v.truth()))
        {
            handle.borrow_mut().note_hit();
            Some(model)
        } else {
            None
        }
    }

    /// Records a satisfying slice model into the persistent store (no-op
    /// without an attached store).
    fn disk_record(&self, slice_terms: &[Term], model: &Model) {
        if let Some(handle) = &self.disk {
            handle
                .borrow_mut()
                .record(diskcache::disk_key(slice_terms), model);
        }
    }

    /// Read-through lookup of one slice in the shared in-process store,
    /// under the same verification discipline as [`disk_lookup`]: the
    /// store is untrusted input, so a model answers the slice only after
    /// concrete evaluation confirms it satisfies every constraint.
    /// Rejected models are counted and treated as misses.
    ///
    /// [`disk_lookup`]: Solver::disk_lookup
    fn shared_lookup(&self, slice_terms: &[Term], stats: &mut SolveStats) -> Option<Model> {
        if !self.shared_read {
            return None;
        }
        let cache = self.shared.as_ref()?;
        let stored = cache.lookup(diskcache::disk_key(slice_terms))?;
        let mut vars = Vec::new();
        for c in slice_terms {
            c.collect_vars(&mut vars);
        }
        vars.sort();
        vars.dedup();
        let mut model = Model::default();
        for var in &vars {
            let value = stored
                .iter()
                .find(|(name, _)| *name == var.name)
                .map_or(0, |(_, v)| *v);
            model.insert(var.name.clone(), value);
        }
        let env = model.as_env();
        if slice_terms
            .iter()
            .all(|c| eval(c, &env).is_ok_and(|v| v.truth()))
        {
            cache.note_hit();
            stats.shared_cache_hits += 1;
            Some(model)
        } else {
            cache.note_rejected();
            stats.shared_cache_rejected += 1;
            None
        }
    }

    /// Records a satisfying slice model into the shared in-process store
    /// (no-op without one attached). First writer wins across threads;
    /// only a genuine insert counts as a store.
    fn shared_record(&self, slice_terms: &[Term], model: &Model, stats: &mut SolveStats) {
        if let Some(cache) = &self.shared {
            if cache.record(diskcache::disk_key(slice_terms), model) {
                stats.shared_cache_stores += 1;
            }
        }
    }

    fn bump_cache(&self, f: impl FnOnce(&mut CacheStats)) {
        let mut cs = self.cache_stats.get();
        f(&mut cs);
        self.cache_stats.set(cs);
    }

    /// The three cache layers, cheapest first: exact outcome replay, unsat
    /// core subsumption, and model re-validation.
    fn cache_lookup(
        &self,
        key: &[usize],
        live: &[Term],
        stats: &mut SolveStats,
    ) -> Option<SolveOutcome> {
        let st = self.state.borrow();
        if let Some(out) = st.exact.get(key) {
            stats.cache_hit = true;
            self.bump_cache(|cs| cs.exact_hits += 1);
            return Some(out.clone());
        }
        if st
            .unsat_cores
            .iter()
            .any(|core| is_sorted_subset(core, key))
        {
            stats.cache_hit = true;
            self.bump_cache(|cs| cs.unsat_subset_hits += 1);
            return Some(SolveOutcome::Unsat);
        }
        // Model reuse: a recent model that happens to satisfy this query
        // answers it without touching the SAT solver (variables the model
        // does not bind default to zero and are validated like the rest).
        let mut vars = Vec::new();
        for c in live {
            c.collect_vars(&mut vars);
        }
        vars.sort();
        vars.dedup();
        for cached in st.models.iter().rev().take(MODEL_REUSE_TRIES) {
            let env: std::collections::HashMap<Arc<str>, u64> = vars
                .iter()
                .map(|v| (v.name.clone(), cached.get(&v.name).unwrap_or(0)))
                .collect();
            if live
                .iter()
                .all(|c| matches!(eval(c, &env), Ok(Value::Bool(true))))
            {
                let mut model = Model::default();
                for (name, value) in env {
                    model.values.insert(name, value);
                }
                stats.cache_hit = true;
                self.bump_cache(|cs| cs.model_hits += 1);
                return Some(SolveOutcome::Sat(model));
            }
        }
        None
    }

    fn cache_store(st: &mut SolverState, key: Vec<usize>, out: &SolveOutcome) {
        match out {
            SolveOutcome::Sat(model) => {
                if st.models.len() >= MODEL_CACHE_CAP {
                    st.models.remove(0);
                }
                st.models.push(model.clone());
            }
            SolveOutcome::Unsat => {
                if st.unsat_cores.len() < UNSAT_CORE_CAP {
                    st.unsat_cores.push(key.clone());
                }
            }
            SolveOutcome::Unknown(_) => {}
        }
        st.exact.insert(key, out.clone());
    }
}

/// Canonical cache fingerprint: hash-consing makes term ids stable within
/// the thread, so the sorted deduped id vector identifies the constraint
/// set exactly.
fn query_key(terms: &[Term]) -> Vec<usize> {
    let mut key: Vec<usize> = terms.iter().map(Term::id).collect();
    key.sort_unstable();
    key.dedup();
    key
}

/// Verdict of one interval-witness synthesis attempt on a slice.
enum WitnessVerdict {
    /// A guessed model confirmed by concrete evaluation.
    Sat(Model),
    /// The per-variable range meet is empty: the slice has no solutions.
    Unsat,
    /// The guess failed (or nothing guided it); fall through to CDCL.
    Miss,
}

/// Stage 3½: tries to answer a slice without the CDCL solver. Every
/// single-variable range guard ([`interval::guard_range`]) contributes a
/// range fact; the facts about each variable are met. An empty meet is a
/// sound unsat proof (each range over-approximates its guard's solutions).
/// Otherwise each variable is guessed at the low end of its meet (zero if
/// unguarded) and the guess is *verified by evaluating every constraint*
/// — the evaluator, not the interval domain, is the soundness authority,
/// so non-range constraints in the slice (`x != k`, arithmetic) simply
/// make or break the verification. Digit-guard slices from `atoi`-style
/// byte classification are the archetype: their meet's low end always
/// satisfies them, so they never reach the bit-blaster.
fn interval_witness(slice_terms: &[Term]) -> WitnessVerdict {
    let mut env: HashMap<Var, interval::Range> = HashMap::new();
    for c in slice_terms {
        if let Some((v, r)) = interval::guard_range(c) {
            match env.get_mut(&v) {
                Some(e) => {
                    e.lo = e.lo.max(r.lo);
                    e.hi = e.hi.min(r.hi);
                    if e.lo > e.hi {
                        return WitnessVerdict::Unsat;
                    }
                }
                None => {
                    env.insert(v, r);
                }
            }
        }
    }
    let mut vars = Vec::new();
    for c in slice_terms {
        c.collect_vars(&mut vars);
    }
    vars.sort();
    vars.dedup();
    let mut model = Model::default();
    for var in &vars {
        let guess = env.get(var).map_or(0, |r| r.lo);
        model.values.insert(var.name.clone(), guess);
    }
    let ok = {
        let bind = model.as_env();
        slice_terms
            .iter()
            .all(|c| eval(c, &bind).is_ok_and(|v| v.truth()))
    };
    if ok {
        WitnessVerdict::Sat(model)
    } else {
        WitnessVerdict::Miss
    }
}

/// A model binding every variable of `constraints` to zero.
fn zero_model(constraints: &[Term]) -> Model {
    let mut vars = Vec::new();
    for c in constraints {
        c.collect_vars(&mut vars);
    }
    let mut model = Model::default();
    for v in vars {
        model.values.insert(v.name, 0);
    }
    model
}

/// Is sorted `needle` a subset of sorted `haystack`?
fn is_sorted_subset(needle: &[usize], haystack: &[usize]) -> bool {
    let mut it = haystack.iter();
    'outer: for n in needle {
        for h in it.by_ref() {
            match h.cmp(n) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// Solves the degenerate "unconstrained reinterpreted float" pattern:
/// float constraints of the shape `FCmp(op, f_from_bits(var), const)` (or
/// mirrored) have their variable's bits chosen directly, then the whole
/// conjunction is validated by evaluation (remaining variables default to
/// zero). Returns `None` when the pattern does not apply or validation
/// fails.
fn unconstrained_float_shortcut(constraints: &[Term]) -> Option<Model> {
    use expr::{FCmpOp, Node};

    /// Matches `f_from_bits(var)` and returns the variable.
    fn as_reinterpreted_var(t: &Term) -> Option<Var> {
        match t.node() {
            Node::FFromBits(inner) => match inner.node() {
                Node::BvVar(v) => Some(v.clone()),
                _ => None,
            },
            _ => None,
        }
    }

    let mut proposal: std::collections::HashMap<Arc<str>, u64> = std::collections::HashMap::new();
    let mut matched_any = false;
    for c in constraints {
        let Node::FCmp { op, a, b } = c.node() else {
            continue;
        };
        let (var, constant, var_on_left) = match (as_reinterpreted_var(a), b.node()) {
            (Some(v), Node::FConst(k)) => (v, *k, true),
            _ => match (a.node(), as_reinterpreted_var(b)) {
                (Node::FConst(k), Some(v)) => (v, *k, false),
                _ => continue,
            },
        };
        let value = match (op, var_on_left) {
            (FCmpOp::Eq, _) => constant,
            (FCmpOp::Lt, true) | (FCmpOp::Le, true) => constant - constant.abs().max(1.0),
            (FCmpOp::Lt, false) | (FCmpOp::Le, false) => constant + constant.abs().max(1.0),
        };
        proposal.insert(var.name.clone(), value.to_bits());
        matched_any = true;
    }
    if !matched_any {
        return None;
    }
    // Bind the remaining variables to zero and validate everything.
    let mut vars = Vec::new();
    for c in constraints {
        c.collect_vars(&mut vars);
    }
    let mut env = std::collections::HashMap::new();
    for v in &vars {
        let val = proposal.get(&v.name).copied().unwrap_or(0);
        env.insert(v.name.clone(), val);
    }
    if constraints
        .iter()
        .all(|c| matches!(eval(c, &env), Ok(Value::Bool(true))))
    {
        let mut model = Model::default();
        for (name, value) in env {
            model.values.insert(name, value);
        }
        Some(model)
    } else {
        None
    }
}

/// Bounded local search for formulas with floating-point terms: tries a
/// curated candidate set (and pairwise combinations for two variables),
/// validating each by concrete evaluation. Sound for SAT; incomplete.
fn float_local_search(constraints: &[Term]) -> SolveOutcome {
    let mut vars: Vec<Var> = Vec::new();
    for c in constraints {
        c.collect_vars(&mut vars);
    }
    let check = |env: &std::collections::HashMap<Arc<str>, u64>| -> bool {
        constraints
            .iter()
            .all(|c| matches!(eval(c, env), Ok(Value::Bool(true))))
    };
    let candidates: Vec<u64> = {
        let mut v: Vec<u64> = (0..=16).collect();
        v.extend([
            42,
            100,
            1000,
            1_000_000,
            u64::MAX,      // -1
            u64::MAX - 1,  // -2
            u64::MAX >> 1, // i64::MAX
            1 << 31,
            1 << 32,
            1 << 62,
        ]);
        v.extend((0..16).map(|i| 1u64 << i));
        // Printable ASCII, for byte-level inputs (argv digits/letters).
        v.extend(32..=127);
        v.sort_unstable();
        v.dedup();
        v
    };

    match vars.len() {
        0 => {
            let env = std::collections::HashMap::new();
            if check(&env) {
                SolveOutcome::Sat(Model::default())
            } else {
                SolveOutcome::Unsat // closed formula evaluated false
            }
        }
        1 => {
            for &cand in &candidates {
                let env: std::collections::HashMap<Arc<str>, u64> =
                    [(vars[0].name.clone(), cand)].into_iter().collect();
                if check(&env) {
                    let mut model = Model::default();
                    model.values.insert(vars[0].name.clone(), cand);
                    return SolveOutcome::Sat(model);
                }
            }
            SolveOutcome::Unknown(UnknownReason::FloatSearchFailed)
        }
        2 => {
            for &c0 in &candidates {
                for &c1 in &candidates {
                    let env: std::collections::HashMap<Arc<str>, u64> =
                        [(vars[0].name.clone(), c0), (vars[1].name.clone(), c1)]
                            .into_iter()
                            .collect();
                    if check(&env) {
                        let mut model = Model::default();
                        model.values.insert(vars[0].name.clone(), c0);
                        model.values.insert(vars[1].name.clone(), c1);
                        return SolveOutcome::Sat(model);
                    }
                }
            }
            SolveOutcome::Unknown(UnknownReason::FloatSearchFailed)
        }
        _ => {
            // Vary one variable at a time with the rest at zero.
            for (i, _) in vars.iter().enumerate() {
                for &cand in &candidates {
                    let mut env = std::collections::HashMap::new();
                    for (j, other) in vars.iter().enumerate() {
                        env.insert(other.name.clone(), if i == j { cand } else { 0 });
                    }
                    if check(&env) {
                        let mut model = Model::default();
                        for (name, value) in env {
                            model.values.insert(name, value);
                        }
                        return SolveOutcome::Sat(model);
                    }
                }
            }
            SolveOutcome::Unknown(UnknownReason::FloatSearchFailed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expr::{BvOp, CmpOp, FCmpOp, FOp};

    #[test]
    fn presolve_catches_constant_and_interval_unsat() {
        let s = Solver::new();
        assert_eq!(s.check(&[Term::bool(false)]), SolveOutcome::Unsat);
        let x = Term::var("x", 8);
        let masked = Term::bin(BvOp::And, &x, &Term::bv(3, 8));
        let c = Term::cmp(CmpOp::Eq, &masked, &Term::bv(200, 8));
        assert_eq!(s.check(&[c]), SolveOutcome::Unsat);
        assert_eq!(s.stats().sat_vars, 0, "presolved without blasting");
    }

    #[test]
    fn digit_guard_slices_are_answered_by_interval_witness() {
        // The atoi byte-classification shape: each variable pinned to a
        // range by a pair of guards, plus a non-range "!= 0" constraint
        // the evaluator has to confirm. No CDCL run should be needed.
        let b0 = Term::var("b0", 8);
        let b1 = Term::var("b1", 8);
        let cs = vec![
            Term::not(&Term::cmp(CmpOp::Ult, &b0, &Term::bv(0x30, 8))),
            Term::cmp(CmpOp::Ult, &b0, &Term::bv(0x3A, 8)),
            Term::not(&Term::cmp(CmpOp::Eq, &b0, &Term::bv(0, 8))),
            Term::not(&Term::cmp(CmpOp::Ult, &b1, &Term::bv(0x30, 8))),
        ];
        let s = Solver::new();
        let SolveOutcome::Sat(m) = s.check(&cs) else {
            panic!("expected sat");
        };
        let stats = s.stats();
        assert_eq!(stats.witness_hits, 2, "both slices witnessed");
        assert_eq!(stats.sat_vars, 0, "no bit-blasting happened");
        assert_eq!(m.get("b0"), Some(0x30));
        assert_eq!(m.get("b1"), Some(0x30));

        // Contradictory guards on one variable: the empty range meet is a
        // word-level unsat proof, again without blasting.
        let s2 = Solver::new();
        let cs2 = vec![
            Term::cmp(CmpOp::Ult, &b0, &Term::bv(0x30, 8)),
            Term::not(&Term::cmp(CmpOp::Ult, &b0, &Term::bv(0x3A, 8))),
        ];
        assert_eq!(s2.check(&cs2), SolveOutcome::Unsat);
        assert_eq!(s2.stats().sat_vars, 0, "no bit-blasting happened");
    }

    #[test]
    fn trivially_true_is_sat_with_empty_model() {
        let s = Solver::new();
        assert!(matches!(s.check(&[Term::bool(true)]), SolveOutcome::Sat(_)));
        assert!(matches!(s.check(&[]), SolveOutcome::Sat(_)));
    }

    #[test]
    fn end_to_end_bitvector_solving() {
        // Classic crackme: (x ^ 0x5A) + 1 == 0x70  =>  x = 0x35
        let x = Term::var("x", 8);
        let c = Term::cmp(
            CmpOp::Eq,
            &Term::bin(
                BvOp::Add,
                &Term::bin(BvOp::Xor, &x, &Term::bv(0x5A, 8)),
                &Term::bv(1, 8),
            ),
            &Term::bv(0x70, 8),
        );
        let SolveOutcome::Sat(m) = Solver::new().check(&[c]) else {
            panic!("expected sat");
        };
        assert_eq!(m.get("x"), Some(0x35));
    }

    #[test]
    fn formula_node_budget_reports_unknown() {
        let tiny = Solver::new().with_budget(SolverBudget {
            max_conflicts: 100,
            max_formula_nodes: 3,
        });
        let x = Term::var("x", 32);
        let c = Term::cmp(
            CmpOp::Eq,
            &Term::bin(BvOp::Mul, &x, &Term::var("y", 32)),
            &Term::bv(77, 32),
        );
        assert_eq!(
            tiny.check(&[c]),
            SolveOutcome::Unknown(UnknownReason::FormulaTooLarge)
        );
    }

    #[test]
    fn float_reject_mode_reports_unsupported() {
        let x = Term::var("x", 64);
        let c = Term::fcmp(FCmpOp::Lt, &Term::f64(0.0), &Term::cvt_si_to_f(&x));
        assert_eq!(
            Solver::new().check(&[c]),
            SolveOutcome::Unknown(UnknownReason::FloatUnsupported)
        );
    }

    #[test]
    fn float_local_search_solves_the_papers_precision_bomb() {
        // 1024 + x == 1024 && x > 0 where x = n / 1e18 (n integer input).
        let n = Term::var("n", 64);
        let x = Term::fbin(FOp::Div, &Term::cvt_si_to_f(&n), &Term::f64(1e18));
        let sum = Term::fbin(FOp::Add, &Term::f64(1024.0), &x);
        let c1 = Term::fcmp(FCmpOp::Eq, &sum, &Term::f64(1024.0));
        let c2 = Term::fcmp(FCmpOp::Lt, &Term::f64(0.0), &x);
        let outcome = Solver::new()
            .with_float_mode(FloatMode::LocalSearch)
            .check(&[c1, c2]);
        let SolveOutcome::Sat(m) = outcome else {
            panic!("local search should find the paper's solution, got {outcome:?}");
        };
        let nv = m.get("n").expect("n bound");
        let xv = (nv as i64 as f64) / 1e18;
        assert!(1024.0 + xv == 1024.0 && xv > 0.0, "n = {nv}");
    }

    #[test]
    fn float_search_failure_is_unknown_not_unsat() {
        // No integer converts to 0.5.
        let n = Term::var("n", 64);
        let c = Term::fcmp(FCmpOp::Eq, &Term::cvt_si_to_f(&n), &Term::f64(0.5));
        assert_eq!(
            Solver::new()
                .with_float_mode(FloatMode::LocalSearch)
                .check(&[c]),
            SolveOutcome::Unknown(UnknownReason::FloatSearchFailed)
        );
    }

    #[test]
    fn conflict_budget_reports_unknown_on_hard_instances() {
        // Inverting a wide multiplication is hard for tiny budgets.
        let x = Term::var("x", 64);
        let y = Term::var("y", 64);
        let c = Term::and(
            &Term::cmp(
                CmpOp::Eq,
                &Term::bin(BvOp::Mul, &x, &y),
                &Term::bv(0xDEAD_BEEF_1234_5677, 64),
            ),
            &Term::and(
                &Term::cmp(CmpOp::Ult, &Term::bv(1, 64), &x),
                &Term::cmp(CmpOp::Ult, &Term::bv(1, 64), &y),
            ),
        );
        let s = Solver::new().with_budget(SolverBudget {
            max_conflicts: 50,
            max_formula_nodes: 2_000_000,
        });
        match s.check(&[c]) {
            SolveOutcome::Unknown(UnknownReason::ConflictBudget) | SolveOutcome::Sat(_) => {}
            other => panic!("expected budget exhaustion or lucky sat, got {other:?}"),
        }
    }

    #[test]
    fn persistent_cache_warms_across_solver_instances() {
        let dir = std::env::temp_dir().join(format!("bomblab-solver-warm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let x = Term::var("x", 8);
        let c = Term::cmp(
            CmpOp::Eq,
            &Term::bin(BvOp::Xor, &x, &Term::bv(0x5A, 8)),
            &Term::bv(0x6F, 8),
        );
        let disk = Rc::new(RefCell::new(DiskCache::open(&dir).expect("open")));
        let s1 = Solver::new().with_disk_cache(disk.clone(), false);
        let SolveOutcome::Sat(m1) = s1.check(std::slice::from_ref(&c)) else {
            panic!("expected sat");
        };
        disk.borrow_mut().flush().expect("flush");
        assert_eq!(disk.borrow().hits(), 0, "write-only mode never reads");
        assert!(disk.borrow().stores() > 0, "write-only mode records models");

        let disk2 = Rc::new(RefCell::new(DiskCache::open(&dir).expect("reopen")));
        let s2 = Solver::new().with_disk_cache(disk2.clone(), true);
        let SolveOutcome::Sat(m2) = s2.check(&[c]) else {
            panic!("expected sat");
        };
        assert_eq!(m1.get("x"), m2.get("x"));
        assert_eq!(disk2.borrow().hits(), 1, "answered from the warm store");
        assert_eq!(s2.stats().sat_vars, 0, "no bit-blasting on the warm path");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn poisoned_disk_models_are_rejected_by_verification() {
        let dir =
            std::env::temp_dir().join(format!("bomblab-solver-poison-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let x = Term::var("x", 8);
        let c = Term::cmp(
            CmpOp::Eq,
            &Term::bin(BvOp::Xor, &x, &Term::bv(0x5A, 8)),
            &Term::bv(0x6F, 8),
        );
        let disk = Rc::new(RefCell::new(DiskCache::open(&dir).expect("open")));
        let mut wrong = Model::default();
        wrong.insert("x", 0u64);
        disk.borrow_mut()
            .record(diskcache::disk_key(std::slice::from_ref(&c)), &wrong);
        // Simplify and slicing off so the queried slice is the original
        // term and the poisoned key is the one the solver looks up.
        let s = Solver::new()
            .with_simplify(false)
            .with_slicing(false)
            .with_disk_cache(disk.clone(), true);
        let SolveOutcome::Sat(m) = s.check(&[c]) else {
            panic!("expected sat");
        };
        assert_eq!(m.get("x"), Some(0x35), "solved correctly despite poison");
        assert_eq!(
            disk.borrow().hits(),
            0,
            "unverified model never counts as a hit"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn models_cover_all_variables_in_formula() {
        let x = Term::var("x", 8);
        let y = Term::var("y", 8);
        let c = Term::cmp(CmpOp::Eq, &Term::bin(BvOp::Add, &x, &y), &Term::bv(10, 8));
        let SolveOutcome::Sat(m) = Solver::new().check(&[c]) else {
            panic!("sat expected");
        };
        let (xv, yv) = (m.get("x").unwrap(), m.get("y").unwrap());
        assert_eq!((xv + yv) & 0xff, 10);
    }

    /// A constraint the interval-witness stage cannot answer, so a cold
    /// solver must run CDCL on it: (x ^ 0x5A) == 0x6F  =>  x = 0x35.
    fn xor_crackme() -> Term {
        let x = Term::var("x", 8);
        Term::cmp(
            CmpOp::Eq,
            &Term::bin(BvOp::Xor, &x, &Term::bv(0x5A, 8)),
            &Term::bv(0x6F, 8),
        )
    }

    /// Optimizer off so the queried slice is the original term and the
    /// witness stage cannot pre-empt the CDCL run (same shape as the
    /// disk-cache poison test).
    fn bare_solver() -> Solver {
        Solver::new().with_simplify(false).with_slicing(false)
    }

    #[test]
    fn shared_cache_answers_a_fresh_solver_without_blasting() {
        let shared = Arc::new(ShardCache::default());
        let c = xor_crackme();

        // Warm: a write-only solver (the stateless-profile shape) solves
        // the query with CDCL and records the slice model.
        let warm = bare_solver().with_shared_cache(Arc::clone(&shared), false);
        assert!(matches!(
            warm.check(std::slice::from_ref(&c)),
            SolveOutcome::Sat(_)
        ));
        assert!(warm.stats().sat_vars > 0, "cold query must blast");
        assert_eq!(warm.stats().shared_cache_stores, 1);
        assert_eq!(
            warm.stats().shared_cache_hits,
            0,
            "write-only attach never reads"
        );

        // A fresh read-through solver answers the same slice from the
        // shared store — verified, and without allocating a SAT variable.
        let cold = bare_solver().with_shared_cache(Arc::clone(&shared), true);
        let SolveOutcome::Sat(m) = cold.check(&[c]) else {
            panic!("expected sat");
        };
        assert_eq!(m.get("x"), Some(0x35));
        assert_eq!(cold.stats().shared_cache_hits, 1);
        assert_eq!(cold.stats().sat_vars, 0, "answered without blasting");
        assert_eq!(shared.hits(), 1);
        assert_eq!(shared.stores(), 1);
    }

    #[test]
    fn write_only_solver_never_reads_the_shared_cache() {
        let shared = Arc::new(ShardCache::default());
        let c = xor_crackme();
        let warm = bare_solver().with_shared_cache(Arc::clone(&shared), false);
        assert!(matches!(
            warm.check(std::slice::from_ref(&c)),
            SolveOutcome::Sat(_)
        ));

        let stateless = bare_solver().with_shared_cache(Arc::clone(&shared), false);
        assert!(matches!(stateless.check(&[c]), SolveOutcome::Sat(_)));
        assert_eq!(stateless.stats().shared_cache_hits, 0);
        assert!(
            stateless.stats().sat_vars > 0,
            "write-only solver must solve for itself"
        );
        assert_eq!(shared.hits(), 0);
    }

    #[test]
    fn poisoned_shared_models_are_rejected_by_verification() {
        let shared = Arc::new(ShardCache::poisoned());
        let c = xor_crackme();
        let warm = bare_solver().with_shared_cache(Arc::clone(&shared), false);
        assert!(matches!(
            warm.check(std::slice::from_ref(&c)),
            SolveOutcome::Sat(_)
        ));
        assert_eq!(shared.stores(), 1, "poisoned entry was stored");

        let cold = bare_solver().with_shared_cache(Arc::clone(&shared), true);
        let SolveOutcome::Sat(m) = cold.check(&[c]) else {
            panic!("expected sat");
        };
        assert_eq!(m.get("x"), Some(0x35), "solved correctly despite poison");
        assert_eq!(cold.stats().shared_cache_hits, 0);
        assert!(
            cold.stats().shared_cache_rejected >= 1,
            "corrupt model must be rejected by concrete evaluation"
        );
        assert_eq!(shared.hits(), 0);
        assert!(shared.rejected() >= 1);
    }
}
