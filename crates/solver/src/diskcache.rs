//! Persistent, corruption-tolerant disk layer for the solver query cache.
//!
//! The in-memory cache of [`crate::Solver`] dies with the process, so every
//! study starts cold (ROADMAP item 3 names warm starts as a prerequisite
//! for the sharded service mode). This module persists *satisfying models*
//! keyed by a process-stable fingerprint of the slice's SMT-LIB rendering
//! — the hash-consed term ids used by the in-memory layers are `Rc`
//! addresses and mean nothing across runs.
//!
//! ## Durability model
//!
//! * One segment file per shard (`seg-<i>.bomblab`), written whole via
//!   tmp-file + rename, never appended in place.
//! * Every segment opens with a version-stamped header binding it to the
//!   cache [`FORMAT_VERSION`] and the solver [`PIPELINE_REV`]; every entry
//!   line carries a CRC-32 of its payload.
//! * A corrupt, truncated, or version-mismatched segment is *rejected
//!   whole*: its entries are dropped, [`DiskCache::segments_rejected`] is
//!   bumped, and the next [`flush`](DiskCache::flush) rebuilds the file.
//!   Loading never panics and never errors the caller.
//! * The disk is untrusted even when checksums pass: the solver re-verifies
//!   every loaded model by concrete evaluation before using it, so a stale
//!   or adversarial segment can cost time but never a wrong answer.

use crate::expr::Term;
use crate::{smtlib, Model};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// On-disk layout revision of the segment files themselves.
pub const FORMAT_VERSION: u32 = 1;

/// Revision of the solving pipeline the cached models were produced by.
/// Bump whenever the SMT-LIB rendering, the term language, or bit-blasting
/// semantics change meaning: old segments are then version-mismatched and
/// rebuilt instead of silently reinterpreted.
pub const PIPELINE_REV: u32 = 1;

/// Number of segment files the key space is sharded over.
pub const NUM_SHARDS: usize = 4;

/// CRC-32 (IEEE, reflected polynomial `0xEDB8_8320`), bit at a time — the
/// cache loads once per study, so table-free simplicity wins.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = 0u32.wrapping_sub(crc & 1);
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Process-stable cache key: FNV-1a over the SMT-LIB rendering of the
/// slice. Unlike [`Term::id`] (an interner address, unique only within one
/// thread of one process), the rendering survives restarts.
pub fn disk_key(terms: &[Term]) -> u64 {
    let text = smtlib::to_smtlib(terms);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in text.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// One shard's entries plus its rewrite flag.
#[derive(Debug, Default)]
struct Shard {
    /// key → sorted `(variable, value)` bindings of a satisfying model.
    entries: BTreeMap<u64, Vec<(String, u64)>>,
    /// The in-memory state diverged from the segment file.
    dirty: bool,
}

/// A read-through persistent model store shared by every solver of one
/// exploration (the engine hands each [`crate::Solver`] an `Rc<RefCell<_>>`
/// handle).
#[derive(Debug)]
pub struct DiskCache {
    dir: PathBuf,
    shards: Vec<Shard>,
    segments_rejected: u64,
    hits: u64,
    stores: u64,
}

impl DiskCache {
    /// Opens (or creates) the cache directory and loads every segment that
    /// passes validation. Segments that fail — bad header, wrong version,
    /// torn line, checksum mismatch, unreadable file — are counted in
    /// [`segments_rejected`](DiskCache::segments_rejected) and dropped;
    /// only an uncreatable *directory* is an error.
    pub fn open(dir: &Path) -> io::Result<DiskCache> {
        fs::create_dir_all(dir)?;
        let mut cache = DiskCache {
            dir: dir.to_path_buf(),
            shards: (0..NUM_SHARDS).map(|_| Shard::default()).collect(),
            segments_rejected: 0,
            hits: 0,
            stores: 0,
        };
        for i in 0..NUM_SHARDS {
            let path = cache.segment_path(i);
            let mut bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                Err(_) => {
                    cache.segments_rejected += 1;
                    continue;
                }
            };
            // Fault-injection point: one hit per segment read. Inert (one
            // relaxed atomic load) unless a chaos plan is armed.
            if let Some(action) =
                bomblab_fault::fault_point(bomblab_fault::FaultSite::CacheSegmentLoad)
            {
                match action {
                    bomblab_fault::FaultAction::ShortRead => {
                        let keep = bytes.len() / 2;
                        bytes.truncate(keep);
                    }
                    bomblab_fault::FaultAction::BitFlip => {
                        let mid = bytes.len() / 2;
                        if let Some(b) = bytes.get_mut(mid) {
                            *b ^= 0x10;
                        }
                    }
                    _ => {}
                }
            }
            match parse_segment(&bytes, i) {
                Some(entries) => cache.shards[i].entries = entries,
                None => cache.segments_rejected += 1,
            }
        }
        Ok(cache)
    }

    /// The satisfying model stored under `key`, if any. Callers must
    /// re-verify the model by concrete evaluation before trusting it.
    pub fn lookup(&self, key: u64) -> Option<Model> {
        let shard = &self.shards[(key % NUM_SHARDS as u64) as usize];
        let bindings = shard.entries.get(&key)?;
        let mut model = Model::default();
        for (name, value) in bindings {
            model.insert(name.as_str(), *value);
        }
        Some(model)
    }

    /// Stores (or refreshes) the model for `key`. Changes live in memory
    /// until [`flush`](DiskCache::flush).
    pub fn record(&mut self, key: u64, model: &Model) {
        let bindings: Vec<(String, u64)> = model
            .iter()
            .map(|(name, value)| (name.to_string(), *value))
            .collect();
        let shard = &mut self.shards[(key % NUM_SHARDS as u64) as usize];
        if shard.entries.get(&key) == Some(&bindings) {
            return;
        }
        shard.entries.insert(key, bindings);
        shard.dirty = true;
        self.stores += 1;
    }

    /// Counts one verified read-through hit (called by the solver *after*
    /// concrete evaluation confirmed the loaded model).
    pub fn note_hit(&mut self) {
        self.hits += 1;
    }

    /// Verified read-through hits across every solver sharing this handle.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Models recorded (new or changed) since open.
    pub fn stores(&self) -> u64 {
        self.stores
    }

    /// Segments dropped at load time for corruption, truncation, version
    /// mismatch, or read errors.
    pub fn segments_rejected(&self) -> u64 {
        self.segments_rejected
    }

    /// Total entries currently held across all shards.
    pub fn entries(&self) -> usize {
        self.shards.iter().map(|s| s.entries.len()).sum()
    }

    /// Rewrites every dirty shard's segment file atomically (full render
    /// to a tmp file, then rename). Entries are written in key order, so
    /// equal caches produce byte-identical segments.
    pub fn flush(&mut self) -> io::Result<()> {
        for i in 0..NUM_SHARDS {
            if !self.shards[i].dirty {
                continue;
            }
            let mut text = format!("{}\n", segment_header(i));
            for (key, bindings) in &self.shards[i].entries {
                let payload = render_entry(*key, bindings);
                text.push_str(&format!("{:08x} {payload}\n", crc32(payload.as_bytes())));
            }
            let path = self.segment_path(i);
            let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
            fs::write(&tmp, text.as_bytes())?;
            fs::rename(&tmp, &path)?;
            self.shards[i].dirty = false;
        }
        Ok(())
    }

    /// The segment file backing shard `i`.
    pub fn segment_path(&self, i: usize) -> PathBuf {
        self.dir.join(format!("seg-{i}.bomblab"))
    }
}

/// The version-stamped first line of shard `i`'s segment.
fn segment_header(i: usize) -> String {
    format!("bomblab-cache v{FORMAT_VERSION} rev{PIPELINE_REV} shard{i}")
}

/// `key binding binding ...` with hex-encoded variable names (names are
/// opaque bytes; hex keeps the line format whitespace-safe).
fn render_entry(key: u64, bindings: &[(String, u64)]) -> String {
    let mut s = format!("{key:016x}");
    for (name, value) in bindings {
        s.push(' ');
        for b in name.as_bytes() {
            s.push_str(&format!("{b:02x}"));
        }
        s.push(':');
        s.push_str(&format!("{value:016x}"));
    }
    s
}

/// Parses one segment; `None` rejects the whole segment (any bad header,
/// checksum, or malformed line poisons it — partial trust is not worth the
/// bookkeeping when a rebuild is one warm study away).
fn parse_segment(bytes: &[u8], shard: usize) -> Option<BTreeMap<u64, Vec<(String, u64)>>> {
    let text = std::str::from_utf8(bytes).ok()?;
    let mut lines = text.lines();
    if lines.next()? != segment_header(shard) {
        return None;
    }
    let mut entries = BTreeMap::new();
    for line in lines {
        let crc_hex = line.get(..8)?;
        let payload = line.get(8..)?.strip_prefix(' ')?;
        let crc = u32::from_str_radix(crc_hex, 16).ok()?;
        if crc != crc32(payload.as_bytes()) {
            return None;
        }
        let mut tokens = payload.split(' ');
        let key = u64::from_str_radix(tokens.next()?, 16).ok()?;
        let mut bindings = Vec::new();
        for tok in tokens {
            let (name_hex, value_hex) = tok.split_once(':')?;
            let name = hex_decode(name_hex)?;
            let value = u64::from_str_radix(value_hex, 16).ok()?;
            bindings.push((name, value));
        }
        entries.insert(key, bindings);
    }
    Some(entries)
}

/// Decodes a hex-encoded UTF-8 variable name.
fn hex_decode(s: &str) -> Option<String> {
    if s.is_empty() || !s.len().is_multiple_of(2) {
        return None;
    }
    let mut bytes = Vec::with_capacity(s.len() / 2);
    for i in (0..s.len()).step_by(2) {
        bytes.push(u8::from_str_radix(s.get(i..i + 2)?, 16).ok()?);
    }
    String::from_utf8(bytes).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BvOp, CmpOp};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("bomblab-diskcache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_model() -> Model {
        let mut m = Model::default();
        m.insert("x", 0x35);
        m.insert("arg1_b0", 0x30);
        m
    }

    #[test]
    fn round_trips_models_across_reopen() {
        let dir = tmpdir("roundtrip");
        let mut c = DiskCache::open(&dir).expect("open");
        c.record(7, &sample_model());
        c.record(8, &Model::default()); // empty models are legal entries
        c.flush().expect("flush");

        let c2 = DiskCache::open(&dir).expect("reopen");
        assert_eq!(c2.segments_rejected(), 0);
        assert_eq!(c2.entries(), 2);
        let m = c2.lookup(7).expect("entry survives");
        assert_eq!(m.get("x"), Some(0x35));
        assert_eq!(m.get("arg1_b0"), Some(0x30));
        assert!(c2.lookup(8).is_some());
        assert!(c2.lookup(9).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_truncated_and_mismatched_segments_are_rejected_not_fatal() {
        let dir = tmpdir("corrupt");
        let mut c = DiskCache::open(&dir).expect("open");
        for key in 0..8u64 {
            c.record(key, &sample_model());
        }
        c.flush().expect("flush");

        // Bit-flip one segment, truncate another mid-line, version-bump a
        // third's header. Each is rejected whole; the rest load fine.
        let p0 = c.segment_path(0);
        let mut bytes = fs::read(&p0).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        fs::write(&p0, &bytes).expect("write");

        let p1 = c.segment_path(1);
        let bytes = fs::read(&p1).expect("read");
        fs::write(&p1, &bytes[..bytes.len() - 5]).expect("write");

        let p2 = c.segment_path(2);
        let text = fs::read_to_string(&p2).expect("read");
        let bumped = text.replace(
            &format!("v{FORMAT_VERSION} rev{PIPELINE_REV}"),
            &format!("v{FORMAT_VERSION} rev{}", PIPELINE_REV + 1),
        );
        fs::write(&p2, bumped).expect("write");

        let c2 = DiskCache::open(&dir).expect("reopen never fails on corruption");
        assert_eq!(c2.segments_rejected(), 3);
        assert_eq!(c2.entries(), 2, "only the intact shard's entries load");

        // A flush after fresh records rebuilds the poisoned segments.
        let mut c2 = c2;
        for key in 0..8u64 {
            c2.record(key, &sample_model());
        }
        c2.flush().expect("rebuild flush");
        let c3 = DiskCache::open(&dir).expect("reopen");
        assert_eq!(c3.segments_rejected(), 0);
        assert_eq!(c3.entries(), 8);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_keys_are_stable_and_content_based() {
        let x = Term::var("x", 32);
        let c1 = Term::cmp(
            CmpOp::Eq,
            &Term::bin(BvOp::Add, &x, &Term::bv(1, 32)),
            &Term::bv(5, 32),
        );
        let c2 = Term::cmp(
            CmpOp::Eq,
            &Term::bin(BvOp::Add, &x, &Term::bv(2, 32)),
            &Term::bv(5, 32),
        );
        assert_eq!(
            disk_key(std::slice::from_ref(&c1)),
            disk_key(std::slice::from_ref(&c1))
        );
        assert_ne!(disk_key(&[c1]), disk_key(&[c2]));
    }

    #[test]
    fn crc32_matches_the_ieee_check_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn record_of_identical_bindings_stays_clean() {
        let dir = tmpdir("clean");
        let mut c = DiskCache::open(&dir).expect("open");
        c.record(3, &sample_model());
        assert_eq!(c.stores(), 1);
        c.record(3, &sample_model());
        assert_eq!(c.stores(), 1, "identical re-record is a no-op");
        let _ = fs::remove_dir_all(&dir);
    }
}
