//! Stage 1 of the word-level query optimizer: a memoized rewrite
//! simplifier over the hash-consed term DAG.
//!
//! The smart constructors in [`crate::expr`] already fold constants and a
//! few local identities *at construction time*. This pass goes further: it
//! walks a constraint bottom-up and applies rewrite rules that only pay
//! off once the whole term exists — solve-for-x normalization of
//! equalities, strength reduction of multiply/divide/remainder by powers
//! of two into shifts and masks, absorption and complement laws, nested
//! extract/concat fusion, and extension collapsing. Rebuilding through the
//! smart constructors lets every rewrite cascade into further folding.
//!
//! Results are memoized in a thread-local table keyed by [`Term::id`] —
//! the same lifetime domain as the hash-consing interner — so the cost is
//! paid once per distinct term *per thread*, not once per query. Paper
//! profiles run a throwaway [`crate::Solver`] per query (PR 2's stateless
//! pinning); the memo is what still makes round N+1's near-identical path
//! condition almost free to simplify.
//!
//! Every rule is an equivalence: for all assignments, the rewritten term
//! evaluates to the same value as the original. Soundness is covered by
//! the `optimizer_props` property suite, which cross-checks random term
//! graphs under random assignments and compares optimized against
//! unoptimized solver verdicts.

use crate::expr::{BvOp, CmpOp, Node, Term};
use crate::idhash::IdMap;
use std::cell::RefCell;

/// Counters from one batch of [`simplify`] calls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimplifyStats {
    /// Constraints answered straight from the thread-local memo.
    pub memo_hits: u64,
    /// Constraints whose simplified form differs from the input.
    pub rewritten: u64,
}

/// Entries above this cap trigger a full memo reset. Each entry pins its
/// key term (and thereby the term's whole DAG), so the table must not grow
/// without bound across a long-lived study thread.
const MEMO_CAP: usize = 1 << 16;

thread_local! {
    /// original id → (original term (pins the id), simplified term).
    static MEMO: RefCell<IdMap<usize, (Term, Term)>> = RefCell::new(IdMap::default());
}

/// Simplifies one boolean or bitvector constraint, memoized per thread.
pub fn simplify(t: &Term, stats: &mut SimplifyStats) -> Term {
    if let Some(hit) = MEMO.with(|m| m.borrow().get(&t.id()).map(|(_, s)| s.clone())) {
        stats.memo_hits += 1;
        return hit;
    }
    let out = simplify_uncached(t);
    if out != *t {
        stats.rewritten += 1;
    }
    out
}

/// Bottom-up rewrite over the DAG. Children-first ordering keeps the
/// recursion depth at one even on crypto-sized expressions, mirroring the
/// evaluator and the interval analysis.
fn simplify_uncached(t: &Term) -> Term {
    MEMO.with(|memo| {
        let mut memo = memo.borrow_mut();
        if memo.len() > MEMO_CAP {
            memo.clear();
        }
        for node in t.topo_order() {
            if memo.contains_key(&node.id()) {
                continue;
            }
            let rebuilt = node.rebuild_shallow(|c| match memo.get(&c.id()) {
                Some((_, s)) => s.clone(),
                // Unreachable in a topo order, but a lost child must never
                // corrupt the result — fall back to the unsimplified child.
                None => c.clone(),
            });
            let reduced = rewrite_fixpoint(rebuilt);
            // The simplified form is itself a fixpoint: memo it both ways
            // so later queries hit regardless of which form they carry.
            memo.insert(reduced.id(), (reduced.clone(), reduced.clone()));
            memo.insert(node.id(), (node, reduced));
        }
        match memo.get(&t.id()) {
            Some((_, s)) => s.clone(),
            None => t.clone(),
        }
    })
}

/// How many times a single node may be re-rewritten before we accept the
/// current form. Rules strictly shrink or normalize, so two or three
/// rounds reach a fixpoint in practice; the cap guards against cycles.
const REWRITE_ROUNDS: usize = 4;

fn rewrite_fixpoint(mut t: Term) -> Term {
    for _ in 0..REWRITE_ROUNDS {
        let next = rewrite_step(&t);
        if next == t {
            break;
        }
        t = next;
    }
    t
}

/// One round of top-level rewrite rules. Children are already simplified;
/// every produced term goes back through the smart constructors, which
/// fold any constants the rewrite exposes.
fn rewrite_step(t: &Term) -> Term {
    match t.node() {
        Node::BvBin { op, a, b } => rewrite_bvbin(*op, a, b).unwrap_or_else(|| t.clone()),
        Node::Cmp { op, a, b } => rewrite_cmp(*op, a, b).unwrap_or_else(|| t.clone()),
        Node::Extract { hi, lo, a } => rewrite_extract(*hi, *lo, a).unwrap_or_else(|| t.clone()),
        Node::Concat { a, b } => rewrite_concat(a, b).unwrap_or_else(|| t.clone()),
        Node::ZExt { width, a } => match a.node() {
            // zext(zext(x)) → zext(x): the middle extension adds no bits.
            Node::ZExt { a: inner, .. } => Term::zext(inner, *width),
            _ => t.clone(),
        },
        Node::SExt { width, a } => match a.node() {
            // sext(sext(x)) → sext(x): sign bit propagates either way.
            Node::SExt { a: inner, .. } => Term::sext(inner, *width),
            _ => t.clone(),
        },
        Node::BAnd(a, b) => {
            // Complement: p ∧ ¬p → false. Absorption: p ∧ (p ∨ q) → p.
            if is_bool_complement(a, b) {
                Term::bool(false)
            } else if or_contains(b, a) {
                a.clone()
            } else if or_contains(a, b) {
                b.clone()
            } else {
                t.clone()
            }
        }
        Node::BOr(a, b) => {
            // Complement: p ∨ ¬p → true. Absorption: p ∨ (p ∧ q) → p.
            if is_bool_complement(a, b) {
                Term::bool(true)
            } else if and_contains(b, a) {
                a.clone()
            } else if and_contains(a, b) {
                b.clone()
            } else {
                t.clone()
            }
        }
        Node::Ite { cond, then, els } => match cond.node() {
            // ite(¬c, t, e) → ite(c, e, t): one node fewer, and the
            // positive condition dedups against the path constraint.
            Node::BNot(inner) => Term::ite(inner, els, then),
            _ => t.clone(),
        },
        _ => t.clone(),
    }
}

/// Is `b` the boolean negation of `a` (either direction)?
fn is_bool_complement(a: &Term, b: &Term) -> bool {
    match (a.node(), b.node()) {
        (Node::BNot(x), _) => *x == *b,
        (_, Node::BNot(y)) => *y == *a,
        _ => false,
    }
}

/// Does the (possibly nested) disjunction `hay` contain `needle` as a
/// disjunct? Shallow: checks two levels, which covers the shapes the
/// symbolic executor emits.
fn or_contains(hay: &Term, needle: &Term) -> bool {
    match hay.node() {
        Node::BOr(x, y) => {
            *x == *needle || *y == *needle || or_contains(x, needle) || or_contains(y, needle)
        }
        _ => false,
    }
}

/// Conjunction counterpart of [`or_contains`].
fn and_contains(hay: &Term, needle: &Term) -> bool {
    match hay.node() {
        Node::BAnd(x, y) => {
            *x == *needle || *y == *needle || and_contains(x, needle) || and_contains(y, needle)
        }
        _ => false,
    }
}

fn rewrite_bvbin(op: BvOp, a: &Term, b: &Term) -> Option<Term> {
    let w = a.width();
    match op {
        // Strength reduction: constant power-of-two multiply → shift.
        BvOp::Mul => {
            if let Some(k) = a.as_const().filter(|k| k.is_power_of_two()) {
                return Some(Term::bin(
                    BvOp::Shl,
                    b,
                    &Term::bv(u64::from(k.trailing_zeros()), w),
                ));
            }
            if let Some(k) = b.as_const().filter(|k| k.is_power_of_two()) {
                return Some(Term::bin(
                    BvOp::Shl,
                    a,
                    &Term::bv(u64::from(k.trailing_zeros()), w),
                ));
            }
            None
        }
        // x / 2^k → x >> k (unsigned; exact for k < width).
        BvOp::UDiv => {
            let k = b.as_const().filter(|k| k.is_power_of_two())?;
            Some(Term::bin(
                BvOp::LShr,
                a,
                &Term::bv(u64::from(k.trailing_zeros()), w),
            ))
        }
        // x % 2^k → x & (2^k - 1).
        BvOp::URem => {
            let k = b.as_const().filter(|k| k.is_power_of_two())?;
            Some(Term::bin(BvOp::And, a, &Term::bv(k - 1, w)))
        }
        // Complement laws the constructors miss: x & ~x → 0,
        // x | ~x → all-ones, x ^ ~x → all-ones.
        BvOp::And if is_bv_complement(a, b) => Some(Term::bv(0, w)),
        BvOp::Or | BvOp::Xor if is_bv_complement(a, b) => Some(Term::bv(u64::MAX, w)),
        _ => None,
    }
}

/// Is `b` the bitwise negation of `a` (either direction)?
fn is_bv_complement(a: &Term, b: &Term) -> bool {
    match (a.node(), b.node()) {
        (Node::BvNot(x), _) => *x == *b,
        (_, Node::BvNot(y)) => *y == *a,
        _ => false,
    }
}

/// Compare-through-zext narrowing. A zero-extended value is confined to
/// the low `iw` bits of its width, so comparing it against a constant (or
/// against another zero-extension from the same width) decides at width
/// `iw` — or decides outright when the constant lies beyond the reachable
/// range. Signed orders reduce to unsigned ones because a proper
/// zero-extension always has a clear sign bit. This is the rule that
/// collapses the 64-bit digit guards a `zext`-happy lifter emits around
/// every `atoi` byte down to 8-bit compares before the blaster sees them.
fn narrow_zext_cmp(op: CmpOp, a: &Term, b: &Term) -> Option<Term> {
    use crate::expr::to_signed;
    let w = a.width();
    // Both sides zero-extended from the same inner width: drop the
    // extensions and compare the operands directly.
    if let (Node::ZExt { a: x, .. }, Node::ZExt { a: y, .. }) = (a.node(), b.node()) {
        if x.width() == y.width() && x.width() < w {
            let uop = match op {
                CmpOp::Eq => CmpOp::Eq,
                CmpOp::Ult | CmpOp::Slt => CmpOp::Ult,
                CmpOp::Ule | CmpOp::Sle => CmpOp::Ule,
            };
            return Some(Term::cmp(uop, x, y));
        }
    }
    let (x, k, zext_left) = match (a.node(), b.as_const()) {
        (Node::ZExt { a: x, .. }, Some(k)) => (x, k, true),
        _ => match (a.as_const(), b.node()) {
            (Some(k), Node::ZExt { a: x, .. }) => (x, k, false),
            _ => return None,
        },
    };
    let iw = x.width();
    if iw >= w {
        return None;
    }
    // iw <= 63 here, so `max` fits a signed 64-bit value.
    let max = (1u64 << iw) - 1;
    let ks = to_signed(k, w);
    let kn = Term::bv(k & max, iw);
    Some(if zext_left {
        // zext(x) OP k
        match op {
            CmpOp::Eq if k > max => Term::bool(false),
            CmpOp::Eq => Term::cmp(CmpOp::Eq, x, &kn),
            CmpOp::Ult if k > max => Term::bool(true),
            CmpOp::Ult => Term::cmp(CmpOp::Ult, x, &kn),
            CmpOp::Ule if k >= max => Term::bool(true),
            CmpOp::Ule => Term::cmp(CmpOp::Ule, x, &kn),
            CmpOp::Slt if ks <= 0 => Term::bool(false),
            CmpOp::Slt if ks > max as i64 => Term::bool(true),
            CmpOp::Slt => Term::cmp(CmpOp::Ult, x, &kn),
            CmpOp::Sle if ks < 0 => Term::bool(false),
            CmpOp::Sle if ks >= max as i64 => Term::bool(true),
            CmpOp::Sle => Term::cmp(CmpOp::Ule, x, &kn),
        }
    } else {
        // k OP zext(x)
        match op {
            CmpOp::Eq if k > max => Term::bool(false),
            CmpOp::Eq => Term::cmp(CmpOp::Eq, x, &kn),
            CmpOp::Ult if k >= max => Term::bool(false),
            CmpOp::Ult => Term::cmp(CmpOp::Ult, &kn, x),
            CmpOp::Ule if k > max => Term::bool(false),
            CmpOp::Ule => Term::cmp(CmpOp::Ule, &kn, x),
            CmpOp::Slt if ks < 0 => Term::bool(true),
            CmpOp::Slt if ks >= max as i64 => Term::bool(false),
            CmpOp::Slt => Term::cmp(CmpOp::Ult, &kn, x),
            CmpOp::Sle if ks <= 0 => Term::bool(true),
            CmpOp::Sle if ks > max as i64 => Term::bool(false),
            CmpOp::Sle => Term::cmp(CmpOp::Ule, &kn, x),
        }
    })
}

fn rewrite_cmp(op: CmpOp, a: &Term, b: &Term) -> Option<Term> {
    if let Some(t) = narrow_zext_cmp(op, a, b) {
        return Some(t);
    }
    let w = a.width();
    let full = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
    match op {
        CmpOp::Eq => {
            // Canonical orientation: constant on the right.
            if a.as_const().is_some() && b.as_const().is_none() {
                return Some(Term::cmp(CmpOp::Eq, b, a));
            }
            let k = b.as_const()?;
            // Solve-for-x through invertible unary/binary shapes. Each is
            // an equivalence in modular arithmetic, so no solutions are
            // gained or lost — the equality just moves toward the
            // variable, shedding one operator per round.
            match a.node() {
                Node::BvBin {
                    op: BvOp::Add,
                    a: x,
                    b: y,
                } => {
                    if let Some(c) = y.as_const() {
                        return Some(Term::cmp(CmpOp::Eq, x, &Term::bv(k.wrapping_sub(c), w)));
                    }
                    if let Some(c) = x.as_const() {
                        return Some(Term::cmp(CmpOp::Eq, y, &Term::bv(k.wrapping_sub(c), w)));
                    }
                    None
                }
                Node::BvBin {
                    op: BvOp::Sub,
                    a: x,
                    b: y,
                } => {
                    if let Some(c) = y.as_const() {
                        return Some(Term::cmp(CmpOp::Eq, x, &Term::bv(k.wrapping_add(c), w)));
                    }
                    if let Some(c) = x.as_const() {
                        // c - y == k  ⇔  y == c - k
                        return Some(Term::cmp(CmpOp::Eq, y, &Term::bv(c.wrapping_sub(k), w)));
                    }
                    None
                }
                Node::BvBin {
                    op: BvOp::Xor,
                    a: x,
                    b: y,
                } => {
                    if let Some(c) = y.as_const() {
                        return Some(Term::cmp(CmpOp::Eq, x, &Term::bv(k ^ c, w)));
                    }
                    if let Some(c) = x.as_const() {
                        return Some(Term::cmp(CmpOp::Eq, y, &Term::bv(k ^ c, w)));
                    }
                    None
                }
                Node::BvNot(x) => Some(Term::cmp(CmpOp::Eq, x, &Term::bv(!k, w))),
                Node::BvNeg(x) => Some(Term::cmp(CmpOp::Eq, x, &Term::bv(k.wrapping_neg(), w))),
                _ => None,
            }
        }
        // Vacuous unsigned bounds: nothing is below zero, everything is
        // at least zero and at most the all-ones value.
        CmpOp::Ult => {
            if b.as_const() == Some(0) {
                return Some(Term::bool(false));
            }
            if a.as_const() == Some(full) {
                return Some(Term::bool(false));
            }
            None
        }
        CmpOp::Ule => {
            if a.as_const() == Some(0) {
                return Some(Term::bool(true));
            }
            if b.as_const() == Some(full) {
                return Some(Term::bool(true));
            }
            None
        }
        CmpOp::Slt | CmpOp::Sle => None,
    }
}

fn rewrite_extract(hi: u8, lo: u8, a: &Term) -> Option<Term> {
    match a.node() {
        // extract(extract(x)) → one extract with shifted bounds.
        Node::Extract {
            lo: l2, a: inner, ..
        } => Some(Term::extract(inner, hi + l2, lo + l2)),
        // extract over zext: fully below the original width reads the
        // operand, fully above reads zeros.
        Node::ZExt { a: inner, .. } => {
            let iw = inner.width();
            if hi < iw {
                Some(Term::extract(inner, hi, lo))
            } else if lo >= iw {
                Some(Term::bv(0, hi - lo + 1))
            } else {
                None
            }
        }
        // extract over concat: a slice that stays inside one half skips
        // the other half entirely — the classic byte-select fusion.
        Node::Concat { a: top, b: bot } => {
            let wb = bot.width();
            if hi < wb {
                Some(Term::extract(bot, hi, lo))
            } else if lo >= wb {
                Some(Term::extract(top, hi - wb, lo - wb))
            } else {
                None
            }
        }
        _ => None,
    }
}

fn rewrite_concat(a: &Term, b: &Term) -> Option<Term> {
    // concat(extract(x, h1, l1), extract(x, h2, l2)) with l1 == h2+1
    // → extract(x, h1, l2): adjacent slices of one source re-fuse.
    let (
        Node::Extract {
            hi: h1,
            lo: l1,
            a: x,
        },
        Node::Extract {
            hi: h2,
            lo: l2,
            a: y,
        },
    ) = (a.node(), b.node())
    else {
        return None;
    };
    if x == y && *l1 == h2 + 1 {
        Some(Term::extract(x, *h1, *l2))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simp(t: &Term) -> Term {
        simplify(t, &mut SimplifyStats::default())
    }

    #[test]
    fn mul_and_div_by_powers_of_two_become_shifts() {
        let x = Term::var("x", 16);
        let m = simp(&Term::bin(BvOp::Mul, &x, &Term::bv(8, 16)));
        assert!(
            matches!(m.node(), Node::BvBin { op: BvOp::Shl, .. }),
            "{m:?}"
        );
        let d = simp(&Term::bin(BvOp::UDiv, &x, &Term::bv(4, 16)));
        assert!(
            matches!(d.node(), Node::BvBin { op: BvOp::LShr, .. }),
            "{d:?}"
        );
        let r = simp(&Term::bin(BvOp::URem, &x, &Term::bv(16, 16)));
        assert!(
            matches!(r.node(), Node::BvBin { op: BvOp::And, .. }),
            "{r:?}"
        );
    }

    #[test]
    fn equalities_solve_toward_the_variable() {
        // (x ^ 0x5A) + 1 == 0x70  simplifies to  x == 0x35 (the crackme).
        let x = Term::var("x", 8);
        let c = Term::cmp(
            CmpOp::Eq,
            &Term::bin(
                BvOp::Add,
                &Term::bin(BvOp::Xor, &x, &Term::bv(0x5A, 8)),
                &Term::bv(1, 8),
            ),
            &Term::bv(0x70, 8),
        );
        let s = simp(&c);
        assert_eq!(s, Term::cmp(CmpOp::Eq, &x, &Term::bv(0x35, 8)));
    }

    #[test]
    fn vacuous_unsigned_bounds_fold_to_constants() {
        let x = Term::var("x", 8);
        assert_eq!(
            simp(&Term::cmp(CmpOp::Ult, &x, &Term::bv(0, 8))).as_bool_const(),
            Some(false)
        );
        assert_eq!(
            simp(&Term::cmp(CmpOp::Ule, &Term::bv(0, 8), &x)).as_bool_const(),
            Some(true)
        );
        assert_eq!(
            simp(&Term::cmp(CmpOp::Ule, &x, &Term::bv(255, 8))).as_bool_const(),
            Some(true)
        );
    }

    #[test]
    fn zext_compares_narrow_to_operand_width() {
        let x = Term::var("x", 8);
        let z = Term::zext(&x, 64);
        // The atoi digit-guard shapes: signed compares against in-range
        // constants become 8-bit unsigned compares.
        assert_eq!(
            simp(&Term::cmp(CmpOp::Slt, &z, &Term::bv(48, 64))),
            Term::cmp(CmpOp::Ult, &x, &Term::bv(48, 8))
        );
        assert_eq!(
            simp(&Term::cmp(CmpOp::Slt, &Term::bv(57, 64), &z)),
            Term::cmp(CmpOp::Ult, &Term::bv(57, 8), &x)
        );
        assert_eq!(
            simp(&Term::cmp(CmpOp::Eq, &z, &Term::bv(45, 64))),
            Term::cmp(CmpOp::Eq, &x, &Term::bv(45, 8))
        );
        // Constants outside the zext range decide the comparison outright.
        assert_eq!(
            simp(&Term::cmp(CmpOp::Eq, &z, &Term::bv(300, 64))).as_bool_const(),
            Some(false)
        );
        assert_eq!(
            simp(&Term::cmp(CmpOp::Ult, &z, &Term::bv(300, 64))).as_bool_const(),
            Some(true)
        );
        // A negative signed bound sits below every zero-extended value.
        assert_eq!(
            simp(&Term::cmp(CmpOp::Slt, &z, &Term::bv(-1i64 as u64, 64))).as_bool_const(),
            Some(false)
        );
        assert_eq!(
            simp(&Term::cmp(CmpOp::Slt, &Term::bv(-1i64 as u64, 64), &z)).as_bool_const(),
            Some(true)
        );
        // Matching extensions on both sides drop away together.
        let y = Term::var("y", 8);
        assert_eq!(
            simp(&Term::cmp(CmpOp::Slt, &z, &Term::zext(&y, 64))),
            Term::cmp(CmpOp::Ult, &x, &y)
        );
    }

    #[test]
    fn extract_fusion_and_concat_refusion() {
        let x = Term::var("x", 32);
        let outer = Term::extract(&Term::extract(&x, 23, 8), 11, 4);
        assert_eq!(simp(&outer), Term::extract(&x, 19, 12));

        let hi = Term::extract(&x, 15, 8);
        let lo = Term::extract(&x, 7, 0);
        assert_eq!(simp(&Term::concat(&hi, &lo)), Term::extract(&x, 15, 0));

        let z = Term::zext(&Term::var("y", 8), 32);
        assert_eq!(simp(&Term::extract(&z, 31, 16)), Term::bv(0, 16));
        assert_eq!(
            simp(&Term::extract(&z, 7, 4)),
            Term::extract(&Term::var("y", 8), 7, 4)
        );
    }

    #[test]
    fn boolean_absorption_and_complement() {
        let x = Term::var("x", 8);
        let p = Term::cmp(CmpOp::Eq, &x, &Term::bv(1, 8));
        let q = Term::cmp(CmpOp::Ult, &x, &Term::bv(9, 8));
        let raw_and = Term::and(&p, &q);
        let raw_or = Term::or(&p, &q);
        assert_eq!(simp(&Term::and(&p, &raw_or)), p);
        assert_eq!(simp(&Term::or(&p, &raw_and)), p);
        assert_eq!(
            simp(&Term::and(&p, &Term::not(&p))).as_bool_const(),
            Some(false)
        );
        assert_eq!(
            simp(&Term::or(&p, &Term::not(&p))).as_bool_const(),
            Some(true)
        );
    }

    #[test]
    fn memo_hits_count_on_repeat_queries() {
        let x = Term::var("x", 32);
        let c = Term::cmp(
            CmpOp::Eq,
            &Term::bin(BvOp::Add, &x, &Term::bv(7, 32)),
            &Term::bv(11, 32),
        );
        let mut stats = SimplifyStats::default();
        let first = simplify(&c, &mut stats);
        let hits_before = stats.memo_hits;
        let second = simplify(&c, &mut stats);
        assert_eq!(first, second);
        assert_eq!(stats.memo_hits, hits_before + 1);
    }

    #[test]
    fn rewrites_preserve_evaluation_on_samples() {
        use crate::expr::eval;
        let x = Term::var("x", 16);
        let shapes = [
            Term::bin(BvOp::Mul, &x, &Term::bv(32, 16)),
            Term::bin(BvOp::URem, &x, &Term::bv(64, 16)),
            Term::bin(BvOp::And, &x, &Term::bvnot(&x)),
            Term::bin(BvOp::Or, &x, &Term::bvnot(&x)),
        ];
        for t in &shapes {
            let s = simp(t);
            for v in [0u64, 1, 2, 0x1234, 0xFFFF, 0x8000] {
                let env: std::collections::HashMap<std::sync::Arc<str>, u64> =
                    [(std::sync::Arc::from("x"), v)].into_iter().collect();
                assert_eq!(
                    eval(t, &env).unwrap(),
                    eval(&s, &env).unwrap(),
                    "rewrite changed semantics of {t:?} at x={v}"
                );
            }
        }
    }
}
