//! # bomblab-ir — intermediate representation and lifter
//!
//! The "instruction lifting" stage of the paper's conceptual framework
//! (Figure 1): each BVM instruction is interpreted into a small RISC-like
//! intermediate language so that register and memory effects are explicit.
//! The symbolic executor in `bomblab-symex` consumes this IR.
//!
//! Real tools differ in which instructions their lifters understand — the
//! paper attributes several Table-II failures (`Es1`) to exactly this
//! (e.g. Triton's missing `cvtsi2sd`/`ucomisd`, BAP's missing stack and
//! floating-point handling). [`SupportMatrix`] models those gaps: lifting
//! an unsupported instruction returns [`LiftError::Unsupported`], which the
//! engine maps to the paper's `Es1`.
//!
//! ## Example
//!
//! ```
//! use bomblab_ir::{lift, SupportMatrix, Stmt};
//! use bomblab_isa::{Insn, Reg, Opcode};
//!
//! let insn = Insn::AluI { op: Opcode::AddI, rd: Reg::A0, rs: Reg::A0, imm: 1 };
//! let block = lift(&insn, 0x1000, &SupportMatrix::full())?;
//! assert!(matches!(block[0], Stmt::Bin { .. }));
//! # Ok::<(), bomblab_ir::LiftError>(())
//! ```

#![warn(missing_docs)]

use bomblab_isa::{FReg, Insn, InsnClass, Opcode, Reg};
use std::collections::BTreeSet;
use std::fmt;

/// A storage location in the IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Place {
    /// A general-purpose register.
    Gpr(Reg),
    /// A floating-point register.
    Fpr(FReg),
    /// A lifter-allocated temporary.
    Tmp(u32),
}

impl fmt::Display for Place {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Place::Gpr(r) => write!(f, "{r}"),
            Place::Fpr(r) => write!(f, "{r}"),
            Place::Tmp(t) => write!(f, "%t{t}"),
        }
    }
}

/// An operand: a place or an immediate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Atom {
    /// Read a place.
    Place(Place),
    /// A 64-bit integer constant.
    Const(u64),
    /// A double constant.
    FConst(f64),
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Place(p) => write!(f, "{p}"),
            Atom::Const(c) => write!(f, "{c:#x}"),
            Atom::FConst(c) => write!(f, "{c}"),
        }
    }
}

/// Binary IR operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    DivU,
    DivS,
    RemU,
    RemS,
    And,
    Or,
    Xor,
    Shl,
    ShrU,
    ShrS,
    SltS,
    SltU,
    FAdd,
    FSub,
    FMul,
    FDiv,
}

/// Unary IR operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum UnOp {
    Mov,
    Not,
    Neg,
    FMov,
    FNeg,
    FSqrt,
    /// Signed integer → double (`cvt.si2d`).
    CvtSiToD,
    /// Double → signed integer, truncating (`cvt.d2si`).
    CvtDToSi,
    /// Double → raw bits.
    FBits,
    /// Raw bits → double.
    FFromBits,
}

/// Comparison kinds for conditional jumps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum CmpK {
    Eq,
    Ne,
    LtS,
    GeS,
    LtU,
    GeU,
    FEq,
    FLt,
    FLe,
}

/// One IR statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `dst = a <op> b`.
    Bin {
        /// Operation.
        op: BinOp,
        /// Destination.
        dst: Place,
        /// Left operand.
        a: Atom,
        /// Right operand.
        b: Atom,
    },
    /// `dst = <op> a`.
    Un {
        /// Operation.
        op: UnOp,
        /// Destination.
        dst: Place,
        /// Operand.
        a: Atom,
    },
    /// `dst = widen(mem[addr])`.
    Load {
        /// Destination.
        dst: Place,
        /// Address operand.
        addr: Atom,
        /// Access width in bytes.
        width: u8,
        /// Sign- (vs zero-) extend.
        sext: bool,
        /// Destination is a floating-point register (raw 8-byte bits).
        float: bool,
    },
    /// `mem[addr] = truncate(src)`.
    Store {
        /// Value.
        src: Atom,
        /// Address operand.
        addr: Atom,
        /// Access width in bytes.
        width: u8,
    },
    /// `if a <cmp> b goto target else fallthrough`.
    CondJump {
        /// Comparison.
        cmp: CmpK,
        /// Left operand.
        a: Atom,
        /// Right operand.
        b: Atom,
        /// Taken target address.
        target: u64,
        /// Fallthrough address.
        fallthrough: u64,
    },
    /// Unconditional direct jump.
    Jump {
        /// Target address.
        target: u64,
    },
    /// Jump through a computed value (`jr`, `callr`, `ret`).
    IndirectJump {
        /// The target operand.
        target: Atom,
    },
    /// System call boundary (effects applied by the engine from the trace).
    Syscall,
    /// Machine halt.
    Halt,
}

/// Errors from lifting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiftError {
    /// The profile's lifter does not understand this instruction — the
    /// paper's `Es1` condition.
    Unsupported {
        /// The instruction's class.
        class: InsnClass,
        /// The concrete opcode.
        opcode: Opcode,
    },
}

impl fmt::Display for LiftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiftError::Unsupported { class, opcode } => {
                write!(f, "lifter does not support {opcode:?} (class {class:?})")
            }
        }
    }
}

impl std::error::Error for LiftError {}

/// The set of instruction classes a tool's lifter understands.
///
/// ```
/// use bomblab_ir::SupportMatrix;
/// use bomblab_isa::InsnClass;
///
/// let triton_like = SupportMatrix::full()
///     .without(InsnClass::FpConvert)
///     .without(InsnClass::FpBranch);
/// assert!(!triton_like.supports(InsnClass::FpConvert));
/// assert!(triton_like.supports(InsnClass::IntAlu));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupportMatrix {
    supported: BTreeSet<InsnClassKey>,
}

/// Orderable wrapper (InsnClass itself does not implement Ord).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct InsnClassKey(u8);

fn class_key(c: InsnClass) -> InsnClassKey {
    InsnClassKey(match c {
        InsnClass::IntAlu => 0,
        InsnClass::Mul => 1,
        InsnClass::Div => 2,
        InsnClass::Mem => 3,
        InsnClass::Stack => 4,
        InsnClass::Branch => 5,
        InsnClass::Jump => 6,
        InsnClass::IndirectJump => 7,
        InsnClass::Call => 8,
        InsnClass::Sys => 9,
        InsnClass::FpArith => 10,
        InsnClass::FpConvert => 11,
        InsnClass::FpBranch => 12,
        InsnClass::FpMem => 13,
        InsnClass::Misc => 14,
    })
}

const ALL_CLASSES: [InsnClass; 15] = [
    InsnClass::IntAlu,
    InsnClass::Mul,
    InsnClass::Div,
    InsnClass::Mem,
    InsnClass::Stack,
    InsnClass::Branch,
    InsnClass::Jump,
    InsnClass::IndirectJump,
    InsnClass::Call,
    InsnClass::Sys,
    InsnClass::FpArith,
    InsnClass::FpConvert,
    InsnClass::FpBranch,
    InsnClass::FpMem,
    InsnClass::Misc,
];

impl SupportMatrix {
    /// All instruction classes supported (a VEX-grade lifter).
    pub fn full() -> SupportMatrix {
        SupportMatrix {
            supported: ALL_CLASSES.iter().map(|&c| class_key(c)).collect(),
        }
    }

    /// Removes support for a class (builder style).
    pub fn without(mut self, class: InsnClass) -> SupportMatrix {
        self.supported.remove(&class_key(class));
        self
    }

    /// Whether a class is supported.
    pub fn supports(&self, class: InsnClass) -> bool {
        self.supported.contains(&class_key(class))
    }
}

impl Default for SupportMatrix {
    fn default() -> SupportMatrix {
        SupportMatrix::full()
    }
}

/// Lifts one instruction at `pc` to an IR block.
///
/// # Errors
///
/// Returns [`LiftError::Unsupported`] if `support` lacks the instruction's
/// class.
pub fn lift(insn: &Insn, pc: u64, support: &SupportMatrix) -> Result<Vec<Stmt>, LiftError> {
    if !support.supports(insn.class()) {
        return Err(LiftError::Unsupported {
            class: insn.class(),
            opcode: insn.opcode(),
        });
    }
    let next = pc.wrapping_add(insn.len() as u64);
    let gpr = |r: Reg| Atom::Place(Place::Gpr(r));
    let fpr = |r: FReg| Atom::Place(Place::Fpr(r));
    let rel = |r: i32| pc.wrapping_add(r as i64 as u64);

    let stmts = match *insn {
        Insn::Alu3 { op, rd, rs, rt } => vec![Stmt::Bin {
            op: alu_binop(op),
            dst: Place::Gpr(rd),
            a: gpr(rs),
            b: gpr(rt),
        }],
        Insn::AluI { op, rd, rs, imm } => vec![Stmt::Bin {
            op: alui_binop(op),
            dst: Place::Gpr(rd),
            a: gpr(rs),
            b: Atom::Const(imm as i64 as u64),
        }],
        Insn::Mov { rd, rs } => vec![Stmt::Un {
            op: UnOp::Mov,
            dst: Place::Gpr(rd),
            a: gpr(rs),
        }],
        Insn::Not { rd, rs } => vec![Stmt::Un {
            op: UnOp::Not,
            dst: Place::Gpr(rd),
            a: gpr(rs),
        }],
        Insn::Neg { rd, rs } => vec![Stmt::Un {
            op: UnOp::Neg,
            dst: Place::Gpr(rd),
            a: gpr(rs),
        }],
        Insn::Li { rd, imm } => vec![Stmt::Un {
            op: UnOp::Mov,
            dst: Place::Gpr(rd),
            a: Atom::Const(imm),
        }],
        Insn::Load { op, rd, base, off } => {
            let (width, sext) = load_shape(op);
            vec![
                Stmt::Bin {
                    op: BinOp::Add,
                    dst: Place::Tmp(0),
                    a: gpr(base),
                    b: Atom::Const(off as i64 as u64),
                },
                Stmt::Load {
                    dst: Place::Gpr(rd),
                    addr: Atom::Place(Place::Tmp(0)),
                    width,
                    sext,
                    float: false,
                },
            ]
        }
        Insn::Store { op, src, base, off } => {
            let width = store_width(op);
            vec![
                Stmt::Bin {
                    op: BinOp::Add,
                    dst: Place::Tmp(0),
                    a: gpr(base),
                    b: Atom::Const(off as i64 as u64),
                },
                Stmt::Store {
                    src: gpr(src),
                    addr: Atom::Place(Place::Tmp(0)),
                    width,
                },
            ]
        }
        Insn::Push { rs } => vec![
            Stmt::Bin {
                op: BinOp::Sub,
                dst: Place::Gpr(Reg::SP),
                a: gpr(Reg::SP),
                b: Atom::Const(8),
            },
            Stmt::Store {
                src: gpr(rs),
                addr: gpr(Reg::SP),
                width: 8,
            },
        ],
        Insn::Pop { rd } => vec![
            Stmt::Load {
                dst: Place::Gpr(rd),
                addr: gpr(Reg::SP),
                width: 8,
                sext: false,
                float: false,
            },
            Stmt::Bin {
                op: BinOp::Add,
                dst: Place::Gpr(Reg::SP),
                a: gpr(Reg::SP),
                b: Atom::Const(8),
            },
        ],
        Insn::Branch { op, rs, rt, rel: r } => vec![Stmt::CondJump {
            cmp: branch_cmp(op),
            a: gpr(rs),
            b: gpr(rt),
            target: rel(r),
            fallthrough: next,
        }],
        Insn::Jmp { rel: r } => vec![Stmt::Jump { target: rel(r) }],
        Insn::Jr { rs } => vec![Stmt::IndirectJump { target: gpr(rs) }],
        Insn::Call { rel: r } => vec![
            Stmt::Un {
                op: UnOp::Mov,
                dst: Place::Gpr(Reg::RA),
                a: Atom::Const(next),
            },
            Stmt::Jump { target: rel(r) },
        ],
        Insn::Callr { rs } => vec![
            // Target is read before ra is written (rs may be ra itself).
            Stmt::Un {
                op: UnOp::Mov,
                dst: Place::Tmp(0),
                a: gpr(rs),
            },
            Stmt::Un {
                op: UnOp::Mov,
                dst: Place::Gpr(Reg::RA),
                a: Atom::Const(next),
            },
            Stmt::IndirectJump {
                target: Atom::Place(Place::Tmp(0)),
            },
        ],
        Insn::Ret => vec![Stmt::IndirectJump {
            target: gpr(Reg::RA),
        }],
        Insn::Sys => vec![Stmt::Syscall],
        Insn::Nop => vec![],
        Insn::Halt => vec![Stmt::Halt],
        Insn::FAlu3 { op, fd, fs, ft } => vec![Stmt::Bin {
            op: falu_binop(op),
            dst: Place::Fpr(fd),
            a: fpr(fs),
            b: fpr(ft),
        }],
        Insn::FAlu2 { op, fd, fs } => vec![Stmt::Un {
            op: match op {
                Opcode::FSqrt => UnOp::FSqrt,
                Opcode::FNeg => UnOp::FNeg,
                Opcode::FMov => UnOp::FMov,
                other => unreachable!("non-FALU2 opcode {other:?}"),
            },
            dst: Place::Fpr(fd),
            a: fpr(fs),
        }],
        Insn::FLd { fd, base, off } => vec![
            Stmt::Bin {
                op: BinOp::Add,
                dst: Place::Tmp(0),
                a: gpr(base),
                b: Atom::Const(off as i64 as u64),
            },
            Stmt::Load {
                dst: Place::Fpr(fd),
                addr: Atom::Place(Place::Tmp(0)),
                width: 8,
                sext: false,
                float: true,
            },
        ],
        Insn::FSt { fs, base, off } => vec![
            Stmt::Bin {
                op: BinOp::Add,
                dst: Place::Tmp(0),
                a: gpr(base),
                b: Atom::Const(off as i64 as u64),
            },
            Stmt::Un {
                op: UnOp::FBits,
                dst: Place::Tmp(1),
                a: fpr(fs),
            },
            Stmt::Store {
                src: Atom::Place(Place::Tmp(1)),
                addr: Atom::Place(Place::Tmp(0)),
                width: 8,
            },
        ],
        Insn::FLi { fd, bits } => vec![Stmt::Un {
            op: UnOp::FMov,
            dst: Place::Fpr(fd),
            a: Atom::FConst(f64::from_bits(bits)),
        }],
        Insn::FCvtSiToD { fd, rs } => vec![Stmt::Un {
            op: UnOp::CvtSiToD,
            dst: Place::Fpr(fd),
            a: gpr(rs),
        }],
        Insn::FCvtDToSi { rd, fs } => vec![Stmt::Un {
            op: UnOp::CvtDToSi,
            dst: Place::Gpr(rd),
            a: fpr(fs),
        }],
        Insn::FBranch { op, fs, ft, rel: r } => vec![Stmt::CondJump {
            cmp: match op {
                Opcode::FBeq => CmpK::FEq,
                Opcode::FBlt => CmpK::FLt,
                Opcode::FBle => CmpK::FLe,
                other => unreachable!("non-FBranch opcode {other:?}"),
            },
            a: fpr(fs),
            b: fpr(ft),
            target: rel(r),
            fallthrough: next,
        }],
        Insn::FBits { rd, fs } => vec![Stmt::Un {
            op: UnOp::FBits,
            dst: Place::Gpr(rd),
            a: fpr(fs),
        }],
        Insn::FFromBits { fd, rs } => vec![Stmt::Un {
            op: UnOp::FFromBits,
            dst: Place::Fpr(fd),
            a: gpr(rs),
        }],
    };
    Ok(stmts)
}

fn alu_binop(op: Opcode) -> BinOp {
    match op {
        Opcode::Add => BinOp::Add,
        Opcode::Sub => BinOp::Sub,
        Opcode::Mul => BinOp::Mul,
        Opcode::Divu => BinOp::DivU,
        Opcode::Divs => BinOp::DivS,
        Opcode::Remu => BinOp::RemU,
        Opcode::Rems => BinOp::RemS,
        Opcode::And => BinOp::And,
        Opcode::Or => BinOp::Or,
        Opcode::Xor => BinOp::Xor,
        Opcode::Shl => BinOp::Shl,
        Opcode::Shru => BinOp::ShrU,
        Opcode::Shrs => BinOp::ShrS,
        Opcode::Slt => BinOp::SltS,
        Opcode::Sltu => BinOp::SltU,
        other => unreachable!("non-ALU3 opcode {other:?}"),
    }
}

fn alui_binop(op: Opcode) -> BinOp {
    match op {
        Opcode::AddI => BinOp::Add,
        Opcode::MulI => BinOp::Mul,
        Opcode::AndI => BinOp::And,
        Opcode::OrI => BinOp::Or,
        Opcode::XorI => BinOp::Xor,
        Opcode::ShlI => BinOp::Shl,
        Opcode::ShruI => BinOp::ShrU,
        Opcode::ShrsI => BinOp::ShrS,
        Opcode::SltI => BinOp::SltS,
        Opcode::SltuI => BinOp::SltU,
        other => unreachable!("non-ALUI opcode {other:?}"),
    }
}

fn falu_binop(op: Opcode) -> BinOp {
    match op {
        Opcode::FAdd => BinOp::FAdd,
        Opcode::FSub => BinOp::FSub,
        Opcode::FMul => BinOp::FMul,
        Opcode::FDiv => BinOp::FDiv,
        other => unreachable!("non-FALU3 opcode {other:?}"),
    }
}

fn branch_cmp(op: Opcode) -> CmpK {
    match op {
        Opcode::Beq => CmpK::Eq,
        Opcode::Bne => CmpK::Ne,
        Opcode::Blt => CmpK::LtS,
        Opcode::Bge => CmpK::GeS,
        Opcode::Bltu => CmpK::LtU,
        Opcode::Bgeu => CmpK::GeU,
        other => unreachable!("non-branch opcode {other:?}"),
    }
}

fn load_shape(op: Opcode) -> (u8, bool) {
    match op {
        Opcode::Lb => (1, true),
        Opcode::Lbu => (1, false),
        Opcode::Lh => (2, true),
        Opcode::Lhu => (2, false),
        Opcode::Lw => (4, true),
        Opcode::Lwu => (4, false),
        Opcode::Ld => (8, false),
        other => unreachable!("non-load opcode {other:?}"),
    }
}

fn store_width(op: Opcode) -> u8 {
    match op {
        Opcode::Sb => 1,
        Opcode::Sh => 2,
        Opcode::Sw => 4,
        Opcode::Sd => 8,
        other => unreachable!("non-store opcode {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_matrix_lifts_every_sample_instruction() {
        let support = SupportMatrix::full();
        let r = |i| Reg::new(i).unwrap();
        let samples = vec![
            Insn::Alu3 {
                op: Opcode::Add,
                rd: r(1),
                rs: r(2),
                rt: r(3),
            },
            Insn::Push { rs: r(4) },
            Insn::Pop { rd: r(5) },
            Insn::Jr { rs: r(6) },
            Insn::Ret,
            Insn::Sys,
            Insn::Halt,
            Insn::FCvtSiToD {
                fd: FReg::new(0).unwrap(),
                rs: r(7),
            },
        ];
        for insn in samples {
            assert!(lift(&insn, 0x1000, &support).is_ok(), "{insn}");
        }
    }

    #[test]
    fn unsupported_class_reports_es1_shaped_error() {
        let no_fp = SupportMatrix::full().without(InsnClass::FpConvert);
        let insn = Insn::FCvtSiToD {
            fd: FReg::new(0).unwrap(),
            rs: Reg::A0,
        };
        assert_eq!(
            lift(&insn, 0, &no_fp).unwrap_err(),
            LiftError::Unsupported {
                class: InsnClass::FpConvert,
                opcode: Opcode::FCvtSiToD,
            }
        );
        // Other classes still lift.
        assert!(lift(&Insn::Nop, 0, &no_fp).is_ok());
    }

    #[test]
    fn branch_lifts_with_absolute_targets() {
        let insn = Insn::Branch {
            op: Opcode::Bne,
            rs: Reg::A0,
            rt: Reg::A1,
            rel: -20,
        };
        let block = lift(&insn, 0x2000, &SupportMatrix::full()).unwrap();
        match &block[0] {
            Stmt::CondJump {
                cmp,
                target,
                fallthrough,
                ..
            } => {
                assert_eq!(*cmp, CmpK::Ne);
                assert_eq!(*target, 0x2000 - 20);
                assert_eq!(*fallthrough, 0x2000 + 7);
            }
            other => panic!("expected CondJump, got {other:?}"),
        }
    }

    #[test]
    fn call_lifts_to_ra_write_plus_jump() {
        let block = lift(&Insn::Call { rel: 0x40 }, 0x1000, &SupportMatrix::full()).unwrap();
        assert_eq!(block.len(), 2);
        match (&block[0], &block[1]) {
            (
                Stmt::Un {
                    dst: Place::Gpr(ra),
                    a: Atom::Const(next),
                    ..
                },
                Stmt::Jump { target },
            ) => {
                assert_eq!(*ra, Reg::RA);
                assert_eq!(*next, 0x1005);
                assert_eq!(*target, 0x1040);
            }
            other => panic!("unexpected lift {other:?}"),
        }
    }

    #[test]
    fn push_lifts_to_sp_update_and_store() {
        let block = lift(&Insn::Push { rs: Reg::A0 }, 0, &SupportMatrix::full()).unwrap();
        assert!(matches!(
            block[0],
            Stmt::Bin {
                op: BinOp::Sub,
                dst: Place::Gpr(Reg::SP),
                ..
            }
        ));
        assert!(matches!(block[1], Stmt::Store { width: 8, .. }));
    }

    #[test]
    fn loads_carry_width_and_sign() {
        let insn = Insn::Load {
            op: Opcode::Lh,
            rd: Reg::A0,
            base: Reg::SP,
            off: 4,
        };
        let block = lift(&insn, 0, &SupportMatrix::full()).unwrap();
        match &block[1] {
            Stmt::Load {
                width, sext, float, ..
            } => {
                assert_eq!(*width, 2);
                assert!(*sext);
                assert!(!*float);
            }
            other => panic!("expected load, got {other:?}"),
        }
    }

    #[test]
    fn callr_reads_target_before_overwriting_ra() {
        let block = lift(&Insn::Callr { rs: Reg::RA }, 0x500, &SupportMatrix::full()).unwrap();
        // First statement must copy the target out of ra.
        assert!(matches!(
            block[0],
            Stmt::Un {
                op: UnOp::Mov,
                dst: Place::Tmp(0),
                a: Atom::Place(Place::Gpr(Reg::RA)),
            }
        ));
    }

    #[test]
    fn support_matrix_default_is_full() {
        let m = SupportMatrix::default();
        for c in super::ALL_CLASSES {
            assert!(m.supports(c));
        }
    }
}
