//! Static taint reachability from input sources to branch conditions.
//!
//! Seeds come from value-set analysis: every definition site that loads
//! or receives input-derived bytes (`read`/`argv`/`time`/`uid` syscalls
//! and their buffers) carries a source mask. The closure propagates the
//! masks along def-use chains, hops call edges in both directions
//! (arguments forward, `a0` return values backward), and degrades to a
//! whole-memory broadcast when a tainted value escapes through an
//! unresolved store, an indirect call, or a callee's memory effects.
//!
//! The products are engine-facing:
//!
//! * **independent branches** — conditional branches no tainted
//!   definition can reach; flipping them cannot change input-dependent
//!   behavior, so the engine may skip them as flip targets;
//! * **backward slices** — the static instruction cone feeding each
//!   tainted branch, cross-checked against the solver's dynamic
//!   cone-of-influence;
//! * **flip priorities** — taint distance, loop depth, and
//!   `bomb_boom` guard/post-dominance structure, for ordering the
//!   engine's flip queue;
//! * **static races** — store/load pairs on overlapping static ranges
//!   where one side runs in thread-reachable code.

use crate::callgraph::CallGraph;
use crate::cfg::Cfg;
use crate::dataflow::{DefKind, FuncFlow, Loc};
use bomblab_isa::{Insn, Reg};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A statically flagged shared-memory race candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Race {
    /// Store instruction address.
    pub store_pc: u64,
    /// Load instruction address.
    pub load_pc: u64,
    /// Overlap range start (byte address).
    pub lo: u64,
    /// Overlap range end (inclusive).
    pub hi: u64,
}

/// Everything the taint-reachability pass needs from earlier passes.
pub struct TaintInput<'a> {
    /// Recovered CFG.
    pub cfg: &'a Cfg,
    /// Def-use facts per function entry.
    pub flows: &'a BTreeMap<u64, FuncFlow>,
    /// Call graph.
    pub graph: &'a CallGraph,
    /// VSA taint seeds: defining pc -> source mask.
    pub tainted_defs: &'a BTreeMap<u64, u8>,
    /// VSA's own per-branch taint verdicts (the soundness floor).
    pub branch_taint: &'a BTreeMap<u64, u8>,
    /// Bounded static-region store ranges, pc -> (lo, hi).
    pub static_stores: &'a BTreeMap<u64, (u64, u64)>,
    /// Bounded static-region load ranges, pc -> (lo, hi).
    pub static_loads: &'a BTreeMap<u64, (u64, u64)>,
    /// Entries of the failure sink (`bomb_boom`) in this image.
    pub bomb_entries: &'a BTreeSet<u64>,
    /// Entries that run concurrently with `main` (thread entry points).
    pub parallel_roots: &'a [u64],
    /// `fork` syscall sites: post-fork code runs in parent and child.
    pub fork_sites: &'a BTreeSet<u64>,
    /// `sys` sites proven to always terminate the process/thread —
    /// fall-through edges past them are dead and must not make two
    /// fork arms look mutually reachable.
    pub exit_sites: &'a BTreeSet<u64>,
}

/// Results of static taint reachability.
#[derive(Debug, Clone, Default)]
pub struct StaticTaint {
    /// Every conditional-branch site in the recovered CFG.
    pub branch_sites: BTreeSet<u64>,
    /// Branch pc -> union of input-source masks reaching its condition.
    pub tainted_branches: BTreeMap<u64, u8>,
    /// Branches proven input-independent (sites minus tainted).
    pub independent: BTreeSet<u64>,
    /// Branch pc -> def-use hops from the nearest taint seed.
    pub distance: BTreeMap<u64, u32>,
    /// Branch pc -> pcs of the static backward slice of its condition.
    pub slices: BTreeMap<u64, BTreeSet<u64>>,
    /// Branch pc -> flip-priority score (higher = flip earlier).
    pub priority: BTreeMap<u64, i64>,
    /// Statically flagged shared-memory race candidates.
    pub races: Vec<Race>,
}

/// Maximum pcs retained per backward slice.
const SLICE_CAP: usize = 256;
/// Maximum race pairs reported.
const RACE_CAP: usize = 16;

struct Closure<'a> {
    input: &'a TaintInput<'a>,
    /// Per function entry: (mask, distance) per definition index.
    state: BTreeMap<u64, Vec<(u8, u32)>>,
    work: VecDeque<(u64, usize)>,
    mem_broadcast: u8,
}

impl<'a> Closure<'a> {
    fn taint(&mut self, entry: u64, def: usize, mask: u8, dist: u32) {
        if mask == 0 {
            return;
        }
        let Some(st) = self.state.get_mut(&entry) else {
            return;
        };
        let Some(cell) = st.get_mut(def) else { return };
        let new_bits = mask & !cell.0 != 0;
        let closer = dist < cell.1 && cell.0 != 0;
        if !new_bits && !closer {
            return;
        }
        cell.0 |= mask;
        cell.1 = cell.1.min(dist);
        self.work.push_back((entry, def));
    }

    /// A tainted value escaped into unresolved memory: taint every
    /// function's incoming memory state.
    fn broadcast_mem(&mut self, mask: u8, dist: u32) {
        if mask & !self.mem_broadcast == 0 {
            return;
        }
        self.mem_broadcast |= mask;
        let entries: Vec<u64> = self.input.flows.keys().copied().collect();
        for e in entries {
            if let Some(&d) = self.input.flows[&e].entry_defs.get(&Loc::Mem) {
                self.taint(e, d, mask, dist);
            }
        }
    }

    fn run(&mut self) {
        // Seed from the VSA report.
        for (&e, flow) in self.input.flows {
            for (pc, defs) in &flow.insn_defs {
                if let Some(&mask) = self.input.tainted_defs.get(pc) {
                    for &d in defs {
                        self.taint(e, d, mask, 0);
                    }
                }
            }
        }
        while let Some((entry, d)) = self.work.pop_front() {
            let Some(flow) = self.input.flows.get(&entry) else {
                continue;
            };
            let (mask, dist) = self.state[&entry][d];
            let def_loc = flow.defs[d].loc;
            if def_loc == Loc::Mem && flow.defs[d].kind == DefKind::Insn {
                // Tainted bytes escaped through a store with an
                // unresolved address, a call, or a syscall.
                self.broadcast_mem(mask, dist.saturating_add(1));
            }
            let uses: Vec<u64> = flow.def_uses[d].iter().copied().collect();
            for use_pc in uses {
                for &nd in flow.insn_defs.get(&use_pc).into_iter().flatten() {
                    self.taint(entry, nd, mask, dist.saturating_add(1));
                }
                if let Some(&callee) = flow.calls.get(&use_pc) {
                    self.cross_call(entry, d, callee, mask, dist);
                }
                if flow.ret_pcs.contains(&use_pc)
                    && (def_loc == Loc::Reg(Reg::A0.index() as u8) || def_loc == Loc::FReg(0))
                {
                    self.cross_return(entry, def_loc, mask, dist);
                }
            }
        }
    }

    /// Forward hop: a tainted argument or memory state flows into a
    /// callee's entry definitions.
    fn cross_call(&mut self, caller: u64, d: usize, callee: Option<u64>, mask: u8, dist: u32) {
        let def_loc = self.input.flows[&caller].defs[d].loc;
        let Some(callee) = callee else {
            // Indirect call: assume the target can observe memory.
            self.broadcast_mem(mask, dist.saturating_add(1));
            return;
        };
        let Some(cf) = self.input.flows.get(&callee) else {
            return;
        };
        let target = match def_loc {
            Loc::Reg(i) if (Reg::A0.index()..=Reg::A5.index()).contains(&usize::from(i)) => {
                cf.entry_defs.get(&Loc::Reg(i)).copied()
            }
            // Float arguments pass in float registers (`sin` takes `x`
            // in `f0`); forward every float channel.
            Loc::FReg(i) => cf.entry_defs.get(&Loc::FReg(i)).copied(),
            Loc::Mem | Loc::Slot(_) => cf.entry_defs.get(&Loc::Mem).copied(),
            Loc::Reg(_) => None,
        };
        if let Some(t) = target {
            self.taint(callee, t, mask, dist.saturating_add(1));
        }
    }

    /// Backward hop: a tainted return channel (`a0` or `f0`) at `ret`
    /// taints the matching call-site definition in every caller.
    fn cross_return(&mut self, callee: u64, chan: Loc, mask: u8, dist: u32) {
        let callers: Vec<u64> = self
            .input
            .graph
            .callers
            .get(&callee)
            .into_iter()
            .flatten()
            .copied()
            .collect();
        for caller in callers {
            let Some(cf) = self.input.flows.get(&caller) else {
                continue;
            };
            let sites: Vec<u64> = cf
                .calls
                .iter()
                .filter(|&(_, &c)| c == Some(callee))
                .map(|(&pc, _)| pc)
                .collect();
            for pc in sites {
                let ret_def = cf
                    .insn_defs
                    .get(&pc)
                    .into_iter()
                    .flatten()
                    .copied()
                    .find(|&i| cf.defs[i].loc == chan);
                if let Some(rd) = ret_def {
                    self.taint(caller, rd, mask, dist.saturating_add(1));
                }
            }
        }
    }
}

/// Runs the interprocedural taint closure and derives the engine-facing
/// products.
#[must_use]
#[allow(clippy::missing_panics_doc, clippy::too_many_lines)]
pub fn analyze(input: &TaintInput<'_>) -> StaticTaint {
    let mut cl = Closure {
        input,
        state: input
            .flows
            .iter()
            .map(|(&e, f)| (e, vec![(0u8, u32::MAX); f.defs.len()]))
            .collect(),
        work: VecDeque::new(),
        mem_broadcast: 0,
    };
    cl.run();
    let state = cl.state;

    let mut out = StaticTaint::default();

    // pc -> owning function entry (first wins, for slices/priorities),
    // pc -> *all* owning entries (shared tail blocks belong to several
    // functions — race attribution must see every owner), and
    // pc -> containing block start.
    let mut fn_of: BTreeMap<u64, u64> = BTreeMap::new();
    let mut owners: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
    let mut block_of: BTreeMap<u64, u64> = BTreeMap::new();
    for (&e, f) in &input.cfg.functions {
        for &b in &f.blocks {
            let Some(block) = input.cfg.blocks.get(&b) else {
                continue;
            };
            for &(pc, _) in &block.insns {
                fn_of.entry(pc).or_insert(e);
                owners.entry(pc).or_default().insert(e);
                block_of.entry(pc).or_insert(b);
            }
        }
    }

    // Branch verdicts: union the closure's reaching-def masks with the
    // VSA per-branch verdicts (the abstract interpreter sees through
    // patterns the def-use closure resolves to `Mem`).
    for (&e, f) in &input.cfg.functions {
        let Some(flow) = input.flows.get(&e) else {
            continue;
        };
        let st = &state[&e];
        for &b in &f.blocks {
            let Some(block) = input.cfg.blocks.get(&b) else {
                continue;
            };
            for &(pc, insn) in &block.insns {
                if !matches!(insn, Insn::Branch { .. } | Insn::FBranch { .. }) {
                    continue;
                }
                out.branch_sites.insert(pc);
                let mut mask = 0u8;
                let mut dist = u32::MAX;
                for &d in flow.uses_at.get(&pc).into_iter().flatten() {
                    let (m, dd) = st[d];
                    mask |= m;
                    if m != 0 {
                        dist = dist.min(dd);
                    }
                }
                if mask != 0 {
                    *out.tainted_branches.entry(pc).or_insert(0) |= mask;
                    out.distance.insert(pc, dist);
                }
            }
        }
    }
    for (&pc, &mask) in input.branch_taint {
        *out.tainted_branches.entry(pc).or_insert(0) |= mask;
        out.distance.entry(pc).or_insert(0);
        out.branch_sites.insert(pc);
    }
    out.independent = out
        .branch_sites
        .iter()
        .copied()
        .filter(|pc| !out.tainted_branches.contains_key(pc))
        .collect();

    // Backward slices for tainted branches (intra-procedural cone).
    for &pc in out.tainted_branches.keys() {
        let Some(&e) = fn_of.get(&pc) else { continue };
        let Some(flow) = input.flows.get(&e) else {
            continue;
        };
        let mut slice: BTreeSet<u64> = BTreeSet::new();
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut work: Vec<usize> = flow
            .uses_at
            .get(&pc)
            .into_iter()
            .flatten()
            .copied()
            .collect();
        while let Some(d) = work.pop() {
            if !seen.insert(d) || slice.len() >= SLICE_CAP {
                continue;
            }
            let def = flow.defs[d];
            if def.kind == DefKind::Entry {
                continue;
            }
            slice.insert(def.pc);
            for &up in flow.uses_at.get(&def.pc).into_iter().flatten() {
                work.push(up);
            }
        }
        out.slices.insert(pc, slice);
    }

    // Flip priorities.
    let mut bomb_call_blocks: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
    for (&e, f) in &input.cfg.functions {
        for &b in &f.blocks {
            let Some(block) = input.cfg.blocks.get(&b) else {
                continue;
            };
            let calls_bomb = block.insns.iter().any(|&(ipc, insn)| {
                matches!(insn, Insn::Call { rel }
                    if input.bomb_entries.contains(&ipc.wrapping_add_signed(rel.into())))
            });
            if calls_bomb {
                bomb_call_blocks.entry(e).or_default().insert(b);
            }
        }
    }
    let bomb_guard_fns: BTreeSet<u64> = {
        let direct: Vec<u64> = bomb_call_blocks.keys().copied().collect();
        input.graph.can_reach(&direct)
    };
    for &pc in &out.branch_sites {
        let mut score: i64 = 0;
        if let (Some(&e), Some(&b)) = (fn_of.get(&pc), block_of.get(&pc)) {
            if bomb_guard_fns.contains(&e) {
                score += 1000;
            }
            if let Some(f) = input.cfg.functions.get(&e) {
                // Walk the post-dominator chain: if a bomb-call block
                // post-dominates the branch, flipping cannot dodge it.
                if let Some(bombs) = bomb_call_blocks.get(&e) {
                    let mut cur = b;
                    let mut hops = 0;
                    while let Some(&p) = f.post_idom.get(&cur) {
                        if p == cur || hops > 64 {
                            break;
                        }
                        if bombs.contains(&p) {
                            score -= 500;
                            break;
                        }
                        cur = p;
                        hops += 1;
                    }
                }
                score -= 10 * i64::from(f.loop_depth.get(&b).copied().unwrap_or(0));
            }
        }
        if let Some(&d) = out.distance.get(&pc) {
            score += i64::from(100u32.saturating_sub(d));
        }
        out.priority.insert(pc, score);
    }

    // Shared-memory race candidates: a static-range store and load on
    // overlapping bytes where the two sides can run concurrently —
    // either one side is thread-reachable and the other is not (a block
    // shared by main and a thread entry counts for both), or the two
    // sides sit on mutually unreachable arms downstream of a `fork`.
    let mut race_keys: BTreeSet<(u64, u64)> = BTreeSet::new();
    let mut push_race = |out: &mut StaticTaint, spc: u64, lpc: u64, lo: u64, hi: u64| {
        if out.races.len() < RACE_CAP && race_keys.insert((spc, lpc)) {
            out.races.push(Race {
                store_pc: spc,
                load_pc: lpc,
                lo,
                hi,
            });
        }
    };
    let overlaps = || {
        input.static_stores.iter().flat_map(|(&spc, &(slo, shi))| {
            input
                .static_loads
                .iter()
                .filter_map(move |(&lpc, &(llo, lhi))| {
                    let lo = slo.max(llo);
                    let hi = shi.min(lhi);
                    (lo <= hi).then_some((spc, lpc, lo, hi))
                })
        })
    };
    if !input.parallel_roots.is_empty() {
        let par = input.graph.reachable_from(input.parallel_roots);
        let par_own = |pc: u64| {
            owners
                .get(&pc)
                .is_some_and(|o| o.iter().any(|e| par.contains(e)))
        };
        let main_own = |pc: u64| {
            owners
                .get(&pc)
                .is_some_and(|o| o.iter().any(|e| !par.contains(e)))
        };
        for (spc, lpc, lo, hi) in overlaps() {
            if (par_own(spc) && main_own(lpc)) || (main_own(spc) && par_own(lpc)) {
                push_race(&mut out, spc, lpc, lo, hi);
            }
        }
    }
    for &fpc in input.fork_sites {
        let Some(&fb) = block_of.get(&fpc) else {
            continue;
        };
        let post = reachable_blocks(input.cfg, fb, input.exit_sites);
        for (spc, lpc, lo, hi) in overlaps() {
            let (Some(&sb), Some(&lb)) = (block_of.get(&spc), block_of.get(&lpc)) else {
                continue;
            };
            if sb == lb || !post.contains(&sb) || !post.contains(&lb) {
                continue;
            }
            // Mutually unreachable post-fork blocks are the parent and
            // child arms: they execute concurrently.
            if !reachable_blocks(input.cfg, sb, input.exit_sites).contains(&lb)
                && !reachable_blocks(input.cfg, lb, input.exit_sites).contains(&sb)
            {
                push_race(&mut out, spc, lpc, lo, hi);
            }
        }
    }
    out
}

/// Block starts reachable from `from` along CFG successor edges
/// (including `from` itself). A block containing a proven-exit `sys`
/// never falls through: its successor edges are dead.
fn reachable_blocks(cfg: &Cfg, from: u64, exit_sites: &BTreeSet<u64>) -> BTreeSet<u64> {
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    let mut work = vec![from];
    while let Some(b) = work.pop() {
        if !seen.insert(b) {
            continue;
        }
        let Some(block) = cfg.blocks.get(&b) else {
            continue;
        };
        if block.insns.iter().any(|(pc, _)| exit_sites.contains(pc)) {
            continue;
        }
        for &s in &block.succs {
            if !seen.contains(&s) {
                work.push(s);
            }
        }
    }
    seen
}
